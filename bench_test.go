// Package hotspot_test hosts the repository-level benchmark harness: one
// testing.B entry point per table and figure of the paper (backed by
// internal/experiments) plus micro-benchmarks of the substrates they run
// on. Experiment benchmarks are sized for a single-core laptop; suites are
// cached under .benchcache so lithography labelling runs once across
// benchmarks and repeated runs.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package hotspot_test

import (
	"math/rand"
	"os"
	"testing"

	"hotspot/internal/dct"
	"hotspot/internal/experiments"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/litho"
	"hotspot/internal/raster"
)

// benchOpts returns the shared experiment options: ~0.4% of the paper's
// sample counts and a reduced iteration budget, cached across benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:    0.004,
		Seed:     1,
		CacheDir: ".benchcache",
		Iters:    400,
	}
}

// --- Experiment benchmarks: one per table/figure -------------------------

func BenchmarkTable1NetworkConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkTable2(b *testing.B, bench string) {
	b.Helper()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2([]string{bench}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatal("expected one row")
		}
		b.ReportMetric(100*rows[0].Ours.Accuracy, "ours-accuracy-%")
		b.ReportMetric(float64(rows[0].Ours.FalseAlarms), "ours-FA")
	}
}

func BenchmarkTable2_ICCAD(b *testing.B)     { benchmarkTable2(b, "ICCAD") }
func BenchmarkTable2_Industry1(b *testing.B) { benchmarkTable2(b, "Industry1") }
func BenchmarkTable2_Industry2(b *testing.B) { benchmarkTable2(b, "Industry2") }
func BenchmarkTable2_Industry3(b *testing.B) { benchmarkTable2(b, "Industry3") }

func BenchmarkFig1FeatureTensor(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig1(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Compression, "compression-x")
		b.ReportMetric(100*res.RelL2Error, "rel-L2-err-%")
	}
}

func BenchmarkFig2Structure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3SGDvsMGD(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.MGD) == 0 || len(res.SGD) == 0 {
			b.Fatal("empty training histories")
		}
	}
}

func BenchmarkFig4BiasVsShift(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig4(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Bias) != len(res.Shift) {
			b.Fatal("mismatched trade-off curves")
		}
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkDCTBlock25(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	block := make([]float64, 25*25)
	for i := range block {
		block[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dct.ForwardTruncated2D(block, 25, 25, 7, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureTensorExtract(b *testing.B) {
	style := layout.StyleICCAD()
	clip := layout.Generate(style, rand.New(rand.NewSource(2)))
	cfg := feature.DefaultTensorConfig()
	core := style.CoreRect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feature.ExtractTensor(clip, core, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRasterizeClip(b *testing.B) {
	style := layout.StyleICCAD()
	clip := layout.Generate(style, rand.New(rand.NewSource(3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := raster.Rasterize(clip, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLithoOracle(b *testing.B) {
	style := layout.StyleICCAD()
	clip := layout.Generate(style, rand.New(rand.NewSource(4)))
	labeler, err := layout.NewLabeler(style, litho.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := labeler.Label(clip); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAerialImage(b *testing.B) {
	cfg := litho.DefaultConfig()
	sim, err := litho.NewSimulator(cfg)
	if err != nil {
		b.Fatal(err)
	}
	clip := geom.NewClip(geom.R(0, 0, 1600, 1600), []geom.Rect{
		geom.R(100, 0, 180, 1600), geom.R(400, 0, 480, 1600),
		geom.R(700, 200, 780, 1400), geom.R(1000, 0, 1080, 1600),
	})
	mask, err := raster.Rasterize(clip, cfg.ResNM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Aerial(mask, 0)
	}
}

func BenchmarkGenerateClip(b *testing.B) {
	style := layout.StyleIndustry3()
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.Generate(style, rng)
	}
}

func BenchmarkCCSExtract(b *testing.B) {
	style := layout.StyleICCAD()
	clip := layout.Generate(style, rand.New(rand.NewSource(6)))
	cfg := feature.DefaultCCSConfig()
	core := style.CoreRect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feature.ExtractCCS(clip, core, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	os.Exit(code)
}
