// Command scansmoke is the hsd-scan end-to-end smoke: it runs the binary
// on a tiny synthetic die with the decision boundary shifted so every
// window is hot, then asserts the structural invariants of the scan
// engine — invariants that hold for any model weights: the window grid,
// exactly one merged region covering the die, one block DCT per die
// block, the exact shared-cache hit rate those counts imply, the
// incremental re-scan's dirty-block accounting, and the cache-hit-rate
// series in the metrics dump. scripts/check.sh runs it as the scan leg of
// the gate.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The 2×2-cell die (2400 nm, 24×24 blocks, 13×13 windows) and the edit
// region drive exact expectations: 576 cold block DCTs; the edit
// (300,300)-(800,800) overlaps blocks [3,8)² → 25 dirty blocks, and the
// windows gathering them are wx,wy ∈ [0,8) → 64 re-scored.
const (
	wantWindows     = 13 * 13
	wantBlockDCTs   = 24 * 24
	wantDirtyBlocks = 25
	wantRescanWins  = 64
)

type stats struct {
	BlockDCTs    int     `json:"block_dcts"`
	BlockGathers int64   `json:"block_gathers"`
	Windows      int     `json:"windows"`
	DirtyBlocks  int     `json:"dirty_blocks"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type output struct {
	WindowsX   int   `json:"windows_x"`
	WindowsY   int   `json:"windows_y"`
	HotWindows int   `json:"hot_windows"`
	Stats      stats `json:"stats"`
	Regions    []struct {
		Windows int `json:"windows"`
	} `json:"regions"`
	Rescan *output `json:"rescan"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("scansmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("scansmoke: hsd-scan regions/cache/metrics OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "hsd-scansmoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(tmp) }()

	bin := filepath.Join(tmp, "hsd-scan")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hsd-scan")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hsd-scan: %w", err)
	}

	jsonPath := filepath.Join(tmp, "scan.json")
	heatPath := filepath.Join(tmp, "heat.pgm")
	metricsPath := filepath.Join(tmp, "metrics.txt")
	cmd := exec.Command(bin,
		"-cells", "2", "-untrained", "-seed", "3", "-workers", "2",
		"-shift", "0.5", // boundary at 0: every window is hot, whatever the weights
		"-edit", "300,300,800,800",
		"-json", jsonPath, "-heat", heatPath, "-metrics-out", metricsPath)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("hsd-scan: %w", err)
	}

	if err := checkOutput(jsonPath); err != nil {
		return err
	}
	if err := checkHeat(heatPath); err != nil {
		return err
	}
	return checkMetrics(metricsPath)
}

func checkOutput(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var out output
	if err := json.Unmarshal(raw, &out); err != nil {
		return fmt.Errorf("scan JSON: %w", err)
	}
	if out.WindowsX*out.WindowsY != wantWindows || out.HotWindows != wantWindows {
		return fmt.Errorf("scan: %dx%d windows, %d hot, want all %d hot",
			out.WindowsX, out.WindowsY, out.HotWindows, wantWindows)
	}
	if len(out.Regions) != 1 || out.Regions[0].Windows != wantWindows {
		return fmt.Errorf("scan: %d regions %v, want 1 region of %d windows", len(out.Regions), out.Regions, wantWindows)
	}
	if out.Stats.BlockDCTs != wantBlockDCTs {
		return fmt.Errorf("scan: %d block DCTs, want exactly one per block (%d)", out.Stats.BlockDCTs, wantBlockDCTs)
	}
	wantHit := float64(out.Stats.BlockGathers) / float64(out.Stats.BlockGathers+int64(out.Stats.BlockDCTs))
	if math.Float64bits(out.Stats.CacheHitRate) != math.Float64bits(wantHit) {
		return fmt.Errorf("scan: cache hit rate %v, want %v", out.Stats.CacheHitRate, wantHit)
	}
	if out.Rescan == nil {
		return fmt.Errorf("scan JSON has no rescan section")
	}
	r := out.Rescan
	if r.Stats.DirtyBlocks != wantDirtyBlocks || r.Stats.BlockDCTs != wantDirtyBlocks {
		return fmt.Errorf("rescan: %d dirty blocks / %d DCTs, want %d", r.Stats.DirtyBlocks, r.Stats.BlockDCTs, wantDirtyBlocks)
	}
	if r.Stats.Windows != wantRescanWins {
		return fmt.Errorf("rescan re-scored %d windows, want %d", r.Stats.Windows, wantRescanWins)
	}
	if len(r.Regions) != 1 {
		return fmt.Errorf("rescan: %d regions, want 1", len(r.Regions))
	}
	fmt.Printf("scansmoke: scan JSON OK (%d windows, %d block DCTs, hit rate %.4f, %d dirty blocks)\n",
		wantWindows, out.Stats.BlockDCTs, out.Stats.CacheHitRate, r.Stats.DirtyBlocks)
	return nil
}

// checkHeat asserts the heat map is a PGM with one pixel per window.
func checkHeat(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	want := fmt.Sprintf("P5\n%d %d\n", 13, 13)
	if !strings.HasPrefix(string(raw), want) {
		return fmt.Errorf("heat map does not start with %q: %q", want, raw[:min(len(raw), 16)])
	}
	return nil
}

// checkMetrics asserts the dump carries the scan counters, the cache-hit
// gauge and the scan stage summaries.
func checkMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(raw)
	for _, series := range []string{
		"hsd_scan_block_dcts_total",
		"hsd_scan_block_gathers_total",
		"hsd_scan_windows_total",
		"hsd_scan_dirty_blocks_total",
		"hsd_scan_block_cache_hit_rate",
		`stage="scan/extract"`,
		`stage="scan/infer"`,
		`stage="scan/regions"`,
	} {
		if !strings.Contains(text, series) {
			return fmt.Errorf("metrics dump missing %s:\n%s", series, text)
		}
	}
	// Cold scan + rescan: 576 + 25 transforms, all demand beyond that
	// served by the cache.
	if !strings.Contains(text, "hsd_scan_block_dcts_total 601") {
		return fmt.Errorf("hsd_scan_block_dcts_total != 601 (cold 576 + 25 dirty):\n%s", text)
	}
	fmt.Println("scansmoke: metrics OK (scan counters, cache-hit gauge, stage summaries)")
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
