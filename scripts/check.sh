#!/usr/bin/env bash
# check.sh — the repo's standing check gate.
#
# Runs the legs every change must pass before merging:
#   1. go build ./...        the tree compiles
#   2. go vet ./...          stock toolchain analysis
#   3. hsd-vet ./...         project contracts: determinism, numerics,
#                            concurrency, errors, hot-path allocation,
#                            observability clock policy
#                            (see DESIGN.md "Determinism & numerics rules")
#   4. go test -race ./...   unit + parity tests under the race detector
#   5. bench smoke           hsd-bench -exp infer with a few fixed reps:
#                            gates fused-vs-layered bit parity on every
#                            Table 1 geometry before timing anything, so a
#                            kernel change that alters numbers fails here
#   6. scripts/smoke         hsd-serve end-to-end smoke: boot on an
#                            ephemeral port, predict, healthz, metrics,
#                            -pprof debug surface, SIGINT drain, zero exit
#   7. scripts/trainsmoke    hsd-train observability smoke: tiny suite,
#                            -telemetry JSONL (manifest/epoch/result) and
#                            -metrics-out stage summaries parse and assert
#   8. scripts/scansmoke     hsd-scan full-layout smoke: tiny die, shifted
#                            boundary, asserts region merge, one-DCT-per-
#                            block accounting, the exact cache hit rate,
#                            incremental re-scan dirty counts and the
#                            hsd_scan_* metrics series
#   9. scripts/activesmoke   hsd-active smoke: tiny pool, budget sized to
#                            exhaust mid-batch, asserts exact ODST-seconds
#                            accounting, truncation, the JSONL manifest and
#                            the hsd_litho_*/hsd_active_* metrics series
#  10. scripts/tracesmoke    hsd-serve trace smoke: /debug/trace dark by
#                            default (404), then -trace with mixed
#                            fast/slow/429 traffic asserting tail-keep
#                            retention, request/batch stage trees with
#                            cross-linkage, and the p99 trace-ID exemplar
#                            on the metrics scrape
#
# Usage: scripts/check.sh [-short|-lint-only]
#   -short      pass -short to go test (skips the slow experiment suites)
#   -lint-only  run legs 1-3 only (build, vet, hsd-vet) — the fast
#               pre-commit loop; the analyzers alone catch contract
#               breaches without waiting for the race suite
set -euo pipefail
cd "$(dirname "$0")/.."

short=""
lint_only=""
case "${1:-}" in
-short) short="-short" ;;
-lint-only) lint_only=1 ;;
esac

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> hsd-vet ./..."
go run ./cmd/hsd-vet ./...

if [[ -n "${lint_only}" ]]; then
    echo "check gate: lint legs green (-lint-only)"
    exit 0
fi

echo "==> go test -race ${short} ./..."
go test -race ${short} ./...

echo "==> infer bench smoke (fused/layered parity gate)"
infer_tmp="$(mktemp)"
go run ./cmd/hsd-bench -exp infer -infer-reps 3 -infer-out "${infer_tmp}" > /dev/null
rm -f "${infer_tmp}"

echo "==> hsd-serve smoke"
go run ./scripts/smoke

echo "==> hsd-train smoke"
go run ./scripts/trainsmoke

echo "==> hsd-scan smoke"
go run ./scripts/scansmoke

echo "==> hsd-active smoke"
go run ./scripts/activesmoke

echo "==> hsd-serve trace smoke"
go run ./scripts/tracesmoke

echo "check gate: all legs green"
