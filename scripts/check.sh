#!/usr/bin/env bash
# check.sh — the repo's standing check gate.
#
# Runs the four legs every change must pass before merging:
#   1. go build ./...        the tree compiles
#   2. go vet ./...          stock toolchain analysis
#   3. hsd-vet ./...         project contracts: determinism, numerics,
#                            concurrency, errors, hot-path allocation
#                            (see DESIGN.md "Determinism & numerics rules")
#   4. go test -race ./...   unit + parity tests under the race detector
#   5. scripts/smoke         hsd-serve end-to-end smoke: boot on an
#                            ephemeral port, predict, healthz, metrics,
#                            SIGINT drain, zero exit
#
# Usage: scripts/check.sh [-short]
#   -short   pass -short to go test (skips the slow experiment suites)
set -euo pipefail
cd "$(dirname "$0")/.."

short=""
if [[ "${1:-}" == "-short" ]]; then
    short="-short"
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> hsd-vet ./..."
go run ./cmd/hsd-vet ./...

echo "==> go test -race ${short} ./..."
go test -race ${short} ./...

echo "==> hsd-serve smoke"
go run ./scripts/smoke

echo "check gate: all legs green"
