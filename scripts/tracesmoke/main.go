// Command tracesmoke is the request-tracing end-to-end smoke: it builds
// hsd-serve, verifies the flight recorder is dark by default (GET
// /debug/trace 404s, like the pprof surface), then boots with -trace and
// drives mixed traffic — fast cache-less predicts, a concurrency burst
// against a 2-slot queue until a 429 lands, and one final quiescent
// predict — and asserts the recorder's tail-keep retention and trace
// shapes: the 429 is kept with reason "error", a "slow" keep exists, the
// final predict's queue span names its batch trace, the batch trace names
// the member request back and carries extract/infer stage spans, and the
// /metrics exposition links the slowest request via a q="max" trace-ID
// exemplar. scripts/check.sh runs it as the tracing leg of the gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"hotspot/internal/parallel"
)

const killAfter = 60 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracesmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tracesmoke: hsd-serve dark-404/retention/stage-trees/batch-linkage/exemplar OK")
}

// dump mirrors trace.DumpJSON; the smoke decodes the wire shape with its
// own structs so a dump-format regression fails here, not just in unit
// tests.
type dump struct {
	Recorded int64   `json:"recorded"`
	Kept     int     `json:"kept"`
	Dropped  int64   `json:"dropped"`
	Traces   []trace `json:"traces"`
}

type trace struct {
	TraceID string         `json:"trace_id"`
	Seq     uint64         `json:"seq"`
	Name    string         `json:"name"`
	Status  int            `json:"status"`
	Error   string         `json:"error"`
	Kept    []string       `json:"kept"`
	Attrs   map[string]any `json:"attrs"`
	Spans   []span         `json:"spans"`
}

type span struct {
	Name     string         `json:"name"`
	Attrs    map[string]any `json:"attrs"`
	Children []span         `json:"children"`
}

// server is one booted hsd-serve process with its stdout scanner.
type server struct {
	cmd   *exec.Cmd
	out   *bufio.Scanner
	base  string
	guard *time.Timer
}

// boot starts the binary with the given flags and waits for the listen
// banner. The kill guard shoots the process after killAfter so a wedged
// server fails the gate instead of hanging it.
func boot(bin string, extra ...string) (*server, error) {
	args := append([]string{"-untrained", "-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	guard := time.AfterFunc(killAfter, func() { _ = cmd.Process.Kill() })
	out := bufio.NewScanner(stdout)
	addr := ""
	for out.Scan() {
		line := out.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "hsd-serve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		guard.Stop()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("server never printed its listen address (scan err: %v)", out.Err())
	}
	return &server{cmd: cmd, out: out, base: "http://" + addr, guard: guard}, nil
}

func (s *server) kill() {
	s.guard.Stop()
	_ = s.cmd.Process.Kill()
	_ = s.cmd.Wait()
}

// shutdown sends SIGINT and verifies the drain banner and a zero exit.
func (s *server) shutdown() error {
	defer s.guard.Stop()
	if err := s.cmd.Process.Signal(os.Interrupt); err != nil {
		s.kill()
		return fmt.Errorf("interrupt: %w", err)
	}
	drained := false
	for s.out.Scan() {
		line := s.out.Text()
		fmt.Println(line)
		if strings.Contains(line, "drained, bye") {
			drained = true
		}
	}
	if err := s.cmd.Wait(); err != nil {
		return fmt.Errorf("server exit: %w", err)
	}
	if !drained {
		return fmt.Errorf("server exited without the drain banner")
	}
	return nil
}

func run() error {
	tmp, err := os.MkdirTemp("", "hsd-tracesmoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(tmp) }()

	bin := filepath.Join(tmp, "hsd-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hsd-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hsd-serve: %w", err)
	}

	if err := darkSurface(bin); err != nil {
		return err
	}
	return litSurface(bin)
}

// darkSurface boots without -trace: the flight recorder must not exist,
// so GET /debug/trace 404s like any unknown path, while the service
// itself answers.
func darkSurface(bin string) error {
	srv, err := boot(bin)
	if err != nil {
		return err
	}
	fail := func(step string, err error) error {
		srv.kill()
		return fmt.Errorf("dark %s: %w", step, err)
	}
	if code, _, err := post(srv.base+"/v1/predict", clip(0)); err != nil || code != http.StatusOK {
		return fail("predict", fmt.Errorf("status %d, err %v", code, err))
	}
	code, err := getStatus(srv.base + "/debug/trace")
	if err != nil {
		return fail("debug-trace", err)
	}
	if code != http.StatusNotFound {
		return fail("debug-trace", fmt.Errorf("status %d, want 404 when tracing is dark", code))
	}
	return srv.shutdown()
}

// litSurface boots with -trace on a deliberately tiny queue, drives mixed
// traffic, and checks retention, trace shapes, batch linkage, and the
// metrics exemplar.
func litSurface(bin string) error {
	srv, err := boot(bin, "-trace", "-queue", "2", "-max-batch", "4", "-max-wait", "20ms", "-cache", "0")
	if err != nil {
		return err
	}
	fail := func(step string, err error) error {
		srv.kill()
		return fmt.Errorf("lit %s: %w", step, err)
	}

	// Warm-up predicts: distinct clips (the cache is off anyway), all 200.
	next := 0
	for i := 0; i < 3; i++ {
		code, body, err := post(srv.base+"/v1/predict", clip(next))
		next++
		if err != nil || code != http.StatusOK {
			return fail("warmup", fmt.Errorf("status %d, err %v: %s", code, err, body))
		}
	}

	// Concurrency bursts against the 2-slot queue until a 429 lands. Each
	// attempt fires 16 distinct clips at once over the repo's own bounded
	// fan-out; with queue 2 + 20ms flush deadline the overflow fails fast.
	const burst = 16
	pool := parallel.New(burst)
	saw429 := false
	for attempt := 0; attempt < 20 && !saw429; attempt++ {
		base := next
		codes, err := parallel.Map(pool, burst, func(_, i int) (int, error) {
			c, _, err := post(srv.base+"/v1/predict", clip(base+i))
			return c, err
		})
		next += burst
		if err != nil {
			return fail("burst", err)
		}
		for _, c := range codes {
			if c == http.StatusTooManyRequests {
				saw429 = true
			}
		}
	}
	if !saw429 {
		return fail("burst", fmt.Errorf("no 429 after 20 bursts against a 2-slot queue"))
	}

	// One final quiescent predict: with the burst drained, this request
	// and its batch are the most recent traces — guaranteed in the recent
	// ring for the linkage assertions.
	time.Sleep(100 * time.Millisecond)
	code, body, err := post(srv.base+"/v1/predict", clip(next))
	if err != nil || code != http.StatusOK {
		return fail("final predict", fmt.Errorf("status %d, err %v: %s", code, err, body))
	}

	// The batch trace finishes on the flush loop after replies go out:
	// poll the dump until the final predict's batch is linked (sleep-count
	// bounded at ~5s so a wedged flush fails the leg, not the kill guard).
	var d dump
	var last, batch *trace
	for attempt := 0; ; attempt++ {
		raw, err := get(srv.base + "/debug/trace")
		if err != nil {
			return fail("debug-trace", err)
		}
		d = dump{}
		if err := json.Unmarshal([]byte(raw), &d); err != nil {
			return fail("debug-trace", fmt.Errorf("bad JSON: %w\n%s", err, raw))
		}
		last, batch = findLinkedPair(&d)
		if batch != nil || attempt >= 250 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Retention accounting: everything the traffic produced was recorded,
	// and the kept set matches the trace list.
	if d.Recorded < 20 {
		return fail("retention", fmt.Errorf("recorded %d traces, want >= 20", d.Recorded))
	}
	if d.Kept != len(d.Traces) || d.Dropped != d.Recorded-int64(d.Kept) {
		return fail("retention", fmt.Errorf("inconsistent accounting: recorded %d kept %d dropped %d traces %d",
			d.Recorded, d.Kept, d.Dropped, len(d.Traces)))
	}

	// The 429 survived the boring traffic that followed: kept as "error".
	found429 := false
	sawSlow := false
	for i := range d.Traces {
		tr := &d.Traces[i]
		for _, k := range tr.Kept {
			if k == "slow" {
				sawSlow = true
			}
		}
		if tr.Status != http.StatusTooManyRequests {
			continue
		}
		for _, k := range tr.Kept {
			if k == "error" {
				found429 = true
			}
		}
		if tr.Error == "" {
			return fail("429-trace", fmt.Errorf("429 trace %s carries no error message", tr.TraceID))
		}
	}
	if !found429 {
		return fail("429-trace", fmt.Errorf("no 429 trace kept with reason \"error\" among %d traces", len(d.Traces)))
	}
	if !sawSlow {
		return fail("slow-keep", fmt.Errorf("no trace kept with reason \"slow\""))
	}

	// Stage tree + batch linkage for the final predict.
	if last == nil {
		return fail("linkage", fmt.Errorf("no 200 predict trace with a queue span in the dump"))
	}
	if batch == nil {
		return fail("linkage", fmt.Errorf("predict %s names batch %q but no such batch trace was dumped",
			last.TraceID, batchID(last)))
	}
	if !hasSpan(last.Spans, "decode") {
		return fail("linkage", fmt.Errorf("predict trace %s has no decode span", last.TraceID))
	}
	if !hasSpan(batch.Spans, "extract") || !hasSpan(batch.Spans, "infer") {
		return fail("linkage", fmt.Errorf("batch trace %s missing extract/infer spans", batch.TraceID))
	}
	member := false
	for k, v := range batch.Attrs {
		if strings.HasPrefix(k, "member_") && v == last.TraceID {
			member = true
		}
	}
	if !member {
		return fail("linkage", fmt.Errorf("batch %s does not name member %s: %v", batch.TraceID, last.TraceID, batch.Attrs))
	}

	// The scrape links the slowest windowed request into the recorder, and
	// carries the build-info gauge.
	metrics, err := get(srv.base + "/metrics")
	if err != nil {
		return fail("metrics", err)
	}
	for _, want := range []string{`q="max",trace_id="`, `hsd_build_info{`} {
		if !strings.Contains(metrics, want) {
			return fail("metrics", fmt.Errorf("missing %q in:\n%s", want, metrics))
		}
	}

	return srv.shutdown()
}

// findLinkedPair returns the newest 200 predict trace that has a queue
// span naming a batch, and the batch trace it names (nil until the flush
// loop has finished that batch's trace).
func findLinkedPair(d *dump) (last, batch *trace) {
	for i := range d.Traces {
		tr := &d.Traces[i]
		if tr.Name == "predict" && tr.Status == http.StatusOK && batchID(tr) != "" {
			if last == nil || tr.Seq > last.Seq {
				last = tr
			}
		}
	}
	if last == nil {
		return nil, nil
	}
	want := batchID(last)
	for i := range d.Traces {
		tr := &d.Traces[i]
		if tr.Name == "batch" && tr.TraceID == want {
			return last, tr
		}
	}
	return last, nil
}

// batchID extracts the batch_id attribute from a predict trace's queue
// span ("" when absent).
func batchID(tr *trace) string {
	for _, sp := range tr.Spans {
		if sp.Name == "queue" {
			if id, ok := sp.Attrs["batch_id"].(string); ok {
				return id
			}
		}
	}
	return ""
}

func hasSpan(spans []span, name string) bool {
	for _, sp := range spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

// clip builds a distinct predict request body: a vertical wire whose
// position varies with i, so every clip hashes differently.
func clip(i int) []byte {
	x0 := 40 + (i%20)*55
	y0 := (i / 20 * 37) % 600
	return []byte(fmt.Sprintf(`{"frame":{"x0":0,"y0":0,"x1":1200,"y1":1200},`+
		`"rects":[{"x0":%d,"y0":%d,"x1":%d,"y1":1200}]}`, x0, y0, x0+60))
}

func post(url string, body []byte) (int, string, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(raw), nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return string(raw), nil
}

// getStatus fetches a URL and returns only the status code.
func getStatus(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
