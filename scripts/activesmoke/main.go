// Command activesmoke is the hsd-active end-to-end smoke: it runs the
// binary on a tiny pool with a budget chosen to exhaust mid-batch, then
// asserts the exact budget accounting — invariants that hold for any
// model weights: 24 pool clips at the default 10 s/clip under a 70 s
// budget label 4 clips in round 0 and 3 in round 1 before the fourth
// charge is refused, so the loop truncates, stops, and the JSONL manifest
// and the litho budget meters all read exactly 70 spent seconds and 7
// labels. scripts/check.sh runs it as the active leg of the gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// exactly reports bit-identity — the budget meter charges exact corner
// multiples, so the accounting must reproduce these values to the bit.
func exactly(got, want float64) bool {
	return math.Float64bits(got) == math.Float64bits(want)
}

// 70 s budget at 10 s/clip across 4-clip batches: round 0 labels 4
// (spent 40), round 1 labels 3 and truncates (spent 70), loop stops.
const (
	wantRounds  = 2
	wantLabels  = 7
	wantSeconds = 70
)

type roundEvent struct {
	Event           string  `json:"event"`
	Round           int     `json:"round"`
	Scored          int     `json:"scored"`
	Selected        []int   `json:"selected"`
	Labeled         int     `json:"labeled"`
	BudgetSpent     float64 `json:"budget_spent"`
	BudgetRemaining float64 `json:"budget_remaining"`
	Truncated       bool    `json:"truncated"`
}

type resultEvent struct {
	RoundsRun       int     `json:"rounds_run"`
	LabeledTotal    int     `json:"labeled_total"`
	BudgetSpent     float64 `json:"budget_spent"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("activesmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("activesmoke: hsd-active budget/manifest/metrics OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "hsd-activesmoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(tmp) }()

	bin := filepath.Join(tmp, "hsd-active")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hsd-active")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hsd-active: %w", err)
	}

	manifestPath := filepath.Join(tmp, "active.jsonl")
	metricsPath := filepath.Join(tmp, "metrics.txt")
	cmd := exec.Command(bin,
		"-pool", "24", "-eval", "8", "-rounds", "3", "-batch", "4",
		"-budget", "70", "-blocks", "4", "-k", "8", "-iters", "40",
		"-seed", "3", "-workers", "2",
		"-manifest", manifestPath, "-metrics-out", metricsPath)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("hsd-active: %w", err)
	}

	if err := checkManifest(manifestPath); err != nil {
		return err
	}
	return checkMetrics(metricsPath)
}

// checkManifest parses the JSONL stream line by line and asserts the
// exact per-round budget trajectory.
func checkManifest(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var (
		events []string
		rounds []roundEvent
		result resultEvent
	)
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var head struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
			return fmt.Errorf("unparseable manifest line %q: %w", sc.Text(), err)
		}
		events = append(events, head.Event)
		switch head.Event {
		case "round":
			var r roundEvent
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				return err
			}
			rounds = append(rounds, r)
		case "result":
			if err := json.Unmarshal(sc.Bytes(), &result); err != nil {
				return err
			}
		}
	}
	want := []string{"manifest", "round", "round", "result"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		return fmt.Errorf("manifest events %v, want %v", events, want)
	}
	if len(rounds) != wantRounds {
		return fmt.Errorf("%d round events, want %d", len(rounds), wantRounds)
	}
	r0, r1 := rounds[0], rounds[1]
	if r0.Scored != 24 || len(r0.Selected) != 4 || r0.Labeled != 4 ||
		!exactly(r0.BudgetSpent, 40) || !exactly(r0.BudgetRemaining, 30) || r0.Truncated {
		return fmt.Errorf("round 0 accounting off: %+v", r0)
	}
	if r1.Scored != 20 || len(r1.Selected) != 4 || r1.Labeled != 3 ||
		!exactly(r1.BudgetSpent, wantSeconds) || !exactly(r1.BudgetRemaining, 0) || !r1.Truncated {
		return fmt.Errorf("round 1 accounting off: %+v", r1)
	}
	if result.RoundsRun != wantRounds || result.LabeledTotal != wantLabels ||
		!exactly(result.BudgetSpent, wantSeconds) || !exactly(result.BudgetRemaining, 0) {
		return fmt.Errorf("result accounting off: %+v", result)
	}
	fmt.Printf("activesmoke: manifest OK (%d rounds, %d labels, %.0f s spent, truncated mid-batch)\n",
		result.RoundsRun, result.LabeledTotal, result.BudgetSpent)
	return nil
}

// checkMetrics asserts the litho budget meters and the loop counters and
// stage summaries, with exact values where the accounting pins them.
func checkMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(raw)
	for _, series := range []string{
		// Exact: 7 labels at 10 s each, down to a zero remainder.
		"hsd_litho_odst_milliseconds_total 70000",
		"hsd_litho_labels_total 7",
		"hsd_litho_budget_remaining_seconds 0.000",
		"hsd_active_rounds_total 2",
		"hsd_active_selected_total 8",
		"hsd_active_labeled_total 7",
		`stage="active/score"`,
		`stage="active/select"`,
		`stage="active/label"`,
		`stage="active/tune"`,
	} {
		if !strings.Contains(text, series) {
			return fmt.Errorf("metrics dump missing %s:\n%s", series, text)
		}
	}
	fmt.Println("activesmoke: metrics OK (budget meters exact, loop counters, stage summaries)")
	return nil
}
