// Command trainsmoke is the hsd-train end-to-end smoke: it generates a
// tiny labelled suite in-process, runs the hsd-train binary over it with
// -telemetry and -metrics-out, and asserts the observability contract —
// the telemetry JSONL carries a parseable manifest, per-epoch records and
// a result with the model checksum, and the metrics dump exposes the
// train/step stage summary. scripts/check.sh runs it as the training
// observability leg of the gate.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"hotspot/internal/dataset"
	"hotspot/internal/layout"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trainsmoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("trainsmoke: hsd-train telemetry/metrics OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "hsd-trainsmoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(tmp) }()

	// A deliberately tiny suite: enough clips for a 25% validation split
	// and a couple of mini-batches, nowhere near enough to train well.
	// The smoke asserts observability plumbing, not model quality.
	style := layout.StyleICCAD()
	counts := layout.Counts{TrainHS: 8, TrainNHS: 24, TestHS: 1, TestNHS: 3}
	suite, err := layout.BuildSuite(style, counts, layout.BuildOptions{Seed: 11})
	if err != nil {
		return fmt.Errorf("building suite: %w", err)
	}
	suitePath := filepath.Join(tmp, "suite.gob")
	f, err := os.Create(suitePath)
	if err != nil {
		return err
	}
	err = dataset.FromSuite(suite, style).Save(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("saving suite: %w", err)
	}

	bin := filepath.Join(tmp, "hsd-train")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hsd-train")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hsd-train: %w", err)
	}

	telemetryPath := filepath.Join(tmp, "train.jsonl")
	metricsPath := filepath.Join(tmp, "metrics.txt")
	cmd := exec.Command(bin,
		"-data", suitePath,
		"-out", filepath.Join(tmp, "model.gob"),
		"-iters", "30", "-rounds", "1", "-workers", "2",
		"-telemetry", telemetryPath,
		"-metrics-out", metricsPath)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("hsd-train: %w", err)
	}

	if err := checkTelemetry(telemetryPath); err != nil {
		return err
	}
	return checkMetrics(metricsPath)
}

// checkTelemetry asserts the JSONL stream is one manifest, then at least
// one epoch record, then one result carrying the model checksum.
func checkTelemetry(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()

	var events []map[string]any
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("telemetry line %d not JSON: %q: %w", len(events)+1, line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) < 3 {
		return fmt.Errorf("telemetry has %d events, want manifest + epochs + result", len(events))
	}

	manifest := events[0]
	if manifest["event"] != "manifest" {
		return fmt.Errorf("first event is %v, want manifest", manifest["event"])
	}
	for _, key := range []string{"suite", "seed", "workers", "rounds", "learning_rate"} {
		if _, ok := manifest[key]; !ok {
			return fmt.Errorf("manifest missing %q: %v", key, manifest)
		}
	}

	epochs := 0
	for _, ev := range events[1 : len(events)-1] {
		if ev["event"] != "epoch" {
			return fmt.Errorf("middle event is %v, want epoch", ev["event"])
		}
		for _, key := range []string{"round", "iter", "loss", "val_accuracy", "val_false_alarms", "learning_rate", "step_p50_seconds"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("epoch record missing %q: %v", key, ev)
			}
		}
		epochs++
	}
	if epochs < 1 {
		return fmt.Errorf("no epoch records between manifest and result")
	}

	result := events[len(events)-1]
	if result["event"] != "result" {
		return fmt.Errorf("last event is %v, want result", result["event"])
	}
	sum, _ := result["model_fnv64a"].(string)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(sum) {
		return fmt.Errorf("result model_fnv64a %q is not a 16-hex-digit checksum", sum)
	}
	fmt.Printf("trainsmoke: telemetry OK (%d epoch records, model %s)\n", epochs, sum)
	return nil
}

// checkMetrics asserts the -metrics-out dump exposes the training and
// feature stage summaries in the registry's exposition format.
func checkMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	text := string(raw)
	for _, want := range []string{
		`hsd_stage_seconds_count{stage="train/step"}`,
		`hsd_stage_seconds{stage="train/step",q="p50"}`,
		`hsd_stage_seconds_count{stage="train/epoch"}`,
		`hsd_stage_seconds_count{stage="feature/dct"}`,
		`hsd_stage_seconds_count{stage="parallel/pass"}`,
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics dump missing %q in:\n%s", want, text)
		}
	}
	return nil
}
