// Command smoke is the hsd-serve end-to-end smoke: it builds the server
// binary, boots it on an ephemeral port with a random-weight network,
// exercises the public surface (predict, healthz, metrics, the debug
// surface gated by -pprof), then sends SIGINT and verifies a clean drain
// and zero exit. scripts/check.sh runs it as the serving leg of the gate.
//
// It is deliberately a Go program rather than shell: the checks (JSON
// shape, probability range, metrics counters, exit status) are exact,
// and it runs anywhere the toolchain does.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

const killAfter = 60 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("smoke: hsd-serve predict/healthz/metrics/pprof/shutdown OK")
}

// server is one booted hsd-serve process with its stdout scanner.
type server struct {
	cmd   *exec.Cmd
	out   *bufio.Scanner
	base  string
	guard *time.Timer
}

// boot starts the binary with the given extra flags and waits for the
// listen banner. The kill guard shoots the process after killAfter so a
// wedged server fails the gate instead of hanging it.
func boot(bin string, extra ...string) (*server, error) {
	args := append([]string{
		"-untrained", "-addr", "127.0.0.1:0",
		"-max-batch", "8", "-max-wait", "2ms", "-workers", "2",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	guard := time.AfterFunc(killAfter, func() { _ = cmd.Process.Kill() })
	out := bufio.NewScanner(stdout)
	addr := ""
	for out.Scan() {
		line := out.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "hsd-serve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		guard.Stop()
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, fmt.Errorf("server never printed its listen address (scan err: %v)", out.Err())
	}
	return &server{cmd: cmd, out: out, base: "http://" + addr, guard: guard}, nil
}

// kill hard-stops the server after a failed step.
func (s *server) kill() {
	s.guard.Stop()
	_ = s.cmd.Process.Kill()
	_ = s.cmd.Wait()
}

// shutdown sends SIGINT and verifies the drain banner and a zero exit.
func (s *server) shutdown() error {
	defer s.guard.Stop()
	if err := s.cmd.Process.Signal(os.Interrupt); err != nil {
		s.kill()
		return fmt.Errorf("interrupt: %w", err)
	}
	drained := false
	for s.out.Scan() {
		line := s.out.Text()
		fmt.Println(line)
		if strings.Contains(line, "drained, bye") {
			drained = true
		}
	}
	if err := s.cmd.Wait(); err != nil {
		return fmt.Errorf("server exit: %w", err)
	}
	if !drained {
		return fmt.Errorf("server exited without the drain banner")
	}
	return nil
}

func run() error {
	tmp, err := os.MkdirTemp("", "hsd-smoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(tmp) }()

	bin := filepath.Join(tmp, "hsd-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hsd-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hsd-serve: %w", err)
	}

	if err := publicSurface(bin); err != nil {
		return err
	}
	return debugSurface(bin)
}

// publicSurface boots without -pprof and checks predict, healthz, the
// metrics exposition (including the obs-registry series behind it), and
// that the debug endpoints are dark by default.
func publicSurface(bin string) error {
	srv, err := boot(bin)
	if err != nil {
		return err
	}
	fail := func(step string, err error) error {
		srv.kill()
		return fmt.Errorf("%s: %w", step, err)
	}

	// One vertical wire through a 1200 nm clip, plus a repeat of the same
	// clip so the metrics check can see a cache hit.
	body := []byte(`{"frame":{"x0":0,"y0":0,"x1":1200,"y1":1200},` +
		`"rects":[{"x0":500,"y0":0,"x1":560,"y1":1200}]}`)
	for i := 0; i < 2; i++ {
		prob, err := postPredict(srv.base, body)
		if err != nil {
			return fail("predict", err)
		}
		if prob < 0 || prob > 1 {
			return fail("predict", fmt.Errorf("probability %v outside [0,1]", prob))
		}
	}

	health, err := get(srv.base + "/healthz")
	if err != nil {
		return fail("healthz", err)
	}
	if !strings.Contains(health, "ok") {
		return fail("healthz", fmt.Errorf("body %q", health))
	}

	metrics, err := get(srv.base + "/metrics")
	if err != nil {
		return fail("metrics", err)
	}
	for _, want := range []string{
		`serve_requests_total{endpoint="predict",status="200"} 2`,
		"serve_cache_hits_total 1",
		"serve_cache_entries 1",
		"serve_cache_hit_rate",
		"serve_batch_size_total",
		`serve_stage_seconds_count{stage="extract"}`,
		`serve_stage_seconds_count{stage="queue"}`,
		`serve_stage_seconds{stage="infer",q="p99"}`,
	} {
		if !strings.Contains(metrics, want) {
			return fail("metrics", fmt.Errorf("missing %q in:\n%s", want, metrics))
		}
	}

	// Without -pprof the debug surface must not exist.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/obs"} {
		code, err := getStatus(srv.base + path)
		if err != nil {
			return fail("debug-off", err)
		}
		if code != http.StatusNotFound {
			return fail("debug-off", fmt.Errorf("%s: status %d, want 404", path, code))
		}
	}

	return srv.shutdown()
}

// debugSurface boots with -pprof and checks the profiling and registry
// dump endpoints actually serve.
func debugSurface(bin string) error {
	srv, err := boot(bin, "-pprof")
	if err != nil {
		return err
	}
	fail := func(step string, err error) error {
		srv.kill()
		return fmt.Errorf("%s: %w", step, err)
	}

	cmdline, err := get(srv.base + "/debug/pprof/cmdline")
	if err != nil {
		return fail("pprof-cmdline", err)
	}
	if len(cmdline) == 0 {
		return fail("pprof-cmdline", fmt.Errorf("empty body"))
	}

	obsDump, err := get(srv.base + "/debug/obs")
	if err != nil {
		return fail("debug-obs", err)
	}
	for _, want := range []string{"# server registry", "# process registry"} {
		if !strings.Contains(obsDump, want) {
			return fail("debug-obs", fmt.Errorf("missing %q in:\n%s", want, obsDump))
		}
	}

	return srv.shutdown()
}

func postPredict(base string, body []byte) (float64, error) {
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var pr struct {
		Prob    *float64 `json:"prob"`
		Hotspot *bool    `json:"hotspot"`
	}
	if err := json.Unmarshal(raw, &pr); err != nil {
		return 0, fmt.Errorf("bad JSON %q: %w", raw, err)
	}
	if pr.Prob == nil || pr.Hotspot == nil {
		return 0, fmt.Errorf("response %q missing prob/hotspot", raw)
	}
	return *pr.Prob, nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return string(raw), nil
}

// getStatus fetches a URL and returns only the status code.
func getStatus(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
