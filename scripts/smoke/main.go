// Command smoke is the hsd-serve end-to-end smoke: it builds the server
// binary, boots it on an ephemeral port with a random-weight network,
// exercises the public surface (predict, healthz, metrics), then sends
// SIGINT and verifies a clean drain and zero exit. scripts/check.sh runs
// it as the serving leg of the gate.
//
// It is deliberately a Go program rather than shell: the checks (JSON
// shape, probability range, metrics counters, exit status) are exact,
// and it runs anywhere the toolchain does.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

const killAfter = 60 * time.Second

func main() {
	log.SetFlags(0)
	log.SetPrefix("smoke: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("smoke: hsd-serve predict/healthz/metrics/shutdown OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "hsd-smoke-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(tmp) }()

	bin := filepath.Join(tmp, "hsd-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hsd-serve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build hsd-serve: %w", err)
	}

	cmd := exec.Command(bin,
		"-untrained", "-addr", "127.0.0.1:0",
		"-max-batch", "8", "-max-wait", "2ms", "-workers", "2")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	// Kill guard: if anything below wedges, the server is shot after
	// killAfter so the gate fails instead of hanging.
	guard := time.AfterFunc(killAfter, func() { _ = cmd.Process.Kill() })
	defer guard.Stop()

	out := bufio.NewScanner(stdout)
	addr := ""
	for out.Scan() {
		line := out.Text()
		fmt.Println(line)
		if rest, ok := strings.CutPrefix(line, "hsd-serve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("server never printed its listen address (scan err: %v)", out.Err())
	}
	base := "http://" + addr

	fail := func(step string, err error) error {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("%s: %w", step, err)
	}

	// One vertical wire through a 1200 nm clip, plus a repeat of the same
	// clip so the metrics check can see a cache hit.
	body := []byte(`{"frame":{"x0":0,"y0":0,"x1":1200,"y1":1200},` +
		`"rects":[{"x0":500,"y0":0,"x1":560,"y1":1200}]}`)
	for i := 0; i < 2; i++ {
		prob, err := postPredict(base, body)
		if err != nil {
			return fail("predict", err)
		}
		if prob < 0 || prob > 1 {
			return fail("predict", fmt.Errorf("probability %v outside [0,1]", prob))
		}
	}

	health, err := get(base + "/healthz")
	if err != nil {
		return fail("healthz", err)
	}
	if !strings.Contains(health, "ok") {
		return fail("healthz", fmt.Errorf("body %q", health))
	}

	metrics, err := get(base + "/metrics")
	if err != nil {
		return fail("metrics", err)
	}
	for _, want := range []string{
		`serve_requests_total{endpoint="predict",status="200"} 2`,
		"serve_cache_hits_total 1",
		"serve_batch_size_total",
		"serve_stage_seconds",
	} {
		if !strings.Contains(metrics, want) {
			return fail("metrics", fmt.Errorf("missing %q in:\n%s", want, metrics))
		}
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		return fail("interrupt", err)
	}
	drained := false
	for out.Scan() {
		line := out.Text()
		fmt.Println(line)
		if strings.Contains(line, "drained, bye") {
			drained = true
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("server exit: %w", err)
	}
	if !drained {
		return fmt.Errorf("server exited without the drain banner")
	}
	return nil
}

func postPredict(base string, body []byte) (float64, error) {
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var pr struct {
		Prob    *float64 `json:"prob"`
		Hotspot *bool    `json:"hotspot"`
	}
	if err := json.Unmarshal(raw, &pr); err != nil {
		return 0, fmt.Errorf("bad JSON %q: %w", raw, err)
	}
	if pr.Prob == nil || pr.Hotspot == nil {
		return 0, fmt.Errorf("response %q missing prob/hotspot", raw)
	}
	return *pr.Prob, nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return string(raw), nil
}
