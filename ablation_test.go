package hotspot_test

import (
	"testing"

	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/experiments"
	"hotspot/internal/train"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// literal double weight update of the paper's Algorithm 1 listing,
// dihedral augmentation, the feature tensor depth k, and class-balanced
// minibatch sampling. Each reports the resulting test recall/FA as
// benchmark metrics so `go test -bench Ablation` doubles as the ablation
// table.

// ablationRun trains the detector on the cached Industry3 suite (the
// hardest benchmark, and one that keeps enough hotspots at bench scale to
// be informative — the scaled ICCAD suite has too few) with the given
// config mutation and reports test metrics.
func ablationRun(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	opts := benchOpts()
	opts.Iters = 200 // ablations compare configurations, not budgets
	ds, err := experiments.LoadSuite("Industry3", opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := experiments.DetectorConfig(opts)
		mutate(&cfg)
		det, err := core.NewDetector(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := det.Train(ds.Train, ds.Core()); err != nil {
			b.Fatal(err)
		}
		testT, err := dataset.TensorSamples(ds.Test, ds.Core(), cfg.Feature, 0)
		if err != nil {
			b.Fatal(err)
		}
		m, err := det.EvaluateTensors(testT, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*m.Recall, "recall-%")
		b.ReportMetric(float64(m.FalseAlarms), "FA")
	}
}

func BenchmarkAblationBaselineConfig(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) {})
}

func BenchmarkAblationDoubleUpdate(b *testing.B) {
	// The paper's Algorithm 1 listing updates W twice per iteration (lines
	// 10 and 14); the default treats that as a typesetting artifact.
	ablationRun(b, func(cfg *core.Config) {
		cfg.Biased.Initial.DoubleUpdate = true
		cfg.Biased.FineTune.DoubleUpdate = true
	})
}

func BenchmarkAblationNoAugment(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) { cfg.AugmentVariants = 1 })
}

func BenchmarkAblationNoBalance(b *testing.B) {
	ablationRun(b, func(cfg *core.Config) {
		cfg.Biased.Initial.BalanceClasses = false
		cfg.Biased.FineTune.BalanceClasses = false
	})
}

func BenchmarkAblationNoBias(b *testing.B) {
	// Single round: plain MGD with hard targets, no biased fine-tuning.
	ablationRun(b, func(cfg *core.Config) { cfg.Biased.Rounds = 1 })
}

func BenchmarkAblationK8(b *testing.B) {
	// Shallower feature tensor: k = 8 of the paper's 32 coefficients.
	ablationRun(b, func(cfg *core.Config) {
		cfg.Feature.K = 8
		cfg.Net.InChannels = 8
	})
}

// BenchmarkAblationSGDvsMGDStep compares per-sample step cost (the
// mechanical side of Figure 3) without training to convergence.
func BenchmarkAblationSGDvsMGDStep(b *testing.B) {
	opts := benchOpts()
	ds, err := experiments.LoadSuite("Industry3", opts)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.DetectorConfig(opts)
	trainT, _, err := experiments.TensorSets(ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	trainSet, valSet, err := train.Split(trainT, 0.25, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		det, err := core.NewDetector(cfg)
		if err != nil {
			b.Fatal(err)
		}
		mcfg := cfg.Biased.Initial
		mcfg.MaxIters = 50
		mcfg.ValEvery = 0
		if _, err := train.MGD(det.Network(), trainSet, valSet, mcfg); err != nil {
			b.Fatal(err)
		}
	}
}
