module hotspot

go 1.22

// Intentionally dependency-free. golang.org/x/tools — the usual driver
// for cmd/hsd-vet's analyzers — is unavailable in the offline build
// environment, so internal/lint implements the go/analysis and
// analysistest contracts on the standard library (go/ast + go/types over
// `go list -export` data). No requirements means no go.sum to keep in
// hygiene; if x/tools lands in the module cache, pin it here and port the
// analyzers to the upstream driver.
