package train

import (
	"fmt"
	"math"
	"sort"

	"hotspot/internal/nn"
)

// ROCPoint is one operating point of the detector: the boundary shift that
// produces it, plus the resulting true/false positive rates.
type ROCPoint struct {
	Shift float64
	TPR   float64 // recall
	FPR   float64 // false alarms / non-hotspots
	FA    int
}

// ROC scores every sample once and sweeps the decision boundary across the
// observed probabilities, returning operating points from the strictest to
// the loosest threshold. The curve underlies the paper's Figure 4 style
// trade-off analysis: each point is the (accuracy, false alarm) pair a
// boundary shift would produce.
func ROC(net *nn.Network, samples []Sample) ([]ROCPoint, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("train: ROC of empty sample set")
	}
	type scored struct {
		p   float64
		hot bool
	}
	all := make([]scored, len(samples))
	nPos, nNeg := 0, 0
	for i, s := range samples {
		p, err := PredictProb(net, s.X)
		if err != nil {
			return nil, err
		}
		all[i] = scored{p: p, hot: s.Hotspot}
		if s.Hotspot {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil, fmt.Errorf("train: ROC needs both classes present (%d hotspot, %d not)", nPos, nNeg)
	}
	// Sort by descending probability; walk thresholds between samples.
	sort.Slice(all, func(a, b int) bool { return all[a].p > all[b].p })
	points := make([]ROCPoint, 0, len(all)+1)
	tp, fp := 0, 0
	points = append(points, ROCPoint{Shift: 0.5 - all[0].p, TPR: 0, FPR: 0})
	for i, s := range all {
		if s.hot {
			tp++
		} else {
			fp++
		}
		// Emit a point only when the next probability differs (ties share
		// a threshold). Bit-level identity is the intended tie test:
		// equal scores come from identical forward passes.
		if i+1 < len(all) && math.Float64bits(all[i+1].p) == math.Float64bits(s.p) {
			continue
		}
		points = append(points, ROCPoint{
			Shift: 0.5 - s.p,
			TPR:   float64(tp) / float64(nPos),
			FPR:   float64(fp) / float64(nNeg),
			FA:    fp,
		})
	}
	return points, nil
}

// AUC integrates an ROC curve with the trapezoid rule. Points must come
// from ROC (sorted by increasing FPR).
func AUC(points []ROCPoint) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("train: AUC needs at least 2 ROC points")
	}
	area := 0.0
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		if dx < 0 {
			return 0, fmt.Errorf("train: ROC points not sorted by FPR")
		}
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area, nil
}
