package train

import (
	"testing"

	"hotspot/internal/obs/trace"
)

// TestMGDInstrumentationParity is the observability acceptance test: an
// MGD run with OnEpoch telemetry attached produces weights and history
// bit-identical to a plain run. Instrumentation (stage timers, epoch
// events) must be a pure observer of the training loop.
func TestMGDInstrumentationParity(t *testing.T) {
	samples := imbalancedToy(80, 41)
	trainSet, valSet, err := Split(samples, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.MaxIters = 40
	cfg.ValEvery = 10
	cfg.Workers = 2

	plain := dropoutNet(t, 43)
	histPlain, err := MGD(plain, trainSet, valSet, cfg)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := dropoutNet(t, 43)
	var events []EpochEvent
	cfgI := cfg
	cfgI.OnEpoch = func(e EpochEvent) { events = append(events, e) }
	histInst, err := MGD(instrumented, trainSet, valSet, cfgI)
	if err != nil {
		t.Fatal(err)
	}

	pp, ip := plain.Params(), instrumented.Params()
	for i := range pp {
		pd, id := pp[i].W.Data(), ip[i].W.Data()
		for j := range pd {
			if pd[j] != id[j] {
				t.Fatalf("param %s[%d]: plain %v, instrumented %v — telemetry changed the model",
					pp[i].Name, j, pd[j], id[j])
			}
		}
	}

	if len(events) != len(histInst) {
		t.Fatalf("got %d epoch events for %d checkpoints", len(events), len(histInst))
	}
	if len(histPlain) != len(histInst) {
		t.Fatalf("history lengths differ: plain %d, instrumented %d", len(histPlain), len(histInst))
	}
	for i := range histInst {
		if histPlain[i].ValAccuracy != histInst[i].ValAccuracy ||
			histPlain[i].TrainLoss != histInst[i].TrainLoss ||
			histPlain[i].ValFA != histInst[i].ValFA {
			t.Fatalf("checkpoint %d differs: plain %+v, instrumented %+v",
				i, histPlain[i], histInst[i])
		}
		e := events[i]
		if e.Iter != histInst[i].Iter || e.ValAccuracy != histInst[i].ValAccuracy {
			t.Fatalf("event %d does not mirror its checkpoint: %+v vs %+v", i, e, histInst[i])
		}
		if e.LearningRate <= 0 {
			t.Fatalf("event %d carries no learning rate: %+v", i, e)
		}
		if e.StepP50 < 0 || e.StepP99 < e.StepP50 {
			t.Fatalf("event %d step latency quantiles inconsistent: p50=%v p99=%v", i, e.StepP50, e.StepP99)
		}
	}
}

// TestBiasedLearningOnEpoch checks the round/ε tagging of the biased-loop
// telemetry wrapper.
func TestBiasedLearningOnEpoch(t *testing.T) {
	samples := imbalancedToy(60, 47)
	trainSet, valSet, err := Split(samples, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	inner := quickCfg()
	inner.MaxIters = 20
	inner.ValEvery = 10
	cfg := BiasedConfig{
		InitialEps: 0,
		DeltaEps:   0.1,
		Rounds:     2,
		Initial:    inner,
		FineTune:   inner,
	}
	type tagged struct {
		round int
		eps   float64
	}
	var got []tagged
	cfg.OnEpoch = func(round int, eps float64, e EpochEvent) {
		got = append(got, tagged{round: round, eps: eps})
		if e.Iter == 0 {
			t.Errorf("round %d event has zero iter", round)
		}
	}
	net := dropoutNet(t, 53)
	if _, err := BiasedLearning(net, trainSet, valSet, cfg); err != nil {
		t.Fatal(err)
	}
	// 2 rounds × (20 iters / ValEvery 10) = 4 events: rounds 0,0,1,1.
	want := []tagged{{0, 0}, {0, 0}, {1, 0.1}, {1, 0.1}}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d tagged %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMGDTraceParity extends the instrumentation-parity contract to the
// epoch tracer: a traced MGD run produces weights and history
// bit-identical to a dark run, and records one train/epoch trace per
// validation checkpoint with the checkpoint's telemetry attributes.
func TestMGDTraceParity(t *testing.T) {
	samples := imbalancedToy(80, 41)
	trainSet, valSet, err := Split(samples, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.MaxIters = 40
	cfg.ValEvery = 10
	cfg.Workers = 2

	dark := dropoutNet(t, 43)
	histDark, err := MGD(dark, trainSet, valSet, cfg)
	if err != nil {
		t.Fatal(err)
	}

	traced := dropoutNet(t, 43)
	cfgT := cfg
	cfgT.Tracer = trace.New(trace.Config{Seed: 13})
	histTraced, err := MGD(traced, trainSet, valSet, cfgT)
	if err != nil {
		t.Fatal(err)
	}

	dp, tp := dark.Params(), traced.Params()
	for i := range dp {
		dd, td := dp[i].W.Data(), tp[i].W.Data()
		for j := range dd {
			if dd[j] != td[j] {
				t.Fatalf("param %s[%d]: dark %v, traced %v — tracing changed the model",
					dp[i].Name, j, dd[j], td[j])
			}
		}
	}
	if len(histDark) != len(histTraced) {
		t.Fatalf("history lengths differ: dark %d, traced %d", len(histDark), len(histTraced))
	}

	var epochs []trace.TraceJSON
	for _, tr := range cfgT.Tracer.Snapshot() {
		if tr.Name == "train/epoch" {
			epochs = append(epochs, tr)
		}
	}
	if len(epochs) != len(histTraced) {
		t.Fatalf("recorded %d epoch traces for %d checkpoints", len(epochs), len(histTraced))
	}
	for i, tr := range epochs {
		cp := histTraced[i]
		if tr.Attrs["iter"] != int64(cp.Iter) ||
			tr.Attrs["loss"] != cp.TrainLoss ||
			tr.Attrs["val_accuracy"] != cp.ValAccuracy {
			t.Fatalf("epoch trace %d attrs %v do not mirror checkpoint %+v", i, tr.Attrs, cp)
		}
		if lrAttr, _ := tr.Attrs["learning_rate"].(float64); lrAttr <= 0 {
			t.Fatalf("epoch trace %d carries no learning rate: %v", i, tr.Attrs)
		}
		found := false
		for _, sp := range tr.Spans {
			if sp.Name == "validate" {
				found = true
			}
		}
		if !found {
			t.Fatalf("epoch trace %d missing validate span: %+v", i, tr.Spans)
		}
	}
}
