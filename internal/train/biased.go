package train

import (
	"fmt"

	"hotspot/internal/nn"
)

// BiasedConfig parameterizes Algorithm 2 (biased learning).
type BiasedConfig struct {
	// InitialEps is the starting bias ε (0 in the paper).
	InitialEps float64
	// DeltaEps is δε, the per-round bias increment (0.1 in the paper).
	DeltaEps float64
	// Rounds is t, the number of biased-learning rounds including the
	// initial ε round (4 in the paper: ε = 0, 0.1, 0.2, 0.3).
	Rounds int
	// Initial is the MGD configuration of the first (from-scratch) round.
	Initial MGDConfig
	// FineTune is the MGD configuration of subsequent rounds; fine-tuning
	// is shorter and typically reuses a reduced learning rate.
	FineTune MGDConfig
	// KeepBest, when true, returns the round whose validation recall is
	// highest at no worse validation false-alarm growth than the paper's
	// trade-off (a simple guard: recall improvements are accepted
	// unconditionally, matching Theorem 1's direction). When false the
	// final round's model is returned, exactly as Algorithm 2 lists.
	KeepBest bool
	// OnEpoch, when set, receives every round's per-epoch telemetry tagged
	// with the round index and its bias ε. Observation only, like
	// MGDConfig.OnEpoch (which this overrides for the inner MGD runs).
	OnEpoch func(round int, eps float64, e EpochEvent)
}

// Validate checks the configuration.
func (c BiasedConfig) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("train: biased learning needs at least one round, got %d", c.Rounds)
	}
	if c.InitialEps < 0 || c.DeltaEps < 0 {
		return fmt.Errorf("train: negative bias parameters")
	}
	final := c.InitialEps + c.DeltaEps*float64(c.Rounds-1)
	if final >= 0.5 {
		return fmt.Errorf("train: final ε=%v reaches 0.5; the non-hotspot target would cross the boundary", final)
	}
	if err := c.Initial.Validate(); err != nil {
		return fmt.Errorf("train: initial round: %w", err)
	}
	if c.Rounds > 1 {
		if err := c.FineTune.Validate(); err != nil {
			return fmt.Errorf("train: fine-tune rounds: %w", err)
		}
	}
	return nil
}

// RoundResult records one biased-learning round.
type RoundResult struct {
	Eps     float64
	History History
	Val     Metrics
}

// BiasedLearning runs Algorithm 2: train with ε = InitialEps, then
// repeatedly fine-tune the same network with ε increased by DeltaEps. The
// network is modified in place; per-round validation metrics are returned.
func BiasedLearning(net *nn.Network, trainSet, valSet []Sample, cfg BiasedConfig) ([]RoundResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]RoundResult, 0, cfg.Rounds)
	eps := cfg.InitialEps
	var best *nn.Network
	bestRecall := -1.0
	for round := 0; round < cfg.Rounds; round++ {
		mcfg := cfg.Initial
		if round > 0 {
			mcfg = cfg.FineTune
			mcfg.Seed = cfg.FineTune.Seed + int64(round)
		}
		mcfg.Eps = eps
		if cfg.OnEpoch != nil {
			round, eps := round, eps
			mcfg.OnEpoch = func(e EpochEvent) { cfg.OnEpoch(round, eps, e) }
		}
		hist, err := MGD(net, trainSet, valSet, mcfg)
		if err != nil {
			return nil, fmt.Errorf("train: biased round %d (ε=%.2f): %w", round, eps, err)
		}
		var val Metrics
		if len(valSet) > 0 {
			val, err = EvalSet(net, valSet, 0)
			if err != nil {
				return nil, err
			}
		}
		results = append(results, RoundResult{Eps: eps, History: hist, Val: val})
		if cfg.KeepBest && val.Recall > bestRecall {
			bestRecall = val.Recall
			best, err = net.Clone()
			if err != nil {
				return nil, err
			}
		}
		eps += cfg.DeltaEps
	}
	if cfg.KeepBest && best != nil {
		if err := copyWeights(net, best); err != nil {
			return nil, err
		}
	}
	return results, nil
}

// MatchShiftToRecall finds the smallest boundary shift λ (Equation (11))
// that lifts the network's recall on samples to at least targetRecall,
// searching the provided grid in order. It returns the shift and the
// metrics at that shift; if no grid point reaches the target, the last grid
// point's results are returned with ok=false.
func MatchShiftToRecall(net *nn.Network, samples []Sample, targetRecall float64, grid []float64) (shift float64, m Metrics, ok bool, err error) {
	if len(grid) == 0 {
		return 0, Metrics{}, false, fmt.Errorf("train: empty shift grid")
	}
	// Score probabilities once; sweep thresholds over the cached scores.
	probs := make([]float64, len(samples))
	for i, s := range samples {
		p, perr := PredictProb(net, s.X)
		if perr != nil {
			return 0, Metrics{}, false, perr
		}
		probs[i] = p
	}
	for _, g := range grid {
		m = metricsAtShift(probs, samples, g)
		if m.Recall >= targetRecall {
			return g, m, true, nil
		}
	}
	return grid[len(grid)-1], m, false, nil
}

func metricsAtShift(probs []float64, samples []Sample, shift float64) Metrics {
	var m Metrics
	for i, s := range samples {
		pred := Decide(probs[i], shift)
		switch {
		case pred && s.Hotspot:
			m.TP++
		case pred && !s.Hotspot:
			m.FP++
		case !pred && !s.Hotspot:
			m.TN++
		default:
			m.FN++
		}
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	m.FalseAlarms = m.FP
	if len(samples) > 0 {
		m.Accuracy = float64(m.TP+m.TN) / float64(len(samples))
	}
	return m
}
