package train

import (
	"fmt"
	"io"

	"hotspot/internal/nn"
)

// LoadWarmStart reads a checkpoint written by nn.Save (the versioned
// HSDNET format) and validates the restored network against the expected
// input shape, returning a network ready to fine-tune with MGD or
// BiasedLearning — both train in place, so a loaded network warm-starts
// for free. It is the single warm-start entry point shared by
// core.LoadDetector, `hsd-train -init` and the active-learning loop; the
// shape check catches the classic mistake of resuming a checkpoint under
// a different feature geometry before any training spends time.
func LoadWarmStart(r io.Reader, inShape []int) (*nn.Network, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, err
	}
	if _, err := net.Summary(inShape); err != nil {
		return nil, fmt.Errorf("train: checkpoint incompatible with input shape %v: %w", inShape, err)
	}
	return net, nil
}
