package train

import (
	"math"
	"math/rand"
	"testing"

	"hotspot/internal/nn"
	"hotspot/internal/tensor"
)

// dropoutNet is a toy paper net WITH dropout active, so the parallel/serial
// parity tests exercise the per-sample mask reseeding, not just the
// deterministic layers.
func dropoutNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.NewPaperNet(nn.PaperNetConfig{
		InChannels: 2, SpatialSize: 4, Conv1Maps: 4, Conv2Maps: 4,
		FC1: 8, DropoutRate: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// imbalancedToy builds a set with ~25% positives so balanced sampling has
// distinct classes to draw from.
func imbalancedToy(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		x := tensor.New(2, 4, 4)
		hot := i%4 == 0
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64() * 0.3
		}
		if hot {
			for j := 0; j < 16; j++ {
				x.Data()[j] += 1
			}
		}
		out[i] = Sample{X: x, Hotspot: hot}
	}
	return out
}

// TestMGDParallelMatchesSerial is the headline determinism regression: four
// gradient workers must produce weights identical to one worker for the
// same seed, in both sampling modes. Equality is exact — the index-ordered
// reduction reproduces the serial accumulation bit for bit.
func TestMGDParallelMatchesSerial(t *testing.T) {
	for _, balance := range []bool{false, true} {
		name := "uniform"
		if balance {
			name = "balanced"
		}
		t.Run(name, func(t *testing.T) {
			samples := imbalancedToy(80, 17)
			trainSet, valSet, err := Split(samples, 0.25, 5)
			if err != nil {
				t.Fatal(err)
			}
			cfg := quickCfg()
			cfg.MaxIters = 40
			cfg.ValEvery = 10
			cfg.BalanceClasses = balance

			serial := dropoutNet(t, 23)
			cfgS := cfg
			cfgS.Workers = 1
			histS, err := MGD(serial, trainSet, valSet, cfgS)
			if err != nil {
				t.Fatal(err)
			}

			par := dropoutNet(t, 23)
			cfgP := cfg
			cfgP.Workers = 4
			histP, err := MGD(par, trainSet, valSet, cfgP)
			if err != nil {
				t.Fatal(err)
			}

			sp, pp := serial.Params(), par.Params()
			for i := range sp {
				sd, pd := sp[i].W.Data(), pp[i].W.Data()
				for j := range sd {
					if diff := math.Abs(sd[j] - pd[j]); diff > 1e-12 {
						t.Fatalf("%s: param %s[%d] diverged by %g (serial %v, parallel %v)",
							name, sp[i].Name, j, diff, sd[j], pd[j])
					}
				}
			}
			if len(histS) != len(histP) {
				t.Fatalf("history lengths differ: %d vs %d", len(histS), len(histP))
			}
			for i := range histS {
				if histS[i].ValAccuracy != histP[i].ValAccuracy ||
					histS[i].TrainLoss != histP[i].TrainLoss {
					t.Fatalf("checkpoint %d differs: serial %+v, parallel %+v",
						i, histS[i], histP[i])
				}
			}
		})
	}
}

// TestMGDWorkerCountInvariance spot-checks a few more worker counts,
// including more workers than batch positions.
func TestMGDWorkerCountInvariance(t *testing.T) {
	samples := imbalancedToy(40, 19)
	trainSet, _, err := Split(samples, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.MaxIters = 15
	cfg.ValEvery = 0
	cfg.BatchSize = 4

	ref := dropoutNet(t, 29)
	cfgR := cfg
	cfgR.Workers = 1
	if _, err := MGD(ref, trainSet, nil, cfgR); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		net := dropoutNet(t, 29)
		c := cfg
		c.Workers = workers
		if _, err := MGD(net, trainSet, nil, c); err != nil {
			t.Fatal(err)
		}
		rp, np := ref.Params(), net.Params()
		for i := range rp {
			rd, nd := rp[i].W.Data(), np[i].W.Data()
			for j := range rd {
				if rd[j] != nd[j] {
					t.Fatalf("workers=%d: param %s[%d] differs", workers, rp[i].Name, j)
				}
			}
		}
	}
}

// TestEvaluatorMatchesEvalSet: parallel inference must report the exact
// metrics of the serial path, and stay correct after the wrapped network's
// weights change (replica re-sync).
func TestEvaluatorMatchesEvalSet(t *testing.T) {
	samples := imbalancedToy(60, 31)
	net := dropoutNet(t, 37)
	ev, err := NewEvaluator(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		for _, shift := range []float64{0, 0.1} {
			want, err := EvalSet(net, samples, shift)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.EvalSet(samples, shift)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("%s shift=%v: evaluator %+v, serial %+v", stage, shift, got, want)
			}
		}
	}
	check("initial")
	// Perturb weights through the wrapped net; replicas must follow.
	for _, p := range net.Params() {
		for j := range p.W.Data() {
			p.W.Data()[j] += 0.05
		}
	}
	check("after weight change")

	probs, err := ev.PredictProbs([]*tensor.Tensor{samples[0].X, samples[1].X, samples[2].X})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		want, err := PredictProb(net, samples[i].X)
		if err != nil {
			t.Fatal(err)
		}
		if probs[i] != want {
			t.Fatalf("PredictProbs[%d] = %v, serial %v", i, probs[i], want)
		}
	}
}
