package train

import (
	"testing"
)

func TestROCEndpointsAndMonotonicity(t *testing.T) {
	samples := toyProblem(200, 31)
	net := toyNet(t, 91)
	trainSet, valSet, _ := Split(samples, 0.25, 7)
	cfg := quickCfg()
	if _, err := MGD(net, trainSet, valSet, cfg); err != nil {
		t.Fatal(err)
	}
	points, err := ROC(net, valSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d ROC points", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Fatalf("ROC must start at origin, got (%v, %v)", first.FPR, first.TPR)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Fatalf("ROC must end at (1,1), got (%v, %v)", last.FPR, last.TPR)
	}
	for i := 1; i < len(points); i++ {
		if points[i].TPR < points[i-1].TPR || points[i].FPR < points[i-1].FPR {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestAUCOfTrainedModelBeatsChance(t *testing.T) {
	samples := toyProblem(200, 32)
	net := toyNet(t, 92)
	trainSet, valSet, _ := Split(samples, 0.25, 8)
	if _, err := MGD(net, trainSet, valSet, quickCfg()); err != nil {
		t.Fatal(err)
	}
	points, err := ROC(net, valSet)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(points)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.85 {
		t.Fatalf("trained AUC %.2f, want >= 0.85", auc)
	}
	// Untrained model: AUC near 0.5.
	fresh := toyNet(t, 93)
	points, err = ROC(fresh, valSet)
	if err != nil {
		t.Fatal(err)
	}
	auc0, err := AUC(points)
	if err != nil {
		t.Fatal(err)
	}
	if auc0 < 0.2 || auc0 > 0.8 {
		t.Fatalf("untrained AUC %.2f suspiciously far from chance", auc0)
	}
}

func TestROCErrors(t *testing.T) {
	net := toyNet(t, 94)
	if _, err := ROC(net, nil); err == nil {
		t.Fatal("expected empty error")
	}
	oneClass := toyProblem(20, 33)
	for i := range oneClass {
		oneClass[i].Hotspot = true
	}
	if _, err := ROC(net, oneClass); err == nil {
		t.Fatal("expected one-class error")
	}
	if _, err := AUC(nil); err == nil {
		t.Fatal("expected too-few-points error")
	}
	if _, err := AUC([]ROCPoint{{FPR: 1}, {FPR: 0}}); err == nil {
		t.Fatal("expected unsorted error")
	}
}
