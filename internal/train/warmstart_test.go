package train

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"hotspot/internal/nn"
)

// TestLoadWarmStart: a round-tripped checkpoint loads bit-identically
// when the input shape matches the saved architecture.
func TestLoadWarmStart(t *testing.T) {
	cfg := nn.DefaultPaperNetConfig()
	net, err := nn.NewPaperNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadWarmStart(&buf, []int{cfg.InChannels, cfg.SpatialSize, cfg.SpatialSize})
	if err != nil {
		t.Fatal(err)
	}
	want, got := net.Params(), loaded.Params()
	if len(want) != len(got) {
		t.Fatalf("param count %d vs %d", len(got), len(want))
	}
	for i := range want {
		wd, gd := want[i].W.Data(), got[i].W.Data()
		for j := range wd {
			if math.Float64bits(wd[j]) != math.Float64bits(gd[j]) {
				t.Fatalf("param %d element %d differs: %v vs %v", i, j, gd[j], wd[j])
			}
		}
	}
}

// TestLoadWarmStartShapeMismatch: resuming under a different feature
// geometry fails up front, before any training time is spent.
func TestLoadWarmStartShapeMismatch(t *testing.T) {
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWarmStart(&buf, []int{4, 6, 6}); err == nil {
		t.Fatal("shape-mismatched checkpoint loaded without error")
	} else if !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestLoadWarmStartGarbage: bytes that are not a checkpoint are rejected
// by the versioned header check.
func TestLoadWarmStartGarbage(t *testing.T) {
	if _, err := LoadWarmStart(strings.NewReader("not a checkpoint"), []int{32, 12, 12}); err == nil {
		t.Fatal("garbage input loaded without error")
	}
}
