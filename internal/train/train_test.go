package train

import (
	"math"
	"math/rand"
	"testing"

	"hotspot/internal/nn"
	"hotspot/internal/tensor"
)

// toyProblem builds a small learnable dataset: the label is whether the
// mean of channel 0 exceeds zero — linearly separable from the DC channel,
// like real density-driven hotspot structure.
func toyProblem(n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, n)
	for i := range out {
		x := tensor.New(2, 4, 4)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		mean := 0.0
		for j := 0; j < 16; j++ {
			mean += x.Data()[j]
		}
		out[i] = Sample{X: x, Hotspot: mean > 0}
	}
	return out
}

func toyNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.NewPaperNet(nn.PaperNetConfig{
		InChannels: 2, SpatialSize: 4, Conv1Maps: 4, Conv2Maps: 4,
		FC1: 8, DropoutRate: 0, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func quickCfg() MGDConfig {
	return MGDConfig{
		LearningRate: 0.05,
		DecayFactor:  0.5,
		DecayStep:    200,
		BatchSize:    8,
		MaxIters:     250,
		ValEvery:     50,
		Patience:     0,
		Seed:         3,
	}
}

func TestSplit(t *testing.T) {
	samples := toyProblem(100, 1)
	tr, val, err := Split(samples, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(val) != 25 || len(tr) != 75 {
		t.Fatalf("split sizes %d/%d", len(tr), len(val))
	}
	// Deterministic.
	tr2, val2, _ := Split(samples, 0.25, 7)
	for i := range val {
		if val[i].X != val2[i].X {
			t.Fatal("split not deterministic")
		}
	}
	_ = tr2
	// Union covers all samples exactly once.
	seen := map[*tensor.Tensor]bool{}
	for _, s := range append(append([]Sample{}, tr...), val...) {
		if seen[s.X] {
			t.Fatal("duplicate sample in split")
		}
		seen[s.X] = true
	}
	if len(seen) != 100 {
		t.Fatalf("split lost samples: %d", len(seen))
	}
}

func TestSplitErrors(t *testing.T) {
	if _, _, err := Split(nil, 0.25, 1); err == nil {
		t.Fatal("expected empty error")
	}
	if _, _, err := Split(toyProblem(10, 1), 1.0, 1); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, _, err := Split(toyProblem(10, 1), -0.1, 1); err == nil {
		t.Fatal("expected negative fraction error")
	}
}

func TestTargets(t *testing.T) {
	yn, yh, err := Targets(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if yn.At(0) != 0.8 || yn.At(1) != 0.2 {
		t.Fatalf("non-hotspot target %v", yn.Data())
	}
	if yh.At(0) != 0 || yh.At(1) != 1 {
		t.Fatalf("hotspot target %v", yh.Data())
	}
	if _, _, err := Targets(0.5); err == nil {
		t.Fatal("expected ε=0.5 error")
	}
	if _, _, err := Targets(-0.1); err == nil {
		t.Fatal("expected negative ε error")
	}
}

func TestMGDConfigValidation(t *testing.T) {
	mutations := []func(*MGDConfig){
		func(c *MGDConfig) { c.LearningRate = 0 },
		func(c *MGDConfig) { c.DecayFactor = 0 },
		func(c *MGDConfig) { c.DecayFactor = 1.5 },
		func(c *MGDConfig) { c.DecayStep = 0 },
		func(c *MGDConfig) { c.BatchSize = 0 },
		func(c *MGDConfig) { c.MaxIters = 0 },
		func(c *MGDConfig) { c.Eps = 0.5 },
		func(c *MGDConfig) { c.Patience = -1 },
	}
	for i, m := range mutations {
		cfg := quickCfg()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestMGDLearnsToyProblem(t *testing.T) {
	samples := toyProblem(300, 2)
	trainSet, valSet, err := Split(samples, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	net := toyNet(t, 11)
	hist, err := MGD(net, trainSet, valSet, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("no validation history")
	}
	m, err := EvalSet(net, valSet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.85 {
		t.Fatalf("toy problem val accuracy %.2f, want >= 0.85", m.Accuracy)
	}
}

func TestMGDDeterministic(t *testing.T) {
	samples := toyProblem(60, 3)
	trainSet, valSet, _ := Split(samples, 0.25, 1)
	cfg := quickCfg()
	cfg.MaxIters = 30
	cfg.ValEvery = 10
	a := toyNet(t, 21)
	b := toyNet(t, 21)
	if _, err := MGD(a, trainSet, valSet, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := MGD(b, trainSet, valSet, cfg); err != nil {
		t.Fatal(err)
	}
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].W.Data() {
			if ap[i].W.Data()[j] != bp[i].W.Data()[j] {
				t.Fatal("MGD not deterministic under identical seeds")
			}
		}
	}
}

func TestMGDErrors(t *testing.T) {
	net := toyNet(t, 1)
	cfg := quickCfg()
	if _, err := MGD(net, nil, nil, cfg); err == nil {
		t.Fatal("expected empty-train error")
	}
	samples := toyProblem(10, 1)
	if _, err := MGD(net, samples, nil, cfg); err == nil {
		t.Fatal("expected empty-val error when validation enabled")
	}
	bal := cfg
	bal.BalanceClasses = true
	oneClass := make([]Sample, 4)
	for i := range oneClass {
		oneClass[i] = Sample{X: tensor.New(2, 4, 4), Hotspot: true}
	}
	if _, err := MGD(net, oneClass, oneClass, bal); err == nil {
		t.Fatal("expected one-class balance error")
	}
}

func TestMGDPatienceStopsEarly(t *testing.T) {
	samples := toyProblem(60, 4)
	trainSet, valSet, _ := Split(samples, 0.25, 2)
	net := toyNet(t, 31)
	cfg := quickCfg()
	cfg.LearningRate = 1e-12 // nothing improves
	cfg.MaxIters = 1000
	cfg.ValEvery = 10
	cfg.Patience = 2
	hist, err := MGD(net, trainSet, valSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) >= 100 {
		t.Fatalf("patience did not stop training (%d checkpoints)", len(hist))
	}
}

func TestMGDBalancedSampling(t *testing.T) {
	// Heavily imbalanced toy set still trains with balancing on.
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 200; i++ {
		x := tensor.New(2, 4, 4)
		hot := i%20 == 0 // 5% positives
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64() * 0.1
		}
		if hot {
			for j := 0; j < 16; j++ {
				x.Data()[j] += 1
			}
		}
		samples = append(samples, Sample{X: x, Hotspot: hot})
	}
	trainSet, valSet, _ := Split(samples, 0.25, 3)
	net := toyNet(t, 41)
	cfg := quickCfg()
	cfg.BalanceClasses = true
	if _, err := MGD(net, trainSet, valSet, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := EvalSet(net, valSet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Recall < 0.9 {
		t.Fatalf("balanced training recall %.2f, want >= 0.9", m.Recall)
	}
}

func TestEvalSetConfusionConsistency(t *testing.T) {
	samples := toyProblem(80, 6)
	net := toyNet(t, 51)
	m, err := EvalSet(net, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP+m.FP+m.TN+m.FN != len(samples) {
		t.Fatal("confusion counts do not sum to N")
	}
	if m.FalseAlarms != m.FP {
		t.Fatal("FalseAlarms != FP")
	}
	wantAcc := float64(m.TP+m.TN) / float64(len(samples))
	if math.Abs(m.Accuracy-wantAcc) > 1e-12 {
		t.Fatal("accuracy inconsistent with confusion matrix")
	}
	if _, err := EvalSet(net, nil, 0); err == nil {
		t.Fatal("expected empty-set error")
	}
}

func TestDecide(t *testing.T) {
	if Decide(0.6, 0) != true || Decide(0.4, 0) != false {
		t.Fatal("standard boundary wrong")
	}
	if Decide(0.4, 0.2) != true {
		t.Fatal("shifted boundary should accept 0.4 at shift 0.2")
	}
	if Decide(0.5, 0) {
		t.Fatal("exactly 0.5 should not be hotspot (strict inequality)")
	}
}

func TestShiftMonotonicity(t *testing.T) {
	// Increasing shift can only increase recall and false alarms.
	samples := toyProblem(100, 7)
	net := toyNet(t, 61)
	probs := make([]float64, len(samples))
	for i, s := range samples {
		p, err := PredictProb(net, s.X)
		if err != nil {
			t.Fatal(err)
		}
		probs[i] = p
	}
	prev := metricsAtShift(probs, samples, 0)
	for _, shift := range []float64{0.05, 0.1, 0.2, 0.3, 0.45} {
		m := metricsAtShift(probs, samples, shift)
		if m.Recall < prev.Recall || m.FalseAlarms < prev.FalseAlarms {
			t.Fatalf("shift %v not monotone: recall %v->%v, FA %v->%v",
				shift, prev.Recall, m.Recall, prev.FalseAlarms, m.FalseAlarms)
		}
		prev = m
	}
}

func TestMatchShiftToRecall(t *testing.T) {
	samples := toyProblem(150, 8)
	trainSet, valSet, _ := Split(samples, 0.3, 4)
	net := toyNet(t, 71)
	cfg := quickCfg()
	cfg.MaxIters = 150
	if _, err := MGD(net, trainSet, valSet, cfg); err != nil {
		t.Fatal(err)
	}
	base, err := EvalSet(net, valSet, 0)
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.49}
	shift, m, ok, err := MatchShiftToRecall(net, valSet, base.Recall, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || m.Recall < base.Recall {
		t.Fatalf("shift matching failed: shift=%v ok=%v recall=%v", shift, ok, m.Recall)
	}
	// Unreachable target reports ok=false.
	_, _, ok, err = MatchShiftToRecall(net, valSet, 1.1, grid)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("recall target 1.1 should be unreachable")
	}
	if _, _, _, err := MatchShiftToRecall(net, valSet, 0.5, nil); err == nil {
		t.Fatal("expected empty-grid error")
	}
}

func TestBiasedConfigValidation(t *testing.T) {
	good := BiasedConfig{
		InitialEps: 0, DeltaEps: 0.1, Rounds: 4,
		Initial: quickCfg(), FineTune: quickCfg(),
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Rounds = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected rounds error")
	}
	bad = good
	bad.DeltaEps = 0.2 // final eps = 0.6
	if err := bad.Validate(); err == nil {
		t.Fatal("expected ε-overflow error")
	}
	bad = good
	bad.Initial.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected nested config error")
	}
}

func TestBiasedLearningRounds(t *testing.T) {
	samples := toyProblem(200, 9)
	trainSet, valSet, _ := Split(samples, 0.25, 6)
	net := toyNet(t, 81)
	fine := quickCfg()
	fine.MaxIters = 60
	fine.LearningRate = 0.01
	cfg := BiasedConfig{
		InitialEps: 0, DeltaEps: 0.1, Rounds: 3,
		Initial: quickCfg(), FineTune: fine, KeepBest: true,
	}
	results, err := BiasedLearning(net, trainSet, valSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("rounds = %d", len(results))
	}
	for i, r := range results {
		wantEps := 0.1 * float64(i)
		if math.Abs(r.Eps-wantEps) > 1e-12 {
			t.Fatalf("round %d ε=%v, want %v", i, r.Eps, wantEps)
		}
	}
	// KeepBest: the final network's recall is at least the initial round's
	// (Theorem 1's direction, guaranteed here by best-model selection).
	final, err := EvalSet(net, valSet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Recall+1e-9 < results[0].Val.Recall {
		t.Fatalf("final recall %.3f below initial %.3f despite KeepBest",
			final.Recall, results[0].Val.Recall)
	}
}

func TestMGDDoubleUpdateAblation(t *testing.T) {
	// The literal Algorithm 1 listing (two updates per iteration) must be
	// exactly equivalent to doubling the learning rate of the single-update
	// form, given identical sampling.
	samples := toyProblem(80, 40)
	trainSet, valSet, _ := Split(samples, 0.25, 9)
	cfg := quickCfg()
	cfg.MaxIters = 40
	cfg.ValEvery = 0

	a := toyNet(t, 101)
	cfgA := cfg
	cfgA.DoubleUpdate = true
	if _, err := MGD(a, trainSet, valSet, cfgA); err != nil {
		t.Fatal(err)
	}

	b := toyNet(t, 101)
	cfgB := cfg
	cfgB.LearningRate = cfg.LearningRate * 2
	if _, err := MGD(b, trainSet, valSet, cfgB); err != nil {
		t.Fatal(err)
	}
	ap, bp := a.Params(), b.Params()
	for i := range ap {
		for j := range ap[i].W.Data() {
			if math.Abs(ap[i].W.Data()[j]-bp[i].W.Data()[j]) > 1e-9 {
				t.Fatal("double update is not equivalent to doubled learning rate")
			}
		}
	}
}

func TestMGDValEveryZeroSkipsValidation(t *testing.T) {
	samples := toyProblem(40, 41)
	trainSet, _, _ := Split(samples, 0, 1)
	cfg := quickCfg()
	cfg.ValEvery = 0
	cfg.MaxIters = 20
	net := toyNet(t, 102)
	hist, err := MGD(net, trainSet, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 0 {
		t.Fatal("validation disabled but history non-empty")
	}
}

func TestCheckpointFieldsPopulated(t *testing.T) {
	samples := toyProblem(60, 42)
	trainSet, valSet, _ := Split(samples, 0.25, 2)
	cfg := quickCfg()
	cfg.MaxIters = 60
	cfg.ValEvery = 20
	net := toyNet(t, 103)
	hist, err := MGD(net, trainSet, valSet, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length %d, want 3", len(hist))
	}
	prev := 0
	for _, cp := range hist {
		if cp.Iter <= prev {
			t.Fatal("iterations not increasing")
		}
		prev = cp.Iter
		if cp.Elapsed <= 0 {
			t.Fatal("elapsed not populated")
		}
		if cp.TrainLoss <= 0 {
			t.Fatal("train loss not populated")
		}
	}
}
