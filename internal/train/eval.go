package train

import (
	"fmt"

	"hotspot/internal/nn"
	"hotspot/internal/tensor"
)

// Metrics summarizes classification quality on a sample set using the
// paper's definitions: Accuracy (Definition 1) is hotspot recall — correctly
// predicted hotspots over all real hotspots — and FalseAlarms (Definition 2)
// counts non-hotspots predicted as hotspots.
type Metrics struct {
	// Recall is the paper's "Accuracy": TP / (TP + FN).
	Recall float64
	// FalseAlarms is the absolute count of false positives.
	FalseAlarms int
	// Accuracy is overall correctness (TP+TN)/N, used for validation-based
	// stopping.
	Accuracy float64
	// TP, FP, TN, FN are the confusion-matrix counts.
	TP, FP, TN, FN int
}

// PredictProb runs one sample through the network in inference mode and
// returns the softmax probability of the hotspot class (y(1) in the
// paper's notation).
func PredictProb(net *nn.Network, x *tensor.Tensor) (float64, error) {
	out, err := net.Forward(x, false)
	if err != nil {
		return 0, err
	}
	p, err := nn.Softmax(out)
	if err != nil {
		return 0, err
	}
	if p.Len() != 2 {
		return 0, fmt.Errorf("train: classifier emitted %d outputs, want 2", p.Len())
	}
	return p.At(1), nil
}

// Decide applies the (optionally shifted) decision rule of Equations (9)
// and (11): hotspot when y(1) > 0.5 − shift. shift = 0 is the standard
// boundary; shift > 0 trades false alarms for recall.
func Decide(probHot, shift float64) bool { return probHot > 0.5-shift }

// EvalSet computes Metrics over a sample set with the given boundary shift.
func EvalSet(net *nn.Network, samples []Sample, shift float64) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, fmt.Errorf("train: empty evaluation set")
	}
	var m Metrics
	for _, s := range samples {
		p, err := PredictProb(net, s.X)
		if err != nil {
			return Metrics{}, err
		}
		pred := Decide(p, shift)
		switch {
		case pred && s.Hotspot:
			m.TP++
		case pred && !s.Hotspot:
			m.FP++
		case !pred && !s.Hotspot:
			m.TN++
		default:
			m.FN++
		}
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	m.FalseAlarms = m.FP
	m.Accuracy = float64(m.TP+m.TN) / float64(len(samples))
	return m, nil
}
