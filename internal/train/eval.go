package train

import (
	"fmt"

	"hotspot/internal/nn"
	"hotspot/internal/parallel"
	"hotspot/internal/tensor"
)

// Metrics summarizes classification quality on a sample set using the
// paper's definitions: Accuracy (Definition 1) is hotspot recall — correctly
// predicted hotspots over all real hotspots — and FalseAlarms (Definition 2)
// counts non-hotspots predicted as hotspots.
type Metrics struct {
	// Recall is the paper's "Accuracy": TP / (TP + FN).
	Recall float64
	// FalseAlarms is the absolute count of false positives.
	FalseAlarms int
	// Accuracy is overall correctness (TP+TN)/N, used for validation-based
	// stopping.
	Accuracy float64
	// TP, FP, TN, FN are the confusion-matrix counts.
	TP, FP, TN, FN int
}

// PredictProb runs one sample through the network in inference mode and
// returns the softmax probability of the hotspot class (y(1) in the
// paper's notation).
func PredictProb(net *nn.Network, x *tensor.Tensor) (float64, error) {
	out, err := net.Forward(x, false)
	if err != nil {
		return 0, err
	}
	p, err := nn.Softmax(out)
	if err != nil {
		return 0, err
	}
	if p.Len() != 2 {
		return 0, fmt.Errorf("train: classifier emitted %d outputs, want 2", p.Len())
	}
	return p.At(1), nil
}

// Decide applies the (optionally shifted) decision rule of Equations (9)
// and (11): hotspot when y(1) > 0.5 − shift. shift = 0 is the standard
// boundary; shift > 0 trades false alarms for recall.
func Decide(probHot, shift float64) bool { return probHot > 0.5-shift }

// EvalSet computes Metrics over a sample set with the given boundary shift,
// serially on the calling goroutine. For parallel scoring use an Evaluator.
func EvalSet(net *nn.Network, samples []Sample, shift float64) (Metrics, error) {
	return evalSetOn([]*nn.Network{net}, parallel.New(1), samples, shift)
}

// evalSetOn scores samples across the pool; nets[w] is owned exclusively by
// worker w for the duration of the call (inference mutates layer caches).
// Predictions land in index-addressed slots, so the folded counts — and
// with them every derived metric — are identical under any worker count.
func evalSetOn(nets []*nn.Network, pool *parallel.Pool, samples []Sample, shift float64) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, fmt.Errorf("train: empty evaluation set")
	}
	preds, err := parallel.Map(pool, len(samples), func(worker, i int) (bool, error) {
		p, err := PredictProb(nets[worker], samples[i].X)
		if err != nil {
			return false, err
		}
		return Decide(p, shift), nil
	})
	if err != nil {
		return Metrics{}, err
	}
	var m Metrics
	for i, pred := range preds {
		switch {
		case pred && samples[i].Hotspot:
			m.TP++
		case pred && !samples[i].Hotspot:
			m.FP++
		case !pred && !samples[i].Hotspot:
			m.TN++
		default:
			m.FN++
		}
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	m.FalseAlarms = m.FP
	m.Accuracy = float64(m.TP+m.TN) / float64(len(samples))
	return m, nil
}

// Evaluator fans inference for one network across a worker pool. It owns
// Size−1 replicas whose weights are re-synced from the wrapped network at
// the start of every call, so it stays valid across training steps. The
// wrapped network itself serves worker 0. Not safe for concurrent use; the
// zero value is not usable — build one with NewEvaluator.
type Evaluator struct {
	nets []*nn.Network // nets[0] is the wrapped network
	pool *parallel.Pool
}

// NewEvaluator builds an evaluator over net with the given worker count
// (0 = parallel.Default()).
func NewEvaluator(net *nn.Network, workers int) (*Evaluator, error) {
	pool := parallel.New(workers)
	nets := make([]*nn.Network, pool.Size())
	nets[0] = net
	for i := 1; i < len(nets); i++ {
		r, err := net.Clone()
		if err != nil {
			return nil, err
		}
		nets[i] = r
	}
	return &Evaluator{nets: nets, pool: pool}, nil
}

// Workers returns the evaluator's worker count.
func (e *Evaluator) Workers() int { return e.pool.Size() }

func (e *Evaluator) sync() error {
	for _, r := range e.nets[1:] {
		if err := copyWeights(r, e.nets[0]); err != nil {
			return err
		}
	}
	return nil
}

// EvalSet computes Metrics over a sample set with the given boundary
// shift, fanning samples across the pool. Results are identical to the
// serial EvalSet.
func (e *Evaluator) EvalSet(samples []Sample, shift float64) (Metrics, error) {
	if err := e.sync(); err != nil {
		return Metrics{}, err
	}
	return evalSetOn(e.nets, e.pool, samples, shift)
}

// PredictProbs scores every input in parallel and returns the hotspot
// probabilities in input order.
func (e *Evaluator) PredictProbs(xs []*tensor.Tensor) ([]float64, error) {
	if err := e.sync(); err != nil {
		return nil, err
	}
	return parallel.Map(e.pool, len(xs), func(worker, i int) (float64, error) {
		return PredictProb(e.nets[worker], xs[i])
	})
}
