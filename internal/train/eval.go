package train

import (
	"fmt"
	"math"

	"hotspot/internal/nn"
	"hotspot/internal/nn/fused"
	"hotspot/internal/parallel"
	"hotspot/internal/tensor"
)

// Metrics summarizes classification quality on a sample set using the
// paper's definitions: Accuracy (Definition 1) is hotspot recall — correctly
// predicted hotspots over all real hotspots — and FalseAlarms (Definition 2)
// counts non-hotspots predicted as hotspots.
type Metrics struct {
	// Recall is the paper's "Accuracy": TP / (TP + FN).
	Recall float64
	// FalseAlarms is the absolute count of false positives.
	FalseAlarms int
	// Accuracy is overall correctness (TP+TN)/N, used for validation-based
	// stopping.
	Accuracy float64
	// TP, FP, TN, FN are the confusion-matrix counts.
	TP, FP, TN, FN int
}

// PredictProb runs one sample through the network in inference mode and
// returns the softmax probability of the hotspot class (y(1) in the
// paper's notation).
func PredictProb(net *nn.Network, x *tensor.Tensor) (float64, error) {
	out, err := net.Forward(x, false)
	if err != nil {
		return 0, err
	}
	p, err := nn.Softmax(out)
	if err != nil {
		return 0, err
	}
	if p.Len() != 2 {
		return 0, fmt.Errorf("train: classifier emitted %d outputs, want 2", p.Len())
	}
	return p.At(1), nil
}

// Decide applies the (optionally shifted) decision rule of Equations (9)
// and (11): hotspot when y(1) > 0.5 − shift. shift = 0 is the standard
// boundary; shift > 0 trades false alarms for recall.
func Decide(probHot, shift float64) bool { return probHot > 0.5-shift }

// EvalSet computes Metrics over a sample set with the given boundary shift,
// serially on the calling goroutine. For parallel scoring use an Evaluator.
func EvalSet(net *nn.Network, samples []Sample, shift float64) (Metrics, error) {
	return evalSetOn(parallel.New(1), samples, shift, func(_ int, x *tensor.Tensor) (float64, error) {
		return PredictProb(net, x)
	})
}

// evalSetOn scores samples across the pool; predict's worker argument owns
// its replica exclusively for the duration of the call (inference mutates
// layer caches). Predictions land in index-addressed slots, so the folded
// counts — and with them every derived metric — are identical under any
// worker count.
func evalSetOn(pool *parallel.Pool, samples []Sample, shift float64, predict func(worker int, x *tensor.Tensor) (float64, error)) (Metrics, error) {
	if len(samples) == 0 {
		return Metrics{}, fmt.Errorf("train: empty evaluation set")
	}
	preds, err := parallel.Map(pool, len(samples), func(worker, i int) (bool, error) {
		p, err := predict(worker, samples[i].X)
		if err != nil {
			return false, err
		}
		return Decide(p, shift), nil
	})
	if err != nil {
		return Metrics{}, err
	}
	var m Metrics
	for i, pred := range preds {
		switch {
		case pred && samples[i].Hotspot:
			m.TP++
		case pred && !samples[i].Hotspot:
			m.FP++
		case !pred && !samples[i].Hotspot:
			m.TN++
		default:
			m.FN++
		}
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	m.FalseAlarms = m.FP
	m.Accuracy = float64(m.TP+m.TN) / float64(len(samples))
	return m, nil
}

// Evaluator fans inference for one network across a worker pool. It owns
// Size−1 replicas whose weights are re-synced from the wrapped network at
// the start of every call, so it stays valid across training steps. The
// wrapped network itself serves worker 0. Not safe for concurrent use; the
// zero value is not usable — build one with NewEvaluator.
type Evaluator struct {
	nets []*nn.Network // nets[0] is the wrapped network
	pool *parallel.Pool

	// engines[w] is worker w's compiled fused inference plan, or nil until
	// the first evaluation (or EnsureFused) compiles them. Engines alias
	// their network's parameter tensors, and sync copies weights in place,
	// so compiled plans stay current across training steps for free.
	engines  []*fused.Engine
	fusedOff bool // SetFused(false) pins the layer-by-layer path
	fusedErr bool // compilation failed once; the layer stack won't change, don't retry
}

// NewEvaluator builds an evaluator over net with the given worker count
// (0 = parallel.Default()).
func NewEvaluator(net *nn.Network, workers int) (*Evaluator, error) {
	pool := parallel.New(workers)
	nets := make([]*nn.Network, pool.Size())
	nets[0] = net
	for i := 1; i < len(nets); i++ {
		r, err := net.Clone()
		if err != nil {
			return nil, err
		}
		nets[i] = r
	}
	return &Evaluator{nets: nets, pool: pool}, nil
}

// Workers returns the evaluator's worker count.
func (e *Evaluator) Workers() int { return e.pool.Size() }

func (e *Evaluator) sync() error {
	for _, r := range e.nets[1:] {
		if err := copyWeights(r, e.nets[0]); err != nil {
			return err
		}
	}
	return nil
}

// EnsureFused compiles one fused inference engine per worker for inputs of
// exactly inShape, replacing any engines compiled for a different shape.
// It returns the compile error when the network has layers the fused
// engine cannot execute; the evaluator then keeps using the layer-by-layer
// path, which is always correct. Compilation is not safe concurrently with
// evaluation — call it between evaluations (EvalSet and PredictProbs do,
// lazily, before fanning out).
func (e *Evaluator) EnsureFused(inShape []int) error {
	if e.fusedOff {
		return nil
	}
	if e.engines != nil && sameDims(e.engines[0].InShape(), inShape) {
		return nil
	}
	engines := make([]*fused.Engine, len(e.nets))
	for i, n := range e.nets {
		eng, err := fused.Compile(n, inShape)
		if err != nil {
			e.fusedErr = true
			return err
		}
		engines[i] = eng
	}
	e.engines = engines
	return nil
}

// FusedActive reports whether compiled fused engines are serving
// predictions (inputs of other shapes still fall back per sample).
func (e *Evaluator) FusedActive() bool { return e.engines != nil }

// SetFused enables (default) or disables the fused inference path. Both
// paths produce bit-identical probabilities; disabling is an escape hatch
// for debugging and for apples-to-apples benchmarking.
func (e *Evaluator) SetFused(on bool) {
	e.fusedOff = !on
	if !on {
		e.engines = nil
	} else {
		e.fusedErr = false
	}
}

// ensureFusedFor lazily compiles engines for the first sample's shape.
// Failure is not an error here: unfusable networks simply stay layered.
func (e *Evaluator) ensureFusedFor(x *tensor.Tensor) {
	if e.fusedOff || e.fusedErr {
		return
	}
	_ = e.EnsureFused(x.Shape()) //hsd:cold engine compilation runs once per model reload or input-shape change, not per sample
}

// Prepare re-syncs the worker replicas from the wrapped network and
// (lazily, fusable networks only) compiles fused engines for inputs of
// inShape. Callers that drive their own fan-out over PredictOn — the
// full-layout scan engine scores millions of windows without
// materializing a []*tensor.Tensor batch — call it once per pass, exactly
// the work EvalSet and PredictProbs do at the top of every call.
func (e *Evaluator) Prepare(inShape []int) error {
	if err := e.sync(); err != nil {
		return err
	}
	if e.fusedOff || e.fusedErr {
		return nil
	}
	// Compilation failure is not an error: unfusable networks keep the
	// always-correct layered path (Prepare itself is never hot-reachable —
	// it runs on the orchestrating goroutine before a pass fans out).
	_ = e.EnsureFused(inShape)
	return nil
}

// PredictOn scores one sample on worker w's replica (w in [0, Workers())).
// The caller owns the fan-out: each worker index must be used by at most
// one goroutine at a time, and Prepare must have run since the wrapped
// network's weights last changed. Probabilities are bit-identical to
// PredictProbs over the same inputs.
//hsd:hotpath
func (e *Evaluator) PredictOn(worker int, x *tensor.Tensor) (float64, error) {
	return e.predictOn(worker, x)
}

// predictOn scores one sample on worker w's replica: the fused engine when
// one is compiled and the shape matches, the layer-by-layer network
// otherwise. The two paths are bit-identical (fused parity contract), so
// mixing them per sample cannot change any prediction.
//
// It is a hot-path root in its own right because it runs as a parallel
// worker body: the func-value hop through parallel.Map hides it from the
// callers' reachability walks.
//hsd:hotpath
func (e *Evaluator) predictOn(worker int, x *tensor.Tensor) (float64, error) {
	if e.engines != nil {
		eng := e.engines[worker]
		if eng.Accepts(x) {
			out, err := eng.Forward(x)
			if err != nil {
				return 0, err
			}
			return probHot(out)
		}
	}
	return PredictProb(e.nets[worker], x)
}

// probHot converts the classifier's two logits to the hotspot softmax
// probability y(1) in nn.Softmax's exact operation order (running max,
// exp of shifted logits, sequential sum, one divide), so the fused path
// returns bit-identical probabilities to PredictProb.
func probHot(out []float64) (float64, error) {
	if len(out) != 2 {
		return 0, fmt.Errorf("train: classifier emitted %d outputs, want 2", len(out))
	}
	m := out[0]
	if out[1] > m {
		m = out[1]
	}
	e0 := math.Exp(out[0] - m)
	e1 := math.Exp(out[1] - m)
	sum := 0.0
	sum += e0
	sum += e1
	return e1 / sum, nil
}

// sameDims reports whether two shape slices are identical.
func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if d != b[i] {
			return false
		}
	}
	return true
}

// EvalSet computes Metrics over a sample set with the given boundary
// shift, fanning samples across the pool. Results are identical to the
// serial EvalSet.
func (e *Evaluator) EvalSet(samples []Sample, shift float64) (Metrics, error) {
	if err := e.sync(); err != nil {
		return Metrics{}, err
	}
	e.ensureFusedFor(samples[0].X)
	return evalSetOn(e.pool, samples, shift, e.predictOn)
}

// PredictProbs scores every input in parallel and returns the hotspot
// probabilities in input order.
func (e *Evaluator) PredictProbs(xs []*tensor.Tensor) ([]float64, error) {
	if err := e.sync(); err != nil { //hsd:cold weight resync runs once per scoring call, amortized across the batch
		return nil, err
	}
	if len(xs) > 0 {
		e.ensureFusedFor(xs[0])
	}
	return parallel.Map(e.pool, len(xs), func(worker, i int) (float64, error) {
		return e.predictOn(worker, xs[i])
	})
}
