// Package train implements the paper's training machinery: mini-batch
// gradient descent with step learning-rate decay and validation-based
// stopping (Algorithm 1), the biased learning loop that softens the
// non-hotspot ground truth (Algorithm 2), and the decision-boundary
// shifting it is compared against (Equation (11)).
package train

import (
	"fmt"
	"math/rand"
	"time"

	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/tensor"
)

// Sample is one training instance: a feature tensor and its label.
type Sample struct {
	X       *tensor.Tensor
	Hotspot bool
}

// Split partitions samples into training and validation subsets, shuffling
// deterministically; frac is the validation fraction (the paper holds out
// 25%).
func Split(samples []Sample, frac float64, seed int64) (trainSet, valSet []Sample, err error) {
	if frac < 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("train: validation fraction %v outside [0, 1)", frac)
	}
	if len(samples) == 0 {
		return nil, nil, fmt.Errorf("train: no samples to split")
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(samples))
	nVal := int(float64(len(samples)) * frac)
	valSet = make([]Sample, 0, nVal)
	trainSet = make([]Sample, 0, len(samples)-nVal)
	for i, j := range idx {
		if i < nVal {
			valSet = append(valSet, samples[j])
		} else {
			trainSet = append(trainSet, samples[j])
		}
	}
	return trainSet, valSet, nil
}

// Targets returns the ground-truth vectors used by biased learning: the
// hotspot target is fixed at [0, 1]; the non-hotspot target is [1−ε, ε].
func Targets(eps float64) (nonHotspot, hotspot *tensor.Tensor, err error) {
	if eps < 0 || eps >= 0.5 {
		return nil, nil, fmt.Errorf("train: bias ε=%v outside [0, 0.5)", eps)
	}
	return tensor.MustFromSlice([]float64{1 - eps, eps}, 2),
		tensor.MustFromSlice([]float64{0, 1}, 2), nil
}

// MGDConfig parameterizes Algorithm 1.
type MGDConfig struct {
	// LearningRate is λ, the initial step size.
	LearningRate float64
	// DecayFactor is α ∈ (0, 1]; the rate becomes α·λ every DecayStep
	// iterations.
	DecayFactor float64
	// DecayStep is k, the decay interval in iterations.
	DecayStep int
	// BatchSize is m, the number of instances sampled per iteration
	// (1 = stochastic gradient descent).
	BatchSize int
	// MaxIters bounds the run.
	MaxIters int
	// ValEvery is the validation cadence in iterations (0 disables
	// validation-based stopping and snapshots).
	ValEvery int
	// Patience stops training after this many consecutive validation
	// checks without improvement (0 = never stop early).
	Patience int
	// Eps is the biased-learning ε applied to the non-hotspot target.
	Eps float64
	// BalanceClasses draws each batch half from each class. The paper's
	// algorithm samples uniformly; balancing is an optional deviation for
	// heavily imbalanced suites and is off by default.
	BalanceClasses bool
	// DoubleUpdate applies the weight update twice per iteration, exactly
	// as the paper's Algorithm 1 listing reads (lines 10 and 14). The
	// listing is almost certainly a typesetting artifact, so the default
	// is the standard single update; this switch exists for ablation.
	DoubleUpdate bool
	// Seed drives batch sampling and per-sample dropout masks.
	Seed int64
	// Workers bounds the number of goroutines computing per-sample
	// gradients within a batch (and scoring validation samples). 0 means
	// parallel.Default(). Trained weights are bit-identical under any
	// worker count: sample draws, dropout masks and the gradient
	// reduction order are all functions of (Seed, iteration, batch
	// position), never of worker assignment.
	Workers int
	// OnEpoch, when set, is invoked on the training goroutine after each
	// validation checkpoint with that epoch's telemetry. Observation only:
	// the callback runs after the checkpoint is recorded, receives copies,
	// and its presence cannot change the trained weights (the parity test
	// TestMGDInstrumentationParity holds MGD to that).
	OnEpoch func(EpochEvent)
	// Tracer, when non-nil, records one trace per validation checkpoint
	// ("train/epoch": iter, loss, accuracy and learning-rate attributes
	// plus a validate span). Observation only, same contract as OnEpoch:
	// trained weights are bit-identical with tracing lit or dark.
	Tracer *trace.Tracer
}

// Validate checks the configuration.
func (c MGDConfig) Validate() error {
	if c.LearningRate <= 0 {
		return fmt.Errorf("train: learning rate must be positive, got %v", c.LearningRate)
	}
	if c.DecayFactor <= 0 || c.DecayFactor > 1 {
		return fmt.Errorf("train: decay factor %v outside (0, 1]", c.DecayFactor)
	}
	if c.DecayStep <= 0 {
		return fmt.Errorf("train: decay step must be positive, got %d", c.DecayStep)
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("train: batch size must be positive, got %d", c.BatchSize)
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("train: max iterations must be positive, got %d", c.MaxIters)
	}
	if c.ValEvery < 0 || c.Patience < 0 {
		return fmt.Errorf("train: negative validation cadence or patience")
	}
	if c.Eps < 0 || c.Eps >= 0.5 {
		return fmt.Errorf("train: ε=%v outside [0, 0.5)", c.Eps)
	}
	return nil
}

// Checkpoint is one validation measurement during training.
type Checkpoint struct {
	Iter        int
	Elapsed     time.Duration
	ValAccuracy float64
	ValRecall   float64
	ValFA       int
	TrainLoss   float64 // running average over the interval
}

// History is the sequence of validation checkpoints of one run.
type History []Checkpoint

// EpochEvent is the telemetry handed to MGDConfig.OnEpoch at each
// validation checkpoint: the checkpoint itself plus the optimizer and
// latency state a dashboard wants alongside it.
type EpochEvent struct {
	Checkpoint
	// LearningRate is the decayed rate in effect at the checkpoint.
	LearningRate float64
	// StepP50 and StepP99 are per-iteration latencies in seconds over the
	// recent window of the "train/step" stage.
	StepP50, StepP99 float64
}

// sampleSeed derives the dropout seed for one training sample from the run
// seed and the sample's global position counter ((iter−1)·BatchSize + b).
// It is a splitmix64 finalizer, so nearby counters give uncorrelated
// streams. Crucially it depends only on (seed, counter) — never on which
// worker processes the sample — which is what makes parallel gradients
// bit-identical to serial ones.
func sampleSeed(seed, counter int64) int64 {
	z := uint64(seed) + (uint64(counter)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// sampleGrad runs one training sample through net (forward, loss, backward)
// with its dropout stream reseeded from the sample's global counter.
// Gradients accumulate into net's current Param.Grad tensors.
//hsd:hotpath
func sampleGrad(net *nn.Network, s Sample, yn, yh *tensor.Tensor, seed int64) (float64, error) {
	target := yn
	if s.Hotspot {
		target = yh
	}
	net.ReseedDropout(seed)
	out, err := net.Forward(s.X, true)
	if err != nil {
		return 0, err
	}
	loss, dlogits, err := nn.SoftmaxCrossEntropy(out, target)
	if err != nil {
		return 0, err
	}
	if err := net.Backward(dlogits); err != nil {
		return 0, err
	}
	return loss, nil
}

// MGD trains net in place per Algorithm 1 and returns the validation
// history. When validation is enabled the network is restored to the
// best-accuracy snapshot before returning (the paper returns "the model
// with the best performance on the validation set").
//
// With cfg.Workers > 1 the per-sample gradients of each batch are computed
// concurrently on per-worker network replicas and reduced in batch-position
// order; see DESIGN.md ("Concurrency model") for why the result is
// bit-identical to the single-worker path.
func MGD(net *nn.Network, trainSet, valSet []Sample, cfg MGDConfig) (History, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(trainSet) == 0 {
		return nil, fmt.Errorf("train: empty training set")
	}
	if cfg.ValEvery > 0 && len(valSet) == 0 {
		return nil, fmt.Errorf("train: validation enabled but validation set is empty")
	}
	yn, yh, err := Targets(cfg.Eps)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var hsIdx, nhsIdx []int
	if cfg.BalanceClasses {
		for i, s := range trainSet {
			if s.Hotspot {
				hsIdx = append(hsIdx, i)
			} else {
				nhsIdx = append(nhsIdx, i)
			}
		}
		if len(hsIdx) == 0 || len(nhsIdx) == 0 {
			return nil, fmt.Errorf("train: balanced sampling needs both classes present")
		}
	}

	// Worker setup. More replicas than batch positions can never help.
	nW := parallel.Workers(cfg.Workers)
	if nW > cfg.BatchSize {
		nW = cfg.BatchSize
	}
	pool := parallel.New(nW)
	masterParams := net.Params()
	var (
		replicas  []*nn.Network // worker-owned clones; master stays on this goroutine
		repParams [][]*nn.Param
		slots     [][]*tensor.Tensor // per-batch-position gradient buffers
		losses    []float64
	)
	if nW > 1 {
		replicas = make([]*nn.Network, nW)
		repParams = make([][]*nn.Param, nW)
		for i := range replicas {
			if replicas[i], err = net.Clone(); err != nil {
				return nil, err
			}
			repParams[i] = replicas[i].Params()
		}
		slots = make([][]*tensor.Tensor, cfg.BatchSize)
		for b := range slots {
			slots[b] = make([]*tensor.Tensor, len(masterParams))
			for i, p := range masterParams {
				slots[b][i] = tensor.New(p.Grad.Shape()...)
			}
		}
		losses = make([]float64, cfg.BatchSize)
	}
	// Weight sync over the cached param slices: copyWeights would rebuild
	// both Params() slices on every iteration.
	syncReplicas := func() {
		for w := range repParams {
			for i, p := range repParams[w] {
				copy(p.W.Data(), masterParams[i].W.Data())
			}
		}
	}
	batchIdx := make([]int, cfg.BatchSize)

	// Persistent workers plus a single reusable fan-out closure keep the
	// steady-state parallel iteration allocation-free, matching serial.
	sess := pool.Session()
	defer sess.Close()
	var counterBase int64
	gradTask := func(worker, b int) error {
		// Point the replica's gradient accumulators at this batch
		// position's slot so Backward writes the sample's contribution
		// there directly — no copy.
		rp := repParams[worker]
		for i := range rp {
			slots[b][i].Zero()
			rp[i].Grad = slots[b][i]
		}
		loss, err := sampleGrad(replicas[worker], trainSet[batchIdx[b]], yn, yh, sampleSeed(cfg.Seed, counterBase+int64(b)))
		losses[b] = loss
		return err
	}

	lr := cfg.LearningRate
	// Timing is observation only: stage summaries and the run stopwatch
	// are write-only sinks here; nothing the optimizer computes reads them.
	watch := obs.NewStopwatch()
	stepStage := obs.Default().Stage("train/step")
	epochStage := obs.Default().Stage("train/epoch")
	epochWatch := obs.NewStopwatch()
	var hist History
	bestAcc := -1.0
	var best *nn.Network
	sinceBest := 0
	lossAccum, lossCount := 0.0, 0

	for iter := 1; iter <= cfg.MaxIters; iter++ {
		stepWatch := obs.NewStopwatch()
		// Draw the whole batch up front. The rand call sequence is exactly
		// the legacy serial one, so sampling is identical under any worker
		// count (and to earlier versions of this code).
		for b := range batchIdx {
			if cfg.BalanceClasses {
				// Choose the class at random (not by batch position): a
				// deterministic alternation would sample only one class
				// when BatchSize is 1.
				if rng.Intn(2) == 0 {
					batchIdx[b] = hsIdx[rng.Intn(len(hsIdx))]
				} else {
					batchIdx[b] = nhsIdx[rng.Intn(len(nhsIdx))]
				}
			} else {
				batchIdx[b] = rng.Intn(len(trainSet))
			}
		}
		counterBase = int64(iter-1) * int64(cfg.BatchSize)

		batchLoss := 0.0
		for _, p := range masterParams {
			p.Grad.Zero()
		}
		if nW <= 1 {
			for b, idx := range batchIdx {
				loss, err := sampleGrad(net, trainSet[idx], yn, yh, sampleSeed(cfg.Seed, counterBase+int64(b)))
				if err != nil {
					return nil, err
				}
				batchLoss += loss
			}
		} else {
			syncReplicas()
			if err := sess.For(cfg.BatchSize, gradTask); err != nil {
				return nil, err
			}
			// Reduce in batch-position order: fold-left addition per
			// element is exactly the serial loop's in-place accumulation.
			for b := range slots {
				batchLoss += losses[b]
				for i, p := range masterParams {
					if err := p.Grad.Add(slots[b][i]); err != nil {
						return nil, err
					}
				}
			}
		}
		lossAccum += batchLoss / float64(cfg.BatchSize)
		lossCount++

		// Average the accumulated gradients and step.
		scale := lr / float64(cfg.BatchSize)
		if cfg.DoubleUpdate {
			scale *= 2
		}
		for _, p := range masterParams {
			if err := p.W.AddScaled(-scale, p.Grad); err != nil {
				return nil, err
			}
		}
		if iter%cfg.DecayStep == 0 {
			lr *= cfg.DecayFactor
		}
		stepStage.ObserveDuration(stepWatch.Elapsed())

		if cfg.ValEvery > 0 && iter%cfg.ValEvery == 0 {
			valWatch := obs.NewStopwatch()
			var m Metrics
			if nW > 1 {
				syncReplicas()
				m, err = evalSetOn(pool, valSet, 0, func(worker int, x *tensor.Tensor) (float64, error) {
					return PredictProb(replicas[worker], x)
				})
			} else {
				m, err = EvalSet(net, valSet, 0)
			}
			if err != nil {
				return nil, err
			}
			valD := valWatch.Elapsed()
			cp := Checkpoint{
				Iter:        iter,
				Elapsed:     watch.Elapsed(),
				ValAccuracy: m.Accuracy,
				ValRecall:   m.Recall,
				ValFA:       m.FalseAlarms,
				TrainLoss:   lossAccum / float64(lossCount),
			}
			lossAccum, lossCount = 0, 0
			hist = append(hist, cp)
			epochD := epochWatch.Elapsed()
			epochStage.ObserveDuration(epochD)
			epochWatch = obs.NewStopwatch()
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(EpochEvent{
					Checkpoint:   cp,
					LearningRate: lr,
					StepP50:      stepStage.Quantile(0.50),
					StepP99:      stepStage.Quantile(0.99),
				})
			}
			etr := cfg.Tracer.Start("train/epoch")
			etr.SetInt("iter", int64(iter))
			etr.SetFloat("loss", cp.TrainLoss)
			etr.SetFloat("val_accuracy", cp.ValAccuracy)
			etr.SetFloat("learning_rate", lr)
			etr.StartSpan("validate").EndWith(valD)
			etr.FinishWith(epochD)
			if m.Accuracy > bestAcc {
				bestAcc = m.Accuracy
				sinceBest = 0
				best, err = net.Clone()
				if err != nil {
					return nil, err
				}
			} else {
				sinceBest++
				if cfg.Patience > 0 && sinceBest >= cfg.Patience {
					break
				}
			}
		}
	}
	if best != nil {
		if err := copyWeights(net, best); err != nil {
			return nil, err
		}
	}
	return hist, nil
}

// copyWeights copies src's parameters into dst (same architecture).
func copyWeights(dst, src *nn.Network) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("train: parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if !tensor.SameShape(dp[i].W, sp[i].W) {
			return fmt.Errorf("train: parameter %s shape mismatch", dp[i].Name)
		}
		copy(dp[i].W.Data(), sp[i].W.Data())
	}
	return nil
}
