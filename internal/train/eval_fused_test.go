package train

import (
	"math"
	"sync"
	"testing"

	"hotspot/internal/tensor"
)

// TestEvaluatorFusedBitParity pins the evaluator's fused engines against
// the layer-by-layer path at the bit level: same probabilities from
// PredictProbs with the engines on and off, across worker counts, and
// identical Metrics from EvalSet. (TestEvaluatorMatchesEvalSet already
// compares fused-evaluator metrics to the serial path; this test asserts
// the probabilities themselves and that the fused path is actually live.)
func TestEvaluatorFusedBitParity(t *testing.T) {
	samples := imbalancedToy(40, 53)
	xs := make([]*tensor.Tensor, len(samples))
	for i := range samples {
		xs[i] = samples[i].X
	}
	net := dropoutNet(t, 59)
	for _, workers := range []int{1, 3, 4} {
		ev, err := NewEvaluator(net, workers)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetFused(false)
		layered, err := ev.PredictProbs(xs)
		if err != nil {
			t.Fatal(err)
		}
		if ev.FusedActive() {
			t.Fatalf("workers=%d: engines active with fusion disabled", workers)
		}
		ev.SetFused(true)
		fused, err := ev.PredictProbs(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !ev.FusedActive() {
			t.Fatalf("workers=%d: fused engines did not activate for the paper net", workers)
		}
		for i := range fused {
			if math.Float64bits(fused[i]) != math.Float64bits(layered[i]) {
				t.Fatalf("workers=%d sample %d: fused %v != layered %v",
					workers, i, fused[i], layered[i])
			}
		}
		mFused, err := ev.EvalSet(samples, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetFused(false)
		mLayered, err := ev.EvalSet(samples, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if mFused != mLayered {
			t.Fatalf("workers=%d: fused metrics %+v != layered %+v", workers, mFused, mLayered)
		}
	}
}

// TestEvaluatorFusedShapeFallback scores a mixed-shape batch: the engines
// are compiled for the first sample's shape, and the paper net happens to
// accept a (2,6,6) input too (its pools drop the odd edges and land on the
// same fc1 width), so the off-shape samples must route to the
// layer-by-layer fallback per sample and the whole batch must still match
// the layered path bit for bit.
func TestEvaluatorFusedShapeFallback(t *testing.T) {
	net := dropoutNet(t, 61)
	good := randToyInput(2, 4, 4, 71)
	odd := randToyInput(2, 6, 6, 73)
	xs := []*tensor.Tensor{good, odd, good, odd}
	ev, err := NewEvaluator(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := ev.PredictProbs(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.FusedActive() {
		t.Fatal("fused engines did not activate")
	}
	if got, want := len(ev.engines[0].InShape()), 3; got != want {
		t.Fatalf("engine input rank %d, want %d", got, want)
	}
	if !ev.engines[0].Accepts(good) || ev.engines[0].Accepts(odd) {
		t.Fatal("engines should accept the compiled shape and reject the odd one")
	}
	ev.SetFused(false)
	layered, err := ev.PredictProbs(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fused {
		if math.Float64bits(fused[i]) != math.Float64bits(layered[i]) {
			t.Fatalf("sample %d: fused-with-fallback %v != layered %v", i, fused[i], layered[i])
		}
	}
}

// TestEvaluatorsFusedConcurrent runs several fused evaluators — each
// wrapping its own network clone — at the same time, each fanning across
// its own pool. Under -race this pins the engine ownership story: one
// engine per worker, arenas never shared, weight aliases read-only during
// evaluation.
func TestEvaluatorsFusedConcurrent(t *testing.T) {
	base := dropoutNet(t, 79)
	samples := imbalancedToy(30, 83)
	const evals = 4
	var wg sync.WaitGroup
	results := make([]Metrics, evals)
	errs := make([]error, evals)
	for g := 0; g < evals; g++ {
		net, err := base.Clone()
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvaluator(net, 3)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, ev *Evaluator) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				m, err := ev.EvalSet(samples, 0)
				if err != nil {
					errs[g] = err
					return
				}
				results[g] = m
			}
		}(g, ev)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("evaluator %d: %v", g, err)
		}
	}
	want, err := EvalSet(base, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	for g, m := range results {
		if m != want {
			t.Fatalf("evaluator %d: metrics %+v != serial %+v", g, m, want)
		}
	}
}

// randToyInput builds a deterministic random tensor for fallback tests.
func randToyInput(c, h, w int, seed int64) *tensor.Tensor {
	x := tensor.New(c, h, w)
	rng := newTestRNG(seed)
	for i := range x.Data() {
		x.Data()[i] = rng()
	}
	return x
}

// newTestRNG returns a tiny deterministic float generator (xorshift-based)
// so shape-fallback inputs don't depend on math/rand stream coupling.
func newTestRNG(seed int64) func() float64 {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s%2000)-1000) / 500.0
	}
}
