package lint

import (
	"go/ast"
	"strings"
)

// Timing enforces the observability clock policy from DESIGN.md: outside
// internal/obs, production code must not read the wall clock directly.
// All timing flows through the obs stopwatches and stage summaries
// (obs.NewStopwatch, Span, Summary.ObserveDuration), which keeps every
// clock read on the instrumentation side of the determinism boundary — a
// raw time.Now() invites feeding elapsed time back into computation,
// and scattered ad-hoc timers bypass the metrics registry entirely.
//
// internal/obs itself (suffix-matched, so fixtures can model it) is the
// one place allowed to call time.Now: the Stopwatch wraps it. _test.go
// files are skipped, and a genuinely exceptional site — a deadline
// computation for net.Conn, say — can carry `//hsd:allow timing` with a
// reason naming why the read cannot go through an obs timer.
var Timing = &Analyzer{
	Name: "timing",
	Doc:  "flags raw time.Now calls outside internal/obs; timing flows through obs stopwatches",
	Run:  runTiming,
}

func runTiming(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(pass.Info, call, "time", "Now") {
				pass.Reportf(call.Pos(), "raw time.Now outside internal/obs; use obs.NewStopwatch / a stage summary, or waive with //hsd:allow timing naming why this clock read cannot go through an obs timer")
			}
			return true
		})
	}
	return nil
}
