package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the whole-program view behind the interprocedural
// analyzers (hotlint, alloclint): a static call graph over go/types,
// resolved conservatively. Static calls and method calls on concrete
// receivers resolve to exactly one target. An interface-dispatched call
// resolves to every concrete method in the module whose receiver type
// implements the interface — an over-approximation, which is the safe
// direction for a reachability analysis. A call through a func value
// (closure variable, callback parameter, method value) cannot be resolved
// at all and is recorded as dynamic so hotlint can flag it at the site.
//
// Function literals are not separate graph nodes: a closure's body is
// walked as part of its enclosing declaration, so calls made inside a
// closure count as calls made by the declaring function. This
// over-approximates (the closure may only run off the hot path) but keeps
// the conservative direction. The one blind spot is a method value or
// closure *escaping* to a caller that invokes it elsewhere — the invoking
// site then sees a dynamic call, which hotlint flags, so the gap is
// reported rather than silent.

// annotation directives recognized on function declarations.
const (
	hotpathDirective = "//hsd:hotpath"
	noallocDirective = "//hsd:noalloc"
)

// FuncNode is one declared function or method in the module, with its
// resolved outgoing calls.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Hotpath and Noalloc record //hsd:hotpath and //hsd:noalloc
	// directives in the declaration's doc comment.
	Hotpath bool
	Noalloc bool

	// Calls lists every call expression in the body (closures included),
	// in source order.
	Calls []*CallSite
}

// Name returns the node's fully qualified name, e.g.
// "(hotspot/internal/nn/fused.*Engine).Forward".
func (n *FuncNode) Name() string { return n.Fn.FullName() }

// CallSite is one call expression inside a FuncNode body with its resolved
// targets.
type CallSite struct {
	Call *ast.CallExpr

	// Callees are the module-internal targets: one node for a static
	// call, every implementing method for an interface dispatch, empty
	// for calls leaving the module and for dynamic calls.
	Callees []*FuncNode

	// Ext is the callee for calls that resolve statically to a function
	// outside the module (standard library); nil otherwise.
	Ext *types.Func

	// Interface marks an interface-dispatched call (Callees holds the
	// conservative implementer set).
	Interface bool

	// Dynamic marks a call through a func value, unresolvable statically.
	Dynamic bool

	// Cold marks a call that executes only while aborting: inside a panic
	// argument, or inside a return statement of a function whose results
	// include error. Reachability does not follow cold edges — the callee
	// runs once as the hot loop dies, not per iteration.
	Cold bool
}

// Program is the whole-module view handed to program-level analyzers.
type Program struct {
	// Dir is the directory of the first loaded package — a module-internal
	// working directory for build-system commands an analyzer runs.
	Dir  string
	Fset *token.FileSet
	Pkgs []*Package

	// Nodes indexes every declared function with a body, keyed by
	// fully-qualified name ((*types.Func).FullName of the generic origin).
	// The key is a string, not the *types.Func itself, because each
	// package is type-checked separately: a cross-package call site
	// references the importer's object for the callee, which is a
	// different pointer from the object created when the callee's own
	// package was checked from source. The printed name is the identity
	// that survives the universe boundary.
	Nodes map[string]*FuncNode

	// nodeList is Nodes in source-position order, for deterministic
	// traversal and dumps.
	nodeList []*FuncNode
}

// BuildProgram constructs the call graph over the loaded packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Nodes: make(map[string]*FuncNode),
	}
	if len(pkgs) > 0 {
		prog.Dir = pkgs[0].Dir
		prog.Fset = pkgs[0].Fset
	}
	prog.Pkgs = pkgs

	// Pass 1: index every function declaration that has a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if strings.HasPrefix(c.Text, hotpathDirective) {
							node.Hotpath = true
						}
						if strings.HasPrefix(c.Text, noallocDirective) {
							node.Noalloc = true
						}
					}
				}
				prog.Nodes[origin(fn).FullName()] = node
				prog.nodeList = append(prog.nodeList, node)
			}
		}
	}
	sort.Slice(prog.nodeList, func(i, j int) bool {
		return posLess(prog.Fset, prog.nodeList[i].Decl.Pos(), prog.nodeList[j].Decl.Pos())
	})

	// Concrete named types in the module, for interface resolution.
	var concrete []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			concrete = append(concrete, t)
		}
	}

	// Pass 2: resolve every call expression.
	for _, node := range prog.nodeList {
		n := node
		walkStack(n.Decl.Body, func(an ast.Node, stack []ast.Node) bool {
			call, ok := an.(*ast.CallExpr)
			if !ok {
				return true
			}
			if site := prog.resolveCall(n.Pkg, call, concrete); site != nil {
				site.Cold = coldPos(n.Pkg.Info, call, stack)
				n.Calls = append(n.Calls, site)
			}
			return true
		})
	}
	return prog
}

// coldPos reports whether a call executes only while failing: inside a
// panic argument, or inside (or being) an error-construction call —
// fmt.Errorf, errors.New, errors.Join. Building an error value IS failure
// handling, so the `return nil, fmt.Errorf(..., x.Shape())` guard idiom
// stays legal without exempting ordinary tail calls like
// `return process(x)`, which are the main path, not a cold one.
func coldPos(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if isErrCtor(info, call) {
		return true
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if s, ok := stack[i].(*ast.CallExpr); ok {
			if isBuiltin(info, s, "panic") || isErrCtor(info, s) {
				return true
			}
		}
	}
	return false
}

// isErrCtor reports whether call constructs an error value.
func isErrCtor(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, "fmt", "Errorf") ||
		isPkgFunc(info, call, "errors", "New") ||
		isPkgFunc(info, call, "errors", "Join")
}

// resolveCall classifies one call expression. It returns nil for
// conversions and builtins, which are not calls in the graph sense.
func (prog *Program) resolveCall(pkg *Package, call *ast.CallExpr, concrete []types.Type) *CallSite {
	fun := ast.Unparen(call.Fun)
	// Type conversions: T(x).
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			return nil
		}
	}
	fn := funcOf(pkg.Info, call)
	if fn == nil {
		// Not a named function or method: a func value (closure variable,
		// callback parameter, returned function, method value).
		return &CallSite{Call: call, Dynamic: true}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		iface, ok := recv.Type().Underlying().(*types.Interface)
		if !ok {
			return &CallSite{Call: call, Dynamic: true}
		}
		return &CallSite{Call: call, Interface: true, Callees: prog.implementers(iface, fn, concrete)}
	}
	if target, ok := prog.Nodes[origin(fn).FullName()]; ok {
		return &CallSite{Call: call, Callees: []*FuncNode{target}}
	}
	return &CallSite{Call: call, Ext: fn}
}

// implementers returns the module methods that an interface call on m may
// dispatch to: for every concrete named type in the module implementing
// iface, the method with m's name.
func (prog *Program) implementers(iface *types.Interface, m *types.Func, concrete []types.Type) []*FuncNode {
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, t := range concrete {
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, m.Pkg(), m.Name())
		mf, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node, ok := prog.Nodes[origin(mf).FullName()]; ok && !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return posLess(prog.Fset, out[i].Decl.Pos(), out[j].Decl.Pos())
	})
	return out
}

// origin maps an instantiated generic function or method back to its
// declaration, which is what the node index is keyed by.
func origin(fn *types.Func) *types.Func { return fn.Origin() }

// Roots returns the //hsd:hotpath-annotated nodes in source order.
func (prog *Program) Roots() []*FuncNode {
	var roots []*FuncNode
	for _, n := range prog.nodeList {
		if n.Hotpath {
			roots = append(roots, n)
		}
	}
	return roots
}

// NoallocFuncs returns the //hsd:noalloc-annotated nodes in source order.
func (prog *Program) NoallocFuncs() []*FuncNode {
	var out []*FuncNode
	for _, n := range prog.nodeList {
		if n.Noalloc {
			out = append(out, n)
		}
	}
	return out
}

// Reachable walks the graph from the hotpath roots and returns every
// reachable node mapped to the root that first reaches it (breadth-first
// from roots in source order, so the attribution is deterministic).
// Traversal does not descend into packages for which skip returns true,
// does not follow cold edges (see CallSite.Cold), and skips any edge for
// which cut returns true (hotlint uses cut for waived call edges).
func (prog *Program) Reachable(skip func(pkgPath string) bool, cut func(from *FuncNode, site *CallSite) bool) map[*FuncNode]*FuncNode {
	reached := make(map[*FuncNode]*FuncNode)
	var queue []*FuncNode
	for _, r := range prog.Roots() {
		if reached[r] == nil {
			reached[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, site := range n.Calls {
			if site.Cold {
				continue
			}
			if cut != nil && len(site.Callees) > 0 && cut(n, site) {
				continue
			}
			for _, callee := range site.Callees {
				if reached[callee] != nil {
					continue
				}
				if skip != nil && skip(callee.Pkg.Path) {
					continue
				}
				reached[callee] = reached[n]
				queue = append(queue, callee)
			}
		}
	}
	return reached
}

// posLess orders two positions by (filename, offset).
func posLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	return pa.Offset < pb.Offset
}

// WriteGraph dumps the call graph as text: the annotated roots, then one
// line per call edge. The hsd-vet -callgraph flag exposes this as a debug
// surface (CI uploads it when the check gate fails).
func (prog *Program) WriteGraph(w io.Writer) error {
	reached := prog.Reachable(hotlintSkipPkg, nil)
	for _, r := range prog.Roots() {
		if _, err := fmt.Fprintf(w, "root %s\n", r.Name()); err != nil {
			return err
		}
	}
	for _, n := range prog.nodeList {
		mark := ""
		if reached[n] != nil {
			mark = " [hot]"
		}
		for _, site := range n.Calls {
			pos := prog.Fset.Position(site.Call.Pos())
			cold := ""
			if site.Cold {
				cold = " [cold]"
			}
			switch {
			case site.Dynamic:
				if _, err := fmt.Fprintf(w, "%s -> DYNAMIC (func value) at %s:%d%s\n", n.Name(), pos.Filename, pos.Line, mark+cold); err != nil {
					return err
				}
			case site.Interface:
				for _, c := range site.Callees {
					if _, err := fmt.Fprintf(w, "%s -> %s [interface] at %s:%d%s\n", n.Name(), c.Name(), pos.Filename, pos.Line, mark+cold); err != nil {
						return err
					}
				}
			case site.Ext != nil:
				// External (standard library) edges are elided except the
				// ones hotlint cares about, to keep the dump readable.
				if p := site.Ext.Pkg(); p != nil && hotlintExternalOfInterest(p.Path()) {
					if _, err := fmt.Fprintf(w, "%s -> %s [external] at %s:%d%s\n", n.Name(), site.Ext.FullName(), pos.Filename, pos.Line, mark+cold); err != nil {
						return err
					}
				}
			default:
				for _, c := range site.Callees {
					if _, err := fmt.Fprintf(w, "%s -> %s at %s:%d%s\n", n.Name(), c.Name(), pos.Filename, pos.Line, mark+cold); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
