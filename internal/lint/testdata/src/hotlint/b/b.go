// Package b proves hotlint's reach crosses package boundaries: it has no
// hot-path roots of its own, but package a's Root calls Work, so Work's
// breaches are diagnosed transitively with the root named in the message.
package b

import "sync"

var mu sync.Mutex

// Work is reached from a.Root; its synchronization is a transitive breach.
func Work() int {
	mu.Lock()         // want "Mutex..Lock on hot path .via root .*hotlint/a.Root"
	defer mu.Unlock() // want "Mutex..Unlock on hot path"
	return 1
}

// Idle is never reached from a root; its breach is not a finding.
func Idle() {
	mu.Lock()
	mu.Unlock()
}
