// Package a is a hotlint fixture: //hsd:hotpath roots whose transitive
// call trees carry every class of hot-loop breach, plus the clean idioms
// the analyzer must not flag.
package a

import (
	"fmt"
	"sort"

	"hotspot/internal/lint/testdata/src/hotlint/b"
)

type adder interface{ Add(int) int }

type impl struct{ n int }

func (i *impl) Add(v int) int { return i.n + v }

// Root is a hot-path root; everything below is checked transitively.
//hsd:hotpath
func Root(m map[int]int, ch chan int, xs []int, f func() int, a adder) int {
	s := 0
	for k := range m { // want "range over a map on hot path"
		s += k
	}
	ch <- s            // want "channel send on hot path"
	fmt.Println(s)     // want "fmt.Println on hot path"
	sort.Ints(xs)      // want "sort.Ints on hot path"
	s += f()           // want "func value on hot path"
	s += a.Add(1)      // want "interface-dispatched call"
	xs = append(xs, s) // want "append without capacity evidence"
	s += helper()
	s += b.Work()
	return s + len(xs)
}

// helper has no annotation; it is hot because Root reaches it.
func helper() int {
	x := <-tick // want "channel receive on hot path"
	return x
}

var tick = make(chan int, 1)

// Clean exercises every exempt idiom: evidenced appends, the exact-size
// nil-conversion clone, the cap-guard grow, and error-construction cold
// paths. None of it is a finding.
//hsd:hotpath
func Clean(xs []int) ([]int, error) {
	out := make([]int, 0, len(xs))
	out = append(out, xs...)
	clone := append([]int(nil), xs...)
	if len(clone) == 0 {
		return nil, fmt.Errorf("empty input of cap %d", cap(xs))
	}
	if cap(out) < 8 {
		out = append(out, 0)
	}
	return out, nil
}

// Waived carries a deliberate breach silenced by a justified waiver.
//hsd:hotpath
func Waived() {
	fmt.Println("once") //hsd:allow hotlint fixture: deliberate waived breach
}

// ColdCaller declares its call edge cold; the walk must not enter
// initTables, so the breach inside it is not a finding.
//hsd:hotpath
func ColdCaller() {
	initTables() //hsd:cold fixture: once-per-process table build
}

func initTables() {
	fmt.Println("building tables")
}

// NotHot is reached by no root; its breaches are not findings.
func NotHot(m map[int]int) {
	for range m {
	}
	fmt.Println("fine here")
}
