// Package noreason is a fixture for the mandatory-justification rule:
// hotlint waivers and cold directives without a reason string are
// themselves findings (loaded directly by lint_test, not linttest, since
// a want comment on the directive line would read as its reason).
package noreason

import "fmt"

//hsd:hotpath
func Root() {
	fmt.Println("x") //hsd:allow hotlint
}

//hsd:hotpath
func Root2() {
	skipped() //hsd:cold
}

func skipped() {}
