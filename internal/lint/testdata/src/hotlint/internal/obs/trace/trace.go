// Package trace models internal/obs/trace for the hotlint skip policy:
// the span mutators lock by design (a trace is shared across the request
// handler and the flush loop), and the reachability walk never enters the
// package — the hot path's protection is the nil-tracer zero-allocation
// benchmark, not this analyzer.
package trace

import "sync"

// Span is the mutating half the serving hot path touches.
type Span struct {
	mu  sync.Mutex
	dur int64
}

// EndWith locks: a breach anywhere hotlint traverses, invisible here.
func (s *Span) EndWith(d int64) {
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
}
