// Package c pins the internal/obs/trace skip: a hot-path root ending a
// span — which locks inside the trace package — is clean, because the
// walk never enters a package whose path ends in internal/obs/trace
// (the same policy internal/obs has always had).
package c

import "hotspot/internal/lint/testdata/src/hotlint/internal/obs/trace"

// Root is hot and traces its batch; no findings.
//
//hsd:hotpath
func Root(sp *trace.Span, d int64) {
	sp.EndWith(d)
}
