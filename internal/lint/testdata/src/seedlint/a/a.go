// Package a is the seedlint fixture: true positives for wall-clock seeds,
// global math/rand state, and unkeyed streams, next to true negatives for
// the repo's blessed keyed-stream constructors.
package a

import (
	"math/rand"
	"time"
)

// --- true positives -----------------------------------------------------

func globalState() int {
	rand.Seed(42)                      // want "math/rand global function rand.Seed"
	x := rand.Intn(9)                  // want "math/rand global function rand.Intn"
	rand.Shuffle(x, func(i, j int) {}) // want "math/rand global function rand.Shuffle"
	return x + rand.Int()              // want "math/rand global function rand.Int"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "wall-clock seed" "time.Now\\(\\).UnixNano\\(\\)"
}

func wallClockSource() rand.Source {
	return rand.NewSource(time.Now().Unix()) // want "wall-clock seed"
}

func unkeyedStream(src rand.Source) *rand.Rand {
	return rand.New(src) // want "rand.New over an indirect source"
}

func bareUnixNano() int64 {
	return time.Now().UnixNano() // want "wall-clock value"
}

// --- true negatives: the blessed constructors ---------------------------

// keyedStream is the blessed shape: the seed is auditable at the call
// site and comes from configuration.
func keyedStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// positionKeyed derives per-item streams from (seed, position), the
// pattern layout.BuildSuite uses for worker-count-independent generation.
func positionKeyed(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9))
}

// splitmix64 is the finalizer behind train.sampleSeed and the nn dropout
// mask stream: pure function of its input, no global state, not flagged.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// methodDraws on an explicit keyed stream are fine; only package-level
// global-state calls are flagged.
func methodDraws(seed int64) float64 {
	r := keyedStream(seed)
	return r.Float64() + float64(r.Intn(10))
}

// timingOnly: time.Now for elapsed-time measurement is not a seed.
func timingOnly() time.Duration {
	start := time.Now()
	_ = splitmix64(1)
	return time.Since(start)
}
