// Package parallel models the real internal/parallel package: its import
// path ends in internal/parallel, so goroutinelint exempts it — the
// bounded pool has to start its own workers somewhere.
package parallel

func pool(n int, work func(int)) chan struct{} {
	done := make(chan struct{})
	for w := 0; w < n; w++ {
		go func(worker int) { // true negative: the pool itself may spawn
			work(worker)
			done <- struct{}{}
		}(w)
	}
	return done
}
