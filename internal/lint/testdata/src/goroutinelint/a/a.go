// Package a is the goroutinelint fixture: raw goroutines outside
// internal/parallel are flagged.
package a

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func() { // want "raw goroutine outside internal/parallel"
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}

func fireAndForget(f func()) {
	go f() // want "raw goroutine outside internal/parallel"
}

// inline closures without the go keyword are fine.
func sequential(work []func()) {
	for _, w := range work {
		func() { w() }()
	}
}
