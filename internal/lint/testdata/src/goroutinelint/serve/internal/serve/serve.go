// Package serve is the goroutinelint fixture for the serving-layer
// policy: raw goroutines are still findings here (with the serving-layer
// message), but a //hsd:allow goroutinelint waiver naming the shutdown
// path that joins the goroutine silences the finding — that is the
// documented contract for service loops like the micro-batcher's flush
// loop.
package serve

// batcher models a service with a long-lived flush loop.
type batcher struct {
	stop chan struct{}
	done chan struct{}
}

// start launches the flush loop with the documented waiver: allowed.
func (b *batcher) start() {
	go b.loop() //hsd:allow goroutinelint service loop; joined by Close, which closes stop and blocks on done
}

func (b *batcher) loop() {
	<-b.stop
	close(b.done)
}

// Close is the shutdown path the waiver names.
func (b *batcher) Close() {
	close(b.stop)
	<-b.done
}

// leak starts an unwaived goroutine: flagged with the serving-layer
// message, not the generic one.
func (b *batcher) leak() {
	go b.loop() // want "raw goroutine in the serving layer"
}

// fanOut is batch fan-out dressed as serving code: no waiver, flagged.
func fanOut(work []func()) {
	for _, w := range work {
		go w() // want "raw goroutine in the serving layer"
	}
}
