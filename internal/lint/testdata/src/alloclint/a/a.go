// Package a is an alloclint fixture: functions under the noalloc
// directive are checked against the compiler's escape analysis.
package a

// Sink keeps escapes observable: anything assigned here leaves the frame.
var Sink []float64

// Escaping allocates a buffer that escapes to the heap — a finding.
//hsd:noalloc
func Escaping(n int) {
	buf := make([]float64, n) // want "heap allocation in //hsd:noalloc .*a\\.Escaping"
	Sink = buf
}

// Clean writes in place; stack-only work is not a finding.
//hsd:noalloc
func Clean(dst []float64, v float64) float64 {
	s := 0.0
	for i := range dst {
		dst[i] = v
		s += v
	}
	return s
}

// Waived escapes too, but the justified waiver suppresses the finding.
//hsd:noalloc
func Waived(n int) {
	Sink = make([]float64, n) //hsd:allow alloclint fixture: deliberate waived escape
}

// Free allocates without the directive; alloclint does not police it.
func Free(n int) []float64 {
	return make([]float64, n)
}
