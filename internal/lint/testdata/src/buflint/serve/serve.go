// Package serve is a buflint fixture for the batcher bodies: any
// per-batch slice make in run/fill/drain churns at request rate, whatever
// the element type — the scratch and slot buffers exist to be reused.
package serve

type batcher struct {
	scratch []int
}

func (b *batcher) run(n int) []int {
	xs := make([]int, 0, n)  // want "per-call make of a slice in hot path serve.run"
	ss := make([]string, n)  // want "per-call make of a slice in hot path serve.run"
	_ = ss
	if cap(b.scratch) < n {
		b.scratch = make([]int, 0, n) // grow-once behind a cap guard: clean
	}
	return append(xs, n)
}

func (b *batcher) fill(n int) []int {
	return make([]int, n) // want "per-call make of a slice in hot path serve.fill"
}

func (b *batcher) drain() {
	_ = make([]byte, 8) // want "per-call make of a slice in hot path serve.drain"
}

func (b *batcher) helper(n int) []int {
	return make([]int, n) // not a batcher body: clean
}
