// Package feature is a buflint fixture for the shared block-DCT kernel:
// EncodeInto runs once per block for every block of a scanned die, and
// its scratch lives on the encoder. Constructors and the non-kernel
// helpers stay legal, as does integer scratch (the rule covers floats).
package feature

type encoder struct {
	coef []float64
}

func (e *encoder) EncodeInto(dst, block []float64) {
	tmp := make([]float64, len(block)) // want "per-call make of a float slice in hot path feature.EncodeInto"
	copy(tmp, block)
	zig := make([]int, len(dst)) // int slice — the feature rule covers floats only: clean
	_ = zig
	if cap(e.coef) < len(block) {
		e.coef = make([]float64, len(block)) // grow-once behind a cap guard: clean
	}
	copy(dst, e.coef)
}

func newEncoder(n int) *encoder {
	return &encoder{coef: make([]float64, n)} // constructor: clean
}

// SqDist is the active selector's pairwise-distance kernel: one call per
// (candidate, center) pair, so per-call float scratch is churn.
func SqDist(a, b []float64) float64 {
	diff := make([]float64, len(a)) // want "per-call make of a float slice in hot path feature.SqDist"
	s := 0.0
	for i := range a {
		diff[i] = a[i] - b[i]
		s += diff[i] * diff[i]
	}
	return s
}
