// Package active is a buflint fixture for the k-center selector's inner
// loop: updateMinDist runs once per (candidate, center) pair per selection
// round, and its candidate scratch lives on the selector. The rule covers
// every slice element type — index scratch churns as badly as float
// scratch at selection rate. Constructors and cap-guarded growth stay
// legal.
package active

type cand struct {
	x       []float64
	minDist float64
}

type selector struct {
	cand    []cand
	scratch []float64
}

func (s *selector) updateMinDist(i int, center []float64) {
	diff := make([]float64, len(center)) // want "per-call make of a slice in hot path active.updateMinDist"
	for j := range center {
		diff[j] = s.cand[i].x[j] - center[j]
	}
	order := make([]int, len(center)) // want "per-call make of a slice in hot path active.updateMinDist"
	_ = order
	if cap(s.scratch) < len(center) {
		s.scratch = make([]float64, len(center)) // grow-once behind a cap guard: clean
	}
	s.cand[i].minDist = s.scratch[0]
}

func newSelector(n int) *selector {
	return &selector{cand: make([]cand, n)} // constructor: clean
}
