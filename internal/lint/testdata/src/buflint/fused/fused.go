// Package fused is the buflint fixture for the compiled inference engine:
// its Forward must execute entirely out of the compile-time arena, so an
// unguarded float-slice make there is flagged just like in nn/tensor/train,
// while compile-time planning allocates freely.
package fused

type engine struct {
	arena []float64
	out   []float64
}

// --- true positives -----------------------------------------------------

func (e *engine) Forward(x []float64) []float64 {
	scratch := make([]float64, len(x)) // want "per-call make of a float slice in hot path fused.Forward"
	copy(scratch, x)
	return scratch
}

// --- true negatives -----------------------------------------------------

type planned struct {
	arena []float64
}

// Forward growing the arena behind a cap guard is the amortized idiom and
// stays legal (the real engine never even needs it — the plan is exact).
func (p *planned) Forward(x []float64) []float64 {
	if cap(p.arena) < len(x) {
		p.arena = make([]float64, len(x))
	}
	p.arena = p.arena[:len(x)]
	copy(p.arena, x)
	return p.arena
}

// compile is cold: arena planning is exactly where allocation belongs.
func compile(n int) *engine {
	return &engine{arena: make([]float64, n)}
}
