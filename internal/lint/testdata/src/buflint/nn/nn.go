// Package nn is the buflint positive fixture: its base name matches a hot
// package, so unguarded float-slice makes in Forward/Backward are flagged
// while cap-guarded growth, cold methods, and non-float makes are not.
package nn

type layer struct {
	out []float64
	idx []int
}

// --- true positives -----------------------------------------------------

func (l *layer) Forward(x []float64) []float64 {
	out := make([]float64, len(x)) // want "per-call make of a float slice in hot path nn.Forward"
	copy(out, x)
	return out
}

func (l *layer) Backward(grad []float64) []float64 {
	dx := make([]float64, len(grad)) // want "per-call make of a float slice in hot path nn.Backward"
	for i, g := range grad {
		dx[i] = g * 2
	}
	return dx
}

func (l *layer) forward(x []float32) []float32 {
	return make([]float32, len(x)) // want "per-call make of a float slice in hot path nn.forward"
}

// --- true negatives -----------------------------------------------------

type cached struct {
	out []float64
	idx []int
}

// Forward here grows its buffer behind a cap guard — the amortized
// grow-once idiom buflint exists to protect — and allocates non-float
// bookkeeping freely.
func (c *cached) Forward(x []float64) []float64 {
	if cap(c.out) < len(x) {
		c.out = make([]float64, len(x))
	}
	c.out = c.out[:len(x)]
	c.idx = make([]int, len(x)) // non-float bookkeeping: not flagged
	copy(c.out, x)
	return c.out
}

func (c *cached) Backward(grad []float64) []float64 {
	if cap(c.out) < len(grad) {
		c.out = make([]float64, len(grad))
	}
	c.out = c.out[:len(grad)]
	return c.out
}

// newScratch is cold — construction-time allocation is exactly where
// buffers should be made.
func newScratch(n int) *cached {
	return &cached{out: make([]float64, n)}
}
