// Package dct is a buflint fixture for the Into kernels: their contract
// is writing into caller storage, so a float-slice make inside one belies
// the name. Integer index scratch and non-Into helpers stay legal.
package dct

func ForwardInto(dst, src []float64) {
	tmp := make([]float64, len(src)) // want "per-call make of a float slice in hot path dct.ForwardInto"
	copy(tmp, src)
	copy(dst, tmp)
}

func scaleInto(dst []float64, s float64) {
	idx := make([]int, len(dst)) // int slice — the dct rule covers floats only: clean
	_ = idx
	for i := range dst {
		dst[i] *= s
	}
}

func Forward(src []float64) []float64 {
	return make([]float64, len(src)) // not an Into kernel: clean
}
