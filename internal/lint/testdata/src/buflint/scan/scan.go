// Package scan is a buflint fixture for the die-scan hot bodies: the
// extract and score passes run once per block / per window over millions
// of windows, so a per-item make of any slice type is churn at scan rate.
// Scanner-construction helpers stay legal.
package scan

type scanner struct {
	block  []float64
	planes []float64
}

func (s *scanner) encodeRegion(n int) {
	px := make([]float64, n) // want "per-call make of a slice in hot path scan.encodeRegion"
	_ = px
	ids := make([]int, n) // want "per-call make of a slice in hot path scan.encodeRegion"
	_ = ids
	if cap(s.block) < n {
		s.block = make([]float64, n) // grow-once behind a cap guard: clean
	}
}

func (s *scanner) scoreRow(n int) []float64 {
	return make([]float64, n) // want "per-call make of a slice in hot path scan.scoreRow"
}

func (s *scanner) assembleWindow(n int) {
	_ = make([]byte, n) // want "per-call make of a slice in hot path scan.assembleWindow"
}

func (s *scanner) newPlanes(n int) []float64 {
	return make([]float64, n) // construction, not a pass body: clean
}
