// Package other is the buflint scope fixture: the package base name is
// not nn/tensor/train, so even an unguarded float-slice make inside a
// Forward method is out of scope.
package other

type box struct{}

func (box) Forward(x []float64) []float64 {
	out := make([]float64, len(x)) // cold package: not flagged
	copy(out, x)
	return out
}
