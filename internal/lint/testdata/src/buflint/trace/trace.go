// Package trace is a buflint fixture for the flight recorder's hot
// bodies: record and keepSlow run once per finished trace at request
// rate, so a per-call make of any slice type is churn. Rings are sized at
// construction and slow buckets are allocated once per endpoint
// (newBucket), which stays legal.
package trace

type recorder struct {
	recent []*int
	slowN  int
}

func (r *recorder) record(n int) {
	reasons := make([]string, n) // want "per-call make of a slice in hot path trace.record"
	_ = reasons
}

func (r *recorder) keepSlow(n int) {
	b := make([]*int, 0, n) // want "per-call make of a slice in hot path trace.keepSlow"
	_ = b
	if cap(r.recent) < n {
		r.recent = make([]*int, n) // grow-once behind a cap guard: clean
	}
}

func (r *recorder) newBucket() []*int {
	return make([]*int, 0, r.slowN) // once per endpoint, not a hot body: clean
}
