// Package a is the floatlint fixture: float equality and map-ordered
// float reduction positives, with exact-zero gates and ordered reductions
// as negatives.
package a

import (
	"math"
	"sort"
)

// --- true positives -----------------------------------------------------

func compares(a, b float64, c float32) bool {
	if a == b { // want "float == comparison"
		return true
	}
	if c != 2.5 { // want "float != comparison"
		return false
	}
	return a != b // want "float != comparison"
}

func mapAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation over map iteration order"
	}
	total := 1.0
	for _, v := range m {
		total = total * v // want "float accumulation over map iteration order"
	}
	return sum + total
}

// --- true negatives -----------------------------------------------------

// zeroGate: comparison against exact constant zero is a deterministic
// sparsity gate (the density-gated matmul idiom).
func zeroGate(v float64) bool {
	return v == 0 || 0.0 != v
}

// bitIdentity is the blessed spelling for intentional exact identity.
func bitIdentity(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// intCompare: integer equality is fine.
func intCompare(a, b int) bool { return a == b }

// sliceAccum: reduction over a slice is index-ordered and deterministic.
func sliceAccum(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// sortedKeys is the blessed fix for map reduction: iterate sorted keys.
func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// localTemp: a float temporary scoped inside the loop body cannot leak
// iteration order out of the loop.
func localTemp(m map[string]float64) int {
	n := 0
	for _, v := range m {
		t := v
		t += 1
		if t > 2 {
			n++ // integer counting is order-independent
		}
	}
	return n
}
