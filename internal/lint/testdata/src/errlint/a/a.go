// Package a is the errlint fixture: discarded error returns in statement
// position are flagged; explicit discards, checked errors, infallible
// writers, and hsd:allow waivers are not.
package a

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

type sink struct{}

func (sink) Close() error                { return nil }
func (sink) Flush() error                { return nil }
func (sink) Write(p []byte) (int, error) { return len(p), nil }

func save(w io.Writer) error {
	_, err := w.Write([]byte("x"))
	return err
}

// --- true positives -----------------------------------------------------

func discards(w io.Writer) {
	var s sink
	s.Flush()                   // want "s.Flush discards its error"
	save(w)                     // want "save discards its error"
	fmt.Fprintf(w, "n=%d\n", 1) // want "fmt.Fprintf discards its error"
	defer s.Close()             // want "deferred s.Close discards its error"
}

// --- true negatives -----------------------------------------------------

func handled(w io.Writer) error {
	var s sink
	if err := save(w); err != nil {
		return err
	}
	_ = s.Flush() // explicit discard is a visible decision
	fmt.Println("done")
	return s.Close()
}

// buffers: bytes.Buffer and strings.Builder writes never fail.
func buffers() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "n=%d\n", 1)
	buf.WriteString("tail")
	var b strings.Builder
	b.WriteString(buf.String())
	return b.String()
}

// waived: an hsd:allow directive with a reason silences one line.
func waived() {
	var s sink
	s.Flush() //hsd:allow errlint fixture proves the waiver works
}

// noError: calls without an error result are never flagged.
func noError() {
	var b strings.Builder
	_ = b.Len()
	fmt.Sprint("x")
}
