// Package a is the timing fixture: raw time.Now reads outside
// internal/obs are flagged — timing belongs on the obs stopwatches —
// unless the site carries an //hsd:allow timing waiver with a reason.
package a

import "time"

// adHocTimer is the pattern the analyzer exists to kill: a wall-clock
// read bypassing the metrics registry.
func adHocTimer(work func()) time.Duration {
	start := time.Now() // want "raw time.Now outside internal/obs"
	work()
	return time.Since(start)
}

// nested reads are flagged too, not just statement-level ones.
func stamp() int64 {
	return time.Now().UnixNano() // want "raw time.Now outside internal/obs"
}

// deadline documents the waiver contract: a clock read that must produce
// an absolute time (not an elapsed duration) cannot go through a
// stopwatch, and says so.
func deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout) //hsd:allow timing absolute deadline for a conn, not a measurement; obs timers only yield durations
}

// durations without a clock read are fine.
func budget() time.Duration {
	return 3 * time.Second
}
