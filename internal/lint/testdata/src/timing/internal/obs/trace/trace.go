// Package trace models internal/obs/trace for the timing policy: its
// path ends in internal/obs/trace, which does NOT suffix-match the
// internal/obs exemption — the trace layer is held to the same clock
// discipline as the rest of the tree. Its durations arrive externally
// measured (obs.Stopwatch readings threaded through EndWith/FinishWith),
// never from a wall-clock read of its own.
package trace

import "time"

// stamp is the breach the fixture pins: a recorder reading the clock
// directly instead of taking an externally measured duration.
func stamp() time.Time {
	return time.Now() // want "raw time.Now outside internal/obs"
}

var _ = stamp
