// Package obs models the real internal/obs package: its import path ends
// in internal/obs, so timing exempts it — the Stopwatch has to read the
// clock somewhere.
package obs

import "time"

// Stopwatch is the one sanctioned wrapper around the wall clock.
type Stopwatch struct{ start time.Time }

// NewStopwatch reads the clock: true negative, the exemption in action.
func NewStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed reports the time since construction.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
