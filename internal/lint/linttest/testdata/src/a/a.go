// Package a is the harness's own fixture: one matched expectation, one
// unexpected diagnostic, one unmatched expectation. The harness test
// drives a toy analyzer over it and asserts both failure channels fire.
package a

func Flagged() {} // want "boom"

func FlagMiss() {}

func Clean() {} // want "boom"
