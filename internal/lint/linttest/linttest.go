// Package linttest is a golden-file test harness for internal/lint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// Fixture packages live under testdata/src/<analyzer>/... and are real,
// compiling Go packages. A line that should trigger a finding carries a
// trailing comment of the form
//
//	expr // want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. Run fails
// the test for every diagnostic with no matching expectation (false
// positive) and every expectation with no matching diagnostic (false
// negative), so fixtures double as both true-positive and true-negative
// proofs.
package linttest

import (
	"regexp"
	"strconv"
	"testing"

	"hotspot/internal/lint"
)

// TB is the slice of testing.TB the harness reports through, split out so
// the harness's own failure reporting is testable with a recording fake.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
}

// expectation is one `// want "re"` entry, addressed by file and line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads each fixture package directory, applies the analyzer, and
// checks its diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, dirs ...string) {
	t.Helper()
	RunTB(t, a, dirs...)
}

// RunTB is Run over the narrow TB interface.
func RunTB(t TB, a *lint.Analyzer, dirs ...string) {
	t.Helper()
	pkgs, err := lint.Load(".", dirs...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", dirs)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}

	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		if w := claim(wants, d.Pos.Filename, d.Pos.Line, d.Message); w == nil {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matched %q", w.file, w.line, a.Name, w.raw)
		}
	}
}

// claim finds the first unmatched expectation on (file, line) whose regexp
// matches message, marks it matched, and returns it.
func claim(wants []*expectation, file string, line int, message string) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}
