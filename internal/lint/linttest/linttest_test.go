package linttest_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"hotspot/internal/lint"
	"hotspot/internal/lint/linttest"
)

// recorder is a TB fake that captures failure reports.
type recorder struct {
	errors []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

// flagger reports "boom" at every function whose name starts with "Flag".
var flagger = &lint.Analyzer{
	Name: "flagger",
	Doc:  "test analyzer: flags Flag* declarations",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
					pass.Reportf(fd.Pos(), "boom")
				}
			}
		}
		return nil
	},
}

// TestReporting drives the harness over a fixture holding one matched
// expectation, one diagnostic with no expectation, and one expectation
// with no diagnostic — the harness must report exactly the last two.
func TestReporting(t *testing.T) {
	rec := &recorder{}
	linttest.RunTB(rec, flagger, "./testdata/src/a")
	if len(rec.fatals) != 0 {
		t.Fatalf("unexpected fatals: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("got %d errors, want 2:\n%s", len(rec.errors), strings.Join(rec.errors, "\n"))
	}
	var unexpected, missing bool
	for _, e := range rec.errors {
		if strings.Contains(e, "unexpected diagnostic") && strings.Contains(e, "boom") {
			unexpected = true
		}
		if strings.Contains(e, "no flagger diagnostic matched") && strings.Contains(e, "boom") {
			missing = true
		}
	}
	if !unexpected {
		t.Errorf("no unexpected-diagnostic report for FlagMiss's finding: %v", rec.errors)
	}
	if !missing {
		t.Errorf("no missing-diagnostic report for Clean's want: %v", rec.errors)
	}
}

// TestBadPattern asserts the harness dies cleanly on an unloadable
// fixture path instead of limping into confusing match failures.
func TestBadPattern(t *testing.T) {
	rec := &recorder{}
	linttest.RunTB(rec, flagger, "./testdata/src/does-not-exist")
	if len(rec.fatals) == 0 {
		t.Fatal("no fatal report for a nonexistent fixture directory")
	}
}
