package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Errlint flags call statements that silently discard a returned error.
// Training, evaluation, and dataset I/O all propagate errors; a dropped
// error (an unchecked Close on a file being written, a Flush that never
// got checked) turns data loss into a green run. Discarding must be
// explicit — `_ = f.Close()` — so the decision survives review.
//
// Infallible writers are exempt: fmt.Print/Printf/Println to stdout, and
// any fmt.Fprint*/method call writing into a *bytes.Buffer or
// *strings.Builder, whose Write methods are documented never to return an
// error.
var Errlint = &Analyzer{
	Name: "errlint",
	Doc:  "flags discarded error returns in statement position",
	Run:  runErrlint,
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether the call's result includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(tv.Type, errorType)
	}
}

// isInfallibleBuffer reports whether t is (a pointer to) bytes.Buffer or
// strings.Builder.
func isInfallibleBuffer(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (path == "bytes" && name == "Buffer") || (path == "strings" && name == "Builder")
}

// allowedErrDiscard reports whether the discarded error is from a source
// documented never to fail.
func allowedErrDiscard(info *types.Info, call *ast.CallExpr) bool {
	fn := funcOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return isInfallibleBuffer(recv.Type())
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && isInfallibleBuffer(info.Types[call.Args[0]].Type)
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "call"
	}
	return b.String()
}

func runErrlint(pass *Pass) error {
	check := func(call *ast.CallExpr, how string) {
		if !returnsError(pass.Info, call) || allowedErrDiscard(pass.Info, call) {
			return
		}
		pass.Reportf(call.Pos(), "%s%s discards its error; handle it or assign to _ explicitly",
			how, exprString(pass.Fset, call.Fun))
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(n.Call, "deferred ")
			}
			return true
		})
	}
	return nil
}
