// Package lint is the project-specific static-analysis suite behind
// cmd/hsd-vet. It enforces the determinism, numerics, and concurrency
// contracts that make the repo's results reproducible (DESIGN.md
// "Determinism & numerics rules"): keyed RNG streams instead of wall-clock
// or global randomness (seedlint), no float equality or map-ordered float
// reduction (floatlint), all fan-out on internal/parallel's bounded pool
// (goroutinelint), no silently discarded errors (errlint), no per-call
// slice churn in the nn/tensor/train/fused/serve/dct hot paths (buflint),
// and no raw wall-clock reads outside internal/obs (timing). Two
// interprocedural analyzers work on a static call graph of the whole
// module (see callgraph.go): hotlint walks everything reachable from
// //hsd:hotpath roots and flags transitive breaches of the hot-loop
// contract, and alloclint parses `go build -gcflags='-m -m'` escape
// diagnostics to verify that //hsd:noalloc functions never allocate.
//
// The package mirrors the golang.org/x/tools/go/analysis contract
// (Analyzer, Pass, Diagnostic) on the standard library alone — go/ast for
// syntax, go/types fed by `go list -export` export data for semantics — so
// the module stays dependency-free and the tool builds offline.
//
// A finding can be silenced with a trailing or preceding comment of the
// form `//hsd:allow <analyzer> <reason>`; the reason is mandatory by
// convention so the suppression documents why the invariant is safe to
// waive at that site. A second directive, `//hsd:cold <reason>`, declares
// a call edge cold: hotlint's reachability walk does not follow it (the
// canonical case is a lazy once-per-reload initialization reached from a
// hot loop). Suppression and edge-cutting are deliberately separate
// grammars — waiving an interface-dispatch finding must not silently
// un-check everything behind the call.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named, independently runnable check.
// The shape deliberately matches golang.org/x/tools/go/analysis.Analyzer
// so analyzers can migrate to the upstream driver if the dependency ever
// becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only filters, and
	// waiver directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one package and reports findings
	// through the pass. A non-nil error aborts the whole run (reserved
	// for analyzer bugs, not findings).
	Run func(*Pass) error

	// RunProgram, when set instead of Run, applies the analyzer once to
	// the whole loaded program — the interprocedural analyzers (hotlint,
	// alloclint) work on the call graph rather than package by package.
	RunProgram func(*ProgramPass) error
}

// A ProgramPass presents the whole-program call graph to an
// interprocedural analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	// Waivers are every //hsd:allow and //hsd:cold directive in the
	// loaded packages (cold directives carry Analyzer == "cold"). Hotlint
	// treats cold directives on call sites as traversal barriers and
	// marks the ones that cut an edge as Used.
	Waivers []*Waiver

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Prog.Fset.Position(pos), format, args...)
}

// ReportAt records a finding at an already-resolved position — for
// analyzers whose facts come from outside the fileset (alloclint's
// compiler diagnostics).
func (p *ProgramPass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Seedlint, Floatlint, Goroutinelint, Errlint, Buflint, Timing, Hotlint, Alloclint}
}

// Select resolves a comma-separated list of analyzer names, defaulting to
// All when the list is empty.
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. hsd:allow-suppressed findings are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAll(pkgs, analyzers)
	return diags, err
}

// RunAll is Run plus the waiver ledger: every `//hsd:allow` directive seen
// in the loaded packages, with Used marking the ones that suppressed at
// least one finding this run. hsd-vet -waivers uses the ledger to fail on
// stale waivers; hotlint/alloclint waivers additionally require a
// justification string, enforced here.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []*Waiver, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	waivers := collectWaivers(pkgs)

	// Program-level analyzers run once over all packages; the graph is
	// built lazily so package-scoped invocations stay cheap.
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = BuildProgram(pkgs)
		}
		pp := &ProgramPass{Analyzer: a, Prog: prog, Waivers: waivers, diags: &diags}
		if err := a.RunProgram(pp); err != nil {
			return nil, nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}

	diags = applyWaivers(diags, waivers)

	// A hotlint/alloclint waiver relaxes a whole-program contract, so it
	// must say why. Emitted after suppression so a reason-less waiver
	// cannot silence its own violation.
	selected := make(map[string]bool)
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	for _, w := range waivers {
		if strings.TrimSpace(w.Reason) != "" {
			continue
		}
		switch {
		case (w.Analyzer == "hotlint" || w.Analyzer == "alloclint") && selected[w.Analyzer]:
			diags = append(diags, Diagnostic{
				Analyzer: w.Analyzer,
				Pos:      w.Pos,
				Message:  fmt.Sprintf("hsd:allow %s waiver needs a justification string", w.Analyzer),
			})
		case w.Analyzer == ColdDirective && selected["hotlint"]:
			diags = append(diags, Diagnostic{
				Analyzer: "hotlint",
				Pos:      w.Pos,
				Message:  "hsd:cold directive needs a justification string",
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, waivers, nil
}

// A Waiver is one `//hsd:allow <analyzer> <reason>` or
// `//hsd:cold <reason>` directive found in the tree (the latter carries
// Analyzer == "cold"). Used is set when the directive suppressed at least
// one finding — or, for cold directives, cut at least one call edge — in
// the run that collected it.
type Waiver struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Used     bool
}

// allowRE matches a waiver directive at the start of a comment. Anchoring
// to the comment opener keeps prose *mentions* of hsd:allow (analyzer doc
// strings, this file) from registering as directives.
var allowRE = regexp.MustCompile(`^//\s*hsd:allow\s+([a-z0-9_,-]+)[ \t]*(.*)$`)

// coldRE matches a cold-edge declaration: `//hsd:cold <reason>`.
var coldRE = regexp.MustCompile(`^//\s*hsd:cold(?:[ \t]+(.*))?$`)

// ColdDirective is the pseudo-analyzer name cold-edge declarations carry
// in the waiver ledger.
const ColdDirective = "cold"

// allowKey addresses one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectWaivers gathers the `//hsd:allow name reason` directives from
// every loaded file, in deterministic (file, line) order.
func collectWaivers(pkgs []*Package) []*Waiver {
	var out []*Waiver
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if m := coldRE.FindStringSubmatch(c.Text); m != nil {
						out = append(out, &Waiver{
							Pos:      pkg.Fset.Position(c.Pos()),
							Analyzer: ColdDirective,
							Reason:   strings.TrimSpace(m[1]),
						})
						continue
					}
					m := allowRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, name := range strings.Split(m[1], ",") {
						out = append(out, &Waiver{
							Pos:      pos,
							Analyzer: name,
							Reason:   strings.TrimSpace(m[2]),
						})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// applyWaivers drops findings covered by a waiver directive on the same
// line or the line above (so a directive can trail the offending
// expression or sit on its own line above it), marking the waivers that
// fired.
func applyWaivers(diags []Diagnostic, waivers []*Waiver) []Diagnostic {
	if len(waivers) == 0 {
		return diags
	}
	byKey := make(map[allowKey][]*Waiver)
	for _, w := range waivers {
		if w.Analyzer == ColdDirective {
			// Cold directives cut edges; they never silence findings.
			continue
		}
		byKey[allowKey{w.Pos.Filename, w.Pos.Line, w.Analyzer}] = append(byKey[allowKey{w.Pos.Filename, w.Pos.Line, w.Analyzer}], w)
		byKey[allowKey{w.Pos.Filename, w.Pos.Line + 1, w.Analyzer}] = append(byKey[allowKey{w.Pos.Filename, w.Pos.Line + 1, w.Analyzer}], w)
	}
	kept := diags[:0]
	for _, d := range diags {
		ws := byKey[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
		if len(ws) == 0 {
			kept = append(kept, d)
			continue
		}
		for _, w := range ws {
			w.Used = true
		}
	}
	return kept
}

// isTestFile reports whether the file at pos is a _test.go file. Analyzers
// that enforce production-code invariants skip tests, where exact float
// golden checks and ad-hoc goroutines are legitimate.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// walkStack visits every node under root, passing the stack of enclosing
// nodes (outermost first, not including n itself). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// funcOf resolves a call's callee to the *types.Func it invokes, whether
// through a plain identifier, a package selector, or a method value.
// Returns nil for builtins, conversions, and indirect calls.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := funcOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isBuiltin reports whether call invokes the named builtin (make, cap, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
