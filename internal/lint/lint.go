// Package lint is the project-specific static-analysis suite behind
// cmd/hsd-vet. It enforces the determinism, numerics, and concurrency
// contracts that make the repo's results reproducible (DESIGN.md
// "Determinism & numerics rules"): keyed RNG streams instead of wall-clock
// or global randomness (seedlint), no float equality or map-ordered float
// reduction (floatlint), all fan-out on internal/parallel's bounded pool
// (goroutinelint), no silently discarded errors (errlint), no per-call
// slice churn in the nn/tensor/train hot paths (buflint), and no raw
// wall-clock reads outside internal/obs (timing).
//
// The package mirrors the golang.org/x/tools/go/analysis contract
// (Analyzer, Pass, Diagnostic) on the standard library alone — go/ast for
// syntax, go/types fed by `go list -export` export data for semantics — so
// the module stays dependency-free and the tool builds offline.
//
// A finding can be silenced with a trailing or preceding comment of the
// form `//hsd:allow <analyzer> <reason>`; the reason is mandatory by
// convention so the suppression documents why the invariant is safe to
// waive at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named, independently runnable check.
// The shape deliberately matches golang.org/x/tools/go/analysis.Analyzer
// so analyzers can migrate to the upstream driver if the dependency ever
// becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only filters, and
	// hsd:allow directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the analyzer to one package and reports findings
	// through the pass. A non-nil error aborts the whole run (reserved
	// for analyzer bugs, not findings).
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Seedlint, Floatlint, Goroutinelint, Errlint, Buflint, Timing}
}

// Select resolves a comma-separated list of analyzer names, defaulting to
// All when the list is empty.
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position. hsd:allow-suppressed findings are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = filterAllowed(diags, allowed)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

var allowRE = regexp.MustCompile(`hsd:allow\s+([a-z0-9_,-]+)`)

// allowKey addresses one suppressed (file line, analyzer) pair.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowDirectives collects `//hsd:allow name` comments. A directive
// suppresses the named analyzer on its own line and the line below, so it
// can trail the offending expression or sit on its own line above it.
func allowDirectives(pkg *Package) map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					out[allowKey{pos.Filename, pos.Line, name}] = true
					out[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}

func filterAllowed(diags []Diagnostic, allowed map[allowKey]bool) []Diagnostic {
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

// isTestFile reports whether the file at pos is a _test.go file. Analyzers
// that enforce production-code invariants skip tests, where exact float
// golden checks and ad-hoc goroutines are legitimate.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// walkStack visits every node under root, passing the stack of enclosing
// nodes (outermost first, not including n itself). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// funcOf resolves a call's callee to the *types.Func it invokes, whether
// through a plain identifier, a package selector, or a method value.
// Returns nil for builtins, conversions, and indirect calls.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := funcOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isBuiltin reports whether call invokes the named builtin (make, cap, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
