package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string // directory the package was loaded from
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A LoadError reports the packages that failed to load (unresolvable by
// the build system, unparsable, or failing type check). Load returns it
// alongside the packages that did load, so a broken package degrades the
// run to a partial analysis plus a nonzero exit instead of aborting
// everything.
type LoadError struct {
	Problems []string
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("lint: %d package(s) failed to load:\n  %s",
		len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the package patterns (e.g. "./...") in dir, parses the
// matched packages from source, and type-checks them against compiler
// export data for their dependencies.
//
// The heavy lifting — pattern expansion, dependency resolution, and export
// data generation — is delegated to `go list -export -deps`, the same
// build-system handshake `go vet` uses; only the matched packages
// themselves are parsed and checked here, so a whole-repo load stays
// cheap. The standard library's gc importer reads the export files, which
// keeps the loader free of external dependencies (golang.org/x/tools is
// unavailable offline; see DESIGN.md).
//
// Test files are not loaded: the contracts hsd-vet enforces are
// production-code invariants, and the test tree is covered separately by
// the `go test -race` leg of the check gate.
//
// A package that fails to resolve, parse, or type-check does not abort the
// run: Load records it, keeps analyzing the rest, and returns the loaded
// packages together with a *LoadError naming the failures.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	var problems []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			if !p.DepOnly && !p.Standard {
				problems = append(problems, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
			}
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue // test-only package
		}
		var files []*ast.File
		parseFailed := false
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", p.ImportPath, err))
				parseFailed = true
				break
			}
			files = append(files, f)
		}
		if parseFailed {
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Uses:       make(map[*ast.Ident]types.Object),
			Defs:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: type check: %v", p.ImportPath, err))
			continue
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	if len(problems) > 0 {
		return pkgs, &LoadError{Problems: problems}
	}
	return pkgs, nil
}
