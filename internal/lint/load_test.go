package lint_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hotspot/internal/lint"
)

// writeModule lays out a throwaway module under t.TempDir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadContinuesPastBrokenPackage: a package that fails to parse is
// reported through a LoadError naming it, while the healthy packages are
// still returned for analysis.
func TestLoadContinuesPastBrokenPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module tmpfixture\n\ngo 1.22\n",
		"ok/ok.go":   "package ok\n\nfunc Fine() int { return 1 }\n",
		"bad/bad.go": "package bad\n\nfunc Broken( {\n",
		"bad2/b2.go": "package bad2\n\nvar X int = \"not an int\"\n",
		"ok2/ok2.go": "package ok2\n\nconst Two = 2\n",
	})
	pkgs, err := lint.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load returned nil error for a module with a broken package")
	}
	var lerr *lint.LoadError
	if !errors.As(err, &lerr) {
		t.Fatalf("Load error is %T, want *lint.LoadError: %v", err, err)
	}
	if len(lerr.Problems) == 0 {
		t.Fatal("LoadError carries no problems")
	}
	loaded := make(map[string]bool)
	for _, p := range pkgs {
		loaded[p.Path] = true
	}
	for _, want := range []string{"tmpfixture/ok", "tmpfixture/ok2"} {
		if !loaded[want] {
			t.Errorf("healthy package %s not loaded; got %v", want, loaded)
		}
	}
	for _, broken := range []string{"tmpfixture/bad", "tmpfixture/bad2"} {
		if loaded[broken] {
			t.Errorf("broken package %s returned as analyzable", broken)
		}
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad") {
		t.Errorf("LoadError does not name the failing package: %s", msg)
	}
}

// TestLoadRespectsBuildTags: a file excluded by build constraints must not
// poison the package — its type errors are invisible to the loader.
func TestLoadRespectsBuildTags(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        "module tmpfixture\n\ngo 1.22\n",
		"p/p.go":        "package p\n\nfunc Live() int { return 1 }\n",
		"p/excluded.go": "//go:build neverbuildme\n\npackage p\n\nvar Bad int = \"type error behind a build tag\"\n",
	})
	pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load failed on a package whose only errors sit behind a build tag: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmpfixture/p" {
		t.Fatalf("got packages %v, want exactly tmpfixture/p", pkgs)
	}
	for _, f := range pkgs[0].Files {
		name := pkgs[0].Fset.Position(f.Pos()).Filename
		if filepath.Base(name) == "excluded.go" {
			t.Error("build-tag-excluded file was parsed into the package")
		}
	}
}

// TestLoadEmptyMatch: a pattern matching nothing is an error, not an
// empty success that would vacuously pass the check gate.
func TestLoadEmptyMatch(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpfixture\n\ngo 1.22\n",
		"p/p.go": "package p\n",
	})
	pkgs, err := lint.Load(dir, "./nosuchdir/...")
	if err == nil && len(pkgs) > 0 {
		t.Fatalf("Load matched %d packages for a nonexistent pattern", len(pkgs))
	}
	if err == nil {
		t.Fatal("Load returned nil error for a pattern matching nothing")
	}
}
