package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Floatlint enforces the numerics contract behind the reproducibility of
// the experiment tables: floating-point results are compared and reduced
// deterministically.
//
// Flagged:
//   - `==` / `!=` between float operands. Rounded values rarely compare
//     equal, and when exact identity is genuinely meant (threshold ties,
//     cache keys) it must be spelled math.Float64bits(a) ==
//     math.Float64bits(b) so the bit-level intent is explicit. Comparing
//     against an exact constant zero is allowed: sparsity gates like
//     `if v == 0` are well-defined and deliberate.
//   - float accumulation (`+=`, `-=`, `*=`, `/=`, or `x = x + ...`) into a
//     variable declared outside a `range` over a map. Map iteration order
//     is randomized per run, and float addition is not associative, so
//     such reductions drift between runs; iterate sorted keys or collect
//     into an index-ordered slice first (see internal/parallel's
//     index-ordered slot reduction).
//
// Test files are exempt: exact golden comparisons in tests are deliberate
// assertions about bit-identical behaviour.
var Floatlint = &Analyzer{
	Name: "floatlint",
	Doc:  "flags float ==/!= and float accumulation over map iteration order",
	Run:  runFloatlint,
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a constant expression equal to exact
// zero (0, 0.0, a zero named constant, ...).
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.Kind() != constant.Unknown && constant.Sign(tv.Value) == 0
}

func runFloatlint(pass *Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatCompare(pass, n)
			case *ast.RangeStmt:
				checkMapRangeAccum(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkFloatCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	xt, xok := pass.Info.Types[b.X]
	yt, yok := pass.Info.Types[b.Y]
	if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
		return
	}
	if isZeroConst(pass.Info, b.X) || isZeroConst(pass.Info, b.Y) {
		return // exact-zero sparsity gates are deterministic and intended
	}
	pass.Reportf(b.OpPos, "float %s comparison; use an epsilon, or math.Float64bits for intentional exact identity", b.Op)
}

// checkMapRangeAccum flags float accumulator updates inside a range over a
// map, when the accumulator outlives the loop body.
func checkMapRangeAccum(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if accumulatesFloat(pass, rng, as.Lhs[0], nil) {
				pass.Reportf(as.TokPos, "float accumulation over map iteration order is non-deterministic; reduce over sorted keys or an index-ordered slice")
			}
		case token.ASSIGN:
			// x = x + y (and friends) with x declared outside the loop.
			for i, lhs := range as.Lhs {
				if i < len(as.Rhs) && accumulatesFloat(pass, rng, lhs, as.Rhs[i]) {
					pass.Reportf(as.TokPos, "float accumulation over map iteration order is non-deterministic; reduce over sorted keys or an index-ordered slice")
				}
			}
		}
		return true
	})
}

// accumulatesFloat reports whether lhs is a float variable declared
// outside rng and, when rhs is non-nil, whether rhs reads lhs back (the
// self-referential shape of an accumulation).
func accumulatesFloat(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr, rhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil || !isFloat(obj.Type()) {
		return false
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return false // loop-local temporary; order cannot leak out
	}
	if rhs == nil {
		return true
	}
	reads := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if rid, ok := n.(*ast.Ident); ok && pass.Info.Uses[rid] == obj {
			reads = true
		}
		return !reads
	})
	return reads
}
