package lint

import (
	"go/ast"
	"strings"
)

// Goroutinelint enforces the concurrency contract from DESIGN.md: all
// fan-out goes through internal/parallel's bounded worker pool, whose
// index-ordered slot reduction is what keeps parallel results bit-identical
// to serial ones. A raw `go` statement anywhere else is unbounded (it
// ignores the -workers budget) and its completion order is scheduler
// -dependent, so any float reduction over it reintroduces run-to-run drift.
//
// Only the internal/parallel package itself (suffix-matched, so test
// fixtures can model it) and _test.go files may start goroutines directly.
//
// Serving-layer policy: the online serving packages (import path suffix
// internal/serve, plus cmd/hsd-serve) legitimately need a handful of
// long-lived service goroutines that are not batch fan-out — the
// micro-batcher's flush loop, a shutdown watcher — on top of net/http's
// own (library-internal, invisible to this analyzer) handler goroutines.
// Those sites are still findings, reported with a message stating the
// waiver contract: each must carry a `//hsd:allow goroutinelint` directive
// whose reason names the shutdown path that joins the goroutine, so every
// service loop in the tree documents how it terminates. Batch fan-out in
// serving code still belongs on internal/parallel and gets no waiver.
var Goroutinelint = &Analyzer{
	Name: "goroutinelint",
	Doc:  "flags raw go statements outside internal/parallel's bounded pool",
	Run:  runGoroutinelint,
}

// servingPkg reports whether path is part of the online serving layer,
// where the waiver policy for service loops applies.
func servingPkg(path string) bool {
	return strings.HasSuffix(path, "internal/serve") || strings.HasSuffix(path, "cmd/hsd-serve")
}

func runGoroutinelint(pass *Pass) error {
	path := pass.Pkg.Path()
	if strings.HasSuffix(path, "internal/parallel") {
		return nil
	}
	serving := servingPkg(path)
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if serving {
					pass.Reportf(g.Pos(), "raw goroutine in the serving layer; a service loop must carry //hsd:allow goroutinelint naming the shutdown path that joins it (batch fan-out still belongs on internal/parallel)")
				} else {
					pass.Reportf(g.Pos(), "raw goroutine outside internal/parallel; use parallel.Map or a parallel.Session so fan-out stays bounded and reduction stays index-ordered")
				}
			}
			return true
		})
	}
	return nil
}
