package lint

import (
	"go/ast"
	"strings"
)

// Goroutinelint enforces the concurrency contract from DESIGN.md: all
// fan-out goes through internal/parallel's bounded worker pool, whose
// index-ordered slot reduction is what keeps parallel results bit-identical
// to serial ones. A raw `go` statement anywhere else is unbounded (it
// ignores the -workers budget) and its completion order is scheduler
// -dependent, so any float reduction over it reintroduces run-to-run drift.
//
// Only the internal/parallel package itself (suffix-matched, so test
// fixtures can model it) and _test.go files may start goroutines directly.
var Goroutinelint = &Analyzer{
	Name: "goroutinelint",
	Doc:  "flags raw go statements outside internal/parallel's bounded pool",
	Run:  runGoroutinelint,
}

func runGoroutinelint(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/parallel") {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw goroutine outside internal/parallel; use parallel.Map or a parallel.Session so fan-out stays bounded and reduction stays index-ordered")
			}
			return true
		})
	}
	return nil
}
