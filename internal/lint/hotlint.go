package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotlint enforces the hot-loop contract transitively. A function marked
// //hsd:hotpath is a hot-path root — the fused engine's Forward, the
// tensor matmul/matvec kernels, the parallel worker bodies, the serve
// flush loop, the MGD per-sample step — and everything statically
// reachable from a root (see callgraph.go) must stay free of:
//
//   - mutex/atomic operations and channel sends/receives/selects
//     (scheduler-dependent ordering breaks bit-identical replay),
//   - ranging over a map (iteration order is nondeterministic),
//   - fmt, reflect, and sort calls (allocation + dynamic dispatch),
//   - append without capacity evidence (per-call slice churn; a variadic
//     append([]T(nil), src...) clone is exact-size and exempt), and
//   - interface-dispatched or func-value calls (defeat devirtualization
//     and blind the static analysis).
//
// Two package policies keep the contract honest rather than noisy:
// internal/obs and internal/obs/trace are never traversed (the
// observability layer locks by design and sits off the result path — the
// same exemption the timing analyzer grants it; the trace recorder keeps
// the hot path clean by a different contract, the nil-tracer zero-alloc
// benchmarks), and internal/parallel is traversed and checked but
// exempt from the synchronization and dynamic-call checks (it *is* the
// sanctioned concurrency substrate; its locks and channels are what the
// rest of the tree is banned from hand-rolling).
//
// Cold failure paths are exempt from the fmt and dispatch checks: a call
// inside a panic argument or inside an error-construction call
// (fmt.Errorf, errors.New) runs only when the hot loop is already
// aborting (`if bad { return nil, fmt.Errorf(...) }` guards stay legal),
// and reachability does not follow such edges. The synchronization,
// map-range, sort, and append checks get no such exemption — those are
// breaches even on a failure path.
//
// Anything else is waived case by case with `//hsd:allow hotlint <why>`;
// the justification string is mandatory and machine-checked. A waiver
// silences the finding on its line but the walk still continues past it —
// to declare an entire call edge off the hot path (a lazy once-per-reload
// compile, a once-per-evaluation resync), mark the call `//hsd:cold <why>`
// instead and the reachability walk will not follow it.
var Hotlint = &Analyzer{
	Name:       "hotlint",
	Doc:        "walks the call graph from //hsd:hotpath roots and flags transitive hot-loop contract breaches",
	RunProgram: runHotlint,
}

// hotlintSkipPkg names packages the reachability walk never enters.
func hotlintSkipPkg(path string) bool {
	return strings.HasSuffix(path, "internal/obs") ||
		strings.HasSuffix(path, "internal/obs/trace")
}

// hotlintRelaxedPkg names packages exempt from the synchronization and
// dynamic-call checks (suffix-matched so fixtures can model them).
func hotlintRelaxedPkg(path string) bool {
	return strings.HasSuffix(path, "internal/parallel")
}

// hotlintExternalOfInterest names the standard-library packages whose
// calls hotlint polices (also used to filter the -callgraph dump).
func hotlintExternalOfInterest(path string) bool {
	switch path {
	case "fmt", "reflect", "sort", "sync", "sync/atomic":
		return true
	}
	return false
}

func runHotlint(pp *ProgramPass) error {
	prog := pp.Prog
	barriers := hotlintBarriers(prog, pp.Waivers)
	reached := prog.Reachable(hotlintSkipPkg, func(from *FuncNode, site *CallSite) bool {
		pos := prog.Fset.Position(site.Call.Pos())
		ws := barriers[fileLine{pos.Filename, pos.Line}]
		for _, w := range ws {
			w.Used = true
		}
		return len(ws) > 0
	})
	for _, n := range prog.nodeList {
		if root := reached[n]; root != nil {
			checkHotNode(pp, n, root)
		}
	}
	return nil
}

// fileLine addresses one source line.
type fileLine struct {
	file string
	line int
}

// hotlintBarriers indexes the //hsd:cold directives by the lines they
// govern. A cold directive on a call site is a traversal barrier: the
// edge is declared cold by a human, with the mandatory justification, and
// the walk does not follow it (the canonical case: the serving path's
// lazy once-per-reload engine compile).
func hotlintBarriers(prog *Program, waivers []*Waiver) map[fileLine][]*Waiver {
	out := make(map[fileLine][]*Waiver)
	for _, w := range waivers {
		if w.Analyzer != ColdDirective {
			continue
		}
		out[fileLine{w.Pos.Filename, w.Pos.Line}] = append(out[fileLine{w.Pos.Filename, w.Pos.Line}], w)
		out[fileLine{w.Pos.Filename, w.Pos.Line + 1}] = append(out[fileLine{w.Pos.Filename, w.Pos.Line + 1}], w)
	}
	return out
}

func checkHotNode(pp *ProgramPass, n *FuncNode, root *FuncNode) {
	info := n.Pkg.Info
	relaxed := hotlintRelaxedPkg(n.Pkg.Path)
	sites := make(map[*ast.CallExpr]*CallSite, len(n.Calls))
	for _, s := range n.Calls {
		sites[s.Call] = s
	}
	evidence := appendEvidence(info, n.Decl)

	walkStack(n.Decl.Body, func(node ast.Node, stack []ast.Node) bool {
		switch node := node.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pp.Reportf(node.Pos(), "range over a map on hot path (via root %s); iteration order is nondeterministic — iterate a sorted key slice", root.Name())
				}
			}
		case *ast.SendStmt:
			if !relaxed {
				pp.Reportf(node.Pos(), "channel send on hot path (via root %s); hot loops must be synchronization-free", root.Name())
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !relaxed {
				pp.Reportf(node.Pos(), "channel receive on hot path (via root %s); hot loops must be synchronization-free", root.Name())
			}
		case *ast.SelectStmt:
			if !relaxed {
				pp.Reportf(node.Pos(), "select on hot path (via root %s); hot loops must be synchronization-free", root.Name())
			}
		case *ast.CallExpr:
			checkHotCall(pp, n, root, node, sites, evidence, stack, relaxed)
		}
		return true
	})
}

func checkHotCall(pp *ProgramPass, n *FuncNode, root *FuncNode, call *ast.CallExpr, sites map[*ast.CallExpr]*CallSite, evidence map[types.Object]bool, stack []ast.Node, relaxed bool) {
	info := n.Pkg.Info
	site := sites[call]
	if site == nil {
		// Builtin or conversion: only append and close are of interest.
		if isBuiltin(info, call, "append") && len(call.Args) > 0 {
			if !appendHasCapacity(info, call, evidence, stack) {
				pp.Reportf(call.Pos(), "append without capacity evidence on hot path (via root %s); pre-size with a 3-arg make, reuse a [:0] buffer, or grow behind a cap guard", root.Name())
			}
		}
		if isBuiltin(info, call, "close") && !relaxed {
			pp.Reportf(call.Pos(), "channel close on hot path (via root %s); hot loops must be synchronization-free", root.Name())
		}
		return
	}
	switch {
	case site.Dynamic:
		if !relaxed && !site.Cold {
			pp.Reportf(call.Pos(), "call through a func value on hot path (via root %s); the target is invisible to static analysis — devirtualize or waive with justification", root.Name())
		}
	case site.Interface:
		if !site.Cold {
			fn := funcOf(info, call)
			name := "method"
			if fn != nil {
				name = fn.FullName()
			}
			pp.Reportf(call.Pos(), "interface-dispatched call to %s on hot path (via root %s) defeats devirtualization; call the concrete type or waive with justification", name, root.Name())
		}
	case site.Ext != nil:
		pkg := site.Ext.Pkg()
		if pkg == nil {
			return
		}
		switch pkg.Path() {
		case "fmt":
			if !site.Cold {
				pp.Reportf(call.Pos(), "fmt.%s on hot path (via root %s); formatting allocates and reflects — move it off the hot loop or behind an error/panic cold path", site.Ext.Name(), root.Name())
			}
		case "reflect":
			pp.Reportf(call.Pos(), "reflect.%s on hot path (via root %s); reflection does not belong in a hot loop", site.Ext.Name(), root.Name())
		case "sort":
			pp.Reportf(call.Pos(), "sort.%s on hot path (via root %s); comparator dispatch and allocation do not belong in a hot loop", site.Ext.Name(), root.Name())
		case "sync", "sync/atomic":
			if !relaxed {
				pp.Reportf(call.Pos(), "%s on hot path (via root %s); hot loops must be lock-free — synchronization lives in internal/parallel", site.Ext.FullName(), root.Name())
			}
		}
	}
}

// appendHasCapacity reports whether an append call carries evidence that
// it will not grow per call: the destination is a slice expression
// (buf[:0] reuse), a struct- or receiver-owned field (amortized growth
// across calls), a local the function provably sized (see
// appendEvidence), or the call sits behind a cap guard.
func appendHasCapacity(info *types.Info, call *ast.CallExpr, evidence map[types.Object]bool, stack []ast.Node) bool {
	if underCapGuard(info, stack) {
		return true
	}
	// A variadic append to a nil conversion — append([]T(nil), src...) —
	// is the idiomatic exact-size clone: the runtime allocates once at
	// len(src). That is not growth churn, so it needs no other evidence.
	if call.Ellipsis.IsValid() && isNilSliceConv(info, call.Args[0]) {
		return true
	}
	return evidencedExpr(info, call.Args[0], evidence)
}

// isNilSliceConv reports whether e is a conversion of the predeclared nil
// to a slice type, e.g. []int(nil).
func isNilSliceConv(info *types.Info, e ast.Expr) bool {
	conv, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(conv.Args) != 1 {
		return false
	}
	if tv, ok := info.Types[conv.Fun]; !ok || !tv.IsType() {
		return false
	}
	if _, ok := info.TypeOf(conv).Underlying().(*types.Slice); !ok {
		return false
	}
	tv, ok := info.Types[ast.Unparen(conv.Args[0])]
	return ok && tv.IsNil()
}

// evidencedExpr reports whether e denotes capacity-evidenced storage.
func evidencedExpr(info *types.Info, e ast.Expr, evidence map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.SelectorExpr:
		// A field append (b.buf = append(b.buf, x)) amortizes growth
		// across calls — the receiver-owned-buffer idiom buflint demands.
		return true
	case *ast.CallExpr:
		if isBuiltin(info, e, "make") {
			return len(e.Args) == 3
		}
		if isBuiltin(info, e, "append") && len(e.Args) > 0 {
			return evidencedExpr(info, e.Args[0], evidence)
		}
		return false
	case *ast.Ident:
		return evidence[info.ObjectOf(e)]
	}
	return false
}

// appendEvidence scans one declaration for locals whose every growth
// chain starts from evidenced storage: any assignment of a 3-arg make, a
// slice expression, or an append rooted in an already-evidenced value
// marks the target object. The fixpoint handles `xs = append(xs, v)`
// self-growth once an initial `xs := b.buf[:0]` is seen.
func appendEvidence(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	type binding struct {
		obj types.Object
		rhs ast.Expr
	}
	var bindings []binding
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.ObjectOf(id); obj != nil {
			bindings = append(bindings, binding{obj, rhs})
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	evidence := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		for _, b := range bindings {
			if !evidence[b.obj] && evidencedExpr(info, b.rhs, evidence) {
				evidence[b.obj] = true
				changed = true
			}
		}
	}
	return evidence
}
