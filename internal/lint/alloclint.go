package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Alloclint turns the fused engine's 0 B/op promise from
// benchmark-observed into compiler-verified. A function marked
// //hsd:noalloc — the fused ops, the arena-executing Forward, im2col, the
// tensor matmul kernels — must not allocate, and the authority on whether
// it does is the compiler's own escape analysis, which sees through the
// AST-level tricks buflint can't (interface boxing, captured variables,
// variable-size makes, escaping composite literals).
//
// For each package containing a //hsd:noalloc function, alloclint reruns
// the compiler with `go build -gcflags='-m -m'` (cheap: the build cache
// replays the diagnostics on unchanged packages) and parses the escape
// stream. Any "escapes to heap" or "moved to heap" fact positioned inside
// a noalloc function's body is a finding. Cold paths are not exempt here
// — if an error-formatting allocation is acceptable, the line carries an
// explicit `//hsd:allow alloclint <why>` waiver so the exception is
// visible in the diff, not implicit in policy.
var Alloclint = &Analyzer{
	Name:       "alloclint",
	Doc:        "verifies //hsd:noalloc functions against the compiler's escape analysis (go build -gcflags='-m -m')",
	RunProgram: runAlloclint,
}

// escapeFact is one allocation the compiler reported.
type escapeFact struct {
	file string // absolute path
	line int
	col  int
	msg  string
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// escapeFacts runs the compiler over one package directory and extracts
// the allocation diagnostics.
func escapeFacts(dir string) ([]escapeFact, error) {
	// -o keeps a main package's binary out of the tree; for non-main
	// packages it harmlessly writes the archive to the null device.
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "-o", os.DevNull, ".")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags='-m -m' in %s: %v\n%s", dir, err, stderr.Bytes())
	}
	var facts []escapeFact
	seen := make(map[escapeFact]bool)
	for _, raw := range strings.Split(stderr.String(), "\n") {
		m := escapeLineRE.FindStringSubmatch(raw)
		if m == nil {
			continue
		}
		msg := m[4]
		// -m -m emits both a summary line ("x escapes to heap") and a
		// trace form ("x escapes to heap:" followed by indented flow
		// lines); accept either head and let the position dedupe them.
		isEscape := strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:")
		isMove := strings.HasPrefix(msg, "moved to heap")
		if !isEscape && !isMove {
			continue
		}
		line, err1 := strconv.Atoi(m[2])
		col, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil {
			continue
		}
		f := escapeFact{
			file: m[1],
			line: line,
			col:  col,
			msg:  strings.TrimSuffix(msg, ":"),
		}
		key := escapeFact{file: f.file, line: f.line, col: f.col}
		if seen[key] {
			continue
		}
		seen[key] = true
		facts = append(facts, f)
	}
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	return facts, nil
}

func runAlloclint(pp *ProgramPass) error {
	prog := pp.Prog

	// Group the annotated functions by package; one compiler run each.
	byPkg := make(map[*Package][]*FuncNode)
	var pkgs []*Package
	for _, n := range prog.NoallocFuncs() {
		if byPkg[n.Pkg] == nil {
			pkgs = append(pkgs, n.Pkg)
		}
		byPkg[n.Pkg] = append(byPkg[n.Pkg], n)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	for _, pkg := range pkgs {
		facts, err := escapeFacts(pkg.Dir)
		if err != nil {
			return err
		}
		for _, n := range byPkg[pkg] {
			start := prog.Fset.Position(n.Decl.Pos())
			end := prog.Fset.Position(n.Decl.End())
			for _, f := range facts {
				if !factMatchesFile(f.file, start.Filename) {
					continue
				}
				if f.line < start.Line || f.line > end.Line {
					continue
				}
				pp.ReportAt(token.Position{Filename: start.Filename, Line: f.line, Column: f.col},
					"heap allocation in //hsd:noalloc %s: %s", n.Fn.FullName(), f.msg)
			}
		}
	}
	return nil
}

// factMatchesFile reports whether a compiler diagnostic path names the
// loader's absolute filename. The build cache replays diagnostics exactly
// as the original invocation printed them, so the path may be relative to
// any past working directory ("./a.go", "a.go", "internal/dct/dct.go") —
// but the facts only ever come from the one package being built, so a
// path-suffix match is unambiguous.
func factMatchesFile(fact, abs string) bool {
	fact = filepath.Clean(fact)
	if filepath.IsAbs(fact) {
		return fact == abs
	}
	return abs == fact || strings.HasSuffix(abs, "/"+fact)
}
