package lint

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// Buflint guards the allocation-churn wins of the data-parallel rework:
// the nn/tensor/train forward and backward paths run once per sample per
// iteration, and a `make([]float64, ...)` there resurrects the per-step
// garbage the layer buffer reuse removed (train step allocations fell
// 169KB -> 6KB; see DESIGN.md). Hot-path slices live on the receiver and
// are grown, not reallocated.
//
// Flagged: make of a float slice inside a Forward/Backward method (any
// case) in a package named nn, tensor, train, or fused — unless the make
// is behind a capacity-growth guard, i.e. an enclosing if whose condition
// calls cap(...), which is exactly the amortized grow-once idiom
// (`if cap(buf) < n { buf = make([]float64, n) }`). Two further packages
// carry their own specs: serve's batcher bodies (run/fill/drain), where
// any per-batch slice make churns at request rate and the scratch/slot
// buffers exist precisely to be reused, and dct's *Into kernels, whose
// contract is writing into caller storage — a make of a float slice
// inside one belies the name.
var Buflint = &Analyzer{
	Name: "buflint",
	Doc:  "flags per-call slice allocation in the nn/tensor/train/fused, serve batcher, and dct Into hot paths",
	Run:  runBuflint,
}

// bufSpec describes one hot package's rule: which functions are hot, and
// whether every slice element type is covered or floats only.
type bufSpec struct {
	hot      func(name string) bool
	anySlice bool
}

func isHotFunc(name string) bool {
	switch name {
	case "Forward", "Backward", "forward", "backward":
		return true
	}
	return false
}

// bufSpecs keys hot packages by base name. nn/tensor/train carry the
// per-sample training path; fused is the compiled inference engine, whose
// whole point is a zero-allocation Forward: all buffers are planned into
// the compile-time arena, so any make in its Forward is a regression.
var bufSpecs = map[string]bufSpec{
	"nn":     {hot: isHotFunc},
	"tensor": {hot: isHotFunc},
	"train":  {hot: isHotFunc},
	"fused":  {hot: isHotFunc},
	"serve": {
		hot: func(name string) bool {
			switch name {
			case "run", "fill", "drain":
				return true
			}
			return false
		},
		anySlice: true,
	},
	"dct": {hot: func(name string) bool { return strings.HasSuffix(name, "Into") }},
	// scan's per-tile and per-window bodies run once per die block / window
	// over millions of windows on real designs; every buffer (block pixels,
	// tensor scratch, the plane cache) is allocated at Scanner construction
	// and any per-item make of any slice type is churn at scan rate.
	"scan": {
		hot: func(name string) bool {
			switch name {
			case "encodeRegion", "scoreRow", "assembleWindow":
				return true
			}
			return false
		},
		anySlice: true,
	},
	// feature's EncodeInto is the shared per-block DCT kernel both the
	// per-clip extractor and the scan cache drive; its scratch lives on the
	// BlockEncoder. SqDist is the active selector's pairwise-distance
	// kernel, called once per (candidate, center) pair per k-center step —
	// it takes raw slices precisely so it allocates nothing.
	"feature": {hot: func(name string) bool { return name == "EncodeInto" || name == "SqDist" }},
	// active's updateMinDist is the k-center inner loop, run once per
	// (candidate, center) pair per selection round as a parallel worker
	// body; candidate scratch lives on the selector and is reused across
	// rounds, so any per-call make of any slice type is churn at
	// selection rate.
	"active": {
		hot:      func(name string) bool { return name == "updateMinDist" },
		anySlice: true,
	},
	// trace's recorder runs once per finished trace on the serving path;
	// its rings are sized at construction and the slow buckets are
	// allocated once per endpoint (newBucket), so a per-record make of any
	// slice type is churn at request rate.
	"trace": {
		hot: func(name string) bool {
			switch name {
			case "record", "keepSlow":
				return true
			}
			return false
		},
		anySlice: true,
	},
}

func isSliceMake(pass *Pass, call *ast.CallExpr, anyElem bool) bool {
	if !isBuiltin(pass.Info, call, "make") || len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	s, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return anyElem || isFloat(s.Elem())
}

// underCapGuard reports whether some enclosing if statement's condition
// calls the cap builtin — the amortized buffer-growth idiom.
func underCapGuard(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && isBuiltin(info, call, "cap") {
				guarded = true
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func runBuflint(pass *Pass) error {
	base := path.Base(pass.Pkg.Path())
	spec, ok := bufSpecs[base]
	if !ok {
		return nil
	}
	kind := "float slice"
	if spec.anySlice {
		kind = "slice"
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !spec.hot(fd.Name.Name) {
				continue
			}
			walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSliceMake(pass, call, spec.anySlice) {
					return true
				}
				if underCapGuard(pass.Info, stack) {
					return true
				}
				pass.Reportf(call.Pos(), "per-call make of a %s in hot path %s.%s; reuse a receiver buffer and grow it behind a cap guard", kind, base, fd.Name.Name)
				return true
			})
		}
	}
	return nil
}
