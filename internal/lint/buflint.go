package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// Buflint guards the allocation-churn wins of the data-parallel rework:
// the nn/tensor/train forward and backward paths run once per sample per
// iteration, and a `make([]float64, ...)` there resurrects the per-step
// garbage the layer buffer reuse removed (train step allocations fell
// 169KB -> 6KB; see DESIGN.md). Hot-path slices live on the receiver and
// are grown, not reallocated.
//
// Flagged: make of a float slice inside a Forward/Backward method (any
// case) in a package named nn, tensor, or train — unless the make is
// behind a capacity-growth guard, i.e. an enclosing if whose condition
// calls cap(...), which is exactly the amortized grow-once idiom
// (`if cap(buf) < n { buf = make([]float64, n) }`).
var Buflint = &Analyzer{
	Name: "buflint",
	Doc:  "flags per-call float-slice allocation in nn/tensor/train forward/backward hot paths",
	Run:  runBuflint,
}

// hotPackages are the packages whose Forward/Backward methods sit on the
// per-sample training or inference path. fused is the compiled inference
// engine, whose whole point is a zero-allocation Forward: all buffers are
// planned into the compile-time arena, so any make in its Forward is a
// regression.
var hotPackages = map[string]bool{"nn": true, "tensor": true, "train": true, "fused": true}

func isHotFunc(name string) bool {
	switch name {
	case "Forward", "Backward", "forward", "backward":
		return true
	}
	return false
}

func isFloatSliceMake(pass *Pass, call *ast.CallExpr) bool {
	if !isBuiltin(pass.Info, call, "make") || len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	s, ok := tv.Type.Underlying().(*types.Slice)
	return ok && isFloat(s.Elem())
}

// underCapGuard reports whether some enclosing if statement's condition
// calls the cap builtin — the amortized buffer-growth idiom.
func underCapGuard(pass *Pass, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "cap") {
				guarded = true
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func runBuflint(pass *Pass) error {
	if !hotPackages[path.Base(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotFunc(fd.Name.Name) {
				continue
			}
			walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isFloatSliceMake(pass, call) {
					return true
				}
				if underCapGuard(pass, stack) {
					return true
				}
				pass.Reportf(call.Pos(), "per-call make of a float slice in hot path %s.%s; reuse a receiver buffer and grow it behind a cap guard", path.Base(pass.Pkg.Path()), fd.Name.Name)
				return true
			})
		}
	}
	return nil
}
