package lint_test

import (
	"strings"
	"testing"

	"hotspot/internal/lint"
	"hotspot/internal/lint/linttest"
)

func TestSeedlint(t *testing.T) {
	linttest.Run(t, lint.Seedlint, "./testdata/src/seedlint/a")
}

func TestFloatlint(t *testing.T) {
	linttest.Run(t, lint.Floatlint, "./testdata/src/floatlint/a")
}

func TestGoroutinelint(t *testing.T) {
	linttest.Run(t, lint.Goroutinelint,
		"./testdata/src/goroutinelint/a",
		"./testdata/src/goroutinelint/internal/parallel",
		"./testdata/src/goroutinelint/serve/internal/serve")
}

func TestErrlint(t *testing.T) {
	linttest.Run(t, lint.Errlint, "./testdata/src/errlint/a")
}

func TestBuflint(t *testing.T) {
	linttest.Run(t, lint.Buflint,
		"./testdata/src/buflint/nn",
		"./testdata/src/buflint/fused",
		"./testdata/src/buflint/serve",
		"./testdata/src/buflint/dct",
		"./testdata/src/buflint/scan",
		"./testdata/src/buflint/feature",
		"./testdata/src/buflint/active",
		"./testdata/src/buflint/trace",
		"./testdata/src/buflint/other")
}

func TestHotlint(t *testing.T) {
	linttest.Run(t, lint.Hotlint,
		"./testdata/src/hotlint/a",
		"./testdata/src/hotlint/b",
		"./testdata/src/hotlint/c",
		"./testdata/src/hotlint/internal/obs/trace")
}

func TestAlloclint(t *testing.T) {
	if testing.Short() {
		t.Skip("alloclint shells out to go build")
	}
	linttest.Run(t, lint.Alloclint, "./testdata/src/alloclint/a")
}

// TestWaiverJustification: hotlint waivers and cold directives without a
// reason are findings in their own right (checked outside linttest, where
// a want comment on the directive line would parse as its reason).
func TestWaiverJustification(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/hotlint/noreason")
	if err != nil {
		t.Fatal(err)
	}
	diags, waivers, err := lint.RunAll(pkgs, []*lint.Analyzer{lint.Hotlint})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 justification findings:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "needs a justification") {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	// The reason-less directives still functioned — waiver suppressed,
	// cold edge cut — they are just findings too.
	for _, w := range waivers {
		if !w.Used {
			t.Errorf("directive at %s:%d did not fire", w.Pos.Filename, w.Pos.Line)
		}
	}
}

func TestTiming(t *testing.T) {
	linttest.Run(t, lint.Timing,
		"./testdata/src/timing/a",
		"./testdata/src/timing/internal/obs",
		"./testdata/src/timing/internal/obs/trace")
}

func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("All: got %d analyzers, want 8", len(all))
	}
	two, err := lint.Select("seedlint, errlint")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "seedlint" || two[1].Name != "errlint" {
		t.Fatalf("Select: got %v", two)
	}
	if _, err := lint.Select("nosuch"); err == nil {
		t.Fatal("Select accepted an unknown analyzer name")
	}
}

// TestRepoIsClean is the in-process version of the check gate's
// `hsd-vet ./...` leg: the tree must be free of findings from every
// analyzer. Fixture packages under testdata are excluded from ./... by
// the go tool itself.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo load is not short")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) > 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  ")
			b.WriteString(d.String())
		}
		t.Errorf("hsd-vet findings on the repo:%s", b.String())
	}
}
