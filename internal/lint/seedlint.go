package lint

import (
	"go/ast"
	"go/types"
)

// Seedlint enforces the serial≡parallel RNG contract: every random stream
// must be a keyed stream — a *rand.Rand built directly over an explicit
// rand.NewSource(seed), or a splitmix64 counter — whose output is a pure
// function of configuration, never of wall-clock time or shared global
// state. Trained weights are bit-identical across worker counts only
// because dropout masks and batch sampling derive from (Seed, position)
// pairs; one time.Now() seed or one rand.Intn() on the global source
// silently breaks that parity.
//
// Flagged:
//   - calls to math/rand (or math/rand/v2) package-level functions other
//     than the stream constructors New/NewSource — these mutate or read
//     process-global RNG state;
//   - rand.New whose source is anything but a direct rand.NewSource(...)
//     call, i.e. a stream not visibly keyed at its construction site;
//   - time.Now() anywhere inside the arguments of rand.New/rand.NewSource;
//   - time.Now().UnixNano(), the canonical wall-clock seed idiom (elapsed
//     time belongs to time.Since, which seedlint does not flag).
var Seedlint = &Analyzer{
	Name: "seedlint",
	Doc:  "flags wall-clock seeds, math/rand global state, and unkeyed rand.New streams",
	Run:  runSeedlint,
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func containsTimeNow(pass *Pass, root ast.Node) ast.Node {
	var found ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(pass.Info, call, "time", "Now") {
			found = call
			return false
		}
		return true
	})
	return found
}

func runSeedlint(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// time.Now().UnixNano(): wall-clock value in seed-width units.
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "UnixNano" {
				if recv, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok && isPkgFunc(pass.Info, recv, "time", "Now") {
					pass.Reportf(call.Pos(), "time.Now().UnixNano() is a wall-clock value; seeds must come from configuration so runs are reproducible")
					return true
				}
			}
			name := seedlintFuncName(pass, call)
			switch name {
			case "":
				return true
			case "New", "NewSource":
				// Scan only NewSource arguments: a wall-clock seed inside
				// rand.New necessarily sits inside the nested NewSource
				// call, which reports for itself.
				if name == "NewSource" {
					for _, arg := range call.Args {
						if hit := containsTimeNow(pass, arg); hit != nil {
							pass.Reportf(hit.Pos(), "wall-clock seed: rand.%s argument derives from time.Now(); use an explicit configured seed", name)
						}
					}
				}
				if name == "New" {
					if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); !ok || seedlintFuncName(pass, inner) != "NewSource" {
						pass.Reportf(call.Pos(), "rand.New over an indirect source; construct keyed streams as rand.New(rand.NewSource(seed)) so the seed is auditable at the call site")
					}
				}
			default:
				pass.Reportf(call.Pos(), "math/rand global function rand.%s uses process-wide RNG state; draw from a keyed *rand.Rand or a splitmix64 counter stream instead", name)
			}
			return true
		})
	}
	return nil
}

// seedlintFuncName resolves call to a math/rand package-level function
// name, or "" when it is something else (method, other package, builtin).
func seedlintFuncName(pass *Pass, call *ast.CallExpr) string {
	fn := funcOf(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || !isRandPath(fn.Pkg().Path()) {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // method on *rand.Rand etc., not global state
	}
	return fn.Name()
}
