package active

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"hotspot/internal/geom"
	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/train"
)

// testNet builds the tiny PaperNet the loop tests fine-tune: 2 input
// channels over a 4×4 grid, so feature tensors are shaped [2 4 4].
func testNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.NewPaperNet(nn.PaperNetConfig{
		InChannels:  2,
		SpatialSize: 4,
		Conv1Maps:   2,
		Conv2Maps:   2,
		FC1:         4,
		DropoutRate: 0.5,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testPool builds a pool of n zero-geometry clips with synthetic cached
// feature tensors — the loop never rasterizes, so the clips are inert.
func testPool(n int) *Pool {
	return &Pool{
		Clips:   make([]geom.Clip, n),
		Tensors: synthTensors(n, 2, 4, 4),
	}
}

// testLabeler labels pool clip i by index: every third clip is a hotspot.
func testLabeler(i int, _ geom.Clip) (bool, error) {
	return i%3 == 0, nil
}

// testEvalSet builds a small held-out labeled set matching the net input.
func testEvalSet(n int) []train.Sample {
	ts := synthTensors(n, 2, 4, 4)
	out := make([]train.Sample, n)
	for i := range out {
		out[i] = train.Sample{X: ts[i], Hotspot: i%2 == 0}
	}
	return out
}

// testTune is a short fine-tune schedule keeping loop tests fast.
func testTune() train.BiasedConfig {
	return train.BiasedConfig{
		InitialEps: 0.1,
		Rounds:     1,
		Initial: train.MGDConfig{
			LearningRate:   0.01,
			DecayFactor:    0.5,
			DecayStep:      20,
			BatchSize:      4,
			MaxIters:       30,
			BalanceClasses: true,
			Seed:           11,
		},
	}
}

// runLoop runs a fresh loop over a shared pool with the given worker count
// and returns the per-round reports plus the final weight checksum.
func runLoop(t *testing.T, pool *Pool, cfg Config) ([]RoundReport, uint64) {
	t.Helper()
	net := testNet(t)
	loop, err := NewLoop(cfg, net, pool, testLabeler, testEvalSet(8))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	return reports, WeightChecksum(net)
}

// TestLoopWorkerParity is the acceptance gate: for a fixed seed, pool and
// budget, the selected clip sequences and the final trained weights are
// bit-identical under worker counts 1, 4 and 8.
func TestLoopWorkerParity(t *testing.T) {
	pool := testPool(20)
	base := Config{
		Rounds: 2,
		Batch:  4,
		Seed:   7,
		Tune:   testTune(),
	}
	cfg := base
	cfg.Workers = 1
	wantReports, wantSum := runLoop(t, pool, cfg)
	if len(wantReports) != 2 {
		t.Fatalf("ran %d rounds, want 2", len(wantReports))
	}
	for _, workers := range []int{4, 8} {
		cfg := base
		cfg.Workers = workers
		gotReports, gotSum := runLoop(t, pool, cfg)
		if len(gotReports) != len(wantReports) {
			t.Fatalf("workers=%d ran %d rounds, workers=1 ran %d", workers, len(gotReports), len(wantReports))
		}
		for r := range wantReports {
			if !equalInts(gotReports[r].Selected, wantReports[r].Selected) {
				t.Fatalf("workers=%d round %d selected %v, workers=1 selected %v",
					workers, r, gotReports[r].Selected, wantReports[r].Selected)
			}
		}
		if gotSum != wantSum {
			t.Fatalf("workers=%d final weight checksum %#x, workers=1 %#x", workers, gotSum, wantSum)
		}
	}
}

// TestLoopScoringParity pins serial≡parallel pool scoring directly: the
// per-clip probabilities that feed selection are bit-identical for
// workers 1 vs 8.
func TestLoopScoringParity(t *testing.T) {
	net := testNet(t)
	xs := synthTensors(32, 2, 4, 4)
	ev1, err := train.NewEvaluator(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev8, err := train.NewEvaluator(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ev1.PredictProbs(xs)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := ev8.PredictProbs(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p8[i]) {
			t.Fatalf("clip %d: p(workers=1) = %v, p(workers=8) = %v", i, p1[i], p8[i])
		}
	}
}

// TestLoopBudgetTruncation: a 25 s budget at 10 s/clip affords two labels
// of the first 4-clip batch; the third charge is refused mid-batch, the
// round reports Truncated, and the loop stops without spending further.
func TestLoopBudgetTruncation(t *testing.T) {
	pool := testPool(24)
	reports, _ := runLoop(t, pool, Config{
		Rounds:        3,
		Batch:         4,
		LabelSeconds:  10,
		BudgetSeconds: 25,
		Seed:          5,
		Workers:       2,
		Tune:          testTune(),
	})
	if len(reports) != 1 {
		t.Fatalf("ran %d rounds, want truncation to stop the loop after 1", len(reports))
	}
	rep := reports[0]
	if !rep.Truncated {
		t.Fatal("round not marked truncated")
	}
	if rep.Labeled != 2 {
		t.Fatalf("labeled %d clips, want 2 (25 s budget at 10 s/clip)", rep.Labeled)
	}
	if len(rep.Selected) != 4 {
		t.Fatalf("selected %d, want the full batch of 4", len(rep.Selected))
	}
	if rep.BudgetSpent != 20 {
		t.Fatalf("budget spent %v, want 20 (the refused clip must cost nothing)", rep.BudgetSpent)
	}
	if rep.BudgetRemaining != 5 {
		t.Fatalf("budget remaining %v, want 5", rep.BudgetRemaining)
	}
}

// TestLoopUnlimitedBudgetReporting: with no budget the reports render the
// remainder as -1 (JSON has no +Inf) and nothing truncates.
func TestLoopUnlimitedBudgetReporting(t *testing.T) {
	pool := testPool(10)
	reports, _ := runLoop(t, pool, Config{
		Rounds:  1,
		Batch:   3,
		Seed:    2,
		Workers: 2,
		Tune:    testTune(),
	})
	rep := reports[0]
	if rep.Truncated {
		t.Fatal("unlimited budget truncated")
	}
	if rep.BudgetRemaining != -1 {
		t.Fatalf("budget remaining %v, want -1 for unlimited", rep.BudgetRemaining)
	}
	if rep.BudgetSpent != 3*10.0 {
		t.Fatalf("budget spent %v, want 30 (3 clips at the default 10 s)", rep.BudgetSpent)
	}
}

// TestLoopRandomStrategy: the baseline runs without scoring, labels whole
// batches, and drains the pool across rounds without repeats.
func TestLoopRandomStrategy(t *testing.T) {
	pool := testPool(12)
	net := testNet(t)
	loop, err := NewLoop(Config{
		Rounds:   3,
		Batch:    4,
		Strategy: StrategyRandom,
		Seed:     9,
		Workers:  2,
		Tune:     testTune(),
	}, net, pool, testLabeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("ran %d rounds, want 3", len(reports))
	}
	seen := make(map[int]bool)
	for _, rep := range reports {
		if rep.Labeled != 4 {
			t.Fatalf("round %d labeled %d, want 4", rep.Round, rep.Labeled)
		}
		for _, pi := range rep.Selected {
			if seen[pi] {
				t.Fatalf("pool clip %d selected twice", pi)
			}
			seen[pi] = true
		}
	}
	if len(loop.Labeled()) != 12 {
		t.Fatalf("labeled %d samples total, want the whole pool (12)", len(loop.Labeled()))
	}
}

// TestLoopEventLog: the JSONL stream parses line by line and carries the
// manifest, one record per round, and the final result.
func TestLoopEventLog(t *testing.T) {
	var buf bytes.Buffer
	pool := testPool(10)
	net := testNet(t)
	loop, err := NewLoop(Config{
		Rounds:  2,
		Batch:   3,
		Seed:    4,
		Workers: 2,
		Tune:    testTune(),
		Log:     obs.NewEventLog(&buf),
	}, net, pool, testLabeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	var events []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable event line %q: %v", sc.Text(), err)
		}
		ev, _ := rec["event"].(string)
		events = append(events, ev)
	}
	want := []string{"manifest", "round", "round", "result"}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events %v, want %v", events, want)
		}
	}
}

// TestConfigValidate: the loop rejects configurations it cannot honor.
func TestConfigValidate(t *testing.T) {
	good := Config{Rounds: 1, Batch: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no rounds", func(c *Config) { c.Rounds = 0 }},
		{"no batch", func(c *Config) { c.Batch = 0 }},
		{"negative candidates", func(c *Config) { c.Candidates = -1 }},
		{"unknown strategy", func(c *Config) { c.Strategy = "entropy" }},
		{"negative budget", func(c *Config) { c.BudgetSeconds = -1 }},
		{"negative label cost", func(c *Config) { c.LabelSeconds = -1 }},
		{"validation stopping", func(c *Config) {
			c.Tune = testTune()
			c.Tune.Initial.ValEvery = 10
		}},
		{"keep best", func(c *Config) {
			c.Tune = testTune()
			c.Tune.KeepBest = true
		}},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestNewLoopErrors: structural problems surface at construction.
func TestNewLoopErrors(t *testing.T) {
	cfg := Config{Rounds: 1, Batch: 1, Tune: testTune()}
	net := testNet(t)
	if _, err := NewLoop(cfg, net, &Pool{}, testLabeler, nil); err == nil {
		t.Error("empty pool accepted")
	}
	pool := testPool(4)
	if _, err := NewLoop(cfg, net, pool, nil, nil); err == nil {
		t.Error("nil labeler accepted")
	}
	short := &Pool{Clips: pool.Clips, Tensors: pool.Tensors[:2]}
	if _, err := NewLoop(cfg, net, short, testLabeler, nil); err == nil {
		t.Error("clip/tensor length mismatch accepted")
	}
}

// TestWeightChecksum: clones hash identically; a one-bit weight change
// changes the fingerprint.
func TestWeightChecksum(t *testing.T) {
	net := testNet(t)
	clone, err := net.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if WeightChecksum(net) != WeightChecksum(clone) {
		t.Fatal("clone checksum differs")
	}
	before := WeightChecksum(net)
	net.Params()[0].W.Data()[0] += 0.125
	if WeightChecksum(net) == before {
		t.Fatal("weight perturbation left the checksum unchanged")
	}
}
