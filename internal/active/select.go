package active

import (
	"math"
	"sort"

	"hotspot/internal/feature"
	"hotspot/internal/parallel"
	"hotspot/internal/tensor"
)

// mix64 is the splitmix64 finalizer over (key, v): nearby inputs give
// uncorrelated outputs, and the value depends only on (key, v) — never on
// worker assignment — which is what keeps round-keyed tie-breaking
// bit-identical under any worker count (the same construction as
// train.sampleSeed).
func mix64(key, v uint64) uint64 {
	z := key + (v+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// candidate is one unlabeled pool entry staged for selection.
type candidate struct {
	pool    int       // index into the shared pool
	margin  float64   // |p − 0.5|, the uncertainty margin
	tie     uint64    // round-keyed splitmix64 tie token
	x       []float64 // flat feature vector (tensor data, shared storage)
	minDist float64   // squared distance to the nearest selected center
	taken   bool      // already selected this round
}

// selector owns the candidate scratch of one loop so repeated rounds
// reallocate nothing; SelectHybrid builds a throwaway one per call.
type selector struct {
	pool *parallel.Pool
	cand []candidate
}

func newSelector(pool *parallel.Pool) *selector {
	return &selector{pool: pool}
}

// SelectHybrid returns up to batch pool indices chosen by hybrid
// uncertainty + diversity: the candidates most uncertain by margin
// |p − 0.5| are shortlisted, then a greedy k-center (farthest-first)
// traversal over their cached feature tensors picks the batch, starting
// from the most uncertain candidate and repeatedly adding the candidate
// farthest (squared Euclidean) from the selected set.
//
// unlabeled lists pool indices; probs[j] is the hotspot probability of
// pool clip unlabeled[j]; xs is indexed by pool index. candidates bounds
// the shortlist (0 means 4×batch; always at least batch). Every ordering
// is deterministic under any worker count: margins compare by value, exact
// ties (bit-equal margins or distances) fall back to the round-keyed
// splitmix64 token and then the pool index, and the parallel distance
// updates write only index-owned slots with the argmax reduced in index
// order on the calling goroutine.
func SelectHybrid(xs []*tensor.Tensor, probs []float64, unlabeled []int, batch, candidates int, roundKey uint64, workers int) ([]int, error) {
	return newSelector(parallel.New(workers)).selectHybrid(xs, probs, unlabeled, batch, candidates, roundKey)
}

// SelectRandom returns up to batch pool indices in round-keyed uniform
// order — the random-sampling baseline the active curves are compared
// against. Deterministic for a given (roundKey, unlabeled) and trivially
// worker-independent.
func SelectRandom(unlabeled []int, batch int, roundKey uint64) []int {
	ord := make([]int, len(unlabeled))
	copy(ord, unlabeled)
	sort.Slice(ord, func(i, j int) bool {
		ti, tj := mix64(roundKey, uint64(ord[i])), mix64(roundKey, uint64(ord[j]))
		if ti != tj {
			return ti < tj
		}
		return ord[i] < ord[j]
	})
	if batch < len(ord) {
		ord = ord[:batch]
	}
	return ord
}

func (s *selector) selectHybrid(xs []*tensor.Tensor, probs []float64, unlabeled []int, batch, candidates int, roundKey uint64) ([]int, error) {
	if batch <= 0 || len(unlabeled) == 0 {
		return nil, nil
	}
	// Stage every unlabeled entry, then shortlist by uncertainty.
	if cap(s.cand) < len(unlabeled) {
		s.cand = make([]candidate, len(unlabeled))
	}
	s.cand = s.cand[:len(unlabeled)]
	for j, pi := range unlabeled {
		s.cand[j] = candidate{
			pool:    pi,
			margin:  math.Abs(probs[j] - 0.5),
			tie:     mix64(roundKey, uint64(pi)),
			x:       xs[pi].Data(),
			minDist: math.Inf(1),
		}
	}
	sort.Slice(s.cand, func(i, j int) bool {
		a, b := &s.cand[i], &s.cand[j]
		if a.margin < b.margin {
			return true
		}
		if b.margin < a.margin {
			return false
		}
		if a.tie != b.tie {
			return a.tie < b.tie
		}
		return a.pool < b.pool
	})
	if batch >= len(s.cand) {
		// The whole remaining pool fits: no diversity decision to make.
		out := make([]int, len(s.cand))
		for i := range s.cand {
			out[i] = s.cand[i].pool
		}
		return out, nil
	}
	m := candidates
	if m <= 0 {
		m = 4 * batch
	}
	if m < batch {
		m = batch
	}
	if m > len(s.cand) {
		m = len(s.cand)
	}
	s.cand = s.cand[:m]

	// Greedy k-center (farthest-first) over the shortlist. The first
	// center is the most uncertain candidate; each following center is the
	// candidate with the largest squared distance to the selected set.
	selected := make([]int, 0, batch)
	s.cand[0].taken = true
	selected = append(selected, s.cand[0].pool)
	last := 0
	for len(selected) < batch {
		center := s.cand[last].x
		// Fold the newest center into every candidate's min distance.
		// Each item writes only its own slot, so the pass is bit-identical
		// under any worker count.
		if err := s.pool.For(len(s.cand), func(_, i int) error {
			return s.updateMinDist(i, center)
		}); err != nil {
			return nil, err
		}
		// Argmax in index order on this goroutine: strictly greater wins;
		// bit-equal distances fall back to the tie token, then pool index.
		best := -1
		for i := range s.cand {
			if s.cand[i].taken {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			di, db := s.cand[i].minDist, s.cand[best].minDist
			if di > db {
				best = i
				continue
			}
			if db > di {
				continue
			}
			if s.cand[i].tie != s.cand[best].tie {
				if s.cand[i].tie < s.cand[best].tie {
					best = i
				}
				continue
			}
			if s.cand[i].pool < s.cand[best].pool {
				best = i
			}
		}
		s.cand[best].taken = true
		selected = append(selected, s.cand[best].pool)
		last = best
	}
	return selected, nil
}

// updateMinDist folds the newest center into candidate i's distance to
// the selected set. It runs as a parallel worker body — the func-value
// hop through Pool.For hides it from callers' reachability walks — so it
// is a hot-path root in its own right: one call per (candidate, center)
// pair, the inner loop of every selection round.
//hsd:hotpath
func (s *selector) updateMinDist(i int, center []float64) error {
	c := &s.cand[i]
	if c.taken {
		return nil
	}
	d, err := feature.SqDist(c.x, center)
	if err != nil {
		return err
	}
	if d < c.minDist {
		c.minDist = d
	}
	return nil
}
