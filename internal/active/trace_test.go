package active

import (
	"testing"

	"hotspot/internal/obs/trace"
)

// TestLoopTraceParity: a traced loop and a dark loop over the same pool
// select the same clips and land on bit-identical weights — tracing
// observes, never perturbs.
func TestLoopTraceParity(t *testing.T) {
	pool := testPool(20)
	base := Config{Rounds: 2, Batch: 4, Seed: 7, Tune: testTune()}
	darkReports, darkSum := runLoop(t, pool, base)

	lit := base
	lit.Tracer = trace.New(trace.Config{Seed: 5})
	litReports, litSum := runLoop(t, pool, lit)
	if litSum != darkSum {
		t.Fatalf("traced weight checksum %#x, dark %#x", litSum, darkSum)
	}
	for r := range darkReports {
		if !equalInts(litReports[r].Selected, darkReports[r].Selected) {
			t.Fatalf("round %d: traced selected %v, dark %v",
				r, litReports[r].Selected, darkReports[r].Selected)
		}
	}
}

// TestLoopTraceRounds checks the recorded shape: one active/round trace
// per round run, carrying score/select/label/tune spans and the batch
// accounting attributes that mirror the RoundReport.
func TestLoopTraceRounds(t *testing.T) {
	pool := testPool(20)
	cfg := Config{
		Rounds: 2, Batch: 4, Seed: 7, Tune: testTune(),
		Tracer: trace.New(trace.Config{Seed: 5}),
	}
	reports, _ := runLoop(t, pool, cfg)
	if len(reports) != 2 {
		t.Fatalf("ran %d rounds, want 2", len(reports))
	}
	byRound := map[int64]*trace.TraceJSON{}
	snap := cfg.Tracer.Snapshot()
	for i := range snap {
		if snap[i].Name == "active/round" {
			r, _ := snap[i].Attrs["round"].(int64)
			byRound[r] = &snap[i]
		}
	}
	if len(byRound) != 2 {
		t.Fatalf("recorded %d round traces, want 2", len(byRound))
	}
	for r, rep := range reports {
		tr := byRound[int64(r)]
		if tr == nil {
			t.Fatalf("no trace for round %d", r)
		}
		spans := map[string]trace.SpanJSON{}
		for _, sp := range tr.Spans {
			spans[sp.Name] = sp
		}
		for _, st := range []string{"score", "select", "label", "tune"} {
			if _, ok := spans[st]; !ok {
				t.Fatalf("round %d trace missing %q span: %+v", r, st, tr.Spans)
			}
		}
		if tr.Attrs["scored"] != int64(rep.Scored) ||
			tr.Attrs["selected"] != int64(len(rep.Selected)) ||
			tr.Attrs["labeled"] != int64(rep.Labeled) ||
			tr.Attrs["truncated"] != rep.Truncated {
			t.Fatalf("round %d trace attrs %v do not mirror report %+v", r, tr.Attrs, rep)
		}
		if spans["label"].Attrs["clips"] != int64(rep.Labeled) {
			t.Fatalf("round %d label span clips = %v, want %d",
				r, spans["label"].Attrs["clips"], rep.Labeled)
		}
	}
}
