// Package active is the budgeted batch active-learning orchestrator over
// a shared clip pool — the loop of "Bridging the Gap Between Layout
// Pattern Sampling and Hotspot Detection via Batch Active Learning"
// grafted onto this repository's detector: labeling, not compute, is the
// scarce resource (the paper's ODST simulator charges ~10 s per clip), so
// each round scores the unlabeled pool with the fused train.Evaluator,
// selects a batch by hybrid uncertainty + k-center diversity, "labels" it
// via internal/litho while charging a simulated ODST-seconds budget, and
// fine-tunes with train.BiasedLearning warm-started from the previous
// round's weights.
//
// Determinism contract: for a fixed (seed, pool, budget), the selected
// clip sequences and the final trained weights are bit-identical under
// any worker count. Scoring fans over per-worker replicas into
// index-addressed slots; selection ties break by round-keyed splitmix64
// tokens and then pool index; labeling charges the budget in selection
// order on the orchestrating goroutine; and the fine-tune inherits MGD's
// serial≡parallel gradient parity.
package active

import (
	"fmt"
	"math"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/litho"
	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/tensor"
	"hotspot/internal/train"
)

// Pool is the shared clip pool the loop selects from: the clips and their
// feature tensors, extracted once and cached — selection distance and
// pool scoring both run over the cached tensors, so no round re-rasterizes
// anything.
type Pool struct {
	Clips   []geom.Clip
	Tensors []*tensor.Tensor
}

// NewPool extracts and caches one feature tensor per clip, fanning the
// extraction across workers (0 = parallel.Default()).
func NewPool(clips []geom.Clip, core geom.Rect, cfg feature.TensorConfig, workers int) (*Pool, error) {
	if len(clips) == 0 {
		return nil, fmt.Errorf("active: empty clip pool")
	}
	ts, err := feature.ExtractTensors(clips, core, cfg, workers)
	if err != nil {
		return nil, err
	}
	return &Pool{Clips: clips, Tensors: ts}, nil
}

// Labeler produces the ground-truth label of pool clip i — in production
// a litho oracle query (layout.Labeler.Label), in tests a fixture. The
// loop calls it serially in selection order, after the budget charge for
// the clip has succeeded.
type Labeler func(i int, c geom.Clip) (bool, error)

// Selection strategies.
const (
	// StrategyHybrid selects by uncertainty margin + greedy k-center
	// diversity (SelectHybrid) — the default.
	StrategyHybrid = "hybrid"
	// StrategyRandom selects uniformly at random (round-keyed, SelectRandom)
	// — the baseline the accuracy-vs-budget curves compare against.
	StrategyRandom = "random"
)

// Config parameterizes the loop.
type Config struct {
	// Rounds bounds the select→label→tune rounds; the loop also stops
	// early when the budget cannot cover any clip of a round's batch.
	Rounds int
	// Batch is the number of clips selected (and, budget permitting,
	// labeled) per round.
	Batch int
	// Candidates bounds the uncertainty shortlist fed to the k-center
	// stage (0 = 4×Batch). Ignored by StrategyRandom.
	Candidates int
	// Strategy is StrategyHybrid ("" = hybrid) or StrategyRandom.
	Strategy string
	// LabelSeconds is the simulated ODST cost charged per labeled clip
	// (0 = litho.DefaultLabelCost(), the paper's 10 s figure).
	LabelSeconds float64
	// BudgetSeconds is the total labeling budget (0 = unlimited).
	BudgetSeconds float64
	// Seed keys round tie-break tokens and, offset per round, the
	// fine-tune schedule's sampling seeds.
	Seed int64
	// Workers bounds scoring, selection and fine-tune goroutines
	// (0 = parallel.Default()); results are bit-identical for any value.
	Workers int
	// Tune is the per-round fine-tune schedule (zero value = DefaultTune()).
	// Validation-based stopping and KeepBest are rejected: the loop holds
	// no validation split — carving one from the labeled set would spend
	// scarce labels on model selection.
	Tune train.BiasedConfig
	// Log, when non-nil, receives the JSONL round manifest ("manifest",
	// per-round "round", final "result" events). Observation only.
	Log *obs.EventLog
	// Tracer, when non-nil, records one trace tree per round —
	// score/select/label/tune stage spans plus batch accounting attributes.
	// Observation only: weights and selections are bit-identical with
	// tracing lit or dark. Nil is free.
	Tracer *trace.Tracer
}

// DefaultTune is the fine-tune schedule the CLI and the experiments use:
// one biased round at ε=0.1 of short MGD — warm-started each loop round,
// so the schedule is a fine-tune step, not a from-scratch run. No
// validation split (see Config.Tune).
func DefaultTune() train.BiasedConfig {
	return train.BiasedConfig{
		InitialEps: 0.1,
		DeltaEps:   0,
		Rounds:     1,
		Initial: train.MGDConfig{
			LearningRate:   0.01,
			DecayFactor:    0.5,
			DecayStep:      200,
			BatchSize:      8,
			MaxIters:       400,
			BalanceClasses: true,
			Seed:           11,
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rounds <= 0 {
		return fmt.Errorf("active: need at least one round, got %d", c.Rounds)
	}
	if c.Batch <= 0 {
		return fmt.Errorf("active: batch must be positive, got %d", c.Batch)
	}
	if c.Candidates < 0 {
		return fmt.Errorf("active: negative candidate bound %d", c.Candidates)
	}
	switch c.Strategy {
	case "", StrategyHybrid, StrategyRandom:
	default:
		return fmt.Errorf("active: unknown strategy %q", c.Strategy)
	}
	if c.LabelSeconds < 0 || c.BudgetSeconds < 0 {
		return fmt.Errorf("active: negative label cost or budget")
	}
	tune := c.tune()
	if err := tune.Validate(); err != nil {
		return err
	}
	if tune.Initial.ValEvery != 0 || (tune.Rounds > 1 && tune.FineTune.ValEvery != 0) {
		return fmt.Errorf("active: fine-tune validation is not supported (the loop holds no validation split)")
	}
	if tune.KeepBest {
		return fmt.Errorf("active: KeepBest needs a validation split the loop does not hold")
	}
	return nil
}

// tune resolves the fine-tune schedule (zero value = DefaultTune).
func (c Config) tune() train.BiasedConfig {
	if c.Tune.Rounds == 0 {
		return DefaultTune()
	}
	return c.Tune
}

// strategy resolves the selection strategy name.
func (c Config) strategy() string {
	if c.Strategy == "" {
		return StrategyHybrid
	}
	return c.Strategy
}

// labelSeconds resolves the per-clip label cost.
func (c Config) labelSeconds() float64 {
	if c.LabelSeconds > 0 {
		return c.LabelSeconds
	}
	return litho.DefaultLabelCost()
}

// RoundReport records one loop round.
type RoundReport struct {
	// Round is the 0-based round index.
	Round int `json:"round"`
	// Scored is the unlabeled pool size scored this round.
	Scored int `json:"scored"`
	// Selected lists the selected pool indices in selection order; the
	// labeled prefix is Selected[:Labeled].
	Selected []int `json:"selected"`
	// Labeled counts the selected clips actually labeled before the
	// budget ran out.
	Labeled int `json:"labeled"`
	// Hotspots is the cumulative hotspot count over all labeled clips.
	Hotspots int `json:"hotspots"`
	// BudgetSpent and BudgetRemaining are the meter readings after the
	// round's labeling (BudgetRemaining is -1 for an unlimited budget).
	BudgetSpent     float64 `json:"budget_spent"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// Truncated reports that the budget ran out mid-batch.
	Truncated bool `json:"truncated"`
	// Eval holds the held-out metrics after the round's fine-tune (zero
	// when the loop has no eval set, or when no clip could be labeled).
	Eval train.Metrics `json:"eval"`
}

// Loop is one active-learning run over a pool. Build with NewLoop, drive
// with Run; not safe for concurrent use.
type Loop struct {
	cfg     Config
	net     *nn.Network
	pool    *Pool
	label   Labeler
	evalSet []train.Sample

	ev     *train.Evaluator
	sel    *selector
	budget *litho.Budget

	unlabeled []int // pool indices, ascending at start, selection-pruned
	labeled   []train.Sample
	hotspots  int

	rounds   *obs.Counter
	selected *obs.Counter
	labeledC *obs.Counter
}

// NewLoop validates the configuration and stages a run: net is fine-tuned
// in place (pass a freshly initialized network, or one restored via
// train.LoadWarmStart to resume). evalSet, when non-empty, is a held-out
// labeled set scored after every round for the reports; it never feeds
// training and is never charged against the budget.
func NewLoop(cfg Config, net *nn.Network, pool *Pool, label Labeler, evalSet []train.Sample) (*Loop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pool == nil || len(pool.Clips) == 0 {
		return nil, fmt.Errorf("active: empty clip pool")
	}
	if len(pool.Tensors) != len(pool.Clips) {
		return nil, fmt.Errorf("active: pool has %d tensors for %d clips", len(pool.Tensors), len(pool.Clips))
	}
	if label == nil {
		return nil, fmt.Errorf("active: nil labeler")
	}
	ev, err := train.NewEvaluator(net, cfg.Workers)
	if err != nil {
		return nil, err
	}
	unlabeled := make([]int, len(pool.Clips))
	for i := range unlabeled {
		unlabeled[i] = i
	}
	reg := obs.Default()
	return &Loop{
		cfg:       cfg,
		net:       net,
		pool:      pool,
		label:     label,
		evalSet:   evalSet,
		ev:        ev,
		sel:       newSelector(parallel.New(cfg.Workers)),
		budget:    litho.NewBudget(cfg.BudgetSeconds),
		unlabeled: unlabeled,
		rounds:    reg.Counter("hsd_active_rounds_total"),
		selected:  reg.Counter("hsd_active_selected_total"),
		labeledC:  reg.Counter("hsd_active_labeled_total"),
	}, nil
}

// Budget exposes the loop's label-budget meter.
func (l *Loop) Budget() *litho.Budget { return l.budget }

// Labeled returns the labeled samples accumulated so far, in labeling
// order (the tensors alias the pool cache).
func (l *Loop) Labeled() []train.Sample { return l.labeled }

// remainingForReport renders the budget remainder for reports and JSONL:
// -1 for an unlimited budget (JSON has no +Inf).
func (l *Loop) remainingForReport() float64 {
	if l.cfg.BudgetSeconds <= 0 {
		return -1
	}
	return l.budget.Remaining()
}

// Run drives the loop: Rounds × (score → select → label → fine-tune),
// stopping early when the budget cannot cover a single clip of a round.
// The returned reports carry one entry per round run.
func (l *Loop) Run() ([]RoundReport, error) {
	cost := l.cfg.labelSeconds()
	reg := obs.Default()
	l.emit("manifest", map[string]any{
		"tool":           "active",
		"pool":           len(l.pool.Clips),
		"eval":           len(l.evalSet),
		"rounds":         l.cfg.Rounds,
		"batch":          l.cfg.Batch,
		"candidates":     l.cfg.Candidates,
		"strategy":       l.cfg.strategy(),
		"label_seconds":  cost,
		"budget_seconds": l.cfg.BudgetSeconds,
		"seed":           l.cfg.Seed,
		"workers":        l.ev.Workers(),
	})
	reports := make([]RoundReport, 0, l.cfg.Rounds)
	for r := 0; r < l.cfg.Rounds; r++ {
		rep, err := l.round(r, cost, reg)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
		l.rounds.Inc()
		l.emit("round", map[string]any{
			"round":             rep.Round,
			"scored":            rep.Scored,
			"selected":          rep.Selected,
			"labeled":           rep.Labeled,
			"hotspots":          rep.Hotspots,
			"budget_spent":      rep.BudgetSpent,
			"budget_remaining":  rep.BudgetRemaining,
			"truncated":         rep.Truncated,
			"eval_accuracy":     rep.Eval.Accuracy,
			"eval_recall":       rep.Eval.Recall,
			"eval_false_alarms": rep.Eval.FalseAlarms,
		})
		if rep.Truncated || len(l.unlabeled) == 0 {
			break
		}
	}
	l.emit("result", map[string]any{
		"rounds_run":       len(reports),
		"labeled_total":    len(l.labeled),
		"hotspots":         l.hotspots,
		"budget_spent":     l.budget.Spent(),
		"budget_remaining": l.remainingForReport(),
	})
	return reports, nil
}

// round wraps one runRound call in a per-round trace: the round trace is
// closed on every exit path, errored rounds keep the error message, and
// the accounting attributes mirror the RoundReport.
func (l *Loop) round(r int, cost float64, reg *obs.Registry) (RoundReport, error) {
	rtr := l.cfg.Tracer.Start("active/round")
	rtr.SetInt("round", int64(r))
	rep, err := l.runRound(r, cost, reg, rtr)
	rtr.SetInt("scored", int64(rep.Scored))
	rtr.SetInt("selected", int64(len(rep.Selected)))
	rtr.SetInt("labeled", int64(rep.Labeled))
	rtr.SetBool("truncated", rep.Truncated)
	rtr.SetFloat("budget_spent", rep.BudgetSpent)
	if err != nil {
		rtr.SetError(err.Error())
	}
	rtr.Finish()
	return rep, err
}

// runRound runs one score→select→label→tune round.
func (l *Loop) runRound(r int, cost float64, reg *obs.Registry, rtr *trace.Trace) (RoundReport, error) {
	rep := RoundReport{Round: r, Scored: len(l.unlabeled)}

	// Score the unlabeled pool on the fused evaluator. StrategyRandom
	// skips scoring entirely — the baseline should not pay (or depend on)
	// inference it does not use.
	roundKey := mix64(uint64(l.cfg.Seed), uint64(r))
	var sel []int
	if l.cfg.strategy() == StrategyRandom {
		watch := obs.NewStopwatch()
		sel = SelectRandom(l.unlabeled, l.cfg.Batch, roundKey)
		d := watch.Elapsed()
		reg.Stage("active/select").ObserveDuration(d)
		rtr.StartSpan("select").EndWith(d)
	} else {
		watch := obs.NewStopwatch()
		xs := make([]*tensor.Tensor, len(l.unlabeled))
		for j, pi := range l.unlabeled {
			xs[j] = l.pool.Tensors[pi]
		}
		probs, err := l.ev.PredictProbs(xs)
		if err != nil {
			return rep, err
		}
		d := watch.Elapsed()
		reg.Stage("active/score").ObserveDuration(d)
		ssp := rtr.StartSpan("score")
		ssp.SetInt("pool", int64(len(xs)))
		ssp.EndWith(d)

		watch = obs.NewStopwatch()
		sel, err = l.sel.selectHybrid(l.pool.Tensors, probs, l.unlabeled, l.cfg.Batch, l.cfg.Candidates, roundKey)
		if err != nil {
			return rep, err
		}
		d = watch.Elapsed()
		reg.Stage("active/select").ObserveDuration(d)
		rtr.StartSpan("select").EndWith(d)
	}
	rep.Selected = sel
	l.selected.Add(int64(len(sel)))

	// Label in selection order, charging the budget per clip; stop at the
	// first clip the budget cannot cover. The charge-then-label order is
	// the accounting contract: an unaffordable clip costs nothing.
	watch := obs.NewStopwatch()
	labeledNow := 0
	for _, pi := range sel {
		if !l.budget.TryCharge(cost) {
			rep.Truncated = true
			break
		}
		hot, err := l.label(pi, l.pool.Clips[pi])
		if err != nil {
			return rep, fmt.Errorf("active: labeling pool clip %d: %w", pi, err)
		}
		l.labeled = append(l.labeled, train.Sample{X: l.pool.Tensors[pi], Hotspot: hot})
		if hot {
			l.hotspots++
		}
		labeledNow++
	}
	d := watch.Elapsed()
	reg.Stage("active/label").ObserveDuration(d)
	lsp := rtr.StartSpan("label")
	lsp.SetInt("clips", int64(labeledNow))
	lsp.EndWith(d)
	rep.Labeled = labeledNow
	rep.Hotspots = l.hotspots
	rep.BudgetSpent = l.budget.Spent()
	rep.BudgetRemaining = l.remainingForReport()
	l.labeledC.Add(int64(labeledNow))

	// Remove the labeled prefix from the unlabeled pool, preserving order.
	if labeledNow > 0 {
		gone := make(map[int]bool, labeledNow)
		for _, pi := range sel[:labeledNow] {
			gone[pi] = true
		}
		kept := l.unlabeled[:0]
		for _, pi := range l.unlabeled {
			if !gone[pi] {
				kept = append(kept, pi)
			}
		}
		l.unlabeled = kept
	}
	if labeledNow == 0 {
		// Budget exhausted before the round labeled anything: no new
		// information, nothing to tune on.
		return rep, nil
	}

	// Fine-tune in place, warm-started from the current weights. Seeds
	// offset per loop round so each round draws fresh batches; balanced
	// sampling degrades deterministically to uniform until both classes
	// have been observed.
	watch = obs.NewStopwatch()
	tune := l.cfg.tune()
	tune.Initial.Seed += int64(r)
	tune.FineTune.Seed += int64(r)
	if l.cfg.Workers != 0 {
		tune.Initial.Workers = l.cfg.Workers
		tune.FineTune.Workers = l.cfg.Workers
	}
	if tune.Initial.BalanceClasses && (l.hotspots == 0 || l.hotspots == len(l.labeled)) {
		tune.Initial.BalanceClasses = false
		tune.FineTune.BalanceClasses = false
	}
	if _, err := train.BiasedLearning(l.net, l.labeled, nil, tune); err != nil {
		return rep, err
	}
	d = watch.Elapsed()
	reg.Stage("active/tune").ObserveDuration(d)
	tsp := rtr.StartSpan("tune")
	tsp.SetInt("samples", int64(len(l.labeled)))
	tsp.EndWith(d)

	if len(l.evalSet) > 0 {
		m, err := l.ev.EvalSet(l.evalSet, 0)
		if err != nil {
			return rep, err
		}
		rep.Eval = m
	}
	return rep, nil
}

// emit writes one JSONL event when a log is configured (Emit is nil-safe,
// but the helper keeps call sites honest about observation-only intent).
func (l *Loop) emit(event string, fields map[string]any) {
	l.cfg.Log.Emit(event, fields)
}

// WeightChecksum returns the FNV-1a hash of every parameter's IEEE-754
// bits in parameter order — the fingerprint the parity gates compare
// across worker counts.
func WeightChecksum(net *nn.Network) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range net.Params() {
		for _, v := range p.W.Data() {
			bits := math.Float64bits(v)
			for shift := 0; shift < 64; shift += 8 {
				h ^= (bits >> shift) & 0xff
				h *= prime64
			}
		}
	}
	return h
}
