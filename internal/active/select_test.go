package active

import (
	"math/rand"
	"testing"

	"hotspot/internal/tensor"
)

// synthTensors builds n deterministic feature tensors of the given shape,
// each from its own index-keyed stream.
func synthTensors(n int, shape ...int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		rng := rand.New(rand.NewSource(int64(i)*0x9e3779b9 + 1))
		t := tensor.New(shape...)
		d := t.Data()
		for j := range d {
			d[j] = rng.NormFloat64()
		}
		out[i] = t
	}
	return out
}

func synthProbs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelectHybridWorkerParity: the selected sequence is bit-identical
// under worker counts 1, 4 and 8 — the selection half of the loop's
// determinism contract.
func TestSelectHybridWorkerParity(t *testing.T) {
	const n, batch = 60, 8
	xs := synthTensors(n, 4, 3, 3)
	probs := synthProbs(n, 42)
	want, err := SelectHybrid(xs, probs, indices(n), batch, 0, mix64(7, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != batch {
		t.Fatalf("selected %d, want %d", len(want), batch)
	}
	for _, workers := range []int{4, 8} {
		got, err := SelectHybrid(xs, probs, indices(n), batch, 0, mix64(7, 0), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(got, want) {
			t.Fatalf("workers=%d selected %v, workers=1 selected %v", workers, got, want)
		}
	}
}

// TestSelectHybridStartsMostUncertain: the first pick is the candidate
// with the smallest |p−0.5| margin.
func TestSelectHybridStartsMostUncertain(t *testing.T) {
	const n = 20
	xs := synthTensors(n, 2, 2, 2)
	probs := synthProbs(n, 3)
	probs[13] = 0.5 // exactly on the boundary: margin 0, strictly smallest
	sel, err := SelectHybrid(xs, probs, indices(n), 4, 0, mix64(1, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 13 {
		t.Fatalf("first pick %d, want the zero-margin candidate 13 (selection %v)", sel[0], sel)
	}
}

// TestSelectHybridDuplicateClips: an exact duplicate of an already
// selected clip has k-center distance zero, so it is never chosen while a
// distinct candidate remains — and the tie handling stays deterministic
// under any worker count when only duplicates are left.
func TestSelectHybridDuplicateClips(t *testing.T) {
	const n = 12
	xs := synthTensors(n, 2, 2, 2)
	// Clips 1..5 are bit-exact duplicates of clip 0.
	for i := 1; i <= 5; i++ {
		copy(xs[i].Data(), xs[0].Data())
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.5 // equal margins: uncertainty does not separate them
	}
	want, err := SelectHybrid(xs, probs, indices(n), 9, 0, mix64(99, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate group contributes exactly one member to the first 7
	// picks (6 distinct vectors + the group = 7 distinct positions).
	dup := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}
	fromGroup := 0
	for _, pi := range want[:7] {
		if dup[pi] {
			fromGroup++
		}
	}
	if fromGroup != 1 {
		t.Fatalf("first 7 picks took %d from the duplicate group, want exactly 1: %v", fromGroup, want)
	}
	for _, workers := range []int{4, 8} {
		got, err := SelectHybrid(xs, probs, indices(n), 9, 0, mix64(99, 0), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(got, want) {
			t.Fatalf("workers=%d selected %v, workers=1 selected %v", workers, got, want)
		}
	}
}

// TestSelectHybridTieMargins: with every margin bit-equal, ordering falls
// to the round-keyed tie tokens — deterministic per key, and different
// keys reshuffle the shortlist.
func TestSelectHybridTieMargins(t *testing.T) {
	const n = 30
	xs := synthTensors(n, 2, 2, 2)
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = 0.7 // identical margins everywhere
	}
	a, err := SelectHybrid(xs, probs, indices(n), 5, 10, mix64(5, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectHybrid(xs, probs, indices(n), 5, 10, mix64(5, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(a, b) {
		t.Fatalf("same round key selected %v then %v", a, b)
	}
	c, err := SelectHybrid(xs, probs, indices(n), 5, 10, mix64(6, 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if equalInts(a, c) {
		t.Fatalf("different round keys picked the identical sequence %v (tie tokens not keyed?)", a)
	}
}

// TestSelectHybridBatchCoversPool: a batch at least as large as the
// remaining pool selects everything, in uncertainty order.
func TestSelectHybridBatchCoversPool(t *testing.T) {
	const n = 6
	xs := synthTensors(n, 2, 2, 2)
	probs := synthProbs(n, 8)
	sel, err := SelectHybrid(xs, probs, indices(n), 10, 0, mix64(2, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != n {
		t.Fatalf("selected %d, want the whole pool (%d)", len(sel), n)
	}
	seen := make(map[int]bool, n)
	for _, pi := range sel {
		seen[pi] = true
	}
	if len(seen) != n {
		t.Fatalf("selection %v repeats an index", sel)
	}
}

// TestSelectRandom: round-keyed, deterministic, a permutation prefix, and
// reshuffled by the key.
func TestSelectRandom(t *testing.T) {
	unlabeled := []int{3, 7, 11, 19, 23, 31, 40, 41}
	a := SelectRandom(unlabeled, 4, mix64(1, 0))
	b := SelectRandom(unlabeled, 4, mix64(1, 0))
	if !equalInts(a, b) {
		t.Fatalf("same key: %v vs %v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("selected %d, want 4", len(a))
	}
	allowed := make(map[int]bool)
	for _, pi := range unlabeled {
		allowed[pi] = true
	}
	for _, pi := range a {
		if !allowed[pi] {
			t.Fatalf("selection %v strays outside the unlabeled set", a)
		}
	}
	c := SelectRandom(unlabeled, 4, mix64(2, 0))
	if equalInts(a, c) {
		t.Fatalf("different keys picked the identical sequence %v", a)
	}
	all := SelectRandom(unlabeled, 100, mix64(1, 0))
	if len(all) != len(unlabeled) {
		t.Fatalf("oversized batch selected %d, want %d", len(all), len(unlabeled))
	}
}
