package feature

import "fmt"

// SqDist returns the squared Euclidean distance between two feature
// vectors of equal length, accumulated sequentially in index order so the
// value is bit-identical no matter how callers parallelize over pairs.
//
// It is the pairwise-distance kernel of the active-learning k-center
// selector: one call per (candidate, center) pair over cached zigzag
// feature tensors, which is why it takes raw []float64 (tensor.Data())
// rather than tensors — no per-call unwrapping or shape checks beyond the
// length guard.
//
// It runs as a parallel worker body via the selector's fan-out, so it is
// annotated as a hot-path root in its own right.
//hsd:hotpath
func SqDist(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("feature: distance between vectors of length %d and %d", len(a), len(b))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s, nil
}
