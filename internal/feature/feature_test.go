package feature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

// testClip builds a small halo-free clip with a few wires.
func testClip() geom.Clip {
	return geom.NewClip(geom.R(0, 0, 480, 480), []geom.Rect{
		geom.R(40, 0, 104, 480),
		geom.R(180, 0, 244, 480),
		geom.R(320, 100, 384, 360),
		geom.R(180, 220, 320, 284),
	})
}

func testCfg() TensorConfig { return TensorConfig{Blocks: 12, K: 32, ResNM: 4} }

func testCfgNorm() TensorConfig {
	return TensorConfig{Blocks: 12, K: 32, ResNM: 4, Normalize: true}
}

func TestTensorConfigValidate(t *testing.T) {
	if err := DefaultTensorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TensorConfig{
		{Blocks: 0, K: 32, ResNM: 4},
		{Blocks: 12, K: 0, ResNM: 4},
		{Blocks: 12, K: 32, ResNM: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestExtractTensorShape(t *testing.T) {
	c := testClip()
	ft, err := ExtractTensor(c, c.Frame, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sh := ft.Shape()
	if sh[0] != 32 || sh[1] != 12 || sh[2] != 12 {
		t.Fatalf("tensor shape %v, want [32 12 12]", sh)
	}
}

func TestExtractTensorDCChannelIsBlockDensity(t *testing.T) {
	// Channel 0 holds each block's DC coefficient = blockMean · blockPx
	// (orthonormal DCT: DC = sum/√(B·B) per axis → mean·B).
	c := testClip()
	cfg := testCfg()
	ft, err := ExtractTensor(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	im, err := raster.Rasterize(c, cfg.ResNM)
	if err != nil {
		t.Fatal(err)
	}
	b := im.W / cfg.Blocks
	for by := 0; by < cfg.Blocks; by++ {
		for bx := 0; bx < cfg.Blocks; bx++ {
			sum := 0.0
			for y := by * b; y < (by+1)*b; y++ {
				for x := bx * b; x < (bx+1)*b; x++ {
					sum += im.At(x, y)
				}
			}
			want := sum / float64(b) // orthonormal 2-D DC = sum / B
			if math.Abs(ft.At(0, by, bx)-want) > 1e-9 {
				t.Fatalf("DC(%d,%d) = %v, want %v", by, bx, ft.At(0, by, bx), want)
			}
		}
	}
}

func TestExtractTensorTranslationEquivariance(t *testing.T) {
	// Shifting the clip by exactly one block shifts the feature tensor by
	// one block position.
	cfg := testCfg()
	blockNM := 480 / cfg.Blocks * cfg.ResNM / cfg.ResNM // 40 nm
	base := geom.NewClip(geom.R(0, 0, 480, 480), []geom.Rect{geom.R(80, 80, 200, 160)})
	shifted := geom.NewClip(geom.R(0, 0, 480, 480), []geom.Rect{geom.R(80+blockNM, 80, 200+blockNM, 160)})
	f1, err := ExtractTensor(base, base.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ExtractTensor(shifted, shifted.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < cfg.K; ch++ {
		for by := 0; by < cfg.Blocks; by++ {
			for bx := 0; bx+1 < cfg.Blocks; bx++ {
				if math.Abs(f1.At(ch, by, bx)-f2.At(ch, by, bx+1)) > 1e-9 {
					t.Fatalf("equivariance failed at ch=%d (%d,%d)", ch, by, bx)
				}
			}
		}
	}
}

func TestExtractTensorWithHaloCore(t *testing.T) {
	// A clip with a halo: features must come from the core only, so two
	// clips differing only outside the core produce identical tensors.
	cfg := testCfg()
	frame := geom.R(0, 0, 800, 800)
	core := geom.R(160, 160, 640, 640)
	a := geom.NewClip(frame, []geom.Rect{geom.R(200, 200, 264, 600)})
	b := geom.NewClip(frame, []geom.Rect{geom.R(200, 200, 264, 600), geom.R(0, 0, 100, 100)})
	fa, err := ExtractTensor(a, core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ExtractTensor(b, core, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fa.Data() {
		if fa.Data()[i] != fb.Data()[i] {
			t.Fatal("halo geometry leaked into core features")
		}
	}
}

func TestExtractTensorErrors(t *testing.T) {
	c := testClip()
	cfg := testCfg()
	if _, err := ExtractTensor(c, geom.R(0, 0, 480, 240), cfg); err == nil {
		t.Fatal("expected non-square-core error")
	}
	if _, err := ExtractTensor(c, geom.R(0, 0, 960, 960), cfg); err == nil {
		t.Fatal("expected core-outside-frame error")
	}
	badRes := cfg
	badRes.ResNM = 7 // 480/7 not integral
	if _, err := ExtractTensor(c, c.Frame, badRes); err == nil {
		t.Fatal("expected divisibility error")
	}
	badK := cfg
	badK.K = 10000
	if _, err := ExtractTensor(c, c.Frame, badK); err == nil {
		t.Fatal("expected K-too-large error")
	}
	badBlocks := cfg
	badBlocks.Blocks = 7
	if _, err := ExtractTensor(c, c.Frame, badBlocks); err == nil {
		t.Fatal("expected block-divisibility error")
	}
}

func TestDecodeTensorReconstructs(t *testing.T) {
	// With K = blockPx² (no truncation) decode∘encode is exact.
	cfg := TensorConfig{Blocks: 4, K: 100, ResNM: 4}
	c := geom.NewClip(geom.R(0, 0, 160, 160), []geom.Rect{
		geom.R(20, 0, 60, 160), geom.R(100, 40, 140, 120),
	})
	ft, err := ExtractTensor(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	im, err := raster.Rasterize(c, cfg.ResNM)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeTensor(ft, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if rec.W != im.W || rec.H != im.H {
		t.Fatalf("reconstruction size %dx%d vs %dx%d", rec.W, rec.H, im.W, im.H)
	}
	for i := range im.Pix {
		if math.Abs(rec.Pix[i]-im.Pix[i]) > 1e-9 {
			t.Fatalf("exact reconstruction failed at %d: %v vs %v", i, rec.Pix[i], im.Pix[i])
		}
	}
}

func TestDecodeTensorTruncationQuality(t *testing.T) {
	// With K=32 of 100 coefficients the reconstruction keeps most energy:
	// relative L2 error under 40% for binary layout images (the paper's
	// "most information kept" claim, Figure 1).
	cfg := TensorConfig{Blocks: 4, K: 32, ResNM: 4}
	c := geom.NewClip(geom.R(0, 0, 160, 160), []geom.Rect{
		geom.R(20, 0, 60, 160), geom.R(100, 40, 140, 120),
	})
	ft, err := ExtractTensor(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	im, err := raster.Rasterize(c, cfg.ResNM)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeTensor(ft, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	var errE, sigE float64
	for i := range im.Pix {
		d := rec.Pix[i] - im.Pix[i]
		errE += d * d
		sigE += im.Pix[i] * im.Pix[i]
	}
	rel := math.Sqrt(errE / sigE)
	if rel > 0.4 {
		t.Fatalf("truncated reconstruction error %.2f too high", rel)
	}
}

func TestDecodeTensorErrors(t *testing.T) {
	cfg := TensorConfig{Blocks: 4, K: 16, ResNM: 4}
	c := testClip()
	ft, err := ExtractTensor(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTensor(ft, 0, false); err == nil {
		t.Fatal("expected bad block size error")
	}
	if _, err := DecodeTensor(ft, 3, false); err == nil {
		t.Fatal("expected K-too-large error (16 > 9)")
	}
	flat := ft.MustReshape(16 * 4 * 4)
	if _, err := DecodeTensor(flat, 10, false); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestExtractTensorFromImage(t *testing.T) {
	im := raster.NewImage(48, 48)
	for i := range im.Pix {
		im.Pix[i] = float64(i%7) / 7
	}
	cfg := TensorConfig{Blocks: 12, K: 4, ResNM: 4}
	ft, err := ExtractTensorFromImage(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Dim(0) != 4 || ft.Dim(1) != 12 {
		t.Fatalf("shape %v", ft.Shape())
	}
	if _, err := ExtractTensorFromImage(raster.NewImage(48, 40), cfg); err == nil {
		t.Fatal("expected non-square error")
	}
	if _, err := ExtractTensorFromImage(raster.NewImage(50, 50), cfg); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestExtractDensity(t *testing.T) {
	// Left half fully drawn: left cells 1, right cells 0.
	c := geom.NewClip(geom.R(0, 0, 96, 96), []geom.Rect{geom.R(0, 0, 48, 96)})
	v, err := ExtractDensity(c, c.Frame, DensityConfig{Grid: 4, ResNM: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 16 {
		t.Fatalf("density length %d", len(v))
	}
	for i, d := range v {
		col := i % 4
		want := 0.0
		if col < 2 {
			want = 1.0
		}
		if math.Abs(d-want) > 1e-12 {
			t.Fatalf("cell %d density %v, want %v", i, d, want)
		}
	}
}

func TestExtractDensitySumMatchesClipDensity(t *testing.T) {
	c := testClip()
	v, err := ExtractDensity(c, c.Frame, DensityConfig{Grid: 12, ResNM: 4})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, d := range v {
		mean += d
	}
	mean /= float64(len(v))
	if math.Abs(mean-c.Density()) > 1e-9 {
		t.Fatalf("mean cell density %v != clip density %v", mean, c.Density())
	}
}

func TestExtractDensityErrors(t *testing.T) {
	c := testClip()
	if _, err := ExtractDensity(c, c.Frame, DensityConfig{Grid: 0, ResNM: 8}); err == nil {
		t.Fatal("expected grid error")
	}
	if _, err := ExtractDensity(c, geom.R(0, 0, 100, 50), DefaultDensityConfig()); err == nil {
		t.Fatal("expected core shape error")
	}
	if _, err := ExtractDensity(c, c.Frame, DensityConfig{Grid: 7, ResNM: 8}); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestCCSConfig(t *testing.T) {
	cfg := DefaultCCSConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	wantDim := 0
	for i := 0; i < cfg.Rings; i++ {
		wantDim += cfg.SamplesBase + cfg.SamplesStep*i
	}
	if cfg.Dim() != wantDim {
		t.Fatalf("Dim = %d, want %d", cfg.Dim(), wantDim)
	}
	bad := cfg
	bad.Rings = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected rings error")
	}
	bad = cfg
	bad.OuterNM = bad.InnerNM - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected radii error")
	}
}

func TestExtractCCS(t *testing.T) {
	c := geom.NewClip(geom.R(0, 0, 1200, 1200), []geom.Rect{geom.R(560, 0, 640, 1200)})
	cfg := DefaultCCSConfig()
	v, err := ExtractCCS(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != cfg.Dim() {
		t.Fatalf("CCS length %d, want %d", len(v), cfg.Dim())
	}
	for i, d := range v {
		if d < 0 || d > 1 {
			t.Fatalf("sample %d = %v outside [0,1]", i, d)
		}
	}
	// Empty clip gives all-zero features.
	empty := geom.NewClip(geom.R(0, 0, 1200, 1200), nil)
	v0, err := ExtractCCS(empty, empty.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range v0 {
		if d != 0 {
			t.Fatal("empty clip should give zero CCS features")
		}
	}
}

func TestExtractCCSDiscriminates(t *testing.T) {
	// A clip with a central feature and one without must differ in the
	// inner rings.
	with := geom.NewClip(geom.R(0, 0, 1200, 1200), []geom.Rect{geom.R(520, 520, 680, 680)})
	without := geom.NewClip(geom.R(0, 0, 1200, 1200), []geom.Rect{geom.R(0, 0, 160, 160)})
	cfg := DefaultCCSConfig()
	a, _ := ExtractCCS(with, with.Frame, cfg)
	b, _ := ExtractCCS(without, without.Frame, cfg)
	diff := 0.0
	for i := range a {
		diff += math.Abs(a[i] - b[i])
	}
	if diff < 0.5 {
		t.Fatalf("CCS features barely differ (%v) for very different clips", diff)
	}
}

func TestMutualInformation(t *testing.T) {
	// Perfectly informative feature.
	x := []float64{0, 0, 0, 1, 1, 1}
	y := []bool{false, false, false, true, true, true}
	mi, err := MutualInformation(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mi-math.Log(2)) > 1e-9 {
		t.Fatalf("MI = %v, want ln 2", mi)
	}
	// Constant feature: zero information.
	mi0, err := MutualInformation([]float64{3, 3, 3, 3}, []bool{true, false, true, false}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mi0 != 0 {
		t.Fatalf("constant feature MI = %v", mi0)
	}
}

func TestMutualInformationErrors(t *testing.T) {
	if _, err := MutualInformation([]float64{1}, []bool{true, false}, 4); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := MutualInformation(nil, nil, 4); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := MutualInformation([]float64{1, 2}, []bool{true, false}, 1); err == nil {
		t.Fatal("expected bins error")
	}
}

// Property: MI of an independent feature is near zero; MI of the label
// itself is near H(Y).
func TestMutualInformationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 400
		x := make([]float64, n)
		ident := make([]float64, n)
		y := make([]bool, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64() < 0.5
			if y[i] {
				ident[i] = 1
			}
		}
		miIndep, err1 := MutualInformation(x, y, 8)
		miIdent, err2 := MutualInformation(ident, y, 8)
		if err1 != nil || err2 != nil {
			return false
		}
		return miIndep < 0.05 && miIdent > 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectMI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		y[i] = rng.Float64() < 0.5
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.Float64()
		}
		// Feature 2 is the label plus small noise: most informative.
		if y[i] {
			row[2] = 1 + 0.05*rng.NormFloat64()
		} else {
			row[2] = 0.05 * rng.NormFloat64()
		}
		X[i] = row
	}
	idx, err := SelectMI(X, y, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 2 {
		t.Fatalf("top MI feature = %d, want 2", idx[0])
	}
	P := Project(X, idx)
	if len(P) != n || len(P[0]) != 2 {
		t.Fatalf("projection shape %dx%d", len(P), len(P[0]))
	}
	if P[0][0] != X[0][2] {
		t.Fatal("projection order wrong")
	}
}

func TestSelectMIErrors(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []bool{true, false}
	if _, err := SelectMI(nil, nil, 1, 4); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := SelectMI(X, []bool{true}, 1, 4); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := SelectMI(X, y, 0, 4); err == nil {
		t.Fatal("expected m error")
	}
	if _, err := SelectMI(X, y, 3, 4); err == nil {
		t.Fatal("expected m>d error")
	}
	if _, err := SelectMI([][]float64{{1, 2}, {3}}, y, 1, 4); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestExtractTensorNormalizedDC(t *testing.T) {
	// With Normalize on, the DC channel equals the block mean density.
	c := testClip()
	cfg := testCfgNorm()
	ft, err := ExtractTensor(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	im, err := raster.Rasterize(c, cfg.ResNM)
	if err != nil {
		t.Fatal(err)
	}
	b := im.W / cfg.Blocks
	for by := 0; by < cfg.Blocks; by++ {
		for bx := 0; bx < cfg.Blocks; bx++ {
			sum := 0.0
			for y := by * b; y < (by+1)*b; y++ {
				for x := bx * b; x < (bx+1)*b; x++ {
					sum += im.At(x, y)
				}
			}
			want := sum / float64(b*b)
			if math.Abs(ft.At(0, by, bx)-want) > 1e-9 {
				t.Fatalf("normalized DC(%d,%d) = %v, want %v", by, bx, ft.At(0, by, bx), want)
			}
			if ft.At(0, by, bx) < -1e-9 || ft.At(0, by, bx) > 1+1e-9 {
				t.Fatal("normalized DC outside [0,1]")
			}
		}
	}
}

func TestDecodeNormalizedRoundTrip(t *testing.T) {
	cfg := TensorConfig{Blocks: 4, K: 100, ResNM: 4, Normalize: true}
	c := geom.NewClip(geom.R(0, 0, 160, 160), []geom.Rect{geom.R(20, 0, 60, 160)})
	ft, err := ExtractTensor(c, c.Frame, cfg)
	if err != nil {
		t.Fatal(err)
	}
	im, err := raster.Rasterize(c, cfg.ResNM)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeTensor(ft, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range im.Pix {
		if math.Abs(rec.Pix[i]-im.Pix[i]) > 1e-9 {
			t.Fatal("normalized roundtrip failed")
		}
	}
}
