package feature

import (
	"math"
	"testing"
)

func TestSqDist(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 2, 1}
	d, err := SqDist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 13 {
		t.Fatalf("SqDist = %v, want 13", d)
	}
	if d, err = SqDist(a, a); err != nil || d != 0 {
		t.Fatalf("self distance = %v, %v; want 0, nil", d, err)
	}
	if _, err = SqDist(a, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestSqDistOrderExact pins the sequential index-order accumulation: the
// result must be the exact fold-left sum, the contract that makes the
// parallel k-center selector bit-identical to the serial one.
func TestSqDistOrderExact(t *testing.T) {
	a := make([]float64, 257)
	b := make([]float64, 257)
	for i := range a {
		a[i] = math.Sqrt(float64(i) + 0.1)
		b[i] = math.Cbrt(float64(i) * 1.7)
	}
	want := 0.0
	for i := range a {
		d := a[i] - b[i]
		want += d * d
	}
	got, err := SqDist(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("SqDist = %v, want exact fold-left sum %v", got, want)
	}
}
