package feature

import (
	"fmt"
	"math"
	"sort"
)

// MutualInformation estimates I(X; Y) in nats between a scalar feature
// (discretized into bins equal-width buckets over its observed range) and a
// binary label. Features with no variation carry zero information.
func MutualInformation(x []float64, y []bool, bins int) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("feature: MI length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, fmt.Errorf("feature: MI of empty sample")
	}
	if bins < 2 {
		return 0, fmt.Errorf("feature: MI needs at least 2 bins, got %d", bins)
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// hi >= lo by construction, so a degenerate range is "not strictly
	// greater". This also keeps a -0/+0 mix out of the (v-lo)/(hi-lo)
	// binning below, where it would divide by zero.
	if hi <= lo {
		return 0, nil
	}
	n := float64(len(x))
	joint := make([][2]float64, bins)
	var py [2]float64
	for i, v := range x {
		b := int(float64(bins) * (v - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		c := 0
		if y[i] {
			c = 1
		}
		joint[b][c]++
		py[c]++
	}
	mi := 0.0
	for b := 0; b < bins; b++ {
		pb := (joint[b][0] + joint[b][1]) / n
		if pb == 0 {
			continue
		}
		for c := 0; c < 2; c++ {
			pbc := joint[b][c] / n
			if pbc == 0 {
				continue
			}
			mi += pbc * math.Log(pbc/(pb*py[c]/n))
		}
	}
	if mi < 0 {
		mi = 0 // numerical guard
	}
	return mi, nil
}

// SelectMI ranks the d features of X (rows are samples) by mutual
// information with the labels and returns the indices of the top m, highest
// first — the information-theoretic feature optimization step of the
// ICCAD'16 baseline.
func SelectMI(X [][]float64, y []bool, m, bins int) ([]int, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("feature: SelectMI on empty sample")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("feature: SelectMI length mismatch %d vs %d", len(X), len(y))
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("feature: SelectMI ragged row %d (%d vs %d)", i, len(row), d)
		}
	}
	if m <= 0 || m > d {
		return nil, fmt.Errorf("feature: SelectMI m=%d outside [1, %d]", m, d)
	}
	type scored struct {
		idx int
		mi  float64
	}
	scores := make([]scored, d)
	col := make([]float64, len(X))
	for j := 0; j < d; j++ {
		for i := range X {
			col[i] = X[i][j]
		}
		mi, err := MutualInformation(col, y, bins)
		if err != nil {
			return nil, err
		}
		scores[j] = scored{idx: j, mi: mi}
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].mi > scores[b].mi })
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = scores[i].idx
	}
	return out, nil
}

// Project returns X restricted to the given column indices, in order.
func Project(X [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		p := make([]float64, len(idx))
		for j, k := range idx {
			p[j] = row[k]
		}
		out[i] = p
	}
	return out
}
