package feature

import (
	"testing"
)

// TestBlockEncoderMatchesExtractTensor drives the scan engine's parity
// contract at its root: encoding each pixel block of a rasterized core
// through a standalone BlockEncoder must reproduce ExtractTensor's output
// bit for bit, under both scalings.
func TestBlockEncoderMatchesExtractTensor(t *testing.T) {
	for _, cfg := range []TensorConfig{testCfg(), testCfgNorm()} {
		c := testClip()
		ft, err := ExtractTensor(c, c.Frame, cfg)
		if err != nil {
			t.Fatal(err)
		}
		im, err := ExtractCoreImage(c, c.Frame, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cfg.BlockPx(c.Frame.W())
		if err != nil {
			t.Fatal(err)
		}
		enc, err := cfg.NewBlockEncoder(b)
		if err != nil {
			t.Fatal(err)
		}
		if enc.BlockPx() != b || enc.K() != cfg.K {
			t.Fatalf("encoder geometry (%d, %d), want (%d, %d)", enc.BlockPx(), enc.K(), b, cfg.K)
		}
		block := make([]float64, b*b)
		vec := make([]float64, cfg.K)
		for by := 0; by < cfg.Blocks; by++ {
			for bx := 0; bx < cfg.Blocks; bx++ {
				for y := 0; y < b; y++ {
					srcRow := (by*b + y) * im.W
					copy(block[y*b:(y+1)*b], im.Pix[srcRow+bx*b:srcRow+bx*b+b])
				}
				if err := enc.EncodeInto(vec, block); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < cfg.K; i++ {
					if vec[i] != ft.At(i, by, bx) {
						t.Fatalf("normalize=%v block (%d,%d) coeff %d: encoder %v, tensor %v",
							cfg.Normalize, bx, by, i, vec[i], ft.At(i, by, bx))
					}
				}
			}
		}
	}
}

func TestBlockPx(t *testing.T) {
	b, err := testCfg().BlockPx(480)
	if err != nil {
		t.Fatal(err)
	}
	if b != 10 {
		t.Fatalf("BlockPx(480) = %d, want 10", b)
	}
	if _, err := testCfg().BlockPx(482); err == nil {
		t.Error("expected error for core not divisible by resolution")
	}
	if _, err := testCfg().BlockPx(400); err == nil {
		t.Error("expected error for core not divisible into blocks")
	}
}

func TestNewBlockEncoderErrors(t *testing.T) {
	if _, err := testCfg().NewBlockEncoder(0); err == nil {
		t.Error("expected error for zero block size")
	}
	if _, err := testCfg().NewBlockEncoder(5); err == nil {
		t.Error("expected error for K over block capacity")
	}
	bad := TensorConfig{Blocks: 0, K: 32, ResNM: 4}
	if _, err := bad.NewBlockEncoder(10); err == nil {
		t.Error("expected error for invalid config")
	}
}
