package feature

import (
	"fmt"
	"math"

	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

// CCSConfig parameterizes concentric-circle-sampling features (the
// optimized feature of ICCAD'16 [5], originally from the OPC literature):
// drawn density is sampled on rings of increasing radius around the clip
// centre, with more sample points on larger rings, then flattened to 1-D.
type CCSConfig struct {
	// Rings is the number of concentric circles.
	Rings int
	// InnerNM and OuterNM bound the ring radii.
	InnerNM, OuterNM int
	// SamplesBase is the number of sample points on the innermost ring;
	// ring i has SamplesBase + SamplesStep·i points.
	SamplesBase, SamplesStep int
	// ProbeNM is the side of the square probe averaged at each sample
	// point.
	ProbeNM int
	// ResNM is the rasterization resolution.
	ResNM int
}

// DefaultCCSConfig approximates the ICCAD'16 sampling plan for 1200 nm
// clips.
func DefaultCCSConfig() CCSConfig {
	return CCSConfig{
		Rings:       10,
		InnerNM:     40,
		OuterNM:     560,
		SamplesBase: 8,
		SamplesStep: 4,
		ProbeNM:     48,
		ResNM:       8,
	}
}

// Validate checks the configuration.
func (c CCSConfig) Validate() error {
	if c.Rings <= 0 || c.SamplesBase <= 0 || c.SamplesStep < 0 {
		return fmt.Errorf("feature: bad CCS ring parameters")
	}
	if c.InnerNM <= 0 || c.OuterNM < c.InnerNM {
		return fmt.Errorf("feature: bad CCS radii [%d, %d]", c.InnerNM, c.OuterNM)
	}
	if c.ProbeNM <= 0 || c.ResNM <= 0 {
		return fmt.Errorf("feature: bad CCS probe/resolution")
	}
	return nil
}

// Dim returns the feature vector length.
func (c CCSConfig) Dim() int {
	d := 0
	for i := 0; i < c.Rings; i++ {
		d += c.SamplesBase + c.SamplesStep*i
	}
	return d
}

// ExtractCCS computes the CCS feature vector of the clip's core window.
func ExtractCCS(clip geom.Clip, core geom.Rect, cfg CCSConfig) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if core.Empty() {
		return nil, fmt.Errorf("feature: core %v must be non-empty", core)
	}
	if !clip.Frame.ContainsRect(core) {
		return nil, fmt.Errorf("feature: core %v outside clip frame %v", core, clip.Frame)
	}
	im, err := raster.Rasterize(clip, cfg.ResNM)
	if err != nil {
		return nil, err
	}
	// Centre of the core in raster pixels (clip normalized to origin).
	cx := float64(core.X0-clip.Frame.X0+core.W()/2) / float64(cfg.ResNM)
	cy := float64(core.Y0-clip.Frame.Y0+core.H()/2) / float64(cfg.ResNM)

	out := make([]float64, 0, cfg.Dim())
	probePx := cfg.ProbeNM / cfg.ResNM
	if probePx < 1 {
		probePx = 1
	}
	for i := 0; i < cfg.Rings; i++ {
		var radius float64
		if cfg.Rings == 1 {
			radius = float64(cfg.InnerNM)
		} else {
			radius = float64(cfg.InnerNM) + float64(i)*float64(cfg.OuterNM-cfg.InnerNM)/float64(cfg.Rings-1)
		}
		radius /= float64(cfg.ResNM)
		samples := cfg.SamplesBase + cfg.SamplesStep*i
		for s := 0; s < samples; s++ {
			theta := 2 * math.Pi * float64(s) / float64(samples)
			px := cx + radius*math.Cos(theta)
			py := cy + radius*math.Sin(theta)
			out = append(out, probeMean(im, int(px), int(py), probePx))
		}
	}
	return out, nil
}

// probeMean averages a half-open square window of side px centred at
// (x, y); out-of-image pixels count as empty field.
func probeMean(im *raster.Image, x, y, px int) float64 {
	half := px / 2
	s := 0.0
	for yy := y - half; yy < y-half+px; yy++ {
		if yy < 0 || yy >= im.H {
			continue
		}
		row := im.Pix[yy*im.W:]
		for xx := x - half; xx < x-half+px; xx++ {
			if xx < 0 || xx >= im.W {
				continue
			}
			s += row[xx]
		}
	}
	return s / float64(px*px)
}
