package feature

import (
	"fmt"

	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

// DensityConfig parameterizes the SPIE'15-style density feature: the clip
// core is divided into Grid×Grid cells and each cell's drawn-area fraction
// becomes one feature. The cells are flattened row-major into a 1-D vector
// — deliberately discarding 2-D adjacency, which is exactly the limitation
// the paper's feature tensor fixes.
type DensityConfig struct {
	Grid  int
	ResNM int
}

// DefaultDensityConfig matches the granularity used by the SPIE'15 flow.
func DefaultDensityConfig() DensityConfig { return DensityConfig{Grid: 12, ResNM: 4} }

// Validate checks the configuration.
func (c DensityConfig) Validate() error {
	if c.Grid <= 0 {
		return fmt.Errorf("feature: density grid must be positive, got %d", c.Grid)
	}
	if c.ResNM <= 0 {
		return fmt.Errorf("feature: density resolution must be positive, got %d", c.ResNM)
	}
	return nil
}

// ExtractDensity computes the density feature vector (length Grid²) of the
// clip's core window.
func ExtractDensity(clip geom.Clip, core geom.Rect, cfg DensityConfig) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if core.W() != core.H() || core.Empty() {
		return nil, fmt.Errorf("feature: core %v must be square and non-empty", core)
	}
	if !clip.Frame.ContainsRect(core) {
		return nil, fmt.Errorf("feature: core %v outside clip frame %v", core, clip.Frame)
	}
	im, err := raster.Rasterize(clip, cfg.ResNM)
	if err != nil {
		return nil, err
	}
	x0 := (core.X0 - clip.Frame.X0) / cfg.ResNM
	y0 := (core.Y0 - clip.Frame.Y0) / cfg.ResNM
	side := core.W() / cfg.ResNM
	coreIm, err := im.SubImage(x0, y0, x0+side, y0+side)
	if err != nil {
		return nil, err
	}
	return densityFromImage(coreIm, cfg.Grid)
}

func densityFromImage(im *raster.Image, grid int) ([]float64, error) {
	if im.W%grid != 0 || im.H%grid != 0 {
		return nil, fmt.Errorf("feature: image %dx%d not divisible into %d cells", im.W, im.H, grid)
	}
	cw, ch := im.W/grid, im.H/grid
	out := make([]float64, grid*grid)
	inv := 1.0 / float64(cw*ch)
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			s := 0.0
			for y := gy * ch; y < (gy+1)*ch; y++ {
				row := im.Pix[y*im.W:]
				for x := gx * cw; x < (gx+1)*cw; x++ {
					s += row[x]
				}
			}
			out[gy*grid+gx] = s * inv
		}
	}
	return out, nil
}
