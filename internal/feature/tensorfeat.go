// Package feature implements the layout feature extractors: the paper's
// feature tensor (§3: block DCT + zig-zag truncation, spatial arrangement
// preserved), and the two baseline features it compares against — the
// density grid of SPIE'15 [4] and the concentric-circle sampling (CCS) of
// ICCAD'16 [5] — plus the mutual-information feature selection the ICCAD'16
// flow uses.
package feature

import (
	"fmt"
	"time"

	"hotspot/internal/dct"
	"hotspot/internal/geom"
	"hotspot/internal/obs"
	"hotspot/internal/parallel"
	"hotspot/internal/raster"
	"hotspot/internal/tensor"
)

// TensorConfig parameterizes feature tensor extraction.
type TensorConfig struct {
	// Blocks is n: the clip is divided into n×n sub-regions (the paper
	// uses 12).
	Blocks int
	// K is the number of zig-zag DCT coefficients kept per block (the
	// feature tensor is n×n×k; the reference implementation uses 32).
	K int
	// ResNM is the rasterization resolution in nanometres per pixel. The
	// paper rasterizes at 1 nm/px; 4 nm/px keeps >99% of low-frequency
	// content at 1/16 the cost and is the default everywhere here.
	ResNM int
	// Normalize divides every coefficient by the block pixel size so the
	// DC channel lies in [0, 1] (block mean density) regardless of
	// resolution. Training uses normalized tensors; reconstruction demos
	// can disable it.
	Normalize bool
}

// DefaultTensorConfig mirrors the paper: 12×12 blocks, 32 coefficients.
func DefaultTensorConfig() TensorConfig {
	return TensorConfig{Blocks: 12, K: 32, ResNM: 4, Normalize: true}
}

// Validate checks the configuration.
func (c TensorConfig) Validate() error {
	if c.Blocks <= 0 {
		return fmt.Errorf("feature: Blocks must be positive, got %d", c.Blocks)
	}
	if c.K <= 0 {
		return fmt.Errorf("feature: K must be positive, got %d", c.K)
	}
	if c.ResNM <= 0 {
		return fmt.Errorf("feature: ResNM must be positive, got %d", c.ResNM)
	}
	return nil
}

// blockSize returns the per-block pixel size for a core of the given
// nanometre side, or an error when the geometry does not divide evenly.
func (c TensorConfig) blockSize(coreNM int) (int, error) {
	corePx := coreNM / c.ResNM
	if corePx*c.ResNM != coreNM {
		return 0, fmt.Errorf("feature: core %d nm not divisible by resolution %d nm", coreNM, c.ResNM)
	}
	b := corePx / c.Blocks
	if b*c.Blocks != corePx {
		return 0, fmt.Errorf("feature: core %d px not divisible into %d blocks", corePx, c.Blocks)
	}
	if c.K > b*b {
		return 0, fmt.Errorf("feature: K=%d exceeds block capacity %d", c.K, b*b)
	}
	return b, nil
}

// ValidateCore checks that a core window of the given nanometre side
// divides evenly under the configuration (resolution, blocks, coefficient
// budget), so callers holding user-supplied geometry — the inference
// server validates request clips up front — can reject bad cores with the
// precise reason before paying for rasterization.
func (c TensorConfig) ValidateCore(coreNM int) error {
	_, err := c.blockSize(coreNM)
	return err
}

// BlockPx returns the per-block pixel side for a core window of the given
// nanometre side, validating divisibility. The scan engine uses it to
// quantize its window stride to the DCT block grid, so one cached block
// transform serves every overlapping window that covers the block.
func (c TensorConfig) BlockPx(coreNM int) (int, error) {
	return c.blockSize(coreNM)
}

// BlockEncoder transforms one blockPx×blockPx pixel block into its
// zig-zag-truncated, scaled K-vector of DCT coefficients — the per-block
// kernel of ExtractTensor, factored out so the full-layout scan engine's
// shared block cache computes bit-for-bit the same coefficient vectors as
// per-clip extraction (the parity contract is structural: both paths call
// this one encoder). An encoder owns its scratch buffers and is not safe
// for concurrent use; parallel callers keep one per worker.
type BlockEncoder struct {
	blockPx int
	k       int
	scale   float64
	zigzag  []int     // zigzag[i] = row-major index into the corner block
	coef    []float64 // corner×corner truncated-DCT output
	tmp     []float64 // row-transform scratch
}

// NewBlockEncoder builds the encoder for the configuration at the given
// per-block pixel size (TensorConfig.BlockPx of the core side).
func (c TensorConfig) NewBlockEncoder(blockPx int) (*BlockEncoder, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if blockPx <= 0 || c.K > blockPx*blockPx {
		return nil, fmt.Errorf("feature: block size %d incompatible with K=%d", blockPx, c.K)
	}
	corner := dct.CoefficientCorner(blockPx, c.K)
	order := dct.ZigZagOrder(blockPx, blockPx)
	zig := make([]int, c.K)
	for i := 0; i < c.K; i++ {
		u, v := order[i]/blockPx, order[i]%blockPx
		zig[i] = u*corner + v
	}
	scale := 1.0
	if c.Normalize {
		scale = 1 / float64(blockPx)
	}
	return &BlockEncoder{
		blockPx: blockPx,
		k:       c.K,
		scale:   scale,
		zigzag:  zig,
		coef:    make([]float64, corner*corner),
		tmp:     make([]float64, blockPx*corner),
	}, nil
}

// BlockPx returns the encoder's pixel block side.
func (e *BlockEncoder) BlockPx() int { return e.blockPx }

// K returns the coefficient count written per block.
func (e *BlockEncoder) K() int { return e.k }

// EncodeInto writes the block's K scaled zig-zag coefficients into dst.
// block must hold blockPx² row-major pixels and dst at least K values.
//hsd:noalloc
func (e *BlockEncoder) EncodeInto(dst, block []float64) error {
	b := e.blockPx
	corner := len(e.tmp) / b
	if err := dct.ForwardTruncated2DInto(e.coef, e.tmp, block, b, b, corner, corner); err != nil {
		return err
	}
	for i, idx := range e.zigzag {
		dst[i] = e.coef[idx] * e.scale
	}
	return nil
}

// ExtractTensor computes the feature tensor of the core window of a clip:
// the core is rasterized, divided into Blocks×Blocks sub-regions, each
// sub-region is DCT-transformed, zig-zag flattened and truncated to K
// coefficients, and the truncated vectors are reassembled in place. The
// result has shape (K, Blocks, Blocks) — channels-first, ready for the CNN.
//
// core is given in the clip's coordinate frame and must be square and lie
// inside the clip frame; pass the full frame for halo-free clips.
func ExtractTensor(clip geom.Clip, core geom.Rect, cfg TensorConfig) (*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if core.W() != core.H() || core.Empty() {
		return nil, fmt.Errorf("feature: core %v must be square and non-empty", core)
	}
	if !clip.Frame.ContainsRect(core) {
		return nil, fmt.Errorf("feature: core %v outside clip frame %v", core, clip.Frame)
	}
	b, err := cfg.blockSize(core.W())
	if err != nil {
		return nil, err
	}
	coreIm, err := ExtractCoreImage(clip, core, cfg)
	if err != nil {
		return nil, err
	}
	return extractFromImage(coreIm, b, cfg)
}

// ExtractCoreImage rasterizes a clip and crops its core window — the
// exact pixel grid ExtractTensor feeds into the blocked DCT. It is split
// out so online callers (the inference server) can rasterize once, hash
// the pixels for clip deduplication, and hand the same image to
// ExtractTensorFromImage without re-rasterizing.
func ExtractCoreImage(clip geom.Clip, core geom.Rect, cfg TensorConfig) (*raster.Image, error) {
	watch := obs.NewStopwatch()
	im, err := raster.Rasterize(clip, cfg.ResNM)
	obs.Default().Stage("feature/raster").ObserveDuration(watch.Elapsed())
	if err != nil {
		return nil, err
	}
	// Rasterize normalizes the clip to the origin, so core offsets are
	// relative to the frame's lower-left corner.
	x0 := (core.X0 - clip.Frame.X0) / cfg.ResNM
	y0 := (core.Y0 - clip.Frame.Y0) / cfg.ResNM
	side := core.W() / cfg.ResNM
	return im.SubImage(x0, y0, x0+side, y0+side)
}

// ExtractTensors extracts the feature tensor of every clip's core window,
// fanning the per-clip rasterization and blocked DCT across workers
// goroutines (0 = parallel.Default()). Results are returned in input order
// and are identical to calling ExtractTensor per clip: each extraction
// depends only on its own clip, so worker count and scheduling cannot
// change the output.
func ExtractTensors(clips []geom.Clip, core geom.Rect, cfg TensorConfig, workers int) ([]*tensor.Tensor, error) {
	return parallel.Map(parallel.New(workers), len(clips), func(_, i int) (*tensor.Tensor, error) {
		return ExtractTensor(clips[i], core, cfg)
	})
}

// extractFromImage runs block-DCT encoding over an already-rasterized core
// through the shared BlockEncoder — the same kernel the scan engine's
// block cache runs, which is what makes scan-vs-per-clip bit parity
// structural rather than coincidental. The transform and scatter phases
// accumulate into the feature/dct and feature/zigzag stage summaries, one
// observation per clip (aggregated across its blocks).
func extractFromImage(im *raster.Image, b int, cfg TensorConfig) (*tensor.Tensor, error) {
	n := cfg.Blocks
	enc, err := cfg.NewBlockEncoder(b)
	if err != nil {
		return nil, err
	}
	out := tensor.New(cfg.K, n, n)
	block := make([]float64, b*b)
	vec := make([]float64, cfg.K)
	var dctTime, zigTime time.Duration
	for by := 0; by < n; by++ {
		for bx := 0; bx < n; bx++ {
			for y := 0; y < b; y++ {
				srcRow := (by*b + y) * im.W
				copy(block[y*b:(y+1)*b], im.Pix[srcRow+bx*b:srcRow+bx*b+b])
			}
			dctWatch := obs.NewStopwatch()
			if err := enc.EncodeInto(vec, block); err != nil {
				return nil, err
			}
			dctTime += dctWatch.Elapsed()
			zigWatch := obs.NewStopwatch()
			for i := 0; i < cfg.K; i++ {
				out.Set(vec[i], i, by, bx)
			}
			zigTime += zigWatch.Elapsed()
		}
	}
	obs.Default().Stage("feature/dct").ObserveDuration(dctTime)
	obs.Default().Stage("feature/zigzag").ObserveDuration(zigTime)
	return out, nil
}

// ExtractTensorFromImage computes the feature tensor directly from a
// rasterized core image (side pixels must divide evenly into Blocks).
func ExtractTensorFromImage(im *raster.Image, cfg TensorConfig) (*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if im.W != im.H {
		return nil, fmt.Errorf("feature: image %dx%d must be square", im.W, im.H)
	}
	b := im.W / cfg.Blocks
	if b*cfg.Blocks != im.W {
		return nil, fmt.Errorf("feature: image side %d not divisible into %d blocks", im.W, cfg.Blocks)
	}
	if cfg.K > b*b {
		return nil, fmt.Errorf("feature: K=%d exceeds block capacity %d", cfg.K, b*b)
	}
	return extractFromImage(im, b, cfg)
}

// DecodeTensor inverts ExtractTensor up to the dropped high-frequency
// coefficients: each block's K coefficients are zig-zag unflattened,
// zero-filled and inverse-DCT'd, reassembling the approximate core image.
// blockPx is the per-block pixel size used at encode time; normalized says
// whether the tensor was extracted with TensorConfig.Normalize.
func DecodeTensor(ft *tensor.Tensor, blockPx int, normalized bool) (*raster.Image, error) {
	if ft.Rank() != 3 {
		return nil, fmt.Errorf("feature: tensor rank %d, want 3 (K, n, n)", ft.Rank())
	}
	k, n := ft.Dim(0), ft.Dim(1)
	if ft.Dim(2) != n {
		return nil, fmt.Errorf("feature: tensor shape %v not square in blocks", ft.Shape())
	}
	if blockPx <= 0 || k > blockPx*blockPx {
		return nil, fmt.Errorf("feature: block size %d incompatible with K=%d", blockPx, k)
	}
	side := n * blockPx
	im := raster.NewImage(side, side)
	scan := make([]float64, k)
	unscale := 1.0
	if normalized {
		unscale = float64(blockPx)
	}
	for by := 0; by < n; by++ {
		for bx := 0; bx < n; bx++ {
			for i := 0; i < k; i++ {
				scan[i] = ft.At(i, by, bx) * unscale
			}
			full, err := dct.ZigZagUnflatten(scan, blockPx, blockPx)
			if err != nil {
				return nil, err
			}
			rec, err := dct.Inverse2D(full, blockPx, blockPx)
			if err != nil {
				return nil, err
			}
			for y := 0; y < blockPx; y++ {
				dstRow := (by*blockPx + y) * side
				copy(im.Pix[dstRow+bx*blockPx:dstRow+bx*blockPx+blockPx], rec[y*blockPx:(y+1)*blockPx])
			}
		}
	}
	return im, nil
}
