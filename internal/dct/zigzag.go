package dct

import (
	"fmt"
	"sync"
)

// zigzagCache memoizes scan orders per block size.
var zigzagCache sync.Map // [2]int -> []int

// ZigZagOrder returns the JPEG zig-zag scan order for an h×w block: a
// permutation p of 0..h*w-1 such that p[i] is the row-major index of the
// i-th coefficient in scan order. Coefficients are visited along
// anti-diagonals of increasing u+v, alternating direction, so low
// frequencies come first — exactly the order Equation (1) of the paper uses
// before truncation.
func ZigZagOrder(h, w int) []int {
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("dct: zig-zag block must be positive, got %dx%d", h, w))
	}
	key := [2]int{h, w}
	if v, ok := zigzagCache.Load(key); ok { //hsd:allow hotlint one atomic read of an immutable memo table; contention-free after first use
		return v.([]int)
	}
	order := make([]int, 0, h*w)
	for s := 0; s <= h+w-2; s++ {
		if s%2 == 0 {
			// Walk up-right: u decreasing.
			u := s
			if u > h-1 {
				u = h - 1
			}
			for ; u >= 0 && s-u < w; u-- {
				order = append(order, u*w+(s-u))
			}
		} else {
			// Walk down-left: u increasing.
			u := s - (w - 1)
			if u < 0 {
				u = 0
			}
			for ; u <= s && u < h; u++ {
				order = append(order, u*w+(s-u))
			}
		}
	}
	zigzagCache.Store(key, order) //hsd:allow hotlint first-use table build; duplicate stores race benignly with identical values
	return order
}

// ZigZagFlatten reorders an h×w row-major block into zig-zag scan order.
func ZigZagFlatten(block []float64, h, w int) ([]float64, error) {
	if len(block) != h*w {
		return nil, fmt.Errorf("dct: zig-zag block length %d does not match %dx%d", len(block), h, w)
	}
	order := ZigZagOrder(h, w)
	out := make([]float64, len(block))
	for i, idx := range order {
		out[i] = block[idx]
	}
	return out, nil
}

// ZigZagUnflatten inverts ZigZagFlatten. If the input has fewer than h*w
// entries (a truncated scan), the missing high-frequency coefficients are
// zero-filled, which is exactly the decoder side of Equation (2).
func ZigZagUnflatten(scan []float64, h, w int) ([]float64, error) {
	if len(scan) > h*w {
		return nil, fmt.Errorf("dct: zig-zag scan length %d exceeds block %dx%d", len(scan), h, w)
	}
	order := ZigZagOrder(h, w)
	out := make([]float64, h*w)
	for i, v := range scan {
		out[order[i]] = v
	}
	return out, nil
}

// CoefficientCorner returns the smallest square side s such that the first k
// zig-zag entries of an n×n block all lie inside the top-left s×s corner.
// Used to size truncated DCTs.
func CoefficientCorner(n, k int) int {
	if k <= 0 {
		return 1
	}
	if k > n*n {
		k = n * n
	}
	order := ZigZagOrder(n, n)
	s := 1
	for i := 0; i < k; i++ {
		u, v := order[i]/n, order[i]%n
		if u+1 > s {
			s = u + 1
		}
		if v+1 > s {
			s = v + 1
		}
	}
	return s
}
