package dct

import (
	"math/rand"
	"testing"
)

func TestForwardTruncated2DIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ h, w, kh, kw int }{
		{8, 8, 8, 8},
		{25, 25, 8, 8},
		{12, 16, 3, 5},
		{5, 5, 1, 1},
	}
	for _, c := range cases {
		src := make([]float64, c.h*c.w)
		for i := range src {
			src[i] = rng.Float64()
		}
		want, err := ForwardTruncated2D(src, c.h, c.w, c.kh, c.kw)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, c.kh*c.kw)
		tmp := make([]float64, c.h*c.kw)
		if err := ForwardTruncated2DInto(dst, tmp, src, c.h, c.w, c.kh, c.kw); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			// Bit-identical, not approximately equal: the Into kernel is the
			// allocating path's body, and the scan engine's parity contract
			// rests on exact equality.
			if dst[i] != want[i] {
				t.Fatalf("%dx%d k=%dx%d: coefficient %d = %v, want %v", c.h, c.w, c.kh, c.kw, i, dst[i], want[i])
			}
		}
	}
}

func TestForwardTruncated2DIntoErrors(t *testing.T) {
	src := make([]float64, 64)
	good := func() ([]float64, []float64) { return make([]float64, 9), make([]float64, 8*3) }
	dst, tmp := good()
	if err := ForwardTruncated2DInto(dst, tmp, src[:63], 8, 8, 3, 3); err == nil {
		t.Error("expected error for short src")
	}
	if err := ForwardTruncated2DInto(dst, tmp, src, 8, 8, 0, 3); err == nil {
		t.Error("expected error for kh=0")
	}
	if err := ForwardTruncated2DInto(dst, tmp, src, 8, 8, 9, 3); err == nil {
		t.Error("expected error for kh>h")
	}
	if err := ForwardTruncated2DInto(dst[:8], tmp, src, 8, 8, 3, 3); err == nil {
		t.Error("expected error for short dst")
	}
	if err := ForwardTruncated2DInto(dst, tmp[:23], src, 8, 8, 3, 3); err == nil {
		t.Error("expected error for short tmp")
	}
}
