// Package dct implements the discrete cosine transform used by the paper's
// feature tensor generation (§3): orthonormal 1-D and 2-D DCT-II (forward)
// and DCT-III (inverse), a truncated 2-D forward transform that computes
// only the low-frequency corner needed after zig-zag truncation, and the
// JPEG zig-zag scan order.
//
// The orthonormal convention is used (the paper writes the unnormalized sum;
// normalization is a fixed diagonal scaling absorbed by training) so that
// the inverse is exactly the transpose and truncation error equals dropped
// coefficient energy (Parseval).
package dct

import (
	"fmt"
	"math"
	"sync"
)

// basisCache memoizes the N×N orthonormal DCT-II basis matrices.
var basisCache sync.Map // int -> []float64 (N*N row-major, row = frequency)

// Basis returns the N×N orthonormal DCT-II basis matrix C where
// C[u][x] = a(u) * cos(pi*(2x+1)*u / (2N)), a(0)=sqrt(1/N), a(u>0)=sqrt(2/N).
// Rows are frequencies; C·x computes the DCT of a length-N signal, and Cᵀ·X
// inverts it.
func Basis(n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dct: basis size must be positive, got %d", n))
	}
	if v, ok := basisCache.Load(n); ok { //hsd:allow hotlint one atomic read of an immutable memo table; contention-free after first use
		return v.([]float64)
	}
	c := make([]float64, n*n)
	a0 := math.Sqrt(1 / float64(n))
	au := math.Sqrt(2 / float64(n))
	for u := 0; u < n; u++ {
		amp := au
		if u == 0 {
			amp = a0
		}
		for x := 0; x < n; x++ {
			c[u*n+x] = amp * math.Cos(math.Pi*float64(2*x+1)*float64(u)/(2*float64(n)))
		}
	}
	basisCache.Store(n, c) //hsd:allow hotlint first-use table build; duplicate stores race benignly with identical values
	return c
}

// Forward1D computes the orthonormal DCT-II of src into a new slice.
func Forward1D(src []float64) []float64 {
	n := len(src)
	c := Basis(n)
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		row := c[u*n : (u+1)*n]
		s := 0.0
		for x, v := range src {
			s += row[x] * v
		}
		out[u] = s
	}
	return out
}

// Inverse1D computes the orthonormal DCT-III (inverse of Forward1D).
func Inverse1D(src []float64) []float64 {
	n := len(src)
	c := Basis(n)
	out := make([]float64, n)
	for x := 0; x < n; x++ {
		s := 0.0
		for u, v := range src {
			s += c[u*n+x] * v
		}
		out[x] = s
	}
	return out
}

// Forward2D computes the 2-D orthonormal DCT-II of an h×w row-major block.
// Output index (u, v) is vertical frequency u, horizontal frequency v.
func Forward2D(src []float64, h, w int) ([]float64, error) {
	if len(src) != h*w {
		return nil, fmt.Errorf("dct: block length %d does not match %dx%d", len(src), h, w)
	}
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("dct: block dimensions must be positive (%dx%d)", h, w)
	}
	ch, cw := Basis(h), Basis(w)
	// tmp = src · Cwᵀ  (transform rows)
	tmp := make([]float64, h*w)
	for y := 0; y < h; y++ {
		row := src[y*w : (y+1)*w]
		for v := 0; v < w; v++ {
			basis := cw[v*w : (v+1)*w]
			s := 0.0
			for x, sv := range row {
				s += sv * basis[x]
			}
			tmp[y*w+v] = s
		}
	}
	// out = Ch · tmp  (transform columns)
	out := make([]float64, h*w)
	for u := 0; u < h; u++ {
		basis := ch[u*h : (u+1)*h]
		for v := 0; v < w; v++ {
			s := 0.0
			for y := 0; y < h; y++ {
				s += basis[y] * tmp[y*w+v]
			}
			out[u*w+v] = s
		}
	}
	return out, nil
}

// Inverse2D inverts Forward2D.
func Inverse2D(src []float64, h, w int) ([]float64, error) {
	if len(src) != h*w {
		return nil, fmt.Errorf("dct: block length %d does not match %dx%d", len(src), h, w)
	}
	if h <= 0 || w <= 0 {
		return nil, fmt.Errorf("dct: block dimensions must be positive (%dx%d)", h, w)
	}
	ch, cw := Basis(h), Basis(w)
	// tmp = Chᵀ · src  (inverse columns)
	tmp := make([]float64, h*w)
	for y := 0; y < h; y++ {
		for v := 0; v < w; v++ {
			s := 0.0
			for u := 0; u < h; u++ {
				s += ch[u*h+y] * src[u*w+v]
			}
			tmp[y*w+v] = s
		}
	}
	// out = tmp · Cw  (inverse rows)
	out := make([]float64, h*w)
	for y := 0; y < h; y++ {
		row := tmp[y*w : (y+1)*w]
		for x := 0; x < w; x++ {
			s := 0.0
			for v, tv := range row {
				s += tv * cw[v*w+x]
			}
			out[y*w+x] = s
		}
	}
	return out, nil
}

// ForwardTruncated2D computes only the top-left kh×kw corner (the lowest
// frequencies) of the 2-D DCT of an h×w block. Because zig-zag truncation
// keeps only low-frequency coefficients, this is all feature extraction
// needs, and it cuts the per-block cost from O(h·w·(h+w)) to
// O(h·w·kh + h·kh·kw).
func ForwardTruncated2D(src []float64, h, w, kh, kw int) ([]float64, error) {
	out := make([]float64, kh*kw)
	tmp := make([]float64, h*kw)
	if err := ForwardTruncated2DInto(out, tmp, src, h, w, kh, kw); err != nil {
		return nil, err
	}
	return out, nil
}

// ForwardTruncated2DInto is ForwardTruncated2D writing into caller storage:
// dst receives the kh×kw corner (len kh*kw) and tmp is row-transform
// scratch (len h*kw). Nothing is allocated, so a block cache that
// transforms every block of a full die can run the whole sweep out of
// per-worker buffers. Results are bit-identical to ForwardTruncated2D.
func ForwardTruncated2DInto(dst, tmp, src []float64, h, w, kh, kw int) error {
	if len(src) != h*w {
		return fmt.Errorf("dct: block length %d does not match %dx%d", len(src), h, w)
	}
	if kh <= 0 || kw <= 0 || kh > h || kw > w {
		return fmt.Errorf("dct: truncation %dx%d invalid for block %dx%d", kh, kw, h, w)
	}
	if len(dst) != kh*kw {
		return fmt.Errorf("dct: dst length %d does not match corner %dx%d", len(dst), kh, kw)
	}
	if len(tmp) != h*kw {
		return fmt.Errorf("dct: tmp length %d does not match %dx%d scratch", len(tmp), h, kw)
	}
	forwardTruncatedInto(dst, tmp, src, Basis(h), Basis(w), h, w, kh, kw)
	return nil
}

// forwardTruncatedInto is the validated kernel behind ForwardTruncated2DInto:
// rows are transformed against the first kw basis rows into tmp, then
// columns against the first kh, with the exact per-element summation order
// of the original ForwardTruncated2D loops.
//hsd:noalloc
func forwardTruncatedInto(dst, tmp, src, ch, cw []float64, h, w, kh, kw int) {
	// tmp[y][v] for v < kw
	for y := 0; y < h; y++ {
		row := src[y*w : (y+1)*w]
		for v := 0; v < kw; v++ {
			basis := cw[v*w : (v+1)*w]
			s := 0.0
			for x, sv := range row {
				s += sv * basis[x]
			}
			tmp[y*kw+v] = s
		}
	}
	for u := 0; u < kh; u++ {
		basis := ch[u*h : (u+1)*h]
		for v := 0; v < kw; v++ {
			s := 0.0
			for y := 0; y < h; y++ {
				s += basis[y] * tmp[y*kw+v]
			}
			dst[u*kw+v] = s
		}
	}
}
