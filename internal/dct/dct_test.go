package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasisOrthonormal(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 25, 100} {
		c := Basis(n)
		// C·Cᵀ should be the identity.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for x := 0; x < n; x++ {
					s += c[i*n+x] * c[j*n+x]
				}
				want := 0.0
				if i == j {
					want = 1.0
				}
				if !almostEqual(s, want, 1e-10) {
					t.Fatalf("n=%d: basis row %d·row %d = %v, want %v", n, i, j, s, want)
				}
			}
		}
	}
}

func TestBasisPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	Basis(0)
}

func TestForward1DDC(t *testing.T) {
	// Constant signal has all energy in the DC coefficient.
	src := []float64{3, 3, 3, 3}
	out := Forward1D(src)
	if !almostEqual(out[0], 6, 1e-12) { // sqrt(1/4)*12 = 6
		t.Fatalf("DC = %v, want 6", out[0])
	}
	for i := 1; i < 4; i++ {
		if !almostEqual(out[i], 0, 1e-12) {
			t.Fatalf("AC[%d] = %v, want 0", i, out[i])
		}
	}
}

func TestRoundTrip1D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 16, 50} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		back := Inverse1D(Forward1D(src))
		for i := range src {
			if !almostEqual(back[i], src[i], 1e-10) {
				t.Fatalf("n=%d roundtrip failed at %d", n, i)
			}
		}
	}
}

// Property: Parseval — orthonormal DCT preserves energy.
func TestParseval1D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		src := make([]float64, n)
		e1 := 0.0
		for i := range src {
			src[i] = r.NormFloat64()
			e1 += src[i] * src[i]
		}
		out := Forward1D(src)
		e2 := 0.0
		for _, v := range out {
			e2 += v * v
		}
		return almostEqual(e1, e2, 1e-9*(1+e1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip2D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{1, 1}, {4, 4}, {8, 8}, {5, 7}, {25, 25}} {
		h, w := dims[0], dims[1]
		src := make([]float64, h*w)
		for i := range src {
			src[i] = rng.Float64()
		}
		coef, err := Forward2D(src, h, w)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse2D(coef, h, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if !almostEqual(back[i], src[i], 1e-10) {
				t.Fatalf("%dx%d roundtrip failed at %d: %v vs %v", h, w, i, back[i], src[i])
			}
		}
	}
}

func TestParseval2D(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, w := 1+r.Intn(12), 1+r.Intn(12)
		src := make([]float64, h*w)
		e1 := 0.0
		for i := range src {
			src[i] = r.NormFloat64()
			e1 += src[i] * src[i]
		}
		coef, err := Forward2D(src, h, w)
		if err != nil {
			return false
		}
		e2 := 0.0
		for _, v := range coef {
			e2 += v * v
		}
		return almostEqual(e1, e2, 1e-9*(1+e1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForward2DSeparability(t *testing.T) {
	// The 2-D DCT of an outer product is the outer product of the 1-D DCTs.
	rng := rand.New(rand.NewSource(3))
	h, w := 6, 9
	fy := make([]float64, h)
	fx := make([]float64, w)
	for i := range fy {
		fy[i] = rng.NormFloat64()
	}
	for i := range fx {
		fx[i] = rng.NormFloat64()
	}
	src := make([]float64, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src[y*w+x] = fy[y] * fx[x]
		}
	}
	coef, err := Forward2D(src, h, w)
	if err != nil {
		t.Fatal(err)
	}
	cy := Forward1D(fy)
	cx := Forward1D(fx)
	for u := 0; u < h; u++ {
		for v := 0; v < w; v++ {
			if !almostEqual(coef[u*w+v], cy[u]*cx[v], 1e-10) {
				t.Fatalf("separability failed at (%d,%d)", u, v)
			}
		}
	}
}

func TestForward2DErrors(t *testing.T) {
	if _, err := Forward2D(make([]float64, 5), 2, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Forward2D(nil, 0, 0); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := Inverse2D(make([]float64, 5), 2, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Inverse2D(nil, -1, 4); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestForwardTruncated2DMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h, w := 10, 10
	src := make([]float64, h*w)
	for i := range src {
		src[i] = rng.Float64()
	}
	full, err := Forward2D(src, h, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 6, 10} {
		trunc, err := ForwardTruncated2D(src, h, w, k, k)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < k; u++ {
			for v := 0; v < k; v++ {
				if !almostEqual(trunc[u*k+v], full[u*w+v], 1e-10) {
					t.Fatalf("k=%d: truncated (%d,%d) = %v, full = %v", k, u, v, trunc[u*k+v], full[u*w+v])
				}
			}
		}
	}
}

func TestForwardTruncated2DErrors(t *testing.T) {
	src := make([]float64, 16)
	if _, err := ForwardTruncated2D(src, 4, 4, 5, 2); err == nil {
		t.Fatal("expected truncation > block error")
	}
	if _, err := ForwardTruncated2D(src, 4, 4, 0, 2); err == nil {
		t.Fatal("expected non-positive truncation error")
	}
	if _, err := ForwardTruncated2D(src, 5, 4, 2, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestZigZagOrder8x8(t *testing.T) {
	// The canonical JPEG 8×8 zig-zag prefix.
	order := ZigZagOrder(8, 8)
	wantPrefix := []int{0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4}
	for i, w := range wantPrefix {
		if order[i] != w {
			t.Fatalf("zigzag[%d] = %d, want %d", i, order[i], w)
		}
	}
	if order[63] != 63 {
		t.Fatalf("zigzag last = %d, want 63", order[63])
	}
}

// Property: zig-zag order is a bijection on 0..h*w-1.
func TestZigZagIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, w := 1+r.Intn(12), 1+r.Intn(12)
		order := ZigZagOrder(h, w)
		if len(order) != h*w {
			return false
		}
		seen := make([]bool, h*w)
		for _, idx := range order {
			if idx < 0 || idx >= h*w || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: zig-zag visits anti-diagonals in non-decreasing u+v order.
func TestZigZagFrequencyMonotone(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {3, 7}, {10, 2}} {
		h, w := dims[0], dims[1]
		order := ZigZagOrder(h, w)
		prev := -1
		for _, idx := range order {
			s := idx/w + idx%w
			if s < prev {
				t.Fatalf("%dx%d: anti-diagonal decreased (%d after %d)", h, w, s, prev)
			}
			prev = s
		}
	}
}

func TestZigZagFlattenRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, w := 1+r.Intn(10), 1+r.Intn(10)
		block := make([]float64, h*w)
		for i := range block {
			block[i] = r.NormFloat64()
		}
		scan, err := ZigZagFlatten(block, h, w)
		if err != nil {
			return false
		}
		back, err := ZigZagUnflatten(scan, h, w)
		if err != nil {
			return false
		}
		for i := range block {
			if back[i] != block[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagTruncatedUnflatten(t *testing.T) {
	scan := []float64{1, 2, 3} // first three zig-zag entries of a 3x3 block
	back, err := ZigZagUnflatten(scan, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// order: (0,0), (0,1), (1,0), ...
	if back[0] != 1 || back[1] != 2 || back[3] != 3 {
		t.Fatalf("unflatten: %v", back)
	}
	for _, idx := range []int{2, 4, 5, 6, 7, 8} {
		if back[idx] != 0 {
			t.Fatalf("expected zero-fill at %d: %v", idx, back)
		}
	}
}

func TestZigZagErrors(t *testing.T) {
	if _, err := ZigZagFlatten(make([]float64, 5), 2, 2); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := ZigZagUnflatten(make([]float64, 10), 3, 3); err == nil {
		t.Fatal("expected overlong scan error")
	}
}

func TestCoefficientCorner(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{8, 1, 1},
		{8, 2, 2},  // (0,1)
		{8, 3, 2},  // (1,0)
		{8, 6, 3},  // up to (0,2)..(2,0)
		{8, 10, 4}, // fourth anti-diagonal reaches (3,0)
		{8, 64, 8},
		{8, 100, 8}, // clamped
		{8, 0, 1},
	}
	for _, c := range cases {
		if got := CoefficientCorner(c.n, c.k); got != c.want {
			t.Errorf("CoefficientCorner(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// Property: the first k zig-zag indices all fall inside the reported corner.
func TestCoefficientCornerCovers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		k := 1 + r.Intn(n*n)
		s := CoefficientCorner(n, k)
		order := ZigZagOrder(n, n)
		for i := 0; i < k; i++ {
			u, v := order[i]/n, order[i]%n
			if u >= s || v >= s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationEnergyDominance(t *testing.T) {
	// For a smooth (low-frequency) image, most energy must live in the first
	// few zig-zag coefficients — the property the paper's Figure 1 relies on.
	h, w := 16, 16
	src := make([]float64, h*w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src[y*w+x] = math.Cos(math.Pi*float64(x)/float64(w)) + 0.5*math.Sin(math.Pi*float64(y)/float64(h))
		}
	}
	coef, err := Forward2D(src, h, w)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := ZigZagFlatten(coef, h, w)
	if err != nil {
		t.Fatal(err)
	}
	total, head := 0.0, 0.0
	for i, v := range scan {
		total += v * v
		if i < 32 {
			head += v * v
		}
	}
	if head < 0.95*total {
		t.Fatalf("first 32 coefficients hold %.1f%% of energy, want >= 95%%", 100*head/total)
	}
}
