// Package core assembles the paper's hotspot detection framework behind one
// Detector type: feature tensor generation (§3) feeding the Table 1 CNN,
// trained with mini-batch gradient descent (Algorithm 1) under the biased
// learning schedule (Algorithm 2), with boundary-shifted prediction
// (Equation (11)) available for the Figure 4 comparison.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"hotspot/internal/dataset"
	"hotspot/internal/eval"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/train"
)

// Config assembles every knob of the framework.
type Config struct {
	// Feature is the feature tensor extraction configuration; Feature.K
	// and Feature.Blocks must match Net.InChannels and Net.SpatialSize.
	Feature feature.TensorConfig
	// Net is the CNN architecture (Table 1 by default).
	Net nn.PaperNetConfig
	// Biased is the training schedule (Algorithm 2 wrapping Algorithm 1).
	Biased train.BiasedConfig
	// ValFraction is the held-out validation share of the training set
	// (the paper separates 25%).
	ValFraction float64
	// AugmentVariants is the number of dihedral symmetries used to augment
	// the training clips (1 = no augmentation, 8 = full square symmetry
	// group). Augmentation happens after the train/validation split, so
	// variants of one clip never straddle it.
	AugmentVariants int
	// Seed drives the train/validation split.
	Seed int64
	// Workers bounds the goroutines used for feature extraction, gradient
	// computation and evaluation (0 = parallel.Default()). Any value
	// produces identical results; this is purely a throughput knob. When
	// non-zero it overrides the Workers fields of the nested MGD configs.
	Workers int
	// OnEpoch, when set, receives per-epoch training telemetry from every
	// biased-learning round (round index, bias ε, checkpoint metrics).
	// Observation only; it cannot change the trained weights. Not part of
	// the persisted model.
	OnEpoch func(round int, eps float64, e train.EpochEvent)
}

// DefaultConfig mirrors the paper at laptop scale: the Table 1 network on
// 12×12×32 feature tensors; biased learning with α=0.5 and ε stepping
// 0→0.3 by 0.1 over t=4 rounds. The paper's Table 2 run uses λ=1e-4 with a
// 10000-iteration decay step at full industrial scale on GPU-sized batches;
// the scaled suites here train best around λ=0.02 with batch 16 (averaged
// minibatch gradients are small relative to single-sample SGD, and the
// feature tensors are normalized), so that is the default. Override for
// paper-sized datasets.
func DefaultConfig() Config {
	initial := train.MGDConfig{
		LearningRate:   0.02,
		DecayFactor:    0.5,
		DecayStep:      1000,
		BatchSize:      16,
		MaxIters:       2400,
		ValEvery:       200,
		Patience:       8,
		BalanceClasses: true,
		Seed:           7,
	}
	fine := initial
	fine.LearningRate = 0.004
	fine.MaxIters = 500
	fine.DecayStep = 250
	fine.ValEvery = 100
	fine.Patience = 4
	return Config{
		Feature: feature.DefaultTensorConfig(),
		Net:     nn.DefaultPaperNetConfig(),
		Biased: train.BiasedConfig{
			InitialEps: 0,
			DeltaEps:   0.1,
			Rounds:     4,
			Initial:    initial,
			FineTune:   fine,
			KeepBest:   true,
		},
		ValFraction:     0.25,
		AugmentVariants: 8,
		Seed:            17,
	}
}

// Validate cross-checks the configuration.
func (c Config) Validate() error {
	if err := c.Feature.Validate(); err != nil {
		return err
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if err := c.Biased.Validate(); err != nil {
		return err
	}
	if c.Net.InChannels != c.Feature.K {
		return fmt.Errorf("core: network expects %d channels but feature tensor has K=%d",
			c.Net.InChannels, c.Feature.K)
	}
	if c.Net.SpatialSize != c.Feature.Blocks {
		return fmt.Errorf("core: network expects %d×%d input but feature tensor has %d blocks",
			c.Net.SpatialSize, c.Net.SpatialSize, c.Feature.Blocks)
	}
	if c.ValFraction < 0 || c.ValFraction >= 1 {
		return fmt.Errorf("core: validation fraction %v outside [0, 1)", c.ValFraction)
	}
	if c.AugmentVariants < 1 || c.AugmentVariants > 8 {
		return fmt.Errorf("core: augmentation variants %d outside [1, 8]", c.AugmentVariants)
	}
	return nil
}

// Detector is the trained (or trainable) framework instance.
type Detector struct {
	cfg Config
	net *nn.Network
}

// NewDetector validates the configuration and builds an untrained detector.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := nn.NewPaperNet(cfg.Net)
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, net: net}, nil
}

// Config returns the detector configuration.
func (d *Detector) Config() Config { return d.cfg }

// Network exposes the underlying CNN (for summaries and experiments).
func (d *Detector) Network() *nn.Network { return d.net }

// TrainReport summarizes a training run.
type TrainReport struct {
	Rounds       []train.RoundResult
	TrainSamples int
	ValSamples   int
	Elapsed      time.Duration
}

// Train extracts feature tensors for the labelled clips and runs biased
// learning. core is the clip-core rectangle in clip coordinates (shared by
// all samples of a suite). The clips are split into training and
// validation portions first; training clips are then augmented with
// Config.AugmentVariants dihedral symmetries.
func (d *Detector) Train(samples []layout.Sample, core geom.Rect) (*TrainReport, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	perm := rand.New(rand.NewSource(d.cfg.Seed)).Perm(len(samples))
	nVal := int(float64(len(samples)) * d.cfg.ValFraction)
	valClips := make([]layout.Sample, 0, nVal)
	trainClips := make([]layout.Sample, 0, len(samples)-nVal)
	for i, j := range perm {
		if i < nVal {
			valClips = append(valClips, samples[j])
		} else {
			trainClips = append(trainClips, samples[j])
		}
	}
	trainT, err := dataset.AugmentedTensorSamples(trainClips, core, d.cfg.Feature, d.cfg.AugmentVariants, d.cfg.Workers)
	if err != nil {
		return nil, err
	}
	valT, err := dataset.TensorSamples(valClips, core, d.cfg.Feature, d.cfg.Workers)
	if err != nil {
		return nil, err
	}
	watch := obs.NewStopwatch()
	rounds, err := train.BiasedLearning(d.net, trainT, valT, d.biasedConfig())
	if err != nil {
		return nil, err
	}
	return &TrainReport{
		Rounds:       rounds,
		TrainSamples: len(trainT),
		ValSamples:   len(valT),
		Elapsed:      watch.Elapsed(),
	}, nil
}

// TrainTensors runs biased learning on pre-extracted feature tensors.
func (d *Detector) TrainTensors(samples []train.Sample) (*TrainReport, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	trainSet, valSet, err := train.Split(samples, d.cfg.ValFraction, d.cfg.Seed)
	if err != nil {
		return nil, err
	}
	watch := obs.NewStopwatch()
	rounds, err := train.BiasedLearning(d.net, trainSet, valSet, d.biasedConfig())
	if err != nil {
		return nil, err
	}
	return &TrainReport{
		Rounds:       rounds,
		TrainSamples: len(trainSet),
		ValSamples:   len(valSet),
		Elapsed:      watch.Elapsed(),
	}, nil
}

// biasedConfig returns the training schedule with Config.Workers threaded
// into the nested MGD configurations (when set).
func (d *Detector) biasedConfig() train.BiasedConfig {
	cfg := d.cfg.Biased
	if d.cfg.Workers != 0 {
		cfg.Initial.Workers = d.cfg.Workers
		cfg.FineTune.Workers = d.cfg.Workers
	}
	if d.cfg.OnEpoch != nil {
		cfg.OnEpoch = d.cfg.OnEpoch
	}
	return cfg
}

// Predict returns the hotspot probability of one clip.
func (d *Detector) Predict(c geom.Clip, core geom.Rect) (float64, error) {
	ft, err := feature.ExtractTensor(c, core, d.cfg.Feature)
	if err != nil {
		return 0, err
	}
	return train.PredictProb(d.net, ft)
}

// Detect applies the (optionally shifted) decision rule to one clip.
func (d *Detector) Detect(c geom.Clip, core geom.Rect, shift float64) (bool, error) {
	p, err := d.Predict(c, core)
	if err != nil {
		return false, err
	}
	return train.Decide(p, shift), nil
}

// Evaluate scores a labelled test set and returns the Table 2 row. Feature
// extraction and inference both fan across Config.Workers goroutines; the
// reported time is the wall clock of that full testing pipeline, and the
// confusion counts are identical to a serial evaluation.
func (d *Detector) Evaluate(samples []layout.Sample, core geom.Rect, benchmark string) (eval.Result, error) {
	if len(samples) == 0 {
		return eval.Result{}, fmt.Errorf("core: empty test set")
	}
	watch := obs.NewStopwatch()
	clips := make([]geom.Clip, len(samples))
	for i, s := range samples {
		clips[i] = s.Clip
	}
	xs, err := feature.ExtractTensors(clips, core, d.cfg.Feature, d.cfg.Workers)
	if err != nil {
		return eval.Result{}, err
	}
	ev, err := train.NewEvaluator(d.net, d.cfg.Workers)
	if err != nil {
		return eval.Result{}, err
	}
	probs, err := ev.PredictProbs(xs)
	if err != nil {
		return eval.Result{}, err
	}
	tp, fp, fn := 0, 0, 0
	for i, p := range probs {
		pred := train.Decide(p, 0)
		switch {
		case pred && samples[i].Hotspot:
			tp++
		case pred && !samples[i].Hotspot:
			fp++
		case !pred && samples[i].Hotspot:
			fn++
		}
	}
	return eval.NewResult("Ours", benchmark, tp, fp, fn, watch.Elapsed())
}

// EvaluateTensors scores pre-extracted tensors at a given boundary shift.
func (d *Detector) EvaluateTensors(samples []train.Sample, shift float64) (train.Metrics, error) {
	return train.EvalSet(d.net, samples, shift)
}

// Save persists the trained network.
func (d *Detector) Save(w io.Writer) error { return d.net.Save(w) }

// LoadDetector restores a detector from a saved network and its config.
// Loading goes through train.LoadWarmStart, the shared warm-start entry
// point, which validates the checkpoint against the configured feature
// geometry; the restored detector is equally fit for serving and for
// continued training (hsd-train -init, the active-learning loop).
func LoadDetector(r io.Reader, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := train.LoadWarmStart(r, []int{cfg.Feature.K, cfg.Feature.Blocks, cfg.Feature.Blocks})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Detector{cfg: cfg, net: net}, nil
}
