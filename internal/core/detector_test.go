package core

import (
	"bytes"
	"math/rand"
	"testing"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/train"
)

// smallConfig returns a reduced detector for fast tests: a 4-block feature
// tensor into a narrow CNN with a short schedule.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Feature = feature.TensorConfig{Blocks: 4, K: 8, ResNM: 4, Normalize: true}
	cfg.Net = nn.PaperNetConfig{
		InChannels: 8, SpatialSize: 4, Conv1Maps: 4, Conv2Maps: 4,
		FC1: 12, DropoutRate: 0.5, Seed: 2,
	}
	cfg.Biased.Initial.MaxIters = 200
	cfg.Biased.Initial.ValEvery = 50
	cfg.Biased.Initial.DecayStep = 100
	cfg.Biased.FineTune.MaxIters = 60
	cfg.Biased.FineTune.ValEvery = 20
	cfg.Biased.FineTune.DecayStep = 30
	cfg.Biased.Rounds = 2
	return cfg
}

// separableClips builds clips whose label follows density (dense = hotspot),
// a task the detector must learn quickly.
func separableClips(n int, seed int64) []layout.Sample {
	rng := rand.New(rand.NewSource(seed))
	frame := geom.R(0, 0, 480, 480)
	out := make([]layout.Sample, n)
	for i := range out {
		hot := i%2 == 0
		pitch, width := 160, 48
		if hot {
			pitch, width = 64, 40
		}
		var rects []geom.Rect
		for x := rng.Intn(3) * 16; x+width < 480; x += pitch {
			rects = append(rects, geom.R(x, 0, x+width, 480))
		}
		out[i] = layout.Sample{Clip: geom.NewClip(frame, rects), Hotspot: hot}
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Net.InChannels = 16 // mismatch with Feature.K = 32
	if err := bad.Validate(); err == nil {
		t.Fatal("expected channel mismatch error")
	}
	bad = DefaultConfig()
	bad.Feature.Blocks = 8 // mismatch with Net.SpatialSize = 12
	if err := bad.Validate(); err == nil {
		t.Fatal("expected spatial mismatch error")
	}
	bad = DefaultConfig()
	bad.ValFraction = 1.0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected fraction error")
	}
	if _, err := NewDetector(bad); err == nil {
		t.Fatal("NewDetector must validate")
	}
}

func TestDetectorTrainsAndPredicts(t *testing.T) {
	cfg := smallConfig()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := separableClips(80, 1)
	core := samples[0].Clip.Frame
	report, err := det.Train(samples, core)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rounds) != cfg.Biased.Rounds {
		t.Fatalf("rounds = %d", len(report.Rounds))
	}
	nVal := int(float64(len(samples)) * cfg.ValFraction)
	wantTrain := (len(samples) - nVal) * cfg.AugmentVariants
	if report.TrainSamples != wantTrain || report.ValSamples != nVal {
		t.Fatalf("split sizes %d/%d, want %d/%d (augmented)",
			report.TrainSamples, report.ValSamples, wantTrain, nVal)
	}
	res, err := det.Evaluate(separableClips(40, 2), core, "sep")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("separable accuracy %.2f", res.Accuracy)
	}
	p, err := det.Predict(samples[0].Clip, core)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Fatalf("probability %v out of range", p)
	}
	hot, err := det.Detect(samples[0].Clip, core, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hot != (p > 0.5) {
		t.Fatal("Detect inconsistent with Predict")
	}
}

func TestDetectorTrainErrors(t *testing.T) {
	det, err := NewDetector(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Train(nil, geom.R(0, 0, 480, 480)); err == nil {
		t.Fatal("expected empty-train error")
	}
	if _, err := det.TrainTensors(nil); err == nil {
		t.Fatal("expected empty-tensor error")
	}
	if _, err := det.Evaluate(nil, geom.R(0, 0, 480, 480), "x"); err == nil {
		t.Fatal("expected empty-eval error")
	}
}

func TestDetectorSaveLoad(t *testing.T) {
	cfg := smallConfig()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := separableClips(40, 3)
	core := samples[0].Clip.Frame
	if _, err := det.Train(samples, core); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:8] {
		p1, err := det.Predict(s.Clip, core)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := loaded.Predict(s.Clip, core)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatal("loaded detector predicts differently")
		}
	}
}

func TestLoadDetectorRejectsMismatchedConfig(t *testing.T) {
	cfg := smallConfig()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := DefaultConfig() // 32-channel network vs saved 8-channel one
	if _, err := LoadDetector(&buf, other); err == nil {
		t.Fatal("expected incompatibility error")
	}
}

func TestEvaluateTensorsShift(t *testing.T) {
	cfg := smallConfig()
	det, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	samples := separableClips(40, 4)
	core := samples[0].Clip.Frame
	if _, err := det.Train(samples, core); err != nil {
		t.Fatal(err)
	}
	var tens []train.Sample
	for _, s := range separableClips(30, 5) {
		ft, err := feature.ExtractTensor(s.Clip, core, cfg.Feature)
		if err != nil {
			t.Fatal(err)
		}
		tens = append(tens, train.Sample{X: ft, Hotspot: s.Hotspot})
	}
	m0, err := det.EvaluateTensors(tens, 0)
	if err != nil {
		t.Fatal(err)
	}
	mShift, err := det.EvaluateTensors(tens, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if mShift.Recall < m0.Recall || mShift.FalseAlarms < m0.FalseAlarms {
		t.Fatal("boundary shift must not reduce recall or FA")
	}
}
