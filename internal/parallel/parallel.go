// Package parallel is the shared data-parallel execution substrate: a
// bounded worker pool with stable worker identities and deterministic,
// index-ordered result collection. Every batch-level fan-out in the
// repository — mini-batch gradient computation (train.MGD), sample-set
// scoring (train.Evaluator, core.Detector.Evaluate), feature-tensor
// extraction (feature.ExtractTensors, internal/dataset) and lithography
// labelling (internal/layout) — runs on this package so the concurrency
// model lives in one place.
//
// Determinism contract: For hands out item indices dynamically (workers
// race for the next index), so *which* worker processes an item is
// scheduler-dependent — but callers receive the worker id, keep all mutable
// state per worker, and write results into index-addressed slots. As long
// as item i's result depends only on i (and on per-worker state that is
// re-initialized per item), outputs are bit-identical under any worker
// count. Reductions over the slots then happen in index order on the
// caller's goroutine.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hotspot/internal/obs"
)

// defaultWorkers holds the process-wide default worker count; 0 means
// runtime.GOMAXPROCS(0) resolved at use time. Command-line tools set it
// once at startup from their -workers flag.
var defaultWorkers atomic.Int64

// SetDefault sets the process-wide default worker count used when a Pool
// is built with workers <= 0. n <= 0 restores the GOMAXPROCS default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the current default worker count: the value set with
// SetDefault, or runtime.GOMAXPROCS(0) when unset.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves a configured worker count: values <= 0 mean Default().
func Workers(n int) int {
	if n <= 0 {
		return Default()
	}
	return n
}

// Pool is a bounded worker pool. The zero value is not usable; build one
// with New. A Pool carries no goroutines between calls — each For call
// spawns at most Size goroutines and joins them before returning — so a
// Pool is safe for reuse and costs nothing while idle.
type Pool struct {
	workers int

	// Instrumentation handles, resolved once at New so the hot paths
	// never touch the registry's lock or allocate label strings. Fan-out
	// passes record wall time (parallel/pass), per-worker kickoff latency
	// (parallel/queue) and the busy fraction of the worker set
	// (hsd_parallel_utilization). Observation only — nothing here feeds
	// the computation, and the serial (one-worker) inline path stays
	// completely uninstrumented.
	passSum  *obs.Summary
	queueSum *obs.Summary
	utilSum  *obs.Summary
}

// New builds a pool with the given worker bound; workers <= 0 means
// Default().
func New(workers int) *Pool {
	reg := obs.Default()
	return &Pool{
		workers:  Workers(workers),
		passSum:  reg.Stage("parallel/pass"),
		queueSum: reg.Stage("parallel/queue"),
		utilSum:  reg.Summary("hsd_parallel_utilization", 0),
	}
}

// observePass records one parallel pass: wall time, each worker's wake
// latency (time from kickoff to its loop starting), and the aggregate
// utilization busy/(workers·wall). Called on the orchestrating goroutine
// after the join, so workers never contend on summary locks.
func (p *Pool) observePass(wall time.Duration, wake, busy []time.Duration) {
	p.passSum.ObserveDuration(wall)
	var total time.Duration
	for i := range busy {
		total += busy[i]
		p.queueSum.ObserveDuration(wake[i])
	}
	if wall > 0 {
		p.utilSum.Observe(float64(total) / (float64(len(busy)) * float64(wall)))
	}
}

// Size returns the pool's worker bound.
func (p *Pool) Size() int { return p.workers }

// For runs fn(worker, i) for every i in [0, n), fanning out across at most
// Size workers. worker is a stable id in [0, Size) for per-worker state
// (network replicas, scratch buffers). Item order within a worker is not
// specified; see the package comment for the determinism contract.
//
// All n items are attempted even when some fail; the returned error is the
// one from the lowest item index, so error reporting is deterministic
// under any worker count. With one worker (or one item) everything runs
// inline on the calling goroutine — no goroutines, no synchronization.
//hsd:hotpath
func (p *Pool) For(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	watch := obs.NewStopwatch()
	wake := make([]time.Duration, w)
	busy := make([]time.Duration, w)
	for worker := 0; worker < w; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wake[worker] = watch.Elapsed()
			workerWatch := obs.NewStopwatch()
			defer func() { busy[worker] = workerWatch.Elapsed() }()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}(worker)
	}
	wg.Wait()
	p.observePass(watch.Elapsed(), wake, busy)
	return firstErr
}

// Session pins a pool's workers as persistent goroutines for repeated
// synchronized passes over index ranges. A hot loop that fans out once per
// iteration (train.MGD runs one pass per optimization step) would pay
// goroutine startup on every Pool.For call; a Session starts its workers
// once and reuses them, so a steady-state pass allocates nothing. Close
// must be called when done. A Session is not safe for concurrent use; the
// determinism contract of Pool.For applies unchanged.
type Session struct {
	workers int
	pool    *Pool
	jobs    []chan struct{}
	done    sync.WaitGroup

	// Per-pass state, owned by For between kickoff and join. Kept on the
	// struct (rather than in a per-pass job value) so a pass performs no
	// heap allocation; the channel send/receive orders these writes before
	// the workers read them. wake and busy are each worker's own slot
	// (written by the worker, read after the join); watch is the pass
	// stopwatch, set before kickoff.
	n        int
	fn       func(worker, i int) error
	next     atomic.Int64
	mu       sync.Mutex
	firstIdx int
	firstErr error
	watch    obs.Stopwatch
	wake     []time.Duration
	busy     []time.Duration
}

// Session pins the pool's workers for repeated passes. With a one-worker
// pool no goroutines are started and For runs inline.
func (p *Pool) Session() *Session {
	s := &Session{workers: p.workers, pool: p}
	if s.workers <= 1 {
		return s
	}
	s.jobs = make([]chan struct{}, s.workers)
	s.wake = make([]time.Duration, s.workers)
	s.busy = make([]time.Duration, s.workers)
	for w := range s.jobs {
		s.jobs[w] = make(chan struct{}, 1)
	}
	for w := range s.jobs {
		go func(worker int) {
			for range s.jobs[worker] {
				s.wake[worker] = s.watch.Elapsed()
				workerWatch := obs.NewStopwatch()
				for {
					i := int(s.next.Add(1)) - 1
					if i >= s.n {
						break
					}
					if err := s.fn(worker, i); err != nil {
						s.mu.Lock()
						if i < s.firstIdx {
							s.firstIdx, s.firstErr = i, err
						}
						s.mu.Unlock()
					}
				}
				s.busy[worker] = workerWatch.Elapsed()
				s.done.Done()
			}
		}(w)
	}
	return s
}

// For runs fn(worker, i) for every i in [0, n) on the session's persistent
// workers, with the same semantics as Pool.For: all items attempted,
// lowest-index error returned, inline execution for one worker.
//hsd:hotpath
func (s *Session) For(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if s.workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	s.n, s.fn = n, fn
	s.next.Store(0)
	s.firstIdx, s.firstErr = n, nil
	s.watch = obs.NewStopwatch()
	s.done.Add(s.workers)
	for _, ch := range s.jobs {
		ch <- struct{}{}
	}
	s.done.Wait()
	s.fn = nil
	s.pool.observePass(s.watch.Elapsed(), s.wake, s.busy)
	return s.firstErr
}

// Close releases the session's workers. The session must not be used after
// Close; Close is idempotent.
func (s *Session) Close() {
	for _, ch := range s.jobs {
		close(ch)
	}
	s.jobs = nil
}

// Map runs fn(worker, i) for every i in [0, n) on the pool and returns the
// results in index order, giving callers a deterministic reduction order
// for free. On error the first (lowest-index) error is returned and the
// results are discarded.
func Map[T any](p *Pool, n int, fn func(worker, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.For(n, func(worker, i int) error {
		v, err := fn(worker, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
