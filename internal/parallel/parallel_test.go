package parallel

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefault(5)
	if got := Workers(0); got != 5 {
		t.Fatalf("Workers(0) after SetDefault(5) = %d", got)
	}
	if got := Workers(2); got != 2 {
		t.Fatalf("explicit count must override default, got %d", got)
	}
	SetDefault(0)
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() after reset = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := New(workers)
		if p.Size() != workers {
			t.Fatalf("Size() = %d, want %d", p.Size(), workers)
		}
		const n = 153
		hits := make([]atomic.Int64, n)
		err := p.For(n, func(worker, i int) error {
			if worker < 0 || worker >= workers {
				return fmt.Errorf("worker id %d out of range", worker)
			}
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	p := New(4)
	if err := p.For(0, func(worker, i int) error { return fmt.Errorf("must not run") }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := p.For(1, func(worker, i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("single item ran %d times", ran)
	}
}

func TestForReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.For(64, func(worker, i int) error {
			if i%10 == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-7" {
			t.Fatalf("workers=%d: err = %v, want fail-7", workers, err)
		}
	}
}

func TestSessionCoversEveryIndexAcrossPasses(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		s := New(workers).Session()
		const n, passes = 97, 5
		hits := make([]atomic.Int64, n)
		for p := 0; p < passes; p++ {
			err := s.For(n, func(worker, i int) error {
				if worker < 0 || worker >= workers {
					return fmt.Errorf("worker id %d out of range", worker)
				}
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		for i := range hits {
			if hits[i].Load() != passes {
				t.Fatalf("workers=%d: index %d hit %d times, want %d", workers, i, hits[i].Load(), passes)
			}
		}
	}
}

func TestSessionReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := New(workers).Session()
		err := s.For(64, func(worker, i int) error {
			if i%10 == 7 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-7" {
			t.Fatalf("workers=%d: err = %v, want fail-7", workers, err)
		}
		// Error state must reset between passes.
		if err := s.For(8, func(worker, i int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: clean pass after failing pass: %v", workers, err)
		}
		s.Close()
	}
}

func TestSessionSteadyStateAllocFree(t *testing.T) {
	s := New(4).Session()
	defer s.Close()
	fn := func(worker, i int) error { return nil }
	// Warm up, then measure: a pass on persistent workers must not allocate.
	for i := 0; i < 3; i++ {
		if err := s.For(16, fn); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.For(16, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Session.For allocated %.1f per pass, want 0", allocs)
	}
}

func TestMapOrderedAndDeterministic(t *testing.T) {
	want := make([]int, 200)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := Map(New(workers), len(want), func(worker, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	_, err := Map(New(4), 32, func(worker, i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}
