package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	for i, v := range tt.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if tt.Rank() != 3 || tt.Dim(0) != 2 || tt.Dim(1) != 3 || tt.Dim(2) != 4 {
		t.Fatalf("bad shape: %v", tt.Shape())
	}
}

func TestNewEmptyDimension(t *testing.T) {
	tt := New(0, 5)
	if tt.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tt.Len())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	tt, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	if _, err := FromSlice(data, 2, 2); err == nil {
		t.Fatal("expected error for mismatched length")
	}
	if _, err := FromSlice(data, -2, -3); err == nil {
		t.Fatal("expected error for negative shape")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4, 5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		a, b, c := rng.Intn(3), rng.Intn(4), rng.Intn(5)
		v := rng.NormFloat64()
		tt.Set(v, a, b, c)
		if tt.At(a, b, c) != v {
			t.Fatalf("roundtrip failed at (%d,%d,%d)", a, b, c)
		}
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tt.At(2, 0)
}

func TestRowMajorLayout(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7, 1, 2)
	if tt.Data()[5] != 7 {
		t.Fatalf("expected row-major layout: data[5]=%v", tt.Data()[5])
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("clone mutated original")
	}
	sh := a.Shape()
	sh[0] = 99
	if a.Dim(0) != 3 {
		t.Fatal("Shape() exposed internal slice")
	}
}

func TestReshapeSharesBuffer(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b, err := a.Reshape(4)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(42, 3)
	if a.At(1, 1) != 42 {
		t.Fatal("reshape should share the buffer")
	}
	if _, err := a.Reshape(3); err == nil {
		t.Fatal("expected error reshaping to wrong size")
	}
}

func TestArithmetic(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{5, 6, 7, 8}, 2, 2)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 10, 12}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("add: got %v want %v", a.Data(), want)
		}
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Data() {
		if v != float64(i+1) {
			t.Fatalf("sub: got %v", a.Data())
		}
	}
	if err := a.Mul(b); err != nil {
		t.Fatal(err)
	}
	wantMul := []float64{5, 12, 21, 32}
	for i, v := range a.Data() {
		if v != wantMul[i] {
			t.Fatalf("mul: got %v want %v", a.Data(), wantMul)
		}
	}
	a.Scale(0.5)
	if a.At(0, 0) != 2.5 {
		t.Fatalf("scale: got %v", a.At(0, 0))
	}
}

func TestArithmeticShapeMismatch(t *testing.T) {
	a := New(2, 2)
	b := New(4)
	if err := a.Add(b); err == nil {
		t.Fatal("Add: expected shape mismatch error")
	}
	if err := a.Sub(b); err == nil {
		t.Fatal("Sub: expected shape mismatch error")
	}
	if err := a.Mul(b); err == nil {
		t.Fatal("Mul: expected shape mismatch error")
	}
	if err := a.AddScaled(2, b); err == nil {
		t.Fatal("AddScaled: expected shape mismatch error")
	}
}

func TestAddScaled(t *testing.T) {
	a := MustFromSlice([]float64{1, 1}, 2)
	b := MustFromSlice([]float64{2, 3}, 2)
	if err := a.AddScaled(-0.5, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0) != 0 || a.At(1) != -0.5 {
		t.Fatalf("addscaled: got %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := MustFromSlice([]float64{3, -1, 4, 1.5}, 4)
	if a.Sum() != 7.5 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Max() != 4 {
		t.Fatalf("Max = %v", a.Max())
	}
	if a.Min() != -1 {
		t.Fatalf("Min = %v", a.Min())
	}
	if !almostEqual(a.Norm2(), math.Sqrt(9+1+16+2.25), 1e-12) {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
}

func TestDot(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{4, 5, 6}, 3)
	d, err := a.Dot(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	if _, err := a.Dot(New(2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestHasNaN(t *testing.T) {
	a := New(3)
	if a.HasNaN() {
		t.Fatal("fresh tensor should not have NaN")
	}
	a.Set(math.NaN(), 1)
	if !a.HasNaN() {
		t.Fatal("NaN not detected")
	}
	a.Set(0, 1)
	a.Set(math.Inf(1), 2)
	if !a.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestString(t *testing.T) {
	a := New(10)
	s := a.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestMatMul(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("matmul: got %v want %v", c.Data(), want)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("expected inner-dim mismatch error")
	}
	if _, err := MatMul(New(2), New(2, 3)); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(4, 4)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Data() {
		if !almostEqual(v, a.Data()[i], 1e-12) {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulInto(t *testing.T) {
	a := MustFromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := MustFromSlice([]float64{3, 4, 5, 6}, 2, 2)
	out := New(2, 2)
	out.Fill(99) // must be overwritten
	if err := MatMulInto(out, a, b); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != b.Data()[i] {
			t.Fatalf("matmulinto: got %v", out.Data())
		}
	}
	if err := MatMulInto(New(3, 3), a, b); err == nil {
		t.Fatal("expected output shape error")
	}
}

func TestTranspose(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data())
	}
	if _, err := Transpose(New(2)); err == nil {
		t.Fatal("expected rank error")
	}
}

func TestMatVec(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := MustFromSlice([]float64{1, 0, -1}, 3)
	y, err := MatVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != -2 || y.At(1) != -2 {
		t.Fatalf("matvec: got %v", y.Data())
	}
	if _, err := MatVec(a, New(2)); err == nil {
		t.Fatal("expected dim error")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63()))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := New(m, k), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = r.NormFloat64()
		}
		ab, _ := MatMul(a, b)
		abT, _ := Transpose(ab)
		aT, _ := Transpose(a)
		bT, _ := Transpose(b)
		bTaT, _ := MatMul(bT, aT)
		for i := range abT.Data() {
			if !almostEqual(abT.Data()[i], bTaT.Data()[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) = A·B + A·C.
func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a, b, c := New(m, k), New(k, n), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = r.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = r.NormFloat64()
		}
		for i := range c.Data() {
			c.Data()[i] = r.NormFloat64()
		}
		bc := b.Clone()
		_ = bc.Add(c)
		lhs, _ := MatMul(a, bc)
		ab, _ := MatMul(a, b)
		ac, _ := MatMul(a, c)
		_ = ab.Add(ac)
		for i := range lhs.Data() {
			if !almostEqual(lhs.Data()[i], ab.Data()[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
