package tensor

import (
	"math/rand"
	"testing"
)

// benchOperands builds conv-shaped matmul operands (the paper net's
// conv2-2 forward: (32, 288) x (288, 36)) with the given fraction of zeros
// in a — the operand the sparse skip inspects.
func benchOperands(zeroFrac float64) (out, a, b *Tensor) {
	const m, k, n = 32, 288, 36
	rng := rand.New(rand.NewSource(7))
	a = New(m, k)
	for i := range a.Data() {
		if rng.Float64() < zeroFrac {
			a.Data()[i] = 0
		} else {
			a.Data()[i] = rng.NormFloat64()
		}
	}
	b = New(k, n)
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	return New(m, n), a, b
}

func benchMatMul(bn *testing.B, zeroFrac float64) {
	out, a, b := benchOperands(zeroFrac)
	bn.ReportAllocs()
	bn.ResetTimer()
	for i := 0; i < bn.N; i++ {
		if err := MatMulInto(out, a, b); err != nil {
			bn.Fatal(err)
		}
	}
}

// Dense activations are the common case on the forward path (a holds
// trained weights) — the sparse skip must not cost anything here.
func BenchmarkMatMulIntoDense(b *testing.B) { benchMatMul(b, 0) }

// Post-ReLU gradient rows are roughly half zeros; the skip should win.
func BenchmarkMatMulIntoHalfSparse(b *testing.B) { benchMatMul(b, 0.5) }

func BenchmarkMatMulIntoVerySparse(b *testing.B) { benchMatMul(b, 0.9) }

func benchMatMulAT(bn *testing.B, zeroFrac float64) {
	// MatMulATInto computes aᵀ·b for a (k, m) and b (k, n); in conv
	// backward a is the output gradient, which ReLU sparsifies.
	const k, m, n = 32, 288, 36
	rng := rand.New(rand.NewSource(9))
	a := New(k, m)
	for i := range a.Data() {
		if rng.Float64() < zeroFrac {
			a.Data()[i] = 0
		} else {
			a.Data()[i] = rng.NormFloat64()
		}
	}
	b := New(k, n)
	for i := range b.Data() {
		b.Data()[i] = rng.NormFloat64()
	}
	out := New(m, n)
	bn.ReportAllocs()
	bn.ResetTimer()
	for i := 0; i < bn.N; i++ {
		if err := MatMulATInto(out, a, b); err != nil {
			bn.Fatal(err)
		}
	}
}

func BenchmarkMatMulATIntoDense(b *testing.B)      { benchMatMulAT(b, 0) }
func BenchmarkMatMulATIntoHalfSparse(b *testing.B) { benchMatMulAT(b, 0.5) }
