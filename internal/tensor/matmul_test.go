package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fillRand fills t with standard normals from rng.
func fillRand(t *Tensor, rng *rand.Rand) {
	for i := range t.data {
		t.data[i] = rng.NormFloat64()
	}
}

// TestMatMulBiasIntoMatchesTwoPass pins the bit-for-bit contract of the
// fused bias epilogue: MatMulBiasInto must equal MatMulInto followed by a
// row-wise bias broadcast, element for element, on both the dense-unrolled
// and the sparse row-skipping kernel paths.
func TestMatMulBiasIntoMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ m, k, n int }{
		{16, 288, 144}, // conv1-1 of the paper's Table 1
		{16, 144, 144}, // conv1-2
		{32, 144, 36},  // conv2-1
		{32, 288, 36},  // conv2-2
		{3, 5, 7},      // remainder loops (k % 4 != 0)
		{1, 1, 1},
	}
	for _, sparse := range []bool{false, true} {
		for _, s := range shapes {
			a, b := New(s.m, s.k), New(s.k, s.n)
			fillRand(a, rng)
			fillRand(b, rng)
			if sparse {
				// Zero out enough of a to trip the sparse gate.
				for i := range a.data {
					if rng.Float64() < 0.9 {
						a.data[i] = 0
					}
				}
			}
			bias := New(s.m)
			fillRand(bias, rng)

			want := New(s.m, s.n)
			if err := MatMulInto(want, a, b); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.m; i++ {
				bv := bias.data[i]
				row := want.data[i*s.n : (i+1)*s.n]
				for j := range row {
					row[j] += bv
				}
			}

			got := New(s.m, s.n)
			if err := MatMulBiasInto(got, a, b, bias); err != nil {
				t.Fatal(err)
			}
			for i := range got.data {
				if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
					t.Fatalf("shape %v sparse=%v: element %d differs: %v vs %v",
						s, sparse, i, got.data[i], want.data[i])
				}
			}
		}
	}
}

// TestMatMulBiasIntoShapeErrors exercises the validation paths.
func TestMatMulBiasIntoShapeErrors(t *testing.T) {
	a, b := New(2, 3), New(3, 4)
	out := New(2, 4)
	if err := MatMulBiasInto(out, a, b, New(3)); err == nil {
		t.Fatal("wrong bias length accepted")
	}
	if err := MatMulBiasInto(New(2, 5), a, b, New(2)); err == nil {
		t.Fatal("wrong output shape accepted")
	}
	if err := MatMulBiasInto(out, a, b, New(2, 1).MustReshape(2, 1)); err == nil {
		t.Fatal("rank-2 bias accepted")
	}
	if err := MatMulBiasInto(out, a, b, New(2)); err != nil {
		t.Fatalf("valid shapes rejected: %v", err)
	}
}

// TestSparseSkipMatchesKernelGate pins the exported gate to the internal
// heuristic the kernels use.
func TestSparseSkipMatchesKernelGate(t *testing.T) {
	dense := make([]float64, 100)
	for i := range dense {
		dense[i] = 1
	}
	if SparseSkip(dense) {
		t.Fatal("dense data classified sparse")
	}
	mostlyZero := make([]float64, 100)
	for i := 0; i < 10; i++ {
		mostlyZero[i] = 1
	}
	if !SparseSkip(mostlyZero) {
		t.Fatal("90%-zero data classified dense")
	}
	if SparseSkip(mostlyZero) != sparseWorthwhile(mostlyZero) {
		t.Fatal("exported gate diverges from kernel gate")
	}
}
