// Package tensor provides dense multi-dimensional float64 arrays and the
// small set of operations the rest of the framework is built on: shaped
// element access, arithmetic, matrix products, and the im2col transform used
// by convolution layers.
//
// A Tensor is a contiguous row-major buffer plus a shape. Shapes follow the
// channels-first convention used throughout the repository: a feature tensor
// is (C, H, W) and a batch is (N, C, H, W).
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major array of float64 with an explicit shape.
// The zero value is an empty tensor with no dimensions.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative; a zero dimension yields an empty tensor.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly prod(shape) elements.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice that panics on error; for use with literals in
// tests and examples.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying buffer. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's buffer with a new shape of the same
// total size.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// MustReshape is Reshape that panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// offset computes the flat index for the given multi-index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Add stores t + o into t element-wise. Shapes must match exactly.
func (t *Tensor) Add(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: add shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// Sub stores t - o into t element-wise.
func (t *Tensor) Sub(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: sub shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// Mul stores t * o (Hadamard product) into t.
func (t *Tensor) Mul(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: mul shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] *= v
	}
	return nil
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled stores t + s*o into t; the fused update used by optimizers.
func (t *Tensor) AddScaled(s float64, o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("tensor: addscaled shape mismatch %v vs %v", t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += s * v
	}
	return nil
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element; it panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) (float64, error) {
	if len(t.data) != len(o.data) {
		return 0, fmt.Errorf("tensor: dot length mismatch %d vs %d", len(t.data), len(o.data))
	}
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape and a few leading values).
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > 8 {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}
