package tensor

import "fmt"

// MatMul returns a new (m, n) tensor holding the product of a (m, k) and
// b (k, n). Both operands must be rank-2.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul needs rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: matmul inner dimension mismatch %v x %v", a.shape, b.shape)
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulInto computes out = a · b for rank-2 operands, reusing out's buffer.
//hsd:hotpath
func MatMulInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("tensor: matmulinto needs rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: matmulinto shape mismatch %v x %v -> %v", a.shape, b.shape, out.shape)
	}
	matmulInto(out.data, a.data, b.data, m, k, n)
	return nil
}

// sparseSkipThreshold is the zero fraction of the streamed operand above
// which the row-skipping kernel beats the unrolled dense kernel. The dense
// kernel amortizes the output row's load/store traffic over four
// accumulation rows, running ~2× faster than the row-at-a-time form on
// dense coefficients, so the zero-skip only pays once more than ~55–60% of
// the rows vanish (deeply ReLU-sparsified gradients). The scan that
// measures density touches each element of one operand exactly once — 1/n
// of the multiply's work — so gating is cheap at conv-sized n. Calibrated
// with BenchmarkMatMulInto* on dense and post-ReLU-like operands.
const sparseSkipThreshold = 0.6

// sparseWorthwhile reports whether a's zero fraction clears the threshold.
func sparseWorthwhile(a []float64) bool {
	zeros := 0
	for _, v := range a {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) > sparseSkipThreshold*float64(len(a))
}

// SparseSkip reports whether the package's matmul kernels would take the
// row-skipping sparse path for coefficient data a. It is exported so
// alternative kernels over the same operands (the fused inference engine)
// can replicate the gate exactly — the gate is part of the bit-for-bit
// result contract, because the sparse and dense variants group additions
// differently.
func SparseSkip(a []float64) bool { return sparseWorthwhile(a) }

// matmulInto writes a(m×k)·b(k×n) into out using an ikj loop order so the
// inner loop streams both b and out rows; this is the usual cache-friendly
// pure-Go kernel. Dense coefficient rows take a 4-way unrolled kernel;
// when a is mostly zeros (a density scan decides), a row-skipping variant
// takes over. The two variants group additions differently, so results can
// differ in the last bits between *different inputs*, but the gate is a
// pure function of the data — the same operands always take the same path,
// keeping every caller bit-reproducible.
//hsd:noalloc
func matmulInto(out, a, b []float64, m, k, n int) {
	matmulBiasInto(out, a, b, nil, m, k, n)
}

// matmulBiasInto is matmulInto with an optional per-row bias epilogue: when
// bias is non-nil, bias[i] is added to every element of output row i as
// soon as the row's dot products complete — while the row is still hot —
// instead of in a second pass over the whole output. Each element's value
// is (full dot product) + bias, exactly the sum the two-pass form produces,
// so results are bit-identical to matmul-then-broadcast.
//hsd:hotpath
//hsd:noalloc
func matmulBiasInto(out, a, b, bias []float64, m, k, n int) {
	for i := range out[:m*n] {
		out[i] = 0
	}
	if sparseWorthwhile(a[:m*k]) {
		for i := 0; i < m; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
			if bias != nil {
				bv := bias[i]
				for j := range orow {
					orow[j] += bv
				}
			}
		}
		return
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		p := 0
		for ; p+3 < k; p += 4 {
			av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			b0 := b[p*n : (p+1)*n]
			b1 := b[(p+1)*n : (p+2)*n]
			b2 := b[(p+2)*n : (p+3)*n]
			b3 := b[(p+3)*n : (p+4)*n]
			for j := range orow {
				orow[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
			}
		}
		for ; p < k; p++ {
			av := arow[p]
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
		if bias != nil {
			bv := bias[i]
			for j := range orow {
				orow[j] += bv
			}
		}
	}
}

// MatMulBiasInto computes out = a · b and adds bias[i] to every element of
// output row i, reusing out's buffer. a is (m, k), b is (k, n), bias is
// rank-1 of length m. The bias add rides the matmul's per-row epilogue
// rather than a second pass over the output, but each element's value is
// bit-identical to MatMulInto followed by a row-wise bias broadcast. The
// convolution forward path uses this to fold its bias into the im2col
// product walk.
//hsd:hotpath
func MatMulBiasInto(out, a, b, bias *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 || bias.Rank() != 1 {
		return fmt.Errorf("tensor: matmulbiasinto needs rank (2,2,1) operands into rank-2 out")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n || bias.shape[0] != m {
		return fmt.Errorf("tensor: matmulbiasinto shape mismatch %v x %v + %v -> %v",
			a.shape, b.shape, bias.shape, out.shape)
	}
	matmulBiasInto(out.data, a.data, b.data, bias.data, m, k, n)
	return nil
}

// Transpose returns a new tensor holding the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: transpose needs rank-2 operand, got %v", a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}

// MatVec returns a·x for a rank-2 a (m, k) and rank-1 x (k).
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: matvec needs (2,1)-rank operands, got %v and %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		return nil, fmt.Errorf("tensor: matvec dimension mismatch %v x %v", a.shape, x.shape)
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out, nil
}

// MatVecInto computes out = a·x for a rank-2 a (m, k) and rank-1 x (k),
// reusing out's buffer (rank-1, length m). Used by the fully connected
// layer's allocation-free forward path.
//hsd:hotpath
func MatVecInto(out, a, x *Tensor) error {
	if a.Rank() != 2 || x.Rank() != 1 || out.Rank() != 1 {
		return fmt.Errorf("tensor: matvecinto needs (2,1,1)-rank operands, got %v, %v, %v",
			a.shape, x.shape, out.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k || out.shape[0] != m {
		return fmt.Errorf("tensor: matvecinto shape mismatch %v x %v -> %v", a.shape, x.shape, out.shape)
	}
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return nil
}

// MatMulATInto computes out = aᵀ · b for a (k, m) and b (k, n) without
// materializing the transpose; out must be (m, n). Used by convolution
// backward to form input gradients.
//hsd:hotpath
func MatMulATInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("tensor: matmulATinto needs rank-2 operands")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: matmulATinto shape mismatch %vᵀ x %v -> %v", a.shape, b.shape, out.shape)
	}
	od := out.data
	for i := range od[:m*n] {
		od[i] = 0
	}
	if sparseWorthwhile(a.data[:k*m]) {
		for p := 0; p < k; p++ {
			arow := a.data[p*m : (p+1)*m]
			brow := b.data[p*n : (p+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := od[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return nil
	}
	// Dense path: 4-way unrolled over k, mirroring matmulInto's dense
	// kernel (same calibration, same determinism argument).
	p := 0
	for ; p+3 < k; p += 4 {
		a0 := a.data[p*m : (p+1)*m]
		a1 := a.data[(p+1)*m : (p+2)*m]
		a2 := a.data[(p+2)*m : (p+3)*m]
		a3 := a.data[(p+3)*m : (p+4)*m]
		b0 := b.data[p*n : (p+1)*n]
		b1 := b.data[(p+1)*n : (p+2)*n]
		b2 := b.data[(p+2)*n : (p+3)*n]
		b3 := b.data[(p+3)*n : (p+4)*n]
		for i := 0; i < m; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			orow := od[i*n : (i+1)*n]
			for j := range orow {
				orow[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
			}
		}
	}
	for ; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// MatMulBTAddInto computes out += a · bᵀ for a (m, k) and b (n, k) without
// materializing the transpose; out must be (m, n). Used by convolution
// backward to accumulate weight gradients.
//hsd:hotpath
func MatMulBTAddInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("tensor: matmulBTaddinto needs rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: matmulBTaddinto shape mismatch %v x %vᵀ -> %v", a.shape, b.shape, out.shape)
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] += s
		}
	}
	return nil
}

// Im2ColInto is Im2Col writing into a preallocated (C*KH*KW, OH*OW) tensor.
//hsd:hotpath
func Im2ColInto(out, in *Tensor, kh, kw, stride, pad int) error {
	if in.Rank() != 3 || out.Rank() != 2 {
		return fmt.Errorf("tensor: im2colinto rank mismatch")
	}
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 || out.shape[0] != c*kh*kw || out.shape[1] != oh*ow {
		return fmt.Errorf("tensor: im2colinto geometry mismatch")
	}
	im2colInto(out.data, in.data, c, h, w, kh, kw, stride, pad, oh, ow)
	return nil
}

// Col2ImInto is Col2Im accumulating into a preallocated zeroed (C, H, W)
// tensor. The destination is zeroed first.
func Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) error {
	if out.Rank() != 3 || cols.Rank() != 2 {
		return fmt.Errorf("tensor: col2iminto rank mismatch")
	}
	c, h, w := out.shape[0], out.shape[1], out.shape[2]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 || cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		return fmt.Errorf("tensor: col2iminto geometry mismatch")
	}
	out.Zero()
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * ncols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					src := row + oy*ow
					dstRow := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							out.data[dstRow+ix] += cols.data[src+ox]
						}
					}
				}
			}
		}
	}
	return nil
}
