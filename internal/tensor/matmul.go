package tensor

import "fmt"

// MatMul returns a new (m, n) tensor holding the product of a (m, k) and
// b (k, n). Both operands must be rank-2.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: matmul needs rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: matmul inner dimension mismatch %v x %v", a.shape, b.shape)
	}
	out := New(m, n)
	matmulInto(out.data, a.data, b.data, m, k, n)
	return out, nil
}

// MatMulInto computes out = a · b for rank-2 operands, reusing out's buffer.
func MatMulInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("tensor: matmulinto needs rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: matmulinto shape mismatch %v x %v -> %v", a.shape, b.shape, out.shape)
	}
	matmulInto(out.data, a.data, b.data, m, k, n)
	return nil
}

// matmulInto writes a(m×k)·b(k×n) into out using an ikj loop order so the
// inner loop streams both b and out rows; this is the usual cache-friendly
// pure-Go kernel.
func matmulInto(out, a, b []float64, m, k, n int) {
	for i := range out[:m*n] {
		out[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns a new tensor holding the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: transpose needs rank-2 operand, got %v", a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}

// MatVec returns a·x for a rank-2 a (m, k) and rank-1 x (k).
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: matvec needs (2,1)-rank operands, got %v and %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		return nil, fmt.Errorf("tensor: matvec dimension mismatch %v x %v", a.shape, x.shape)
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out, nil
}

// MatMulATInto computes out = aᵀ · b for a (k, m) and b (k, n) without
// materializing the transpose; out must be (m, n). Used by convolution
// backward to form input gradients.
func MatMulATInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("tensor: matmulATinto needs rank-2 operands")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: matmulATinto shape mismatch %vᵀ x %v -> %v", a.shape, b.shape, out.shape)
	}
	od := out.data
	for i := range od[:m*n] {
		od[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return nil
}

// MatMulBTAddInto computes out += a · bᵀ for a (m, k) and b (n, k) without
// materializing the transpose; out must be (m, n). Used by convolution
// backward to accumulate weight gradients.
func MatMulBTAddInto(out, a, b *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || out.Rank() != 2 {
		return fmt.Errorf("tensor: matmulBTaddinto needs rank-2 operands")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || out.shape[0] != m || out.shape[1] != n {
		return fmt.Errorf("tensor: matmulBTaddinto shape mismatch %v x %vᵀ -> %v", a.shape, b.shape, out.shape)
	}
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] += s
		}
	}
	return nil
}

// Im2ColInto is Im2Col writing into a preallocated (C*KH*KW, OH*OW) tensor.
func Im2ColInto(out, in *Tensor, kh, kw, stride, pad int) error {
	if in.Rank() != 3 || out.Rank() != 2 {
		return fmt.Errorf("tensor: im2colinto rank mismatch")
	}
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 || out.shape[0] != c*kh*kw || out.shape[1] != oh*ow {
		return fmt.Errorf("tensor: im2colinto geometry mismatch")
	}
	im2colInto(out.data, in.data, c, h, w, kh, kw, stride, pad, oh, ow)
	return nil
}

// Col2ImInto is Col2Im accumulating into a preallocated zeroed (C, H, W)
// tensor. The destination is zeroed first.
func Col2ImInto(out, cols *Tensor, kh, kw, stride, pad int) error {
	if out.Rank() != 3 || cols.Rank() != 2 {
		return fmt.Errorf("tensor: col2iminto rank mismatch")
	}
	c, h, w := out.shape[0], out.shape[1], out.shape[2]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 || cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		return fmt.Errorf("tensor: col2iminto geometry mismatch")
	}
	out.Zero()
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * ncols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					src := row + oy*ow
					dstRow := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							out.data[dstRow+ix] += cols.data[src+ox]
						}
					}
				}
			}
		}
	}
	return nil
}
