package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveConv computes a direct cross-correlation (the DL "convolution") for a
// single output channel, used as the reference for the im2col+matmul path.
func naiveConv(in *Tensor, w *Tensor, stride, pad int) *Tensor {
	c, h, ww := in.Dim(0), in.Dim(1), in.Dim(2)
	kc, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2)
	if kc != c {
		panic("channel mismatch")
	}
	oh := ConvOutputSize(h, kh, stride, pad)
	ow := ConvOutputSize(ww, kw, stride, pad)
	out := New(oh, ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			s := 0.0
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < kh; ky++ {
					for kx := 0; kx < kw; kx++ {
						iy := oy*stride - pad + ky
						ix := ox*stride - pad + kx
						if iy < 0 || iy >= h || ix < 0 || ix >= ww {
							continue
						}
						s += in.At(ch, iy, ix) * w.At(ch, ky, kx)
					}
				}
			}
			out.Set(s, oy, ox)
		}
	}
	return out
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		c := 1 + rng.Intn(3)
		h := 3 + rng.Intn(6)
		w := 3 + rng.Intn(6)
		kh := 1 + rng.Intn(3)
		kw := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		in := New(c, h, w)
		for i := range in.Data() {
			in.Data()[i] = rng.NormFloat64()
		}
		weights := New(c, kh, kw)
		for i := range weights.Data() {
			weights.Data()[i] = rng.NormFloat64()
		}
		cols, err := Im2Col(in, kh, kw, stride, pad)
		if err != nil {
			t.Fatal(err)
		}
		wRow := weights.MustReshape(1, c*kh*kw)
		got, err := MatMul(wRow, cols)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveConv(in, weights, stride, pad)
		for i := range got.Data() {
			if !almostEqual(got.Data()[i], want.Data()[i], 1e-10) {
				t.Fatalf("trial %d: im2col conv mismatch at %d: got %v want %v (c=%d h=%d w=%d k=%dx%d s=%d p=%d)",
					trial, i, got.Data()[i], want.Data()[i], c, h, w, kh, kw, stride, pad)
			}
		}
	}
}

func TestIm2ColShape(t *testing.T) {
	in := New(2, 12, 12)
	cols, err := Im2Col(in, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 2*3*3 || cols.Dim(1) != 12*12 {
		t.Fatalf("im2col shape %v, want [18 144]", cols.Shape())
	}
}

func TestIm2ColErrors(t *testing.T) {
	if _, err := Im2Col(New(2, 2), 3, 3, 1, 1); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := Im2Col(New(1, 4, 4), 0, 3, 1, 1); err == nil {
		t.Fatal("expected bad kernel error")
	}
	if _, err := Im2Col(New(1, 2, 2), 5, 5, 1, 0); err == nil {
		t.Fatal("expected kernel-too-large error")
	}
	if _, err := Im2Col(New(1, 4, 4), 3, 3, 0, 1); err == nil {
		t.Fatal("expected bad stride error")
	}
}

// Col2Im must be the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
// This is precisely what backprop through the convolution requires.
func TestCol2ImIsAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := 1 + r.Intn(2)
		h := 3 + r.Intn(4)
		w := 3 + r.Intn(4)
		kh, kw := 1+r.Intn(3), 1+r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		x := New(c, h, w)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		cols, err := Im2Col(x, kh, kw, stride, pad)
		if err != nil {
			return true // geometry invalid for these params; skip
		}
		y := New(cols.Dim(0), cols.Dim(1))
		for i := range y.Data() {
			y.Data()[i] = r.NormFloat64()
		}
		lhs, _ := cols.Dot(y)
		back, err := Col2Im(y, c, h, w, kh, kw, stride, pad)
		if err != nil {
			return false
		}
		rhs, _ := x.Dot(back)
		return almostEqual(lhs, rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImErrors(t *testing.T) {
	if _, err := Col2Im(New(3), 1, 4, 4, 3, 3, 1, 1); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := Col2Im(New(5, 5), 1, 4, 4, 3, 3, 1, 1); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestConvOutputSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{12, 3, 1, 1, 12}, // "same" conv from the paper's Table 1
		{12, 2, 2, 0, 6},  // 2x2 max-pool
		{6, 2, 2, 0, 3},
		{100, 3, 1, 0, 98},
	}
	for _, c := range cases {
		if got := ConvOutputSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutputSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}
