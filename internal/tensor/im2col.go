package tensor

import "fmt"

// Im2Col unfolds a (C, H, W) input into a (C*KH*KW, OH*OW) matrix of
// receptive-field columns for a convolution with the given kernel size,
// stride and zero padding. Column j holds the flattened patch that the
// kernel sees at output position j (row-major over the output grid), so a
// convolution becomes a single matrix product: weights (OC, C*KH*KW) times
// the returned matrix.
func Im2Col(in *Tensor, kh, kw, stride, pad int) (*Tensor, error) {
	if in.Rank() != 3 {
		return nil, fmt.Errorf("tensor: im2col needs rank-3 (C,H,W) input, got %v", in.shape)
	}
	if kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("tensor: im2col invalid params kh=%d kw=%d stride=%d pad=%d", kh, kw, stride, pad)
	}
	c, h, w := in.shape[0], in.shape[1], in.shape[2]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: im2col kernel %dx%d too large for input %dx%d with pad %d", kh, kw, h, w, pad)
	}
	out := New(c*kh*kw, oh*ow)
	im2colInto(out.data, in.data, c, h, w, kh, kw, stride, pad, oh, ow)
	return out, nil
}

//hsd:noalloc
func im2colInto(out, in []float64, c, h, w, kh, kw, stride, pad, oh, ow int) {
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * ncols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					dst := row + oy*ow
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							out[dst+ox] = 0
						}
						continue
					}
					srcRow := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							out[dst+ox] = 0
						} else {
							out[dst+ox] = in[srcRow+ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im folds a (C*KH*KW, OH*OW) column matrix back into a (C, H, W)
// tensor, accumulating overlapping contributions. It is the adjoint of
// Im2Col and is used to back-propagate gradients through a convolution.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) (*Tensor, error) {
	if cols.Rank() != 2 {
		return nil, fmt.Errorf("tensor: col2im needs rank-2 input, got %v", cols.shape)
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: col2im invalid geometry")
	}
	if cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		return nil, fmt.Errorf("tensor: col2im shape %v does not match geometry (%d, %d)", cols.shape, c*kh*kw, oh*ow)
	}
	out := New(c, h, w)
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := ((ch*kh+ky)*kw + kx) * ncols
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					src := row + oy*ow
					dstRow := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							out.data[dstRow+ix] += cols.data[src+ox]
						}
					}
				}
			}
		}
	}
	return out, nil
}

// ConvOutputSize returns the spatial output size of a convolution over an
// input of extent in with the given kernel extent, stride and padding.
func ConvOutputSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
