// Package geom provides the Manhattan layout geometry primitives used by the
// synthetic benchmark generator, the rasterizer and the lithography model:
// axis-aligned rectangles, rectilinear polygons decomposed into rectangles,
// and clips (fixed windows of layout).
//
// All coordinates are integers in nanometres, matching the resolution at
// which the paper's clips are defined (a clip is 1200×1200 nm²).
package geom

import (
	"fmt"
	"sort"
)

// Rect is an axis-aligned rectangle with inclusive lower-left (X0, Y0) and
// exclusive upper-right (X1, Y1) corners, in nanometres. A Rect is valid when
// X0 < X1 and Y0 < Y1; zero- and negative-extent rectangles are empty.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a Rect.
func R(x0, y0, x1, y1 int) Rect { return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// W returns the rectangle width (0 when empty).
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the rectangle height (0 when empty).
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Area returns the rectangle area in nm².
func (r Rect) Area() int64 { return int64(r.W()) * int64(r.H()) }

// Canon returns the canonical form of r with corners ordered; an empty
// rectangle canonicalizes to the zero Rect.
func (r Rect) Canon() Rect {
	if r.X0 > r.X1 {
		r.X0, r.X1 = r.X1, r.X0
	}
	if r.Y0 > r.Y1 {
		r.Y0, r.Y1 = r.Y1, r.Y0
	}
	if r.Empty() {
		return Rect{}
	}
	return r
}

// Intersect returns the intersection of r and o (empty if disjoint).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: max(r.X0, o.X0),
		Y0: max(r.Y0, o.Y0),
		X1: min(r.X1, o.X1),
		Y1: min(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and o share any area.
func (r Rect) Overlaps(o Rect) bool { return !r.Intersect(o).Empty() }

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	if o.Empty() {
		return true
	}
	return o.X0 >= r.X0 && o.X1 <= r.X1 && o.Y0 >= r.Y0 && o.Y1 <= r.Y1
}

// Union returns the bounding box of r and o.
func (r Rect) Union(o Rect) Rect {
	if r.Empty() {
		return o.Canon()
	}
	if o.Empty() {
		return r.Canon()
	}
	return Rect{
		X0: min(r.X0, o.X0),
		Y0: min(r.Y0, o.Y0),
		X1: max(r.X1, o.X1),
		Y1: max(r.Y1, o.Y1),
	}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// Inflate returns r grown by d on every side (shrunk when d < 0).
func (r Rect) Inflate(d int) Rect {
	out := Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// Clip is a fixed square window of layout: a bounding frame plus the
// rectangles of drawn (metal) geometry clipped to that frame. Clips are the
// unit of classification in the paper — each clip is either a hotspot or
// not.
type Clip struct {
	// Frame is the clip window in chip coordinates.
	Frame Rect
	// Rects is the drawn geometry, clipped to Frame.
	Rects []Rect
}

// NewClip builds a clip from a frame and raw geometry, intersecting every
// rectangle with the frame and dropping empties.
func NewClip(frame Rect, rects []Rect) Clip {
	c := Clip{Frame: frame}
	for _, r := range rects {
		ri := r.Canon().Intersect(frame)
		if !ri.Empty() {
			c.Rects = append(c.Rects, ri)
		}
	}
	return c
}

// Normalize returns a copy of the clip translated so its frame's lower-left
// corner is the origin. Classification features are translation-invariant,
// so normalized clips compare equal when their geometry matches.
func (c Clip) Normalize() Clip {
	dx, dy := -c.Frame.X0, -c.Frame.Y0
	out := Clip{Frame: c.Frame.Translate(dx, dy)}
	out.Rects = make([]Rect, len(c.Rects))
	for i, r := range c.Rects {
		out.Rects[i] = r.Translate(dx, dy)
	}
	return out
}

// DrawnArea returns the total drawn area in nm², counting overlapping
// rectangles once (union area).
func (c Clip) DrawnArea() int64 { return UnionArea(c.Rects) }

// Density returns the drawn-area fraction of the clip window in [0, 1].
func (c Clip) Density() float64 {
	fa := c.Frame.Area()
	if fa == 0 {
		return 0
	}
	return float64(c.DrawnArea()) / float64(fa)
}

// UnionArea computes the area of the union of a set of rectangles using a
// sweep over x with interval merging in y. O(n² log n) in the worst case,
// ample for clip-sized inputs.
func UnionArea(rects []Rect) int64 {
	xs := make([]int, 0, 2*len(rects))
	for _, r := range rects {
		if r.Empty() {
			continue
		}
		xs = append(xs, r.X0, r.X1)
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	xs = dedupInts(xs)
	var total int64
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		if x1 == x0 {
			continue
		}
		// Collect y intervals of rects spanning this x slab and merge.
		var ivs []Rect
		for _, r := range rects {
			if r.Empty() || r.X0 >= x1 || r.X1 <= x0 {
				continue
			}
			ivs = append(ivs, Rect{Y0: r.Y0, Y1: r.Y1})
		}
		if len(ivs) == 0 {
			continue
		}
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].Y0 < ivs[b].Y0 })
		covered := int64(0)
		curLo, curHi := ivs[0].Y0, ivs[0].Y1
		for _, iv := range ivs[1:] {
			if iv.Y0 > curHi {
				covered += int64(curHi - curLo)
				curLo, curHi = iv.Y0, iv.Y1
			} else if iv.Y1 > curHi {
				curHi = iv.Y1
			}
		}
		covered += int64(curHi - curLo)
		total += covered * int64(x1-x0)
	}
	return total
}

func dedupInts(xs []int) []int {
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// MergeTouching coalesces rectangles that align exactly along a shared edge
// into single rectangles, repeating until a fixed point. It keeps generated
// layouts compact; it is not a full rectilinear boolean engine.
func MergeTouching(rects []Rect) []Rect {
	out := append([]Rect(nil), rects...)
	for changed := true; changed; {
		changed = false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if m, ok := mergePair(out[i], out[j]); ok {
					out[i] = m
					out = append(out[:j], out[j+1:]...)
					changed = true
					break outer
				}
			}
		}
	}
	return out
}

func mergePair(a, b Rect) (Rect, bool) {
	if a.Y0 == b.Y0 && a.Y1 == b.Y1 && (a.X1 == b.X0 || b.X1 == a.X0) {
		return Rect{min(a.X0, b.X0), a.Y0, max(a.X1, b.X1), a.Y1}, true
	}
	if a.X0 == b.X0 && a.X1 == b.X1 && (a.Y1 == b.Y0 || b.Y1 == a.Y0) {
		return Rect{a.X0, min(a.Y0, b.Y0), a.X1, max(a.Y1, b.Y1)}, true
	}
	// Identical or contained rectangles collapse too.
	if a.ContainsRect(b) {
		return a, true
	}
	if b.ContainsRect(a) {
		return b, true
	}
	return Rect{}, false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
