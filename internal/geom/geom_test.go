package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 110, 70)
	if r.W() != 100 || r.H() != 50 {
		t.Fatalf("W/H = %d/%d", r.W(), r.H())
	}
	if r.Area() != 5000 {
		t.Fatalf("Area = %d", r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !R(5, 5, 5, 9).Empty() {
		t.Fatal("zero-width rect should be empty")
	}
	if R(3, 3, 1, 1).W() != 0 {
		t.Fatal("inverted rect should have zero width")
	}
}

func TestCanon(t *testing.T) {
	r := R(10, 8, 2, 4).Canon()
	if r != R(2, 4, 10, 8) {
		t.Fatalf("Canon = %v", r)
	}
	if R(5, 5, 5, 5).Canon() != (Rect{}) {
		t.Fatal("empty rect should canonicalize to zero value")
	}
}

func TestIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Fatal("Overlaps should be true")
	}
	c := R(20, 20, 30, 30)
	if a.Intersect(c) != (Rect{}) {
		t.Fatal("disjoint intersect should be zero rect")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint rects reported overlapping")
	}
	// Edge-touching rects do not overlap (half-open intervals).
	d := R(10, 0, 20, 10)
	if a.Overlaps(d) {
		t.Fatal("edge-touching rects should not overlap")
	}
}

func TestContains(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !r.Contains(0, 0) {
		t.Fatal("lower-left corner should be inside")
	}
	if r.Contains(10, 10) {
		t.Fatal("upper-right corner should be outside (half-open)")
	}
	if !r.ContainsRect(R(2, 2, 8, 8)) {
		t.Fatal("contained rect not detected")
	}
	if r.ContainsRect(R(5, 5, 11, 8)) {
		t.Fatal("overhanging rect reported contained")
	}
	if !r.ContainsRect(Rect{}) {
		t.Fatal("empty rect should be contained anywhere")
	}
}

func TestUnionTranslateInflate(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(10, 10, 12, 12)
	if a.Union(b) != R(0, 0, 12, 12) {
		t.Fatalf("Union = %v", a.Union(b))
	}
	if a.Union(Rect{}) != a {
		t.Fatal("union with empty should be identity")
	}
	if (Rect{}).Union(b) != b {
		t.Fatal("union of empty with b should be b")
	}
	if a.Translate(3, -2) != R(3, -2, 7, 2) {
		t.Fatalf("Translate = %v", a.Translate(3, -2))
	}
	if a.Inflate(1) != R(-1, -1, 5, 5) {
		t.Fatalf("Inflate = %v", a.Inflate(1))
	}
	if a.Inflate(-3) != (Rect{}) {
		t.Fatal("over-shrunk rect should be empty zero value")
	}
}

func TestUnionArea(t *testing.T) {
	cases := []struct {
		name  string
		rects []Rect
		want  int64
	}{
		{"empty", nil, 0},
		{"single", []Rect{R(0, 0, 10, 10)}, 100},
		{"disjoint", []Rect{R(0, 0, 10, 10), R(20, 0, 30, 10)}, 200},
		{"overlap", []Rect{R(0, 0, 10, 10), R(5, 0, 15, 10)}, 150},
		{"nested", []Rect{R(0, 0, 10, 10), R(2, 2, 4, 4)}, 100},
		{"identical", []Rect{R(0, 0, 5, 5), R(0, 0, 5, 5)}, 25},
		{"cross", []Rect{R(0, 4, 12, 8), R(4, 0, 8, 12)}, 12*4 + 4*12 - 16},
		{"with empties", []Rect{{}, R(0, 0, 3, 3), {}}, 9},
	}
	for _, c := range cases {
		if got := UnionArea(c.rects); got != c.want {
			t.Errorf("%s: UnionArea = %d, want %d", c.name, got, c.want)
		}
	}
}

// Property: union area is at most the sum of areas and at least the max area.
func TestUnionAreaBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		rects := make([]Rect, n)
		var sum, maxA int64
		for i := range rects {
			x, y := r.Intn(100), r.Intn(100)
			w, h := 1+r.Intn(40), 1+r.Intn(40)
			rects[i] = R(x, y, x+w, y+h)
			a := rects[i].Area()
			sum += a
			if a > maxA {
				maxA = a
			}
		}
		u := UnionArea(rects)
		return u <= sum && u >= maxA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: union area of disjoint translates is exactly additive.
func TestUnionAreaDisjointAdditive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		rects := make([]Rect, n)
		var sum int64
		for i := range rects {
			w, h := 1+r.Intn(20), 1+r.Intn(20)
			// Space each rect in its own 100-wide column: guaranteed disjoint.
			x := i * 100
			rects[i] = R(x, 0, x+w, h)
			sum += rects[i].Area()
		}
		return UnionArea(rects) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewClipClipsGeometry(t *testing.T) {
	frame := R(0, 0, 100, 100)
	c := NewClip(frame, []Rect{
		R(-50, 10, 50, 20),    // hangs off the left
		R(90, 90, 200, 200),   // hangs off the corner
		R(200, 200, 300, 300), // fully outside
		R(40, 12, 10, 2),      // needs canonicalization
	})
	if len(c.Rects) != 3 {
		t.Fatalf("clip kept %d rects, want 3", len(c.Rects))
	}
	for _, r := range c.Rects {
		if !frame.ContainsRect(r) {
			t.Fatalf("rect %v escapes frame", r)
		}
	}
}

func TestClipNormalize(t *testing.T) {
	c := NewClip(R(100, 200, 300, 400), []Rect{R(150, 250, 200, 300)})
	n := c.Normalize()
	if n.Frame != R(0, 0, 200, 200) {
		t.Fatalf("normalized frame = %v", n.Frame)
	}
	if n.Rects[0] != R(50, 50, 100, 100) {
		t.Fatalf("normalized rect = %v", n.Rects[0])
	}
	// Original untouched.
	if c.Rects[0] != R(150, 250, 200, 300) {
		t.Fatal("Normalize mutated the original clip")
	}
}

func TestClipDensity(t *testing.T) {
	c := NewClip(R(0, 0, 10, 10), []Rect{R(0, 0, 5, 10)})
	if c.Density() != 0.5 {
		t.Fatalf("Density = %v, want 0.5", c.Density())
	}
	// Overlapping geometry must not double-count.
	c2 := NewClip(R(0, 0, 10, 10), []Rect{R(0, 0, 5, 10), R(0, 0, 5, 10)})
	if c2.Density() != 0.5 {
		t.Fatalf("overlap Density = %v, want 0.5", c2.Density())
	}
	empty := Clip{}
	if empty.Density() != 0 {
		t.Fatal("empty clip density should be 0")
	}
}

func TestMergeTouching(t *testing.T) {
	// Two horizontally abutting rects merge into one.
	got := MergeTouching([]Rect{R(0, 0, 5, 10), R(5, 0, 10, 10)})
	if len(got) != 1 || got[0] != R(0, 0, 10, 10) {
		t.Fatalf("horizontal merge = %v", got)
	}
	// Vertical merge.
	got = MergeTouching([]Rect{R(0, 0, 10, 5), R(0, 5, 10, 10)})
	if len(got) != 1 || got[0] != R(0, 0, 10, 10) {
		t.Fatalf("vertical merge = %v", got)
	}
	// Contained rect collapses.
	got = MergeTouching([]Rect{R(0, 0, 10, 10), R(2, 2, 5, 5)})
	if len(got) != 1 || got[0] != R(0, 0, 10, 10) {
		t.Fatalf("containment merge = %v", got)
	}
	// Misaligned rects stay separate.
	got = MergeTouching([]Rect{R(0, 0, 5, 10), R(5, 1, 10, 11)})
	if len(got) != 2 {
		t.Fatalf("misaligned rects merged: %v", got)
	}
	// Chain of three merges to one.
	got = MergeTouching([]Rect{R(0, 0, 2, 4), R(2, 0, 5, 4), R(5, 0, 9, 4)})
	if len(got) != 1 || got[0] != R(0, 0, 9, 4) {
		t.Fatalf("chain merge = %v", got)
	}
}

// Property: MergeTouching preserves union area.
func TestMergeTouchingPreservesArea(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		rects := make([]Rect, n)
		for i := range rects {
			x, y := r.Intn(20), r.Intn(20)
			rects[i] = R(x, y, x+1+r.Intn(10), y+1+r.Intn(10))
		}
		return UnionArea(MergeTouching(rects)) == UnionArea(rects)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRectString(t *testing.T) {
	if R(1, 2, 3, 4).String() != "(1,2)-(3,4)" {
		t.Fatalf("String = %q", R(1, 2, 3, 4).String())
	}
}
