package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hotspot/internal/active"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/litho"
	"hotspot/internal/nn"
	"hotspot/internal/parallel"
	"hotspot/internal/train"
)

// ActiveCurveConfig parameterizes the accuracy-vs-label-budget experiment:
// the hybrid uncertainty + k-center strategy against the random-sampling
// baseline over one shared pool, at several labeling budgets.
type ActiveCurveConfig struct {
	// Style names the layout style of the shared pool (default ICCAD).
	Style string
	// Pool and Eval size the unlabeled pool and the held-out eval set
	// (defaults 60 and 40). Eval labels are free: only pool labeling is
	// charged against the budgets.
	Pool, Eval int
	// Batch is the per-round selection size (default 8).
	Batch int
	// Budgets lists the labeling budgets (simulated ODST seconds) swept,
	// ascending (default 100, 200, 400 — 10, 20 and 40 labels at the
	// paper's 10 s/clip).
	Budgets []float64
	// Iters is the per-round fine-tune MGD iteration budget (default 200).
	Iters int
	// Seed drives pool generation, selection tie-breaking and fine-tune
	// sampling; both strategies share it.
	Seed int64
	// Workers bounds generation, scoring, selection and tuning goroutines
	// (0 = parallel.Default()); the curve is identical for any value.
	Workers int
}

func (c ActiveCurveConfig) normalize() ActiveCurveConfig {
	if c.Style == "" {
		c.Style = "ICCAD"
	}
	if c.Pool <= 0 {
		c.Pool = 60
	}
	if c.Eval <= 0 {
		c.Eval = 40
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []float64{100, 200, 400}
	}
	if c.Iters <= 0 {
		c.Iters = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ActivePoint is one budget level of the curve: the metrics both
// strategies reach when the budget runs dry, at equal label spend.
type ActivePoint struct {
	// BudgetSeconds is the labeling budget of this point.
	BudgetSeconds float64
	// Labels is the number of clips either strategy could afford.
	Labels int
	// Active and Random are the held-out metrics of the hybrid strategy
	// and the random baseline at this budget.
	Active train.Metrics
	Random train.Metrics
}

// ActiveResult is the full accuracy-vs-label-budget sweep.
type ActiveResult struct {
	Style      string
	Pool, Eval int
	Batch      int
	Points     []ActivePoint
}

// ActiveCurve runs the sweep: one shared pool and eval set, pre-labeled
// once through the litho oracle, then per (strategy, budget) a fresh
// detector driven by the active loop until the budget is exhausted. Both
// strategies see identical pools, seeds and fine-tune schedules, so every
// difference in the curve is the selection policy.
func ActiveCurve(cfg ActiveCurveConfig) (*ActiveResult, string, error) {
	cfg = cfg.normalize()
	style, err := layout.StyleByName(cfg.Style)
	if err != nil {
		return nil, "", err
	}
	fcfg := feature.DefaultTensorConfig()

	// Generate pool and eval clips from disjoint index-keyed streams and
	// label everything once up front — the loop's labeler then reads the
	// cached truth, so the sweep charges litho once per clip, not once per
	// (strategy, budget) run.
	clips := make([]geom.Clip, cfg.Pool+cfg.Eval)
	for i := range clips {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9e3779b9))
		clips[i] = layout.Generate(style, rng)
	}
	labeler, err := layout.NewLabeler(style, litho.DefaultConfig())
	if err != nil {
		return nil, "", err
	}
	truth, err := parallel.Map(parallel.New(cfg.Workers), len(clips), func(_, i int) (bool, error) {
		rep, err := labeler.Label(clips[i])
		if err != nil {
			return false, err
		}
		return rep.Hotspot, nil
	})
	if err != nil {
		return nil, "", err
	}
	core := style.CoreRect()
	pool, err := active.NewPool(clips[:cfg.Pool], core, fcfg, cfg.Workers)
	if err != nil {
		return nil, "", err
	}
	evalT, err := feature.ExtractTensors(clips[cfg.Pool:], core, fcfg, cfg.Workers)
	if err != nil {
		return nil, "", err
	}
	evalSet := make([]train.Sample, cfg.Eval)
	for i := range evalSet {
		evalSet[i] = train.Sample{X: evalT[i], Hotspot: truth[cfg.Pool+i]}
	}

	res := &ActiveResult{Style: style.Name, Pool: cfg.Pool, Eval: cfg.Eval, Batch: cfg.Batch}
	for _, budget := range cfg.Budgets {
		point := ActivePoint{BudgetSeconds: budget}
		point.Labels = int(budget / litho.DefaultLabelCost())
		for _, strategy := range []string{active.StrategyHybrid, active.StrategyRandom} {
			m, err := runActiveArm(cfg, fcfg, pool, truth, evalSet, strategy, budget)
			if err != nil {
				return nil, "", err
			}
			if strategy == active.StrategyHybrid {
				point.Active = m
			} else {
				point.Random = m
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, FormatActiveCurve(res), nil
}

// runActiveArm drives one (strategy, budget) loop on a fresh detector and
// returns the held-out metrics at budget exhaustion.
func runActiveArm(cfg ActiveCurveConfig, fcfg feature.TensorConfig, pool *active.Pool, truth []bool, evalSet []train.Sample, strategy string, budget float64) (train.Metrics, error) {
	ncfg := nn.DefaultPaperNetConfig()
	ncfg.InChannels = fcfg.K
	ncfg.SpatialSize = fcfg.Blocks
	ncfg.Seed = cfg.Seed + 32
	net, err := nn.NewPaperNet(ncfg)
	if err != nil {
		return train.Metrics{}, err
	}
	tune := active.DefaultTune()
	tune.Initial.MaxIters = cfg.Iters
	tune.Initial.DecayStep = maxInt(1, cfg.Iters/2)
	cost := litho.DefaultLabelCost()
	// Enough rounds to drain the budget even when late batches truncate.
	rounds := int(math.Ceil(budget/(cost*float64(cfg.Batch)))) + 1
	loop, err := active.NewLoop(active.Config{
		Rounds:        rounds,
		Batch:         cfg.Batch,
		Strategy:      strategy,
		BudgetSeconds: budget,
		Seed:          cfg.Seed,
		Workers:       cfg.Workers,
		Tune:          tune,
	}, net, pool, func(i int, _ geom.Clip) (bool, error) {
		return truth[i], nil
	}, evalSet)
	if err != nil {
		return train.Metrics{}, err
	}
	reports, err := loop.Run()
	if err != nil {
		return train.Metrics{}, err
	}
	// The last round that labeled anything carries the final metrics (a
	// truncated round that labeled zero clips never tuned or evaluated).
	var m train.Metrics
	for _, rep := range reports {
		if rep.Labeled > 0 {
			m = rep.Eval
		}
	}
	return m, nil
}

// FormatActiveCurve renders the sweep as the EXPERIMENTS.md table.
func FormatActiveCurve(r *ActiveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy vs label budget — %s, pool %d, eval %d, batch %d\n",
		r.Style, r.Pool, r.Eval, r.Batch)
	fmt.Fprintf(&b, "%-10s  %-7s  %-17s  %-17s\n", "budget(s)", "labels", "active acc/recall", "random acc/recall")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10.0f  %-7d  %6.1f%% / %5.1f%%  %6.1f%% / %5.1f%%\n",
			p.BudgetSeconds, p.Labels,
			100*p.Active.Accuracy, 100*p.Active.Recall,
			100*p.Random.Accuracy, 100*p.Random.Recall)
	}
	return b.String()
}
