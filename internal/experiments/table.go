package experiments

import (
	"fmt"
	"strings"

	"hotspot/internal/baseline"
	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/eval"
	"hotspot/internal/nn"
)

// Table1 renders the network configuration table (paper Table 1) computed
// from the live architecture, plus Figure 2's stage structure.
func Table1() (string, error) {
	cfg := nn.DefaultPaperNetConfig()
	net, err := nn.NewPaperNet(cfg)
	if err != nil {
		return "", err
	}
	summary, err := net.Summary([]int{cfg.InChannels, cfg.SpatialSize, cfg.SpatialSize})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Table 1: Neural Network Configuration\n")
	fmt.Fprintf(&b, "input: feature tensor %dx%dx%d (n=%d, k=%d)\n\n",
		cfg.SpatialSize, cfg.SpatialSize, cfg.InChannels, cfg.SpatialSize, cfg.InChannels)
	b.WriteString(summary)
	return b.String(), nil
}

// Table2Row is one benchmark's comparison across the three detectors.
type Table2Row struct {
	Bench                              string
	TrainHS, TrainNHS, TestHS, TestNHS int
	SPIE15                             eval.Result
	ICCAD16                            eval.Result
	Ours                               eval.Result
}

// Table2 runs the full detector comparison (paper Table 2) over the given
// benchmarks (nil = all four).
func Table2(benches []string, opts Options) ([]Table2Row, error) {
	if benches == nil {
		benches = Benchmarks()
	}
	rows := make([]Table2Row, 0, len(benches))
	for _, name := range benches {
		row, err := table2One(name, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func table2One(name string, opts Options) (Table2Row, error) {
	ds, err := LoadSuite(name, opts)
	if err != nil {
		return Table2Row{}, err
	}
	var row Table2Row
	row.Bench = ds.Name
	row.TrainHS, row.TrainNHS = dataset.Stats(ds.Train)
	row.TestHS, row.TestNHS = dataset.Stats(ds.Test)

	cor := ds.Core()
	sp, err := baseline.TrainSPIE15(ds.Train, cor, baseline.DefaultSPIE15Config())
	if err != nil {
		return Table2Row{}, err
	}
	row.SPIE15, err = sp.Evaluate(ds.Test, ds.Name)
	if err != nil {
		return Table2Row{}, err
	}

	ic, err := baseline.TrainICCAD16(ds.Train, cor, baseline.DefaultICCAD16Config())
	if err != nil {
		return Table2Row{}, err
	}
	row.ICCAD16, err = ic.Evaluate(ds.Test, ds.Name)
	if err != nil {
		return Table2Row{}, err
	}

	det, err := core.NewDetector(DetectorConfig(opts))
	if err != nil {
		return Table2Row{}, err
	}
	if _, err := det.Train(ds.Train, cor); err != nil {
		return Table2Row{}, err
	}
	row.Ours, err = det.Evaluate(ds.Test, cor, ds.Name)
	if err != nil {
		return Table2Row{}, err
	}
	return row, nil
}

// FormatTable2 renders rows in the paper's layout, with an Average row.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Performance Comparisons (reproduced)\n")
	fmt.Fprintf(&b, "%-10s %7s %8s %7s %8s | %28s | %28s | %28s\n",
		"Bench", "TrHS#", "TrNHS#", "TeHS#", "TeNHS#",
		"SPIE'15 [4]", "ICCAD'16 [5]", "Ours")
	fmt.Fprintf(&b, "%-10s %7s %8s %7s %8s | %6s %6s %7s %6s | %6s %6s %7s %6s | %6s %6s %7s %6s\n",
		"", "", "", "", "",
		"FA#", "CPU", "ODST", "Accu", "FA#", "CPU", "ODST", "Accu", "FA#", "CPU", "ODST", "Accu")
	var sums [3]struct {
		fa   int
		cpu  float64
		odst float64
		acc  float64
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7d %8d %7d %8d | %s | %s | %s\n",
			r.Bench, r.TrainHS, r.TrainNHS, r.TestHS, r.TestNHS,
			cell(r.SPIE15), cell(r.ICCAD16), cell(r.Ours))
		for i, res := range []eval.Result{r.SPIE15, r.ICCAD16, r.Ours} {
			sums[i].fa += res.FalseAlarms
			sums[i].cpu += res.CPU.Seconds()
			sums[i].odst += res.ODST
			sums[i].acc += res.Accuracy
		}
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-10s %7s %8s %7s %8s", "Average", "-", "-", "-", "-")
		for i := range sums {
			fmt.Fprintf(&b, " | %6d %6.1f %7.0f %5.1f%%",
				int(float64(sums[i].fa)/n), sums[i].cpu/n, sums[i].odst/n, 100*sums[i].acc/n)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func cell(r eval.Result) string {
	return fmt.Sprintf("%6d %6.1f %7.0f %5.1f%%",
		r.FalseAlarms, r.CPU.Seconds(), r.ODST, 100*r.Accuracy)
}
