package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"hotspot/internal/feature"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/raster"
	"hotspot/internal/train"
)

// Fig1Result summarizes the feature tensor generation walk-through.
type Fig1Result struct {
	ClipNM        int
	Blocks        int
	K             int
	BlockCoeffs   int
	Compression   float64
	RelL2Error    float64
	EnergyKeptPct float64
}

// Fig1 reproduces Figure 1: generate a representative clip, encode it into
// a feature tensor, decode it back and measure the information kept.
func Fig1(opts Options) (Fig1Result, string, error) {
	opts = opts.normalize()
	style := layout.StyleICCAD()
	rng := rand.New(rand.NewSource(opts.Seed))
	clip := layout.Generate(style, rng)
	cor := style.CoreRect()

	cfg := feature.TensorConfig{Blocks: 12, K: 32, ResNM: 4}
	ft, err := feature.ExtractTensor(clip, cor, cfg)
	if err != nil {
		return Fig1Result{}, "", err
	}
	im, err := raster.Rasterize(clip, cfg.ResNM)
	if err != nil {
		return Fig1Result{}, "", err
	}
	x0 := cor.X0 / cfg.ResNM
	side := cor.W() / cfg.ResNM
	coreIm, err := im.SubImage(x0, x0, x0+side, x0+side)
	if err != nil {
		return Fig1Result{}, "", err
	}
	blockPx := coreIm.W / cfg.Blocks
	rec, err := feature.DecodeTensor(ft, blockPx, false)
	if err != nil {
		return Fig1Result{}, "", err
	}
	var errE, sigE float64
	for i := range coreIm.Pix {
		d := rec.Pix[i] - coreIm.Pix[i]
		errE += d * d
		sigE += coreIm.Pix[i] * coreIm.Pix[i]
	}
	res := Fig1Result{
		ClipNM:        cor.W(),
		Blocks:        cfg.Blocks,
		K:             cfg.K,
		BlockCoeffs:   blockPx * blockPx,
		Compression:   float64(coreIm.W*coreIm.H) / float64(ft.Len()),
		RelL2Error:    math.Sqrt(errE / sigE),
		EnergyKeptPct: 100 * (1 - errE/sigE),
	}
	var b strings.Builder
	b.WriteString("Figure 1: Feature Tensor Generation (reproduced)\n")
	fmt.Fprintf(&b, "clip %d nm -> %dx%d blocks, k=%d of %d coefficients per block\n",
		res.ClipNM, res.Blocks, res.Blocks, res.K, res.BlockCoeffs)
	fmt.Fprintf(&b, "compression %.1fx, reconstruction rel. L2 error %.1f%% (energy kept %.1f%%)\n",
		res.Compression, 100*res.RelL2Error, res.EnergyKeptPct)
	return res, b.String(), nil
}

// Fig2 renders the CNN structure (paper Figure 2): the layer stack with
// stage grouping.
func Fig2() (string, error) {
	cfg := nn.DefaultPaperNetConfig()
	net, err := nn.NewPaperNet(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 2: CNN structure (reproduced)\n")
	b.WriteString("feature tensor -> [conv stage 1] -> [conv stage 2] -> FC-250 -> FC-2 -> softmax\n")
	shape := []int{cfg.InChannels, cfg.SpatialSize, cfg.SpatialSize}
	for _, l := range net.Layers() {
		shape, err = l.OutputShape(shape)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %-12s -> %v\n", l.Name(), shape)
	}
	return b.String(), nil
}

// Fig3Result carries the two training curves (validation accuracy vs
// elapsed seconds) of the SGD vs MGD comparison.
type Fig3Result struct {
	SGD train.History
	MGD train.History
}

// Fig3 reproduces Figure 3 on the ICCAD suite: the same network trained
// with SGD (batch 1) and MGD (minibatch), with the paper's 10× rate ratio
// (averaged minibatch gradients are smaller than single-instance
// gradients). The paper's x-axis is wall-clock on a GPU, where one MGD
// minibatch update costs the same as one SGD update because the batch runs
// in parallel; on one CPU core that equivalence is modelled by giving both
// optimizers the same number of parameter updates and plotting accuracy
// per update.
func Fig3(opts Options) (Fig3Result, string, error) {
	opts = opts.normalize()
	ds, err := LoadSuite("ICCAD", opts)
	if err != nil {
		return Fig3Result{}, "", err
	}
	cfg := DetectorConfig(opts)
	trainT, _, err := TensorSets(ds, cfg)
	if err != nil {
		return Fig3Result{}, "", err
	}
	trainSet, valSet, err := train.Split(trainT, cfg.ValFraction, cfg.Seed)
	if err != nil {
		return Fig3Result{}, "", err
	}

	base := cfg.Biased.Initial
	base.Patience = 0 // run the full budget so the curves are comparable

	mgdCfg := base
	sgdCfg := base
	sgdCfg.BatchSize = 1
	sgdCfg.LearningRate = base.LearningRate / 10

	netM, err := nn.NewPaperNet(cfg.Net)
	if err != nil {
		return Fig3Result{}, "", err
	}
	mgdHist, err := train.MGD(netM, trainSet, valSet, mgdCfg)
	if err != nil {
		return Fig3Result{}, "", err
	}
	netS, err := nn.NewPaperNet(cfg.Net)
	if err != nil {
		return Fig3Result{}, "", err
	}
	sgdHist, err := train.MGD(netS, trainSet, valSet, sgdCfg)
	if err != nil {
		return Fig3Result{}, "", err
	}
	res := Fig3Result{SGD: sgdHist, MGD: mgdHist}
	return res, FormatFig3(res), nil
}

// FormatFig3 renders the two curves as an aligned series (parameter
// updates, validation accuracy), the data behind the paper's Figure 3
// plot. Updates stand in for GPU wall-clock: on parallel hardware one
// minibatch update and one single-sample update take the same time.
func FormatFig3(r Fig3Result) string {
	var b strings.Builder
	b.WriteString("Figure 3: SGD vs MGD, validation accuracy per parameter update (reproduced;\n")
	b.WriteString("updates model GPU wall-clock: a parallel minibatch update costs one SGD update)\n")
	b.WriteString("series: MGD\n")
	for _, cp := range r.MGD {
		fmt.Fprintf(&b, "  update %5d  acc=%5.1f%%\n", cp.Iter, 100*cp.ValAccuracy)
	}
	b.WriteString("series: SGD\n")
	for _, cp := range r.SGD {
		fmt.Fprintf(&b, "  update %5d  acc=%5.1f%%\n", cp.Iter, 100*cp.ValAccuracy)
	}
	mgdT, sgdT := updatesToSustained(r.MGD, 0.85), updatesToSustained(r.SGD, 0.85)
	fmt.Fprintf(&b, "updates to sustained 85%% validation accuracy: MGD %s, SGD %s\n",
		fmtReach(mgdT), fmtReach(sgdT))
	return b.String()
}

// updatesToSustained returns the earliest checkpoint from which validation
// accuracy never again drops below target — robust against single lucky
// spikes on noisy single-sample (SGD) curves.
func updatesToSustained(h train.History, target float64) int {
	best := -1
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].ValAccuracy >= target {
			best = h[i].Iter
		} else {
			break
		}
	}
	return best
}

func fmtReach(n int) string {
	if n < 0 {
		return "not reached"
	}
	return fmt.Sprintf("%d", n)
}

// Fig4Point is one (accuracy, false alarm) operating point.
type Fig4Point struct {
	Label    string
	Accuracy float64
	FA       int
}

// Fig4Result carries the biased-learning and boundary-shifting trade-off
// curves on the test set.
type Fig4Result struct {
	Bias  []Fig4Point
	Shift []Fig4Point
}

// Fig4 reproduces Figure 4 on Industry3: train the initial model (ε=0),
// fine-tune with ε = 0.1, 0.2, 0.3 (biased learning), and match each
// fine-tuned model's test accuracy by shifting the initial model's decision
// boundary; biased learning should reach the same accuracy with fewer
// false alarms.
func Fig4(opts Options) (Fig4Result, string, error) {
	opts = opts.normalize()
	ds, err := LoadSuite("Industry3", opts)
	if err != nil {
		return Fig4Result{}, "", err
	}
	cfg := DetectorConfig(opts)
	trainT, testT, err := TensorSets(ds, cfg)
	if err != nil {
		return Fig4Result{}, "", err
	}
	trainSet, valSet, err := train.Split(trainT, cfg.ValFraction, cfg.Seed)
	if err != nil {
		return Fig4Result{}, "", err
	}

	// Initial model (ε = 0).
	net, err := nn.NewPaperNet(cfg.Net)
	if err != nil {
		return Fig4Result{}, "", err
	}
	initCfg := cfg.Biased.Initial
	if _, err := train.MGD(net, trainSet, valSet, initCfg); err != nil {
		return Fig4Result{}, "", err
	}
	initial, err := net.Clone()
	if err != nil {
		return Fig4Result{}, "", err
	}

	var res Fig4Result
	m0, err := train.EvalSet(net, testT, 0)
	if err != nil {
		return Fig4Result{}, "", err
	}
	res.Bias = append(res.Bias, Fig4Point{Label: "ε=0.0", Accuracy: m0.Recall, FA: m0.FalseAlarms})
	res.Shift = append(res.Shift, Fig4Point{Label: "λ=0.00", Accuracy: m0.Recall, FA: m0.FalseAlarms})

	// Biased fine-tuning rounds.
	fineCfg := cfg.Biased.FineTune
	for i, eps := range []float64{0.1, 0.2, 0.3} {
		fineCfg.Eps = eps
		fineCfg.Seed = cfg.Biased.FineTune.Seed + int64(i)
		if _, err := train.MGD(net, trainSet, valSet, fineCfg); err != nil {
			return Fig4Result{}, "", err
		}
		m, err := train.EvalSet(net, testT, 0)
		if err != nil {
			return Fig4Result{}, "", err
		}
		res.Bias = append(res.Bias, Fig4Point{
			Label: fmt.Sprintf("ε=%.1f", eps), Accuracy: m.Recall, FA: m.FalseAlarms,
		})
	}

	// Boundary shifting on the initial model, matched to each biased
	// round's accuracy.
	grid := make([]float64, 0, 100)
	for s := 0.0; s < 0.5; s += 0.005 {
		grid = append(grid, s)
	}
	for _, bp := range res.Bias[1:] {
		shift, m, _, err := train.MatchShiftToRecall(initial, testT, bp.Accuracy, grid)
		if err != nil {
			return Fig4Result{}, "", err
		}
		res.Shift = append(res.Shift, Fig4Point{
			Label: fmt.Sprintf("λ=%.2f", shift), Accuracy: m.Recall, FA: m.FalseAlarms,
		})
	}
	return res, FormatFig4(res), nil
}

// FormatFig4 renders the trade-off table behind the paper's Figure 4.
func FormatFig4(r Fig4Result) string {
	var b strings.Builder
	b.WriteString("Figure 4: biased learning vs boundary shifting, Industry3 test set (reproduced)\n")
	b.WriteString("biased learning:\n")
	for _, p := range r.Bias {
		fmt.Fprintf(&b, "  %-8s accuracy=%5.1f%%  FA=%d\n", p.Label, 100*p.Accuracy, p.FA)
	}
	b.WriteString("boundary shifting (matched accuracy):\n")
	for _, p := range r.Shift {
		fmt.Fprintf(&b, "  %-8s accuracy=%5.1f%%  FA=%d\n", p.Label, 100*p.Accuracy, p.FA)
	}
	if n := len(r.Bias); n > 1 && len(r.Shift) == n {
		saved := 0
		for i := 1; i < n; i++ {
			saved += r.Shift[i].FA - r.Bias[i].FA
		}
		fmt.Fprintf(&b, "false alarms saved by biased learning across matched points: %d (ODST saving ≈ %.0f s)\n",
			saved, 10.0*float64(saved))
	}
	return b.String()
}
