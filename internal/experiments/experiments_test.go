package experiments

import (
	"strings"
	"testing"
)

func TestTable1Renders(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conv1-1", "conv2-2", "maxpooling1", "fc1", "fc2", "12x12x32"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

func TestFig2Renders(t *testing.T) {
	s, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conv stage 1", "FC-250", "[16 12 12]", "[32 3 3]", "[2]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Fig2 output missing %q:\n%s", want, s)
		}
	}
}

func TestFig1SmallScale(t *testing.T) {
	res, s, err := Fig1(Options{Scale: 0.004, Seed: 3, Iters: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compression < 10 {
		t.Fatalf("compression %.1f too low", res.Compression)
	}
	if res.RelL2Error > 0.6 {
		t.Fatalf("reconstruction error %.2f too high", res.RelL2Error)
	}
	if !strings.Contains(s, "Figure 1") {
		t.Fatal("missing header")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	d := DefaultOptions()
	if o.Scale != d.Scale || o.Seed != d.Seed || o.Iters != d.Iters {
		t.Fatalf("normalize: %+v", o)
	}
	keep := Options{Scale: 0.5, Seed: 9, Iters: 10}.normalize()
	if keep.Scale != 0.5 || keep.Seed != 9 || keep.Iters != 10 {
		t.Fatal("normalize clobbered explicit values")
	}
}

func TestDetectorConfigDerivation(t *testing.T) {
	cfg := DetectorConfig(Options{Iters: 1200, Seed: 5})
	if cfg.Biased.Initial.MaxIters != 1200 {
		t.Fatalf("iters = %d", cfg.Biased.Initial.MaxIters)
	}
	if cfg.Biased.Initial.ValEvery <= 0 || cfg.Biased.Initial.DecayStep <= 0 {
		t.Fatal("derived schedule invalid")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("derived config invalid: %v", err)
	}
	if cfg.Biased.FineTune.MaxIters >= cfg.Biased.Initial.MaxIters {
		t.Fatal("fine-tune rounds should be shorter than the initial round")
	}
}

func TestLoadSuiteCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation is slow")
	}
	dir := t.TempDir()
	opts := Options{Scale: 0.0002, Seed: 11, CacheDir: dir, Iters: 100}
	a, err := LoadSuite("ICCAD", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Second load must come from cache and be identical.
	b, err := LoadSuite("ICCAD", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Train) != len(b.Train) || len(a.Test) != len(b.Test) {
		t.Fatal("cache roundtrip changed the suite")
	}
	for i := range a.Train {
		if a.Train[i].Hotspot != b.Train[i].Hotspot {
			t.Fatal("cache roundtrip changed labels")
		}
	}
	if _, err := LoadSuite("nope", opts); err == nil {
		t.Fatal("expected unknown-benchmark error")
	}
}

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 4 || b[0] != "ICCAD" || b[3] != "Industry3" {
		t.Fatalf("benchmarks = %v", b)
	}
}

func TestFormatFig4Savings(t *testing.T) {
	r := Fig4Result{
		Bias: []Fig4Point{
			{Label: "ε=0.0", Accuracy: 0.80, FA: 100},
			{Label: "ε=0.1", Accuracy: 0.85, FA: 120},
		},
		Shift: []Fig4Point{
			{Label: "λ=0.00", Accuracy: 0.80, FA: 100},
			{Label: "λ=0.10", Accuracy: 0.85, FA: 200},
		},
	}
	s := FormatFig4(r)
	if !strings.Contains(s, "false alarms saved by biased learning across matched points: 80") {
		t.Fatalf("savings line wrong:\n%s", s)
	}
}

func TestFormatFig3ReachLine(t *testing.T) {
	s := FormatFig3(Fig3Result{})
	if !strings.Contains(s, "not reached") {
		t.Fatalf("empty histories should render 'not reached':\n%s", s)
	}
}

func TestTable2EndToEndTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment is slow")
	}
	opts := Options{Scale: 0.001, Seed: 21, CacheDir: t.TempDir(), Iters: 150}
	rows, err := Table2([]string{"ICCAD"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.TrainHS < 2 || r.TestHS < 2 {
		t.Fatalf("suite composition degenerate: %+v", r)
	}
	for _, res := range []struct {
		name string
		acc  float64
		fa   int
	}{
		{"SPIE15", r.SPIE15.Accuracy, r.SPIE15.FalseAlarms},
		{"ICCAD16", r.ICCAD16.Accuracy, r.ICCAD16.FalseAlarms},
		{"Ours", r.Ours.Accuracy, r.Ours.FalseAlarms},
	} {
		if res.acc < 0 || res.acc > 1 {
			t.Fatalf("%s accuracy %v out of range", res.name, res.acc)
		}
		if res.fa < 0 || res.fa > r.TestNHS {
			t.Fatalf("%s FA %d out of range", res.name, res.fa)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "ICCAD") || !strings.Contains(out, "Average") {
		t.Fatalf("format missing fields:\n%s", out)
	}
}
