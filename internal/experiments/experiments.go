// Package experiments reproduces every table and figure of the paper's
// evaluation section on the synthetic benchmark suites: Table 1 (network
// configuration), Table 2 (detector comparison), Figure 1 (feature tensor
// generation), Figure 2 (CNN structure), Figure 3 (SGD vs MGD) and
// Figure 4 (biased learning vs boundary shifting). cmd/hsd-bench and the
// repository-level benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/layout"
	"hotspot/internal/train"
)

// Options control experiment scale and caching.
type Options struct {
	// Scale multiplies the paper's Table 2 sample counts (1.0 = full
	// paper size; the default harness runs at a laptop-friendly scale).
	Scale float64
	// Seed drives suite generation and training.
	Seed int64
	// CacheDir, when non-empty, caches generated suites as gob files so
	// lithography labelling runs once per (benchmark, scale, seed).
	CacheDir string
	// Iters is the initial-round MGD iteration budget (scaled schedules
	// derive from it).
	Iters int
	// Workers bounds the goroutines used for suite generation, feature
	// extraction, training and evaluation (0 = parallel.Default()).
	// Results are identical under any worker count.
	Workers int
}

// DefaultOptions returns the scale used by the checked-in harness: class
// ratios and suite proportions match Table 2, sizes are ~1% of the paper's.
func DefaultOptions() Options {
	return Options{Scale: 0.01, Seed: 1, Iters: 2400}
}

// normalize fills zero fields with defaults.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Iters <= 0 {
		o.Iters = d.Iters
	}
	return o
}

// LoadSuite returns the named benchmark at the requested scale, generating
// it (and caching it when Options.CacheDir is set).
func LoadSuite(name string, opts Options) (*dataset.Dataset, error) {
	opts = opts.normalize()
	style, err := layout.StyleByName(name)
	if err != nil {
		return nil, err
	}
	counts, err := layout.PaperCounts(name)
	if err != nil {
		return nil, err
	}
	scaled := counts.Scale(opts.Scale)

	var cachePath string
	if opts.CacheDir != "" {
		cachePath = filepath.Join(opts.CacheDir,
			fmt.Sprintf("%s_s%g_seed%d.gob", style.Name, opts.Scale, opts.Seed))
		if f, err := os.Open(cachePath); err == nil {
			ds, derr := dataset.Load(f)
			if cerr := f.Close(); derr == nil {
				derr = cerr
			}
			if derr == nil {
				return ds, nil
			}
			// Corrupt cache: fall through and regenerate.
		}
	}

	suite, err := layout.BuildSuite(style, scaled, layout.BuildOptions{Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	ds := dataset.FromSuite(suite, style)
	if cachePath != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, err
		}
		f, err := os.Create(cachePath)
		if err != nil {
			return nil, err
		}
		// Close errors on a file being written are data loss; check them
		// instead of deferring the Close into the void.
		if err := ds.Save(f); err != nil {
			_ = f.Close() // Save already failed; its error wins
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// DetectorConfig returns the training configuration used by all
// experiments at the given iteration budget.
func DetectorConfig(opts Options) core.Config {
	opts = opts.normalize()
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed + 16
	cfg.Net.Seed = opts.Seed + 32
	initial := &cfg.Biased.Initial
	initial.MaxIters = opts.Iters
	initial.ValEvery = maxInt(50, opts.Iters/12)
	initial.DecayStep = maxInt(100, opts.Iters/3)
	initial.Seed = opts.Seed + 64
	fine := &cfg.Biased.FineTune
	fine.MaxIters = maxInt(100, opts.Iters/5)
	fine.ValEvery = maxInt(25, fine.MaxIters/6)
	fine.DecayStep = maxInt(50, fine.MaxIters/2)
	fine.Seed = opts.Seed + 128
	cfg.Workers = opts.Workers
	return cfg
}

// TensorSets extracts feature tensors for a suite's train and test halves.
func TensorSets(ds *dataset.Dataset, cfg core.Config) (trainT, testT []train.Sample, err error) {
	trainT, err = dataset.TensorSamples(ds.Train, ds.Core(), cfg.Feature, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	testT, err = dataset.TensorSamples(ds.Test, ds.Core(), cfg.Feature, cfg.Workers)
	if err != nil {
		return nil, nil, err
	}
	return trainT, testT, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Benchmarks lists the Table 2 benchmark names in paper order.
func Benchmarks() []string {
	return []string{"ICCAD", "Industry1", "Industry2", "Industry3"}
}
