package experiments

import (
	"strings"
	"testing"
)

// TestActiveCurveSmall runs a miniature accuracy-vs-budget sweep and
// checks the structural contract: one point per budget, label counts
// matching budget/cost, and a renderable table.
func TestActiveCurveSmall(t *testing.T) {
	res, table, err := ActiveCurve(ActiveCurveConfig{
		Pool:    16,
		Eval:    8,
		Batch:   3,
		Budgets: []float64{30, 60},
		Iters:   40,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if res.Points[0].Labels != 3 || res.Points[1].Labels != 6 {
		t.Fatalf("label counts %d/%d, want 3/6 (budget ÷ 10 s)",
			res.Points[0].Labels, res.Points[1].Labels)
	}
	for _, want := range []string{"accuracy vs label budget", "active acc/recall", "random acc/recall"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}
