// Package fft provides a radix-2 complex fast Fourier transform, 2-D
// transforms, and FFT-based 2-D convolution. The lithography model uses it
// for arbitrary (non-separable) optical kernels; the separable Gaussian fast
// path in internal/litho does not need it.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// FFT computes the in-place forward DFT of x, whose length must be a power
// of two: X[k] = sum_j x[j] * exp(-2πi jk/n).
func FFT(x []complex128) error { return transform(x, false) }

// IFFT computes the in-place inverse DFT of x (including the 1/n scaling).
func IFFT(x []complex128) error { return transform(x, true) }

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// FFT2D computes the forward 2-D DFT of an h×w row-major grid in place.
// Both h and w must be powers of two.
func FFT2D(x []complex128, h, w int) error { return transform2D(x, h, w, false) }

// IFFT2D computes the inverse 2-D DFT in place.
func IFFT2D(x []complex128, h, w int) error { return transform2D(x, h, w, true) }

func transform2D(x []complex128, h, w int, inverse bool) error {
	if len(x) != h*w {
		return fmt.Errorf("fft: grid length %d does not match %dx%d", len(x), h, w)
	}
	if !IsPow2(h) || !IsPow2(w) {
		return fmt.Errorf("fft: grid dimensions %dx%d must be powers of two", h, w)
	}
	// Rows.
	for y := 0; y < h; y++ {
		if err := transform(x[y*w:(y+1)*w], inverse); err != nil {
			return err
		}
	}
	// Columns via a scratch buffer.
	col := make([]complex128, h)
	for cx := 0; cx < w; cx++ {
		for y := 0; y < h; y++ {
			col[y] = x[y*w+cx]
		}
		if err := transform(col, inverse); err != nil {
			return err
		}
		for y := 0; y < h; y++ {
			x[y*w+cx] = col[y]
		}
	}
	return nil
}

// Convolve2D computes the full linear 2-D convolution of a (ah×aw) with
// b (bh×bw), returning an (ah+bh-1)×(aw+bw-1) grid. Inputs are real; the
// transform runs on zero-padded power-of-two grids.
func Convolve2D(a []float64, ah, aw int, b []float64, bh, bw int) ([]float64, int, int, error) {
	if len(a) != ah*aw || len(b) != bh*bw {
		return nil, 0, 0, fmt.Errorf("fft: convolve operand size mismatch")
	}
	if ah <= 0 || aw <= 0 || bh <= 0 || bw <= 0 {
		return nil, 0, 0, fmt.Errorf("fft: convolve operands must be non-empty")
	}
	oh, ow := ah+bh-1, aw+bw-1
	ph, pw := NextPow2(oh), NextPow2(ow)
	fa := make([]complex128, ph*pw)
	fb := make([]complex128, ph*pw)
	for y := 0; y < ah; y++ {
		for x := 0; x < aw; x++ {
			fa[y*pw+x] = complex(a[y*aw+x], 0)
		}
	}
	for y := 0; y < bh; y++ {
		for x := 0; x < bw; x++ {
			fb[y*pw+x] = complex(b[y*bw+x], 0)
		}
	}
	if err := FFT2D(fa, ph, pw); err != nil {
		return nil, 0, 0, err
	}
	if err := FFT2D(fb, ph, pw); err != nil {
		return nil, 0, 0, err
	}
	for i := range fa {
		fa[i] *= fb[i]
	}
	if err := IFFT2D(fa, ph, pw); err != nil {
		return nil, 0, 0, err
	}
	out := make([]float64, oh*ow)
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			out[y*ow+x] = real(fa[y*pw+x])
		}
	}
	return out, oh, ow, nil
}

// ConvolveSame2D convolves a with kernel b and crops the result to a's
// size, centring the kernel (the "same" convolution used for optical
// point-spread functions). The kernel's centre is at (bh/2, bw/2).
func ConvolveSame2D(a []float64, ah, aw int, b []float64, bh, bw int) ([]float64, error) {
	full, _, ow, err := Convolve2D(a, ah, aw, b, bh, bw)
	if err != nil {
		return nil, err
	}
	offY, offX := bh/2, bw/2
	out := make([]float64, ah*aw)
	for y := 0; y < ah; y++ {
		srcRow := (y + offY) * ow
		for x := 0; x < aw; x++ {
			out[y*aw+x] = full[srcRow+x+offX]
		}
	}
	return out, nil
}
