package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{1: true, 2: true, 4: true, 1024: true, 0: false, 3: false, -4: false, 6: false}
	for n, want := range cases {
		if IsPow2(n) != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, IsPow2(n), want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 100: 128}
	for n, want := range cases {
		if NextPow2(n) != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, NextPow2(n), want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of an impulse is all-ones.
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse DFT[%d] = %v, want 1", i, v)
		}
	}
	// DFT of a constant is an impulse at DC.
	y := []complex128{1, 1, 1, 1}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-4) > 1e-12 {
		t.Fatalf("DC = %v, want 4", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, y[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 8, 32} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := make([]complex128, n)
		for k := 0; k < n; k++ {
			s := complex(0, 0)
			for j := 0; j < n; j++ {
				angle := -2 * math.Pi * float64(j*k) / float64(n)
				s += x[j] * cmplx.Exp(complex(0, angle))
			}
			want[k] = s
		}
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for non-power-of-two length")
	}
	if err := IFFT(make([]complex128, 6)); err == nil {
		t.Fatal("expected error for non-power-of-two length")
	}
}

func TestFFTEmptyAndSingle(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Fatal("FFT of empty should be a no-op")
	}
	x := []complex128{5 + 2i}
	if err := FFT(x); err != nil || x[0] != 5+2i {
		t.Fatal("FFT of length 1 should be identity")
	}
}

// Property: IFFT(FFT(x)) == x.
func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(8))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — sum|x|² == sum|X|²/n.
func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(7))
		x := make([]complex128, n)
		e1 := 0.0
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			e1 += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		e2 := 0.0
		for _, v := range x {
			e2 += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(e1-e2/float64(n)) < 1e-8*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — FFT(a·x + b·y) == a·FFT(x) + b·FFT(y).
func TestLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (1 + r.Intn(6))
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), 0)
			y[i] = complex(r.NormFloat64(), 0)
		}
		a, b := complex(r.NormFloat64(), 0), complex(r.NormFloat64(), 0)
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + b*y[i]
		}
		fx := append([]complex128(nil), x...)
		fy := append([]complex128(nil), y...)
		if FFT(mix) != nil || FFT(fx) != nil || FFT(fy) != nil {
			return false
		}
		for i := range mix {
			if cmplx.Abs(mix[i]-(a*fx[i]+b*fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h, w := 8, 16
	x := make([]complex128, h*w)
	orig := make([]complex128, h*w)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		orig[i] = x[i]
	}
	if err := FFT2D(x, h, w); err != nil {
		t.Fatal(err)
	}
	if err := IFFT2D(x, h, w); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D roundtrip failed at %d", i)
		}
	}
}

func TestFFT2DErrors(t *testing.T) {
	if err := FFT2D(make([]complex128, 12), 3, 4); err == nil {
		t.Fatal("expected non-pow2 error")
	}
	if err := FFT2D(make([]complex128, 5), 2, 4); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func naiveConvolve2D(a []float64, ah, aw int, b []float64, bh, bw int) []float64 {
	oh, ow := ah+bh-1, aw+bw-1
	out := make([]float64, oh*ow)
	for ay := 0; ay < ah; ay++ {
		for ax := 0; ax < aw; ax++ {
			av := a[ay*aw+ax]
			if av == 0 {
				continue
			}
			for by := 0; by < bh; by++ {
				for bx := 0; bx < bw; bx++ {
					out[(ay+by)*ow+(ax+bx)] += av * b[by*bw+bx]
				}
			}
		}
	}
	return out
}

func TestConvolve2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		ah, aw := 2+rng.Intn(10), 2+rng.Intn(10)
		bh, bw := 1+rng.Intn(5), 1+rng.Intn(5)
		a := make([]float64, ah*aw)
		b := make([]float64, bh*bw)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got, oh, ow, err := Convolve2D(a, ah, aw, b, bh, bw)
		if err != nil {
			t.Fatal(err)
		}
		if oh != ah+bh-1 || ow != aw+bw-1 {
			t.Fatalf("output size %dx%d", oh, ow)
		}
		want := naiveConvolve2D(a, ah, aw, b, bh, bw)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: conv mismatch at %d: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestConvolve2DErrors(t *testing.T) {
	if _, _, _, err := Convolve2D(make([]float64, 3), 2, 2, make([]float64, 1), 1, 1); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, _, _, err := Convolve2D(nil, 0, 0, make([]float64, 1), 1, 1); err == nil {
		t.Fatal("expected empty operand error")
	}
}

func TestConvolveSame2DIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ah, aw := 6, 9
	a := make([]float64, ah*aw)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	// 3x3 kernel with 1 at centre: same-convolution is the identity.
	k := make([]float64, 9)
	k[4] = 1
	got, err := ConvolveSame2D(a, ah, aw, k, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-9 {
			t.Fatalf("identity kernel mismatch at %d", i)
		}
	}
}

func TestConvolveSame2DShift(t *testing.T) {
	// Kernel with 1 off-centre shifts the image.
	a := make([]float64, 16) // 4x4
	a[5] = 1                 // (y=1,x=1)
	k := make([]float64, 9)
	k[5] = 1 // (y=1, x=2): one right of centre
	got, err := ConvolveSame2D(a, 4, 4, k, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[6]-1) > 1e-9 { // shifted to (1,2)
		t.Fatalf("shift conv: %v", got)
	}
}
