package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfoMetric is the gauge every tool registers so each scrape or
// -metrics-out dump identifies the binary that produced it: the value is
// always 1 and the identity lives in the labels, the Prometheus
// build-info convention.
const BuildInfoMetric = "hsd_build_info"

// buildIDs reads the binary's module identity once: module path, module
// version, and Go toolchain version, each "unknown" when the runtime
// cannot say (e.g. a bare go tool compile artifact).
var buildIDs = sync.OnceValue(func() [3]string {
	module, version, goVersion := "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return [3]string{module, version, goVersion}
})

// BuildLabels returns the binary-identity labels (module, version, go)
// followed by extra, for callers that add their own identity dimensions
// (the serving layer appends the live model generation and fused-engine
// flag).
func BuildLabels(extra ...Label) []Label {
	ids := buildIDs()
	labels := make([]Label, 0, 3+len(extra))
	labels = append(labels,
		L("module", ids[0]),
		L("version", ids[1]),
		L("go", ids[2]))
	return append(labels, extra...)
}

// SetBuildInfo registers the hsd_build_info gauge (value 1) on r with the
// binary-identity labels plus extra. Idempotent per label set.
func SetBuildInfo(r *Registry, extra ...Label) {
	r.Gauge(BuildInfoMetric, -1, BuildLabels(extra...)...).Set(1)
}
