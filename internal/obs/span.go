package obs

import "time"

// Stopwatch is the package's clock primitive: every duration measured in
// this repository starts from one of these, so the `timing` analyzer of
// hsd-vet can confine raw time.Now calls to this file. A Stopwatch is a
// value; copying one copies its start instant.
type Stopwatch struct{ start time.Time }

// NewStopwatch starts a stopwatch at the current instant.
func NewStopwatch() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (w Stopwatch) Elapsed() time.Duration { return time.Since(w.start) }

// Span is a begin/end timer over a hierarchical stage name. Ending a span
// records its elapsed seconds into the registry's stage summary for that
// name (series {stage="parent/child"} of the stage metric), so nested
// spans produce the per-stage count/p50/p99 taxonomy the scrape exposes.
type Span struct {
	r     *Registry
	name  string
	watch Stopwatch
}

// StartSpan begins a span named stage recording into this registry.
func (r *Registry) StartSpan(stage string) *Span {
	return &Span{r: r, name: stage, watch: NewStopwatch()}
}

// Child begins a nested span; its stage name is parent/name.
func (s *Span) Child(name string) *Span {
	return s.r.StartSpan(s.name + "/" + name)
}

// Name returns the span's full hierarchical stage name.
func (s *Span) Name() string { return s.name }

// End records the span's elapsed seconds under its stage name and returns
// the elapsed duration. End is idempotent in effect only if called once;
// call it exactly once per span.
func (s *Span) End() time.Duration {
	d := s.watch.Elapsed()
	s.r.Stage(s.name).ObserveDuration(d)
	return d
}
