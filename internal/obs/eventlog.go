package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventLog writes structured events as JSON Lines: one object per line,
// each carrying an "event" type field plus caller-supplied fields. It is
// the telemetry channel of hsd-train (run manifest, per-epoch records).
// A nil *EventLog discards events, so instrumented code needs no guards.
// Safe for concurrent use; each line is written in one Write call.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewEventLog returns an event log writing to w.
func NewEventLog(w io.Writer) *EventLog { return &EventLog{w: w} }

// Emit writes one event line of type event with the given fields. The
// "event" key is reserved; a colliding field is overwritten. Field maps
// are marshalled with encoding/json, so keys serialize in sorted order
// and lines are reproducible for tests. The first write error sticks and
// silences subsequent emits (telemetry must never abort a training run);
// check Err at shutdown.
func (l *EventLog) Emit(event string, fields map[string]any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(fields)+1)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event
	line, err := json.Marshal(rec)
	if err != nil {
		// Only unserializable caller values can land here; record and drop.
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = err
	}
}

// Err returns the first write or marshal error, if any.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}
