// The flight recorder: bounded in-memory retention of finished traces
// with a tail-keep policy. Three overlapping keeps, all deterministic:
//
//   - recent: a ring of the last Recent traces, any outcome, so a dump
//     right after an incident shows the immediate past;
//   - error:  a ring of the last Errors traces whose status was >= 400 or
//     that carried an explicit error — a 429 or 504 is never dropped by
//     boring traffic that follows it (until Errors more errors arrive);
//   - slow:   the slowest SlowN traces per root span name ("endpoint"),
//     held in ascending duration order, so the requests behind the p99
//     summaries are inspectable individually.
//
// Everything else — the boring middle — is dropped, and the dump reports
// how many. Buffers are preallocated at construction: record and keepSlow
// run once per finished trace, which is request rate when tracing is lit
// on a serving box, so they must not make per-call slices (buflint's
// "trace" spec pins record/keepSlow; the per-name slow bucket is created
// at most once per endpoint in newBucket, behind the map-miss check).
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

type recorder struct {
	mu         sync.Mutex
	recent     []*Trace // ring, nil until filled
	recentNext int
	errors     []*Trace // ring, nil until filled
	errorsNext int
	slowN      int
	slow       map[string][]*Trace // per root name, ascending by duration
	recorded   int64               // lifetime count of finished traces
}

func newRecorder(recent, errors, slowN int) *recorder {
	return &recorder{
		recent: make([]*Trace, recent),
		errors: make([]*Trace, errors),
		slowN:  slowN,
		slow:   make(map[string][]*Trace),
	}
}

// record files one finished trace under the tail-keep policy. Runs at
// request rate when tracing is lit: no per-call slice makes.
func (r *recorder) record(tr *Trace, name string, d time.Duration, isErr bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded++
	r.recent[r.recentNext] = tr
	r.recentNext = (r.recentNext + 1) % len(r.recent)
	if isErr {
		r.errors[r.errorsNext] = tr
		r.errorsNext = (r.errorsNext + 1) % len(r.errors)
	}
	r.keepSlow(name, tr, d)
}

// keepSlow maintains the ascending slowest-N bucket for name. Called
// under r.mu at request rate: the insertion works in place within the
// bucket's fixed capacity.
func (r *recorder) keepSlow(name string, tr *Trace, d time.Duration) {
	b, ok := r.slow[name]
	if !ok {
		b = r.newBucket()
	}
	if len(b) == r.slowN {
		if d <= b[0].dur {
			return // faster than everything kept; drop
		}
		copy(b, b[1:]) // evict the fastest
		b = b[:len(b)-1]
	}
	b = append(b, tr) // within the bucket's cap
	for i := len(b) - 1; i > 0 && b[i-1].dur > d; i-- {
		b[i], b[i-1] = b[i-1], b[i]
	}
	r.slow[name] = b
}

// newBucket allocates one endpoint's slow bucket; runs once per distinct
// root span name, off the per-trace path.
func (r *recorder) newBucket() []*Trace {
	return make([]*Trace, 0, r.slowN)
}

// SpanJSON is the dump shape of one span.
type SpanJSON struct {
	Name            string         `json:"name"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []SpanJSON     `json:"children,omitempty"`
}

// TraceJSON is the dump shape of one retained trace. Kept lists why the
// recorder retained it ("recent", "error", "slow"), sorted.
type TraceJSON struct {
	TraceID         string         `json:"trace_id"`
	Seq             uint64         `json:"seq"`
	Name            string         `json:"name"`
	Status          int            `json:"status,omitempty"`
	Error           string         `json:"error,omitempty"`
	DurationSeconds float64        `json:"duration_seconds"`
	Kept            []string       `json:"kept"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Spans           []SpanJSON     `json:"spans,omitempty"`
}

// DumpJSON is the /debug/trace response shape.
type DumpJSON struct {
	Recorded int64       `json:"recorded"`
	Kept     int         `json:"kept"`
	Dropped  int64       `json:"dropped"`
	Traces   []TraceJSON `json:"traces"`
}

// Snapshot returns every retained trace, deduplicated across the three
// keeps and tagged with its keep reasons, ordered by trace sequence
// number (creation order). Nil-safe.
func (t *Tracer) Snapshot() []TraceJSON {
	if t == nil {
		return nil
	}
	traces, _ := t.rec.snapshot()
	return traces
}

// Dump returns the full recorder state — retained traces plus lifetime
// recorded/dropped accounting. Nil-safe.
func (t *Tracer) Dump() DumpJSON {
	if t == nil {
		return DumpJSON{Traces: []TraceJSON{}}
	}
	traces, recorded := t.rec.snapshot()
	return DumpJSON{
		Recorded: recorded,
		Kept:     len(traces),
		Dropped:  recorded - int64(len(traces)),
		Traces:   traces,
	}
}

// WriteJSON writes the recorder dump as one indented JSON object — the
// GET /debug/trace body.
func (t *Tracer) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(t.Dump(), "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteJSONL writes one JSON object per retained trace — the -trace-out
// file format of the batch tools. Nil-safe (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, tj := range t.Snapshot() {
		buf, err := json.Marshal(tj)
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func (r *recorder) snapshot() ([]TraceJSON, int64) {
	type kept struct {
		tr      *Trace
		reasons []string
	}
	r.mu.Lock()
	byID := make(map[uint64]*kept)
	var order []*kept
	keep := func(tr *Trace, reason string) {
		if tr == nil {
			return
		}
		k, ok := byID[tr.id]
		if !ok {
			k = &kept{tr: tr}
			byID[tr.id] = k
			order = append(order, k)
		}
		k.reasons = append(k.reasons, reason)
	}
	for _, tr := range r.recent {
		keep(tr, "recent")
	}
	for _, tr := range r.errors {
		keep(tr, "error")
	}
	for _, b := range r.slow {
		for _, tr := range b {
			keep(tr, "slow")
		}
	}
	recorded := r.recorded
	r.mu.Unlock()

	sort.Slice(order, func(i, j int) bool { return order[i].tr.seq < order[j].tr.seq })
	out := make([]TraceJSON, 0, len(order))
	for _, k := range order {
		sort.Strings(k.reasons)
		out = append(out, k.tr.render(k.reasons))
	}
	return out, recorded
}

// render converts the trace to its dump shape under the trace's lock, so
// a late span mutation (a queue span ended after its request timed out)
// cannot race the dump.
func (tr *Trace) render(kept []string) TraceJSON {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceJSON{
		TraceID:         tr.idStr,
		Seq:             tr.seq,
		Name:            tr.root.name,
		Status:          tr.status,
		Error:           tr.errMsg,
		DurationSeconds: tr.dur.Seconds(),
		Kept:            kept,
		Attrs:           attrMap(tr.root.attrs),
		Spans:           spansJSON(tr.root.children),
	}
}

// attrMap renders attrs as a map: json.Marshal emits map keys sorted, so
// the dump is deterministic. Repeated keys would collide — instrumented
// code uses indexed keys (member_0, member_1, ...) where needed.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

func spansJSON(spans []*Span) []SpanJSON {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanJSON, 0, len(spans))
	for _, sp := range spans {
		out = append(out, SpanJSON{
			Name:            sp.name,
			DurationSeconds: sp.dur.Seconds(),
			Attrs:           attrMap(sp.attrs),
			Children:        spansJSON(sp.children),
		})
	}
	return out
}
