package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceIDsDeterministic: same seed, same ID sequence; different
// seeds, different sequences. The contract that makes trace IDs legal
// under seedlint (no wall clock, no math/rand) also makes them
// reproducible.
func TestTraceIDsDeterministic(t *testing.T) {
	ids := func(seed uint64, n int) []string {
		tr := New(Config{Seed: seed})
		out := make([]string, n)
		for i := range out {
			x := tr.Start("req")
			out[i] = x.ID()
			x.FinishWith(time.Millisecond)
		}
		return out
	}
	a, b, c := ids(7, 16), ids(7, 16), ids(8, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
		if len(a[i]) != 16 {
			t.Fatalf("ID %q is not 16 hex digits", a[i])
		}
	}
	if a[0] == c[0] {
		t.Fatalf("different seeds produced the same first ID %s", a[0])
	}
	seen := map[string]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate ID %s within one sequence", id)
		}
		seen[id] = true
	}
}

// TestDarkTracingZeroAlloc pins the flagship contract: the full API
// surface an instrumented hot path touches costs zero allocations when
// the tracer is nil.
func TestDarkTracingZeroAlloc(t *testing.T) {
	var tracer *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		tr := tracer.Start("predict")
		tr.SetInt("size", 4)
		tr.SetBool("cache_hit", false)
		tr.SetFloat("rate", 0.5)
		tr.SetStr("key", "k")
		sp := tr.StartSpan("queue")
		sp.SetStr("batch_id", tr.ID())
		sp.EndWith(time.Millisecond)
		c := sp.Child("inner")
		c.SetInt("i", 1)
		c.End()
		tr.SetStatus(200)
		tr.SetError("boom")
		tr.FinishWith(time.Millisecond)
		tr.Finish()
		if got := tr.ID(); got != "" {
			t.Fatalf("nil trace ID = %q, want empty", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("dark tracing allocated %.1f times per run, want 0", allocs)
	}
}

// TestRecorderTailKeep drives a controlled trace mix through a tiny
// recorder and checks the three keeps: the last-N ring drops the boring
// middle, errors survive being pushed out of recent, and the slowest-N
// per endpoint survive regardless of age.
func TestRecorderTailKeep(t *testing.T) {
	tr := New(Config{Recent: 4, Errors: 2, SlowN: 2, Seed: 1})

	// One early error and one early very-slow request, then a flood of
	// boring fast traffic that evicts both from the recent ring.
	e := tr.Start("predict")
	e.SetStatus(429)
	e.SetError("queue full")
	errID := e.ID()
	e.FinishWith(1 * time.Millisecond)

	s := tr.Start("predict")
	slowID := s.ID()
	s.FinishWith(900 * time.Millisecond)

	var lastBoringID string
	for i := 0; i < 10; i++ {
		b := tr.Start("predict")
		b.SetStatus(200)
		lastBoringID = b.ID()
		b.FinishWith(time.Duration(i+2) * time.Millisecond)
	}

	dump := tr.Dump()
	if dump.Recorded != 12 {
		t.Fatalf("recorded = %d, want 12", dump.Recorded)
	}
	if dump.Dropped != dump.Recorded-int64(dump.Kept) {
		t.Fatalf("dropped %d inconsistent with recorded %d kept %d", dump.Dropped, dump.Recorded, dump.Kept)
	}
	kept := map[string][]string{}
	for _, x := range dump.Traces {
		kept[x.TraceID] = x.Kept
	}
	has := func(id, reason string) bool {
		for _, r := range kept[id] {
			if r == reason {
				return true
			}
		}
		return false
	}
	if !has(errID, "error") {
		t.Fatalf("429 trace %s not error-kept: %v", errID, kept[errID])
	}
	if has(errID, "recent") {
		t.Fatalf("429 trace %s still in recent after 10 later traces", errID)
	}
	if !has(slowID, "slow") {
		t.Fatalf("slowest trace %s not slow-kept: %v", slowID, kept[slowID])
	}
	if !has(lastBoringID, "recent") {
		t.Fatalf("most recent trace %s not recent-kept", lastBoringID)
	}
	// The slow bucket holds exactly SlowN=2: the 900ms outlier and the
	// 11ms tail of the boring flood.
	slowCount := 0
	for _, reasons := range kept {
		for _, r := range reasons {
			if r == "slow" {
				slowCount++
			}
		}
	}
	if slowCount != 2 {
		t.Fatalf("slow-kept %d traces, want 2", slowCount)
	}
	// Early boring traces are gone entirely.
	if len(dump.Traces) >= 12 {
		t.Fatalf("recorder kept everything (%d); the boring middle must drop", len(dump.Traces))
	}
}

// TestTraceJSONShape checks the rendered tree: nested spans, typed
// attributes, status/error propagation, and that WriteJSONL emits one
// valid JSON object per retained trace.
func TestTraceJSONShape(t *testing.T) {
	tracer := New(Config{Seed: 3})
	tr := tracer.Start("predict")
	tr.SetInt("clips", 2)
	q := tr.StartSpan("queue")
	q.SetStr("batch_id", "b1")
	q.EndWith(5 * time.Millisecond)
	ex := tr.StartSpan("extract")
	inner := ex.Child("tile")
	inner.SetInt("tx", 1)
	inner.EndWith(time.Millisecond)
	ex.EndWith(2 * time.Millisecond)
	tr.SetStatus(504)
	tr.SetError("deadline")
	tr.FinishWith(10 * time.Millisecond)

	snap := tracer.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(snap))
	}
	x := snap[0]
	if x.Name != "predict" || x.Status != 504 || x.Error != "deadline" {
		t.Fatalf("root fields wrong: %+v", x)
	}
	if x.DurationSeconds != 0.010 {
		t.Fatalf("duration = %v, want 0.010", x.DurationSeconds)
	}
	if got := x.Attrs["clips"]; got != int64(2) && got != float64(2) {
		t.Fatalf("clips attr = %v (%T)", got, got)
	}
	if len(x.Spans) != 2 || x.Spans[0].Name != "queue" || x.Spans[1].Name != "extract" {
		t.Fatalf("spans wrong: %+v", x.Spans)
	}
	if x.Spans[0].Attrs["batch_id"] != "b1" {
		t.Fatalf("queue attrs wrong: %v", x.Spans[0].Attrs)
	}
	if len(x.Spans[1].Children) != 1 || x.Spans[1].Children[0].Name != "tile" {
		t.Fatalf("nested span wrong: %+v", x.Spans[1])
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("JSONL has %d lines, want 1", len(lines))
	}
	var round TraceJSON
	if err := json.Unmarshal([]byte(lines[0]), &round); err != nil {
		t.Fatalf("JSONL line does not parse: %v", err)
	}
	if round.TraceID != x.TraceID {
		t.Fatalf("round-trip ID %s != %s", round.TraceID, x.TraceID)
	}

	// Same story through WriteJSON (the /debug/trace body).
	buf.Reset()
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump DumpJSON
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("WriteJSON body does not parse: %v", err)
	}
	if dump.Recorded != 1 || dump.Kept != 1 {
		t.Fatalf("dump accounting wrong: %+v", dump)
	}
}

// TestTraceConcurrentMutation: spans created/ended and attributes set
// from many goroutines while another goroutine renders snapshots — the
// per-trace lock must keep this race-clean (run under -race via check.sh).
func TestTraceConcurrentMutation(t *testing.T) {
	tracer := New(Config{Seed: 5})
	tr := tracer.Start("batch")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan("member")
				sp.SetInt("i", int64(i))
				sp.EndWith(time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			tracer.Snapshot()
		}
	}()
	wg.Wait()
	tr.FinishWith(time.Millisecond)
	<-done
	snap := tracer.Snapshot()
	if len(snap) != 1 || len(snap[0].Spans) != 400 {
		t.Fatalf("got %d traces / %d spans, want 1 / 400", len(snap), len(snap[0].Spans))
	}
}

// BenchmarkDarkTrace measures the instrumentation tax with tracing
// disabled — the acceptance gate is 0 B/op.
func BenchmarkDarkTrace(b *testing.B) {
	var tracer *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := tracer.Start("predict")
		tr.SetInt("size", 4)
		sp := tr.StartSpan("queue")
		sp.SetStr("batch_id", tr.ID())
		sp.EndWith(time.Millisecond)
		tr.SetStatus(200)
		tr.FinishWith(time.Millisecond)
	}
}

// BenchmarkLitTrace is the lit-side cost for contrast (allocations are
// expected here; the point is they only exist when the operator asks).
func BenchmarkLitTrace(b *testing.B) {
	tracer := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := tracer.Start("predict")
		tr.SetInt("size", 4)
		sp := tr.StartSpan("queue")
		sp.SetStr("batch_id", tr.ID())
		sp.EndWith(time.Millisecond)
		tr.SetStatus(200)
		tr.FinishWith(time.Millisecond)
	}
}
