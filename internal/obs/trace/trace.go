// Package trace is the per-request tracing layer on top of internal/obs:
// a Tracer hands out Trace trees (a root span plus nested child spans,
// each carrying a stage name, a duration, and typed attributes) and files
// finished traces into a bounded in-memory flight recorder with tail-keep
// retention (see recorder.go). It exists so incident debugging and
// rollback decisions can attribute latency to a single request — which
// batch it rode in, how long it queued, where its time went — rather than
// to process-level histograms alone.
//
// Contracts, all machine-enforced by hsd-vet:
//
//   - No wall clock, no math/rand. Trace IDs come from a splitmix64
//     finalizer over a caller-provided key and an atomic counter, so a run
//     with a fixed seed emits a reproducible ID sequence (seedlint green).
//     Durations only ever flow through obs.Stopwatch — the timing analyzer
//     polices this package like any other (its import path does not end in
//     "internal/obs", so the obs clock exemption does not extend here).
//
//   - Dark tracing is free. Every method on a nil *Tracer, *Trace, or
//     *Span is a no-op that allocates nothing, so instrumented hot paths
//     (the serve batcher is hotlint-rooted) pay only a nil check per call
//     when the operator has not lit tracing. Callers must keep argument
//     expressions allocation-free too: constant keys, pre-existing
//     strings, and integer conversions — never fmt or string concat on the
//     dark path. Guard any loop that builds label strings with a nil check
//     on the trace. TestDarkTracingZeroAlloc pins the contract.
//
//   - Observation only. Recording a trace never feeds back into training
//     or inference; parity tests (TestMGDTraceParity, serve's trace parity
//     test) pin traced and dark runs to bit-identical weights and served
//     probabilities.
//
// Internally every mutation of a Trace or its spans locks the owning
// Trace's mutex: spans are ended by whichever goroutine measured them (a
// request handler may time out and finish its trace while the batcher
// flush loop later ends the request's queue span), and the JSON dump
// renders under the same lock. The locking is legal on hot paths because
// hotlint never traverses into this package (the lock is only ever taken
// when tracing is lit) — mirrored by the hotlint fixture at
// testdata/src/hotlint/internal/obs/trace.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"hotspot/internal/obs"
)

// mix64 is the splitmix64 output finalizer over a keyed counter: the same
// generator family seeds the rest of the repository (train shuffles, the
// active loop's round keys), so trace IDs inherit the no-wall-clock,
// no-math/rand determinism contract.
func mix64(key, v uint64) uint64 {
	z := key + (v+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Defaults for Config fields left zero.
const (
	DefaultRecent = 64 // last-N ring, any outcome
	DefaultErrors = 64 // errored-trace ring (status >= 400 or SetError)
	DefaultSlowN  = 8  // slowest-N kept per root span name
)

// Config sizes a Tracer's flight recorder and keys its ID generator.
// The zero value is a usable default.
type Config struct {
	// Recent is the size of the last-N ring that keeps the most recent
	// traces regardless of outcome. 0 means DefaultRecent.
	Recent int
	// Errors is the size of the ring that keeps errored traces (HTTP
	// status >= 400 or an explicit SetError). 0 means DefaultErrors.
	Errors int
	// SlowN is how many of the slowest traces to keep per root span name
	// (per endpoint, in serving terms). 0 means DefaultSlowN.
	SlowN int
	// Seed keys the splitmix64 ID generator. Two tracers with the same
	// seed emit the same ID sequence.
	Seed uint64
}

// Tracer mints Trace trees and owns the flight recorder they are filed
// into when finished. A nil *Tracer is the dark tracer: Start returns a
// nil *Trace and the entire downstream API no-ops.
type Tracer struct {
	key uint64
	seq atomic.Uint64
	rec *recorder
}

// New builds a lit tracer with cfg's retention policy.
func New(cfg Config) *Tracer {
	if cfg.Recent <= 0 {
		cfg.Recent = DefaultRecent
	}
	if cfg.Errors <= 0 {
		cfg.Errors = DefaultErrors
	}
	if cfg.SlowN <= 0 {
		cfg.SlowN = DefaultSlowN
	}
	return &Tracer{
		key: mix64(cfg.Seed, 0x74726163), // "trac": domain-separate the ID key from the raw seed
		rec: newRecorder(cfg.Recent, cfg.Errors, cfg.SlowN),
	}
}

// Start begins a new trace whose root span is named name. On a nil tracer
// it returns nil, which every Trace and Span method accepts.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1) - 1
	id := mix64(t.key, seq)
	tr := &Trace{tracer: t, id: id, idStr: hex16(id), seq: seq}
	tr.root = newSpan(tr, name)
	return tr
}

// hex16 renders v as 16 lowercase hex digits without fmt.
func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// attrCap is the attribute capacity reserved at span creation; the
// instrumented pipelines set at most a handful per span, so the typed
// setters below append without growing (see their //hsd:noalloc marks).
const attrCap = 8

type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
	attrBool
)

// Attr is one typed key/value attribute on a span. Typed fields (rather
// than an any) keep the setters boxing-free.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
	b    bool
}

// Value returns the attribute's value as an any (dump path only).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.b
	default:
		return a.s
	}
}

// Trace is one request's span tree plus its outcome (status code, error
// message). All methods are safe on a nil receiver and safe for
// concurrent use; mutations lock the trace's mutex.
type Trace struct {
	tracer *Tracer
	id     uint64
	idStr  string
	seq    uint64

	mu     sync.Mutex
	root   *Span
	status int
	errMsg string
	dur    time.Duration
	done   bool
}

// ID returns the trace's 16-hex-digit ID, or "" on a nil trace.
//
//hsd:noalloc
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.idStr
}

// Root returns the trace's root span (nil on a nil trace), for callers
// that parent work under it via Span.Child.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// StartSpan begins a child span of the root.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.root.Child(name)
}

// SetInt sets an integer attribute on the root span.
//
//hsd:noalloc
func (tr *Trace) SetInt(key string, v int64) {
	if tr == nil {
		return
	}
	tr.root.SetInt(key, v)
}

// SetFloat sets a float attribute on the root span.
//
//hsd:noalloc
func (tr *Trace) SetFloat(key string, v float64) {
	if tr == nil {
		return
	}
	tr.root.SetFloat(key, v)
}

// SetStr sets a string attribute on the root span.
//
//hsd:noalloc
func (tr *Trace) SetStr(key, v string) {
	if tr == nil {
		return
	}
	tr.root.SetStr(key, v)
}

// SetBool sets a boolean attribute on the root span.
//
//hsd:noalloc
func (tr *Trace) SetBool(key string, v bool) {
	if tr == nil {
		return
	}
	tr.root.SetBool(key, v)
}

// SetStatus records the trace's response status code. Codes >= 400 make
// the trace error-kept by the recorder.
//
//hsd:noalloc
func (tr *Trace) SetStatus(code int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.status = code
	tr.mu.Unlock()
}

// SetError records the trace's error message (first writer wins) and
// makes the trace error-kept by the recorder.
func (tr *Trace) SetError(msg string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.errMsg == "" {
		tr.errMsg = msg
	}
	tr.mu.Unlock()
}

// Finish ends the trace with the root span's own stopwatch reading and
// files it into the flight recorder. Idempotent.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.finish(tr.root.watch.Elapsed())
}

// FinishWith ends the trace with an externally measured duration — the
// instrumented pipelines time stages once with obs.Stopwatch and feed the
// same reading to both the stage summary and the trace, keeping obs the
// single clock authority. Idempotent.
//
//hsd:noalloc
func (tr *Trace) FinishWith(d time.Duration) {
	if tr == nil {
		return
	}
	tr.finish(d)
}

func (tr *Trace) finish(d time.Duration) {
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.dur = d
	if !tr.root.ended {
		tr.root.ended = true
		tr.root.dur = d
	}
	name := tr.root.name
	isErr := tr.status >= 400 || tr.errMsg != ""
	tr.mu.Unlock()
	tr.tracer.rec.record(tr, name, d, isErr)
}

// Span is one timed stage inside a trace. All methods are safe on a nil
// receiver; mutations lock the owning trace's mutex.
type Span struct {
	tr       *Trace
	name     string
	watch    obs.Stopwatch
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

func newSpan(tr *Trace, name string) *Span {
	return &Span{tr: tr, name: name, watch: obs.NewStopwatch(), attrs: make([]Attr, 0, attrCap)}
}

// TraceID returns the ID of the span's owning trace, "" on a nil span.
//
//hsd:noalloc
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.tr.idStr
}

// Child begins a nested span under sp.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	c := newSpan(sp.tr, name)
	sp.tr.mu.Lock()
	sp.children = append(sp.children, c)
	sp.tr.mu.Unlock()
	return c
}

// End ends the span with its own stopwatch reading and returns the
// elapsed duration (0 on a nil span). First end wins.
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := sp.watch.Elapsed()
	sp.EndWith(d)
	return d
}

// EndWith ends the span with an externally measured duration, letting
// instrumented code share one obs.Stopwatch reading between a stage
// summary observation and the trace. First end wins.
//
//hsd:noalloc
func (sp *Span) EndWith(d time.Duration) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.dur = d
	}
	sp.tr.mu.Unlock()
}

// SetInt sets an integer attribute.
//
//hsd:noalloc
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrInt, i: v})
	sp.tr.mu.Unlock()
}

// SetFloat sets a float attribute.
//
//hsd:noalloc
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrFloat, f: v})
	sp.tr.mu.Unlock()
}

// SetStr sets a string attribute.
//
//hsd:noalloc
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrStr, s: v})
	sp.tr.mu.Unlock()
}

// SetBool sets a boolean attribute.
//
//hsd:noalloc
func (sp *Span) SetBool(key string, v bool) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, kind: attrBool, b: v})
	sp.tr.mu.Unlock()
}
