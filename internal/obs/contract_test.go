package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestSummaryConcurrentWriters hammers one Summary from many goroutines
// and checks the accounting is exact, not approximately right: lifetime
// count and sum must equal the arithmetic totals (integer-valued samples
// make the float sum order-independent), and the window must be full with
// quantiles drawn from values actually observed. Run under -race by the
// check gate.
func TestSummaryConcurrentWriters(t *testing.T) {
	const writers, perWriter, window = 8, 1000, 64
	r := NewRegistry()
	s := r.Summary("lat", window)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Observe(float64(w*perWriter + i))
			}
		}(w)
	}
	wg.Wait()

	if got, want := s.Count(), int64(writers*perWriter); got != want {
		t.Fatalf("lifetime count = %d, want %d", got, want)
	}
	// Sum of 0..7999: exact in float64 because every sample is an integer.
	n := float64(writers * perWriter)
	if got, want := s.Sum(), n*(n-1)/2; got != want {
		t.Fatalf("lifetime sum = %v, want %v", got, want)
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		q := s.Quantile(p)
		if q != float64(int(q)) || q < 0 || q >= n {
			t.Fatalf("quantile(%v) = %v is not an observed sample", p, q)
		}
	}
	// The window holds exactly `window` samples: quantile(0) and
	// quantile(1) span at most the window, never the lifetime.
	if lo, hi := s.Quantile(0), s.Quantile(1); hi-lo >= n {
		t.Fatalf("window [%v, %v] wider than lifetime range", lo, hi)
	}
}

// TestSummaryExemplar: the exemplar tracks the window's slowest tagged
// sample, untagged observations carry none, and ring-buffer reuse evicts
// stale exemplars with their samples.
func TestSummaryExemplar(t *testing.T) {
	r := NewRegistry()
	s := r.Summary("lat", 4)
	if _, _, ok := s.Exemplar(); ok {
		t.Fatal("empty summary has an exemplar")
	}
	s.Observe(9) // untagged: never an exemplar
	s.ObserveExemplar(5, "t5")
	s.ObserveExemplar(7, "t7")
	if v, ex, ok := s.Exemplar(); !ok || ex != "t7" || v != 7 {
		t.Fatalf("exemplar = (%v, %q, %v), want (7, t7, true)", v, ex, ok)
	}
	// Fill the window with untagged samples: t7 and t5 fall out of the
	// ring and their exemplars must not survive them.
	for i := 0; i < 4; i++ {
		s.Observe(1)
	}
	if v, ex, ok := s.Exemplar(); ok {
		t.Fatalf("stale exemplar survived eviction: (%v, %q)", v, ex)
	}
}

// TestTextExemplarLine: a summary fed through ObserveExemplar renders one
// extra q="max" line carrying the trace ID; plain summaries render none.
func TestTextExemplarLine(t *testing.T) {
	r := NewRegistry()
	plain := r.Summary("plain_seconds", 0, L("stage", "a"))
	plain.Observe(0.5)
	tagged := r.Summary("req_seconds", 0, L("stage", "b"))
	tagged.ObserveExemplar(0.25, "deadbeefdeadbeef")

	text := r.Text()
	want := `req_seconds{stage="b",q="max",trace_id="deadbeefdeadbeef"} 0.250000000`
	if !strings.Contains(text, want) {
		t.Fatalf("Text missing exemplar line %q:\n%s", want, text)
	}
	if strings.Contains(text, `plain_seconds{stage="a",q="max"`) {
		t.Fatalf("plain summary grew an exemplar line:\n%s", text)
	}
}

// TestEventLogDeterministicFieldOrder: two emits of the same logical
// fields — built in different map insertion orders — and repeated runs
// must produce byte-identical lines (json.Marshal sorts map keys).
func TestEventLogDeterministicFieldOrder(t *testing.T) {
	emit := func(fields map[string]any) string {
		var buf bytes.Buffer
		l := NewEventLog(&buf)
		l.Emit("epoch", fields)
		if err := l.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	a := map[string]any{}
	a["loss"] = 0.5
	a["iter"] = 3
	a["acc"] = 0.75
	b := map[string]any{}
	b["acc"] = 0.75
	b["iter"] = 3
	b["loss"] = 0.5

	lineA, lineB := emit(a), emit(b)
	if lineA != lineB {
		t.Fatalf("field insertion order leaked into output:\n%s%s", lineA, lineB)
	}
	for i := 0; i < 16; i++ {
		if got := emit(a); got != lineA {
			t.Fatalf("run %d diverged:\n%svs\n%s", i, got, lineA)
		}
	}
	if want := `{"acc":0.75,"event":"epoch","iter":3,"loss":0.5}` + "\n"; lineA != want {
		t.Fatalf("line = %q, want %q", lineA, want)
	}
}

// TestSetBuildInfo: the gauge registers with the identity labels plus the
// caller's extras and renders value 1.
func TestSetBuildInfo(t *testing.T) {
	r := NewRegistry()
	SetBuildInfo(r, L("tool", "hsd-test"))
	text := r.Text()
	if !strings.Contains(text, BuildInfoMetric+`{module="`) {
		t.Fatalf("Text missing %s:\n%s", BuildInfoMetric, text)
	}
	if !strings.Contains(text, `tool="hsd-test"`) || !strings.Contains(text, `go="`) {
		t.Fatalf("build info labels incomplete:\n%s", text)
	}
	line := ""
	for _, l := range strings.Split(text, "\n") {
		if strings.HasPrefix(l, BuildInfoMetric) {
			line = l
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Fatalf("build info value not 1: %q", line)
	}
}
