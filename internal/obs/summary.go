package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultWindow is the number of samples a Summary retains when the
// creating call does not choose a window.
const DefaultWindow = 1024

// Summary tracks a sliding window of float64 observations (latencies in
// seconds, by convention) and serves exact nearest-rank quantiles over
// that window, plus a lifetime count and sum. It generalizes the ring
// buffer the serving layer used privately before the obs package existed.
// Safe for concurrent use.
type Summary struct {
	mu      sync.Mutex
	buf     []float64
	exs     []string // per-sample exemplar IDs; nil until ObserveExemplar is first used
	n       int      // filled entries, <= len(buf)
	next    int      // next write index
	count   int64
	sum     float64
	scratch []float64 // reused quantile sort buffer
}

func newSummary(window int) *Summary {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Summary{
		buf:     make([]float64, window),
		scratch: make([]float64, 0, window),
	}
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.observeLocked(v, "")
	s.mu.Unlock()
}

// ObserveExemplar records one sample tagged with an exemplar ID (by
// convention a trace ID), so the scrape can point at the concrete request
// behind the window's slowest observation. Samples recorded with plain
// Observe carry no exemplar.
func (s *Summary) ObserveExemplar(v float64, exemplar string) {
	s.mu.Lock()
	if s.exs == nil && exemplar != "" {
		s.exs = make([]string, len(s.buf))
	}
	s.observeLocked(v, exemplar)
	s.mu.Unlock()
}

func (s *Summary) observeLocked(v float64, exemplar string) {
	s.buf[s.next] = v
	if s.exs != nil {
		s.exs[s.next] = exemplar // clears any stale exemplar the slot held
	}
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.count++
	s.sum += v
}

// ObserveDuration records d in seconds.
func (s *Summary) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Exemplar returns the window's largest exemplar-tagged observation and
// its exemplar ID; ok is false when no sample in the window carries one.
func (s *Summary) Exemplar() (v float64, exemplar string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exemplarLocked()
}

func (s *Summary) exemplarLocked() (v float64, exemplar string, ok bool) {
	if s.exs == nil {
		return 0, "", false
	}
	for i := 0; i < s.n; i++ {
		if s.exs[i] == "" {
			continue
		}
		if !ok || s.buf[i] > v {
			v, exemplar, ok = s.buf[i], s.exs[i], true
		}
	}
	return v, exemplar, ok
}

// Count returns the lifetime number of observations (not capped by the
// window).
func (s *Summary) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Sum returns the lifetime sum of observations.
func (s *Summary) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// Quantile returns the nearest-rank p-quantile (0 <= p <= 1) over the
// current window, or 0 with no observations. The rank is the ceiling rank
// min(n-1, ceil(p*n)-1): over a full 1024-sample window p99 reads index
// 1013, where the truncation rule int(p*(n-1)) the serve ring used read
// 1012 and under-reported the tail by one rank.
func (s *Summary) Quantile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quantileLocked(p)
}

func (s *Summary) quantileLocked(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	s.scratch = append(s.scratch[:0], s.buf[:s.n]...)
	sort.Float64s(s.scratch)
	return s.scratch[ceilRank(p, s.n)]
}

// ceilRank maps quantile p over n sorted samples to a 0-based index using
// the nearest-rank (ceiling) definition, clamped to [0, n-1].
func ceilRank(p float64, n int) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx > n-1 {
		idx = n - 1
	}
	return idx
}

// stats returns (lifetime count, window p50, window p99) in one lock
// acquisition and one sort — the scrape path.
func (s *Summary) stats() (count int64, p50, p99 float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return s.count, 0, 0
	}
	s.scratch = append(s.scratch[:0], s.buf[:s.n]...)
	sort.Float64s(s.scratch)
	return s.count, s.scratch[ceilRank(0.50, s.n)], s.scratch[ceilRank(0.99, s.n)]
}
