package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("status", "200"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // monotone: ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", L("status", "200")); again != c {
		t.Fatal("re-fetching the same series returned a different counter")
	}
	if other := r.Counter("reqs_total", L("status", "500")); other == c {
		t.Fatal("different labels returned the same counter")
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", -1)
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %v, want 42", got)
	}
	r.GaugeFunc("live", 6, func() float64 { return 0.25 })
	snaps := r.Snapshot("live")
	if len(snaps) != 1 || snaps[0].Value != 0.25 {
		t.Fatalf("gauge func snapshot = %+v, want value 0.25", snaps)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter series as a gauge did not panic")
		}
	}()
	r.Gauge("x", -1)
}

// TestQuantileCeilRank pins the nearest-rank (ceiling) quantile fix from
// the issue: the old serve ring computed int(p*(n-1)) (truncation), which
// under-reported the tail of a full window by one rank.
func TestQuantileCeilRank(t *testing.T) {
	// 1..1000 in scrambled insertion order; pin p50/p99/p100.
	s := newSummary(1000)
	for i := 0; i < 1000; i++ {
		s.Observe(float64((i*7919)%1000 + 1))
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 500}, {0.99, 990}, {1.0, 1000}, {0, 1}} {
		if got := s.Quantile(tc.p); got != tc.want {
			t.Errorf("q(%v) over 1..1000 = %v, want %v", tc.p, got, tc.want)
		}
	}

	// Full DefaultWindow of 1..1024: the case where truncation and
	// ceil-rank disagree. int(0.99*1023) = 1012 → value 1013 (the old
	// bias); ceil(0.99*1024)-1 = 1013 → value 1014.
	s = newSummary(DefaultWindow)
	for i := 1; i <= DefaultWindow; i++ {
		s.Observe(float64(i))
	}
	if got := s.Quantile(0.99); got != 1014 {
		t.Errorf("p99 over 1..1024 = %v, want 1014 (ceil-rank)", got)
	}
	if got := s.Quantile(0.50); got != 512 {
		t.Errorf("p50 over 1..1024 = %v, want 512", got)
	}
}

func TestSummaryWindowSlides(t *testing.T) {
	s := newSummary(4)
	for i := 1; i <= 8; i++ {
		s.Observe(float64(i))
	}
	// Window holds 5..8; lifetime count is 8.
	if got := s.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	if got := s.Quantile(0); got != 5 {
		t.Fatalf("min over window = %v, want 5", got)
	}
	if got := s.Quantile(1); got != 8 {
		t.Fatalf("max over window = %v, want 8", got)
	}
	if got := s.Sum(); got != 36 {
		t.Fatalf("sum = %v, want 36", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := newSummary(8)
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("quantile of empty summary = %v, want 0", got)
	}
	count, p50, p99 := s.stats()
	if count != 0 || p50 != 0 || p99 != 0 {
		t.Fatalf("stats of empty summary = (%d, %v, %v), want zeros", count, p50, p99)
	}
}

// TestTextExposition is the golden test for the exposition format: every
// instrument kind, exact rendering, sorted order.
func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", L("endpoint", "predict"), L("status", "200")).Add(7)
	r.Gauge("app_cache_entries", -1).Set(3)
	r.Gauge("app_cache_hit_rate", 6).Set(0.5)
	h := r.IntHist("app_batch_size_total", "size")
	h.Observe(2)
	h.Observe(2)
	h.Observe(5)
	sum := r.Summary("app_stage_seconds", 8, L("stage", "extract"))
	sum.Observe(0.001)
	sum.Observe(0.003)

	want := strings.Join([]string{
		`app_batch_size_total{size="2"} 2`,
		`app_batch_size_total{size="5"} 1`,
		`app_cache_entries 3`,
		`app_cache_hit_rate 0.500000`,
		`app_requests_total{endpoint="predict",status="200"} 7`,
		`app_stage_seconds_count{stage="extract"} 2`,
		`app_stage_seconds{stage="extract",q="p50"} 0.001000000`,
		`app_stage_seconds{stage="extract",q="p99"} 0.003000000`,
	}, "\n") + "\n"
	if got := r.Text(); got != want {
		t.Fatalf("exposition mismatch\n got:\n%s\nwant:\n%s", got, want)
	}

	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if b.String() != want {
		t.Fatal("WriteText differs from Text")
	}
}

// TestRegistryConcurrency hammers one registry from parallel writers while
// a scraper reads; the race detector is the assertion.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) { //hsd:allow goroutinelint test-local fan-out joined by WaitGroup
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total", L("w", string(rune('a'+w)))).Inc()
				r.Gauge("g", 3).Set(float64(i))
				r.IntHist("h_total", "v").Observe(i % 7)
				r.Stage("loop/step").Observe(float64(i))
				sp := r.StartSpan("outer")
				sp.Child("inner").End()
				sp.End()
			}
		}(w)
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() { //hsd:allow goroutinelint test-local scraper joined via channel
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Text()
				_ = r.Snapshot()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraped

	total := int64(0)
	for _, s := range r.Snapshot("c_total") {
		total += int64(s.Value)
	}
	if total != 4*500 {
		t.Fatalf("counter total = %d, want %d", total, 4*500)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	outer := r.StartSpan("train")
	step := outer.Child("step")
	if step.Name() != "train/step" {
		t.Fatalf("child span name = %q, want train/step", step.Name())
	}
	inner := step.Child("grad")
	if inner.Name() != "train/step/grad" {
		t.Fatalf("grandchild span name = %q, want train/step/grad", inner.Name())
	}
	if d := inner.End(); d < 0 {
		t.Fatalf("negative span duration %v", d)
	}
	step.End()
	outer.End()

	for _, stage := range []string{"train", "train/step", "train/step/grad"} {
		if got := r.Stage(stage).Count(); got != 1 {
			t.Errorf("stage %q count = %d, want 1", stage, got)
		}
	}
}

func TestStageMetricRename(t *testing.T) {
	r := NewRegistry()
	r.SetStageMetric("serve_stage_seconds")
	r.Stage("extract").Observe(0.5)
	text := r.Text()
	if !strings.Contains(text, `serve_stage_seconds{stage="extract",q="p50"} 0.500000000`) {
		t.Fatalf("renamed stage metric missing from exposition:\n%s", text)
	}
	if strings.Contains(text, DefaultStageMetric) {
		t.Fatalf("default stage metric leaked into renamed registry:\n%s", text)
	}
}

func TestObserveDuration(t *testing.T) {
	s := newSummary(4)
	s.ObserveDuration(1500 * time.Millisecond)
	if got := s.Quantile(1); got != 1.5 {
		t.Fatalf("duration observed as %v seconds, want 1.5", got)
	}
}

// TestEventLogRoundTrip writes events and decodes them back line by line.
func TestEventLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Emit("manifest", map[string]any{"seed": 42, "workers": 4, "tool": "hsd-train"})
	l.Emit("epoch", map[string]any{"iter": 100, "loss": 0.25, "val_accuracy": 0.9})
	l.Emit("epoch", nil)
	if err := l.Err(); err != nil {
		t.Fatalf("event log error: %v", err)
	}

	sc := bufio.NewScanner(&buf)
	var events []map[string]any
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", len(events)+1, err)
		}
		events = append(events, rec)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	if events[0]["event"] != "manifest" || events[0]["seed"] != float64(42) {
		t.Fatalf("manifest event mangled: %v", events[0])
	}
	if events[1]["event"] != "epoch" || events[1]["loss"] != 0.25 {
		t.Fatalf("epoch event mangled: %v", events[1])
	}
	if events[2]["event"] != "epoch" {
		t.Fatalf("nil-fields event mangled: %v", events[2])
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit("anything", map[string]any{"k": 1}) // must not panic
	if err := l.Err(); err != nil {
		t.Fatalf("nil event log reported error: %v", err)
	}
}

type failWriter struct{ calls int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.calls++
	return 0, errFail
}

var errFail = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestEventLogStickyError(t *testing.T) {
	fw := &failWriter{}
	l := NewEventLog(fw)
	l.Emit("a", nil)
	l.Emit("b", nil)
	if l.Err() == nil {
		t.Fatal("write failure not reported")
	}
	if fw.calls != 1 {
		t.Fatalf("writer called %d times after sticky error, want 1", fw.calls)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil {
		t.Fatal("Default registry is nil")
	}
	if Default() != Default() {
		t.Fatal("Default registry is not a singleton")
	}
}
