// Package obs is the repository's observability substrate: a
// concurrency-safe metrics registry (counters, gauges, exact integer
// histograms, sliding-window quantile summaries), span-style stage timers,
// and structured JSONL event logging. The training loop, the feature
// extractor, the worker pool, and the inference service all report through
// this one package, so every pipeline stage exposes the same
// Prometheus-flavoured text form and the same p50/p99 summaries
// (DESIGN.md, "Observability").
//
// Two contracts define the package:
//
//   - Instrumentation is strictly off the determinism-critical path.
//     Nothing read from a clock or a metric ever feeds a computation:
//     timers and counters are write-mostly sinks, scraped only for
//     humans and dashboards. Trained weights and served predictions are
//     bit-identical with or without instrumentation (enforced by parity
//     tests), and the `timing` analyzer of hsd-vet confines time.Now to
//     this package so every clock read in the tree is auditable here.
//
//   - Everything is safe for concurrent use. Instruments guard their own
//     state; the registry guards its series map; scraping concurrent with
//     recording is race-free (the race-detector test in obs_test.go pins
//     this).
//
// The package depends only on the standard library and imports nothing
// from this repository, so any package — including internal/parallel at
// the bottom of the stack — may instrument itself without import cycles.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair qualifying a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// renderLabels formats labels in the order given, e.g. `{a="x",b="y"}`;
// empty input renders as "". Label order is part of a series' rendered
// identity, so callers must pass labels in a consistent order (they do:
// every series is created at one call site).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// kind discriminates the instrument types a series can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindIntHist
	kindSummary
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindIntHist:
		return "inthist"
	case kindSummary:
		return "summary"
	}
	return "unknown"
}

// series is one registered (name, labels) instrument.
type series struct {
	name   string
	labels []Label
	id     string // name + rendered labels, the registry key and sort key
	kind   kind

	counter  *Counter
	gauge    *Gauge
	hist     *IntHist
	summary  *Summary
	histKey  string // IntHist: the label key its buckets render under
	gaugeFmt int    // Gauge: decimals; < 0 renders as an integer
}

// Registry is a set of named metric series. Instrument getters are
// idempotent: asking twice for the same (name, labels) returns the same
// instrument, so call sites need no registration phase. The zero value is
// not usable; build one with NewRegistry or use the process-wide Default.
type Registry struct {
	mu          sync.Mutex
	series      map[string]*series
	stageMetric string
}

// DefaultStageMetric is the metric name Stage and Span record under when
// SetStageMetric has not renamed it.
const DefaultStageMetric = "hsd_stage_seconds"

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series:      make(map[string]*series),
		stageMetric: DefaultStageMetric,
	}
}

// std is the process-wide registry. Library instrumentation (train,
// feature, parallel) records here; commands dump it via -metrics-out.
var std = NewRegistry()

// Default returns the process-wide registry. Metrics are pure
// observability — they never feed computation — so a process-global sink
// is safe: it cannot affect determinism, only describe the run.
func Default() *Registry { return std }

// SetStageMetric renames the series Stage and Span record under (default
// DefaultStageMetric). The serving layer sets "serve_stage_seconds" so its
// scrape keeps its historical series names.
func (r *Registry) SetStageMetric(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stageMetric = name
}

// get returns the series for (name, labels), creating it with the given
// kind on first use. A kind clash on an existing series is a programming
// error (two call sites fighting over one name) and panics, matching the
// fail-fast registration convention of every metrics library; any test
// that touches the path catches it.
func (r *Registry) get(name string, labels []Label, k kind) *series {
	id := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: labels, id: id, kind: k}
		switch k {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindIntHist:
			s.hist = &IntHist{counts: make(map[int]int64)}
		case kindSummary:
			s.summary = newSummary(0)
		}
		r.series[id] = s
	}
	if s.kind != k {
		panic(fmt.Sprintf("obs: series %s registered as %v, requested as %v", id, s.kind, k))
	}
	return s
}

// Counter returns the (monotone) counter series, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.get(name, labels, kindCounter).counter
}

// Gauge returns a settable gauge series rendered with prec decimals
// (prec < 0 renders the value as an integer), creating it on first use.
func (r *Registry) Gauge(name string, prec int, labels ...Label) *Gauge {
	s := r.get(name, labels, kindGauge)
	s.gaugeFmt = prec
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time by
// fn (which must not touch this registry, or the scrape deadlocks).
// Calling it again for the same series replaces the function.
func (r *Registry) GaugeFunc(name string, prec int, fn func() float64, labels ...Label) {
	s := r.get(name, labels, kindGauge)
	s.gaugeFmt = prec
	s.gauge.setFunc(fn)
}

// IntHist returns an exact integer histogram series whose buckets render
// as labelKey="<value>" entries, creating it on first use.
func (r *Registry) IntHist(name, labelKey string, labels ...Label) *IntHist {
	s := r.get(name, labels, kindIntHist)
	s.histKey = labelKey
	return s.hist
}

// Summary returns a sliding-window quantile summary series (window <= 0
// means DefaultWindow), creating it on first use. The window size is fixed
// at creation; later calls return the existing summary unchanged.
func (r *Registry) Summary(name string, window int, labels ...Label) *Summary {
	id := name + renderLabels(labels)
	r.mu.Lock()
	s, ok := r.series[id]
	if !ok {
		s = &series{name: name, labels: labels, id: id, kind: kindSummary, summary: newSummary(window)}
		r.series[id] = s
	}
	r.mu.Unlock()
	if s.kind != kindSummary {
		panic(fmt.Sprintf("obs: series %s registered as %v, requested as summary", id, s.kind))
	}
	return s.summary
}

// Stage returns the latency summary of one named pipeline stage — the
// series {stage="<name>"} of the registry's stage metric. Hierarchical
// stage names are "/"-separated ("train/step", "feature/dct").
func (r *Registry) Stage(stage string) *Summary {
	r.mu.Lock()
	metric := r.stageMetric
	r.mu.Unlock()
	return r.Summary(metric, 0, L("stage", stage))
}

// Counter is a monotonically increasing int64. Safe for concurrent use.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d (negative deltas are ignored; counters are monotone).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.n.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a point-in-time value: either set explicitly or computed at
// read time by a function (GaugeFunc). Safe for concurrent use.
type Gauge struct {
	mu sync.Mutex
	v  float64
	fn func() float64
}

// Set stores v (ignored while a GaugeFunc is installed).
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

func (g *Gauge) setFunc(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	fn, v := g.fn, g.v
	g.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return v
}

// IntHist is an exact histogram over integer observations (batch sizes,
// queue depths): every distinct value gets its own bucket, so the scrape
// is the full distribution, not an approximation. Safe for concurrent use.
type IntHist struct {
	mu     sync.Mutex
	counts map[int]int64
}

// Observe counts one occurrence of v.
func (h *IntHist) Observe(v int) {
	h.mu.Lock()
	h.counts[v]++
	h.mu.Unlock()
}

// Counts returns a copy of the value → count map.
func (h *IntHist) Counts() map[int]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int]int64, len(h.counts))
	for k, v := range h.counts {
		out[k] = v
	}
	return out
}

// Text renders every series in the Prometheus-flavoured plain-text form,
// sorted by series identity so scrapes are deterministic:
//
//	name{labels} value                        counters, gauges
//	name{labels,key="v"} count                integer histograms, per bucket
//	name_count{labels} n                      summaries: total observations
//	name{labels,q="p50"} seconds              summaries: window quantiles
//	name{labels,q="p99"} seconds
func (r *Registry) Text() string {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].id < all[j].id
	})

	var b strings.Builder
	for _, s := range all {
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, renderLabels(s.labels), s.counter.Value())
		case kindGauge:
			v := s.gauge.Value()
			if s.gaugeFmt < 0 {
				fmt.Fprintf(&b, "%s%s %d\n", s.name, renderLabels(s.labels), int64(v))
			} else {
				fmt.Fprintf(&b, "%s%s %.*f\n", s.name, renderLabels(s.labels), s.gaugeFmt, v)
			}
		case kindIntHist:
			counts := s.hist.Counts()
			keys := make([]int, 0, len(counts))
			for k := range counts {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				bucket := append(append([]Label{}, s.labels...), L(s.histKey, fmt.Sprintf("%d", k)))
				fmt.Fprintf(&b, "%s%s %d\n", s.name, renderLabels(bucket), counts[k])
			}
		case kindSummary:
			count, p50, p99 := s.summary.stats()
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, renderLabels(s.labels), count)
			for _, q := range [...]struct {
				tag string
				v   float64
			}{{"p50", p50}, {"p99", p99}} {
				quantile := append(append([]Label{}, s.labels...), L("q", q.tag))
				fmt.Fprintf(&b, "%s%s %.9f\n", s.name, renderLabels(quantile), q.v)
			}
			// Exemplar line: the window's slowest tagged observation,
			// labeled with its trace ID so the scrape links into
			// GET /debug/trace. Only summaries fed via ObserveExemplar
			// render it.
			if v, ex, ok := s.summary.Exemplar(); ok {
				exLabels := append(append([]Label{}, s.labels...), L("q", "max"), L("trace_id", ex))
				fmt.Fprintf(&b, "%s%s %.9f\n", s.name, renderLabels(exLabels), v)
			}
		}
	}
	return b.String()
}

// WriteText writes Text to w.
func (r *Registry) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, r.Text())
	return err
}

// SeriesSnapshot is a point-in-time copy of one series, for programmatic
// consumers (the serving layer rebuilds its typed snapshot from these).
type SeriesSnapshot struct {
	// Name and Labels identify the series.
	Name   string
	Labels []Label
	// Value holds counter and gauge readings.
	Value float64
	// Counts holds integer-histogram buckets (nil otherwise).
	Counts map[int]int64
	// Count, P50 and P99 hold summary statistics.
	Count    int64
	P50, P99 float64
}

// Label returns the value of the label named key ("" when absent).
func (s SeriesSnapshot) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Snapshot copies every series whose name matches one of names (all series
// when names is empty), in sorted series order.
func (r *Registry) Snapshot(names ...string) []SeriesSnapshot {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		if len(want) == 0 || want[s.name] {
			all = append(all, s)
		}
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })

	out := make([]SeriesSnapshot, 0, len(all))
	for _, s := range all {
		snap := SeriesSnapshot{Name: s.name, Labels: append([]Label{}, s.labels...)}
		switch s.kind {
		case kindCounter:
			snap.Value = float64(s.counter.Value())
		case kindGauge:
			snap.Value = s.gauge.Value()
		case kindIntHist:
			snap.Counts = s.hist.Counts()
		case kindSummary:
			snap.Count, snap.P50, snap.P99 = s.summary.stats()
		}
		out = append(out, snap)
	}
	return out
}
