package layout

import (
	"testing"

	"hotspot/internal/geom"
)

func dieCfg(workers int) DieConfig {
	return DieConfig{CellsX: 3, CellsY: 2, Seed: 42, Workers: workers}
}

func sameRects(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGenerateDieDeterministic(t *testing.T) {
	a, err := GenerateDie(dieCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDie(dieCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Frame != b.Frame || !sameRects(a.Rects, b.Rects) {
		t.Fatal("same config produced different dies")
	}
	if len(a.Rects) == 0 {
		t.Fatal("die has no geometry")
	}
	c, err := GenerateDie(DieConfig{CellsX: 3, CellsY: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if sameRects(a.Rects, c.Rects) {
		t.Fatal("different seeds produced identical dies")
	}
}

func TestGenerateDieWorkerInvariant(t *testing.T) {
	base, err := GenerateDie(dieCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		die, err := GenerateDie(dieCfg(w))
		if err != nil {
			t.Fatal(err)
		}
		if !sameRects(base.Rects, die.Rects) {
			t.Fatalf("die differs between 1 and %d workers", w)
		}
	}
}

func TestGenerateDieFrameAndBounds(t *testing.T) {
	cfg := dieCfg(0)
	die, err := GenerateDie(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := AllStyles()[0].ClipNM
	want := geom.R(0, 0, cfg.CellsX*cell, cfg.CellsY*cell)
	if die.Frame != want {
		t.Fatalf("die frame %v, want %v", die.Frame, want)
	}
	// Cells draw over their own windows, so geometry may poke past a cell
	// boundary by at most one feature — but every rect must intersect the
	// frame (NewClip's contract) and be canonical.
	for _, r := range die.Rects {
		if r.Canon() != r || r.Empty() {
			t.Fatalf("non-canonical or empty rect %v in die", r)
		}
	}
}

func TestGenerateDieCellNMOverride(t *testing.T) {
	cfg := DieConfig{CellsX: 2, CellsY: 2, CellNM: 600, Seed: 1}
	die, err := GenerateDie(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if die.Frame != geom.R(0, 0, 1200, 1200) {
		t.Fatalf("die frame %v, want 1200x1200", die.Frame)
	}
}

func TestGenerateDieValidate(t *testing.T) {
	bad := []DieConfig{
		{CellsX: 0, CellsY: 2},
		{CellsX: 2, CellsY: -1},
		{CellsX: 2, CellsY: 2, CellNM: -5},
		{CellsX: 2, CellsY: 2, Styles: []Style{}},
		{CellsX: 2, CellsY: 2, Styles: []Style{{Name: "broken"}}},
	}
	for i, cfg := range bad {
		if _, err := GenerateDie(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestDistrictStyleKeyedByDistrict(t *testing.T) {
	styles := AllStyles()
	a := districtStyle(styles, 9, 3, 5)
	b := districtStyle(styles, 9, 3, 5)
	if a.Name != b.Name {
		t.Fatal("district style not deterministic")
	}
	// Across many districts all styles should appear.
	seen := map[string]bool{}
	for d := 0; d < 64; d++ {
		seen[districtStyle(styles, 9, d%8, d/8).Name] = true
	}
	if len(seen) != len(styles) {
		t.Fatalf("only %d of %d styles drawn across 64 districts", len(seen), len(styles))
	}
}

func TestApplyEdit(t *testing.T) {
	die := geom.Clip{
		Frame: geom.R(0, 0, 1000, 1000),
		Rects: []geom.Rect{
			geom.R(100, 100, 200, 200), // inside region: removed
			geom.R(150, 350, 250, 450), // crosses region boundary: kept
			geom.R(600, 600, 700, 700), // outside region: kept
		},
	}
	e := Edit{
		Region: geom.R(50, 50, 400, 400),
		Rects:  []geom.Rect{geom.R(60, 60, 120, 120)},
	}
	out, dirty, err := ApplyEdit(die, e)
	if err != nil {
		t.Fatal(err)
	}
	if dirty != e.Region {
		t.Fatalf("dirty %v, want %v", dirty, e.Region)
	}
	want := []geom.Rect{
		geom.R(150, 350, 250, 450),
		geom.R(600, 600, 700, 700),
		geom.R(60, 60, 120, 120),
	}
	if !sameRects(out.Rects, want) {
		t.Fatalf("edited rects %v, want %v", out.Rects, want)
	}
	// Re-applying the same edit is a no-op on the layout modulo ordering of
	// the (identical) replacement set — the rescan benchmark repeats edits.
	again, _, err := ApplyEdit(out, e)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRects(again.Rects, out.Rects) {
		t.Fatalf("edit not idempotent: %v vs %v", again.Rects, out.Rects)
	}
}

func TestApplyEditErrors(t *testing.T) {
	die := geom.Clip{Frame: geom.R(0, 0, 1000, 1000)}
	if _, _, err := ApplyEdit(die, Edit{Region: geom.Rect{}}); err == nil {
		t.Error("expected error for empty region")
	}
	if _, _, err := ApplyEdit(die, Edit{Region: geom.R(900, 900, 1100, 1100)}); err == nil {
		t.Error("expected error for region outside frame")
	}
	if _, _, err := ApplyEdit(die, Edit{
		Region: geom.R(0, 0, 100, 100),
		Rects:  []geom.Rect{geom.R(50, 50, 150, 150)},
	}); err == nil {
		t.Error("expected error for replacement outside region")
	}
}
