package layout

import (
	"fmt"
	"math"
	"math/rand"

	"hotspot/internal/geom"
	"hotspot/internal/litho"
	"hotspot/internal/parallel"
)

// Sample is one labelled clip.
type Sample struct {
	Clip    geom.Clip
	Hotspot bool
}

// Counts gives the target composition of a suite, mirroring the four count
// columns of Table 2.
type Counts struct {
	TrainHS, TrainNHS, TestHS, TestNHS int
}

// Total returns the number of samples in the suite.
func (c Counts) Total() int { return c.TrainHS + c.TrainNHS + c.TestHS + c.TestNHS }

// Scale returns the counts multiplied by f (ceiling, minimum 2 per bucket),
// preserving Table 2's class ratios at reduced size.
func (c Counts) Scale(f float64) Counts {
	s := func(n int) int {
		v := int(math.Ceil(float64(n) * f))
		if v < 2 {
			v = 2
		}
		return v
	}
	return Counts{s(c.TrainHS), s(c.TrainNHS), s(c.TestHS), s(c.TestNHS)}
}

// PaperCounts returns the exact Table 2 composition for a benchmark name.
func PaperCounts(name string) (Counts, error) {
	switch name {
	case "ICCAD", "iccad":
		return Counts{TrainHS: 1204, TrainNHS: 17096, TestHS: 2524, TestNHS: 13503}, nil
	case "Industry1", "industry1":
		return Counts{TrainHS: 34281, TrainNHS: 15635, TestHS: 17157, TestNHS: 7801}, nil
	case "Industry2", "industry2":
		return Counts{TrainHS: 15197, TrainNHS: 48758, TestHS: 7520, TestNHS: 24457}, nil
	case "Industry3", "industry3":
		return Counts{TrainHS: 24776, TrainNHS: 49315, TestHS: 12228, TestNHS: 24817}, nil
	default:
		return Counts{}, fmt.Errorf("layout: unknown benchmark %q", name)
	}
}

// Suite is a complete labelled benchmark: training and testing samples.
type Suite struct {
	Name  string
	Train []Sample
	Test  []Sample
}

// BuildOptions controls suite construction.
type BuildOptions struct {
	// Seed drives all generation; the same seed yields the same suite
	// regardless of parallelism.
	Seed int64
	// Workers bounds generation parallelism; 0 means parallel.Default().
	Workers int
	// MaxAttempts bounds total candidate generation before giving up
	// (guards against styles whose hotspot rate cannot satisfy the
	// requested composition); 0 means 500 + 60×Total().
	MaxAttempts int
	// Litho overrides the oracle configuration; nil means
	// litho.DefaultConfig().
	Litho *litho.Config
}

// BuildSuite generates labelled clips for the style until the requested
// composition is met. Candidates are produced from per-index RNG streams
// and consumed in index order, so results are deterministic under any
// worker count. Hotspot candidates fill the train-HS then test-HS quotas;
// non-hotspots fill train-NHS then test-NHS.
func BuildSuite(style Style, counts Counts, opts BuildOptions) (*Suite, error) {
	if err := style.Validate(); err != nil {
		return nil, err
	}
	if counts.Total() <= 0 {
		return nil, fmt.Errorf("layout: suite composition is empty")
	}
	cfg := litho.DefaultConfig()
	if opts.Litho != nil {
		cfg = *opts.Litho
	}
	labeler, err := NewLabeler(style, cfg)
	if err != nil {
		return nil, err
	}
	workers := parallel.Workers(opts.Workers)
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 500 + 60*counts.Total()
	}

	suite := &Suite{Name: style.Name}
	needHS := counts.TrainHS + counts.TestHS
	needNHS := counts.TrainNHS + counts.TestNHS
	var hs, nhs []Sample

	chunk := workers * 8
	for attempt := 0; attempt < maxAttempts && (len(hs) < needHS || len(nhs) < needNHS); attempt += chunk {
		n := chunk
		if attempt+n > maxAttempts {
			n = maxAttempts - attempt
		}
		batch, err := generateBatch(style, labeler, opts.Seed, attempt, n, workers)
		if err != nil {
			return nil, err
		}
		for _, s := range batch {
			if s.Hotspot && len(hs) < needHS {
				hs = append(hs, s)
			} else if !s.Hotspot && len(nhs) < needNHS {
				nhs = append(nhs, s)
			}
		}
	}
	if len(hs) < needHS || len(nhs) < needNHS {
		return nil, fmt.Errorf("layout: style %q produced %d/%d hotspots and %d/%d non-hotspots within %d attempts",
			style.Name, len(hs), needHS, len(nhs), needNHS, maxAttempts)
	}
	suite.Train = append(suite.Train, hs[:counts.TrainHS]...)
	suite.Train = append(suite.Train, nhs[:counts.TrainNHS]...)
	suite.Test = append(suite.Test, hs[counts.TrainHS:needHS]...)
	suite.Test = append(suite.Test, nhs[counts.TrainNHS:needNHS]...)

	// Shuffle deterministically so class blocks are interleaved.
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5eed))
	rng.Shuffle(len(suite.Train), func(i, j int) { suite.Train[i], suite.Train[j] = suite.Train[j], suite.Train[i] })
	rng.Shuffle(len(suite.Test), func(i, j int) { suite.Test[i], suite.Test[j] = suite.Test[j], suite.Test[i] })
	return suite, nil
}

// generateBatch produces labelled candidates for indices base..base+n-1 on
// the shared worker-pool substrate, returned in index order. Each candidate
// is generated from its own RNG stream keyed by its global index, so the
// batch is identical under any worker count; the litho labeller is
// stateless and safe to share across workers.
func generateBatch(style Style, labeler *Labeler, seed int64, base, n, workers int) ([]Sample, error) {
	return parallel.Map(parallel.New(workers), n, func(_, i int) (Sample, error) {
		rng := rand.New(rand.NewSource(seed + int64(base+i)*0x9e3779b9))
		clip := Generate(style, rng)
		rep, err := labeler.Label(clip)
		if err != nil {
			return Sample{}, err
		}
		return Sample{Clip: clip, Hotspot: rep.Hotspot}, nil
	})
}

// HotspotRate estimates the style's raw hotspot probability from n
// candidates; used for calibration and reported by cmd/hsd-gen.
func HotspotRate(style Style, n int, seed int64, cfg litho.Config) (float64, error) {
	labeler, err := NewLabeler(style, cfg)
	if err != nil {
		return 0, err
	}
	batch, err := generateBatch(style, labeler, seed, 0, n, 0)
	if err != nil {
		return 0, err
	}
	hot := 0
	for _, s := range batch {
		if s.Hotspot {
			hot++
		}
	}
	return float64(hot) / float64(n), nil
}
