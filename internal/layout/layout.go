// Package layout generates synthetic metal-layer layout clips and labels
// them with the lithography oracle, standing in for the ICCAD 2012 contest
// layouts and the ASML industrial suites the paper evaluates on (neither is
// redistributable).
//
// Clips are Manhattan routing-style patterns — parallel wire tracks with
// segment breaks (line-ends), jogs, T-junctions and via-like squares —
// drawn on a manufacturing grid inside an extended window (clip + halo) so
// the optical model sees realistic surroundings. Drawn dimensions come from
// two bands: a safe band comfortably above the lithographic cliff and a
// risky band straddling it; per-clip risk draws decide how often risky
// dimensions appear, which controls each suite's hotspot rate. Whether a
// clip actually is a hotspot is decided by internal/litho's process-window
// analysis of the clip core, exactly mirroring how the real suites were
// labelled by lithography simulation.
package layout

import (
	"fmt"
	"math/rand"

	"hotspot/internal/geom"
	"hotspot/internal/litho"
	"hotspot/internal/raster"
)

// Style parameterizes a benchmark suite's pattern population. Dimensions
// are nanometres. Width and space values are drawn from [WidthRisk,
// WidthSafe) when a feature is risky and [WidthSafe, WidthMax] when safe
// (likewise for spaces); with the default lithography process the
// print/fail cliff sits around 58 nm width and 62 nm space, inside the
// risky band, so risky features fail at some process corner roughly half
// the time and the learning problem has genuinely hard cases on both sides
// of the boundary.
type Style struct {
	// Name identifies the suite (e.g. "ICCAD", "Industry1").
	Name string
	// ClipNM is the classified window side (the paper uses 1200 nm).
	ClipNM int
	// HaloNM is extra simulated context on each side of the clip.
	HaloNM int
	// GridNM is the manufacturing grid; all edges snap to it.
	GridNM int
	// WidthRisk <= WidthSafe <= WidthMax bound the wire width bands.
	WidthRisk, WidthSafe, WidthMax int
	// SpaceRisk <= SpaceSafe <= SpaceMax bound the spacing bands.
	SpaceRisk, SpaceSafe, SpaceMax int
	// RiskProb is the mean per-feature probability of drawing from the
	// risky band; the per-clip level varies uniformly in [0, 2·RiskProb].
	RiskProb float64
	// BreakProb is the per-track probability of a segment break (a
	// line-end pair) inside the window.
	BreakProb float64
	// JogProb is the per-track probability of a lateral jog.
	JogProb float64
	// StubProb is the per-track probability of an orthogonal stub
	// (T-junction arm) reaching toward the next track.
	StubProb float64
	// ViaProb is the per-track probability of a via-like square landed in
	// the space after the track.
	ViaProb float64
}

// Validate checks the style for usability.
func (s Style) Validate() error {
	if s.ClipNM <= 0 || s.HaloNM < 0 || s.GridNM <= 0 {
		return fmt.Errorf("layout: bad geometry params in style %q", s.Name)
	}
	if s.WidthRisk <= 0 || s.WidthSafe < s.WidthRisk || s.WidthMax < s.WidthSafe {
		return fmt.Errorf("layout: bad width bands in style %q", s.Name)
	}
	if s.SpaceRisk <= 0 || s.SpaceSafe < s.SpaceRisk || s.SpaceMax < s.SpaceSafe {
		return fmt.Errorf("layout: bad space bands in style %q", s.Name)
	}
	for _, p := range []float64{s.RiskProb, s.BreakProb, s.JogProb, s.StubProb, s.ViaProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("layout: probability out of [0,1] in style %q", s.Name)
		}
	}
	return nil
}

// WindowNM returns the extended (clip + halo) window side.
func (s Style) WindowNM() int { return s.ClipNM + 2*s.HaloNM }

// CoreRect returns the clip core within the extended window, in window
// coordinates.
func (s Style) CoreRect() geom.Rect {
	return geom.R(s.HaloNM, s.HaloNM, s.HaloNM+s.ClipNM, s.HaloNM+s.ClipNM)
}

// snap rounds v down to the style grid (never below one grid unit).
func (s Style) snap(v int) int {
	g := s.GridNM
	v = v / g * g
	if v < g {
		v = g
	}
	return v
}

// clipState carries the per-clip sampling context.
type clipState struct {
	style Style
	rng   *rand.Rand
	risk  float64 // per-feature risky-band probability for this clip
}

func (cs *clipState) risky() bool { return cs.rng.Float64() < cs.risk }

// drawBand samples uniformly from [lo, hi] snapped to grid.
func (cs *clipState) drawBand(lo, hi int) int {
	if hi <= lo {
		return cs.style.snap(lo)
	}
	return cs.style.snap(lo + cs.rng.Intn(hi-lo+1))
}

func (cs *clipState) width() int {
	st := cs.style
	if cs.risky() {
		return cs.drawBand(st.WidthRisk, st.WidthSafe-st.GridNM)
	}
	return cs.drawBand(st.WidthSafe, st.WidthMax)
}

// structMin is the minimum width for structural features (breaks, jogs,
// stubs) and, scaled up, vias: safely above the lithographic cliff so that
// baseline (risk-free) clips print cleanly.
func (cs *clipState) structMin() int { return cs.style.WidthSafe + 3*cs.style.GridNM }

// structWidth samples a width for a structural feature, respecting the
// structural floor. Stubs and jog arms never draw from the risky band:
// short arms that fail to print often sit inside the EPE tolerance and
// would produce label noise rather than learnable hotspots; the risky
// budget is spent on track widths, spaces and vias, whose failures are
// reliable.
func (cs *clipState) structWidth() int {
	st := cs.style
	lo := cs.structMin()
	hi := st.WidthMax
	if hi < lo {
		hi = lo
	}
	return cs.drawBand(lo, hi)
}

func (cs *clipState) space() int {
	st := cs.style
	if cs.risky() {
		return cs.drawBand(st.SpaceRisk, st.SpaceSafe-st.GridNM)
	}
	return cs.drawBand(st.SpaceSafe, st.SpaceMax)
}

// Generate produces one candidate clip: drawn geometry over the extended
// window. The same rng state always yields the same clip.
func Generate(style Style, rng *rand.Rand) geom.Clip {
	win := style.WindowNM()
	frame := geom.R(0, 0, win, win)
	return geom.NewClip(frame, geom.MergeTouching(generateWindow(style, rng, win)))
}

// generateWindow draws one window's worth of routing-style geometry over
// the square [0, win)² — the body of Generate, factored out so the die
// generator can draw cell-sized windows at arbitrary city positions. The
// rng draw sequence is exactly Generate's, so existing seeds reproduce the
// same clips.
func generateWindow(style Style, rng *rand.Rand, win int) []geom.Rect {
	cs := &clipState{
		style: style,
		rng:   rng,
		risk:  2 * style.RiskProb * rng.Float64(),
	}
	vertical := rng.Intn(2) == 0

	var rects []geom.Rect
	pos := -style.snap(rng.Intn(style.WidthMax + 1))
	for pos < win {
		width := cs.width()
		space := cs.space()
		rects = append(rects, genTrack(cs, pos, width, space, win, vertical)...)
		pos += width + space
	}
	return rects
}

// genTrack draws one routing track occupying [pos, pos+width] across the
// window, with the given clear space before the next track, plus optional
// breaks, jogs, stubs and vias that never violate the drawn space bands.
func genTrack(cs *clipState, pos, width, space, win int, vertical bool) []geom.Rect {
	st := cs.style
	rng := cs.rng
	var rects []geom.Rect
	lo, hi := pos, pos+width

	type seg struct{ a, b int }
	segs := []seg{{0, win}}
	// Line-end tips pull back much more than straight edges, so breaks are
	// placed only on structurally wide tracks, with safe tip-to-tip gaps:
	// tip pullback means drawn-risky gaps neither bridge nor open reliably,
	// so they would only add label noise. Breaks contribute pattern
	// diversity (and hard negatives), not hotspots.
	if rng.Float64() < st.BreakProb && width >= cs.structMin() {
		at := st.snap(win/4 + rng.Intn(win/2))
		gap := cs.drawBand(st.SpaceSafe, st.SpaceMax)
		segs = []seg{{0, at}, {at + gap, win}}
	}

	for _, sg := range segs {
		a, b := sg.a, sg.b
		if b-a < width {
			continue
		}
		if rng.Float64() < st.JogProb && b-a > 4*width && space > 2*st.GridNM &&
			width >= cs.structMin() {
			// Lateral jog toward the next track; the shifted run keeps a
			// freshly drawn space to it.
			g := cs.space()
			shift := space - g
			if shift > st.GridNM {
				shift = st.snap(st.GridNM + rng.Intn(shift-st.GridNM+1))
				at := st.snap(a + (b-a)/3 + rng.Intn((b-a)/3))
				rects = append(rects,
					orient(vertical, lo, a, hi, at+width),
					orient(vertical, lo, at, hi+shift, at+width),
					orient(vertical, lo+shift, at, hi+shift, b))
				continue
			}
		}
		rects = append(rects, orient(vertical, lo, a, hi, b))
	}

	if rng.Float64() < st.StubProb {
		// Orthogonal arm reaching into the space after the track: either a
		// full connection to the next track or a tip stopping one space
		// draw short of it.
		at := st.snap(win/6 + rng.Intn(2*win/3))
		stubW := cs.structWidth()
		var stubLen int
		if rng.Intn(2) == 0 {
			stubLen = space + st.GridNM*2 // lands on the next track
		} else {
			g := cs.space()
			stubLen = space - g
		}
		if stubLen >= st.GridNM {
			rects = append(rects, orient(vertical, hi, at, hi+stubLen, at+stubW))
		}
	}

	if rng.Float64() < st.ViaProb {
		// Via-like square in the space after the track, keeping a space
		// draw on each side. Isolated squares need generous sides to print
		// through defocus; risky draws use cliff-sized squares (dot
		// hotspot candidates).
		var side int
		if cs.risky() {
			side = cs.drawBand(st.WidthRisk+4*st.GridNM, st.WidthSafe+8*st.GridNM)
		} else {
			side = cs.drawBand(2*cs.structMin()-st.GridNM*4, 2*cs.structMin()+8*st.GridNM)
		}
		g1, g2 := cs.space(), cs.space()
		if g1+side+g2 <= space {
			at := st.snap(win/6 + rng.Intn(2*win/3))
			rects = append(rects, orient(vertical, hi+g1, at, hi+g1+side, at+side))
		}
	}

	return rects
}

// orient builds a rect in track coordinates: for vertical tracks the first
// axis is x, for horizontal tracks it is y.
func orient(vertical bool, lo, a, hi, b int) geom.Rect {
	if vertical {
		return geom.R(lo, a, hi, b).Canon()
	}
	return geom.R(a, lo, b, hi).Canon()
}

// Labeler wraps the lithography oracle for a given style.
type Labeler struct {
	style Style
	sim   *litho.Simulator
}

// NewLabeler builds a labeler from a style and simulator config.
func NewLabeler(style Style, cfg litho.Config) (*Labeler, error) {
	if err := style.Validate(); err != nil {
		return nil, err
	}
	sim, err := litho.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	return &Labeler{style: style, sim: sim}, nil
}

// Label rasterizes the clip at the simulator resolution and runs the
// process-window analysis over the clip core.
func (l *Labeler) Label(c geom.Clip) (litho.Report, error) {
	res := l.sim.Config().ResNM
	mask, err := raster.Rasterize(c, res)
	if err != nil {
		return litho.Report{}, err
	}
	core := l.style.CoreRect()
	region := litho.Region{
		X0: core.X0 / res, Y0: core.Y0 / res,
		X1: core.X1 / res, Y1: core.Y1 / res,
	}
	return l.sim.Analyze(mask, region)
}
