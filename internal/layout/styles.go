package layout

import "fmt"

// Suite styles mirroring the paper's four benchmarks (Table 2). The real
// suites differ in scale, density and pattern diversity; these styles encode
// those differences. Each style's RiskProb is calibrated so the raw hotspot
// rate approximates the suite's actual hotspot fraction in Table 2 (ICCAD
// ~11%, Industry1 ~69%, Industry2 ~24%, Industry3 ~33%), which keeps
// rejection sampling during suite construction cheap. Feature probabilities
// grow from ICCAD to Industry3: more jogs, junctions and vias mean more 2-D
// pattern diversity, which is what degrades the shallow baselines in the
// paper's Table 2.

// StyleICCAD models the merged 28 nm ICCAD 2012 contest suite.
func StyleICCAD() Style {
	return Style{
		Name:   "ICCAD",
		ClipNM: 1200, HaloNM: 200, GridNM: 8,
		WidthRisk: 36, WidthSafe: 72, WidthMax: 120,
		SpaceRisk: 36, SpaceSafe: 72, SpaceMax: 160,
		RiskProb:  0.013,
		BreakProb: 0.30, JogProb: 0.10, StubProb: 0.15, ViaProb: 0.10,
	}
}

// StyleIndustry1 models the first industrial suite: dense tracks, very
// hotspot-rich (the paper's training set has more hotspots than
// non-hotspots).
func StyleIndustry1() Style {
	return Style{
		Name:   "Industry1",
		ClipNM: 1200, HaloNM: 200, GridNM: 8,
		WidthRisk: 36, WidthSafe: 72, WidthMax: 96,
		SpaceRisk: 36, SpaceSafe: 72, SpaceMax: 120,
		RiskProb:  0.18,
		BreakProb: 0.50, JogProb: 0.20, StubProb: 0.25, ViaProb: 0.15,
	}
}

// StyleIndustry2 models the second industrial suite: wider dimension mix,
// more pattern diversity, mostly non-hotspot.
func StyleIndustry2() Style {
	return Style{
		Name:   "Industry2",
		ClipNM: 1200, HaloNM: 200, GridNM: 8,
		WidthRisk: 36, WidthSafe: 72, WidthMax: 112,
		SpaceRisk: 36, SpaceSafe: 72, SpaceMax: 144,
		RiskProb:  0.030,
		BreakProb: 0.40, JogProb: 0.25, StubProb: 0.30, ViaProb: 0.20,
	}
}

// StyleIndustry3 models the third industrial suite: the most diverse and
// the hardest (the paper's baselines degrade most here).
func StyleIndustry3() Style {
	return Style{
		Name:   "Industry3",
		ClipNM: 1200, HaloNM: 200, GridNM: 4,
		WidthRisk: 48, WidthSafe: 68, WidthMax: 104,
		SpaceRisk: 44, SpaceSafe: 68, SpaceMax: 136,
		RiskProb:  0.050,
		BreakProb: 0.50, JogProb: 0.30, StubProb: 0.35, ViaProb: 0.25,
	}
}

// StyleByName returns the style for a benchmark name.
func StyleByName(name string) (Style, error) {
	switch name {
	case "ICCAD", "iccad":
		return StyleICCAD(), nil
	case "Industry1", "industry1":
		return StyleIndustry1(), nil
	case "Industry2", "industry2":
		return StyleIndustry2(), nil
	case "Industry3", "industry3":
		return StyleIndustry3(), nil
	default:
		return Style{}, fmt.Errorf("layout: unknown benchmark style %q", name)
	}
}

// AllStyles returns the four benchmark styles in Table 2 order.
func AllStyles() []Style {
	return []Style{StyleICCAD(), StyleIndustry1(), StyleIndustry2(), StyleIndustry3()}
}
