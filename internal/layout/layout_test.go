package layout

import (
	"math/rand"
	"testing"

	"hotspot/internal/geom"
	"hotspot/internal/litho"
	"hotspot/internal/raster"
)

// testStyle is a reduced-size style for fast tests: smaller window, higher
// risk so both classes appear quickly.
func testStyle() Style {
	return Style{
		Name:   "test",
		ClipNM: 600, HaloNM: 160, GridNM: 4,
		WidthRisk: 48, WidthSafe: 68, WidthMax: 104,
		SpaceRisk: 44, SpaceSafe: 68, SpaceMax: 136,
		RiskProb:  0.25,
		BreakProb: 0.4, JogProb: 0.2, StubProb: 0.25, ViaProb: 0.2,
	}
}

func TestAllStylesValidate(t *testing.T) {
	for _, st := range AllStyles() {
		if err := st.Validate(); err != nil {
			t.Errorf("style %s invalid: %v", st.Name, err)
		}
	}
	if err := testStyle().Validate(); err != nil {
		t.Errorf("test style invalid: %v", err)
	}
}

func TestStyleValidateRejectsBad(t *testing.T) {
	mutations := []func(*Style){
		func(s *Style) { s.ClipNM = 0 },
		func(s *Style) { s.GridNM = 0 },
		func(s *Style) { s.HaloNM = -1 },
		func(s *Style) { s.WidthRisk = 0 },
		func(s *Style) { s.WidthSafe = s.WidthRisk - 4 },
		func(s *Style) { s.WidthMax = s.WidthSafe - 4 },
		func(s *Style) { s.SpaceRisk = -4 },
		func(s *Style) { s.SpaceMax = 0 },
		func(s *Style) { s.RiskProb = 1.5 },
		func(s *Style) { s.BreakProb = -0.1 },
	}
	for i, m := range mutations {
		st := testStyle()
		m(&st)
		if err := st.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestStyleByName(t *testing.T) {
	for _, name := range []string{"ICCAD", "Industry1", "Industry2", "Industry3", "iccad", "industry3"} {
		if _, err := StyleByName(name); err != nil {
			t.Errorf("StyleByName(%q): %v", name, err)
		}
	}
	if _, err := StyleByName("nope"); err == nil {
		t.Error("expected error for unknown style")
	}
}

func TestWindowAndCore(t *testing.T) {
	st := testStyle()
	if st.WindowNM() != 600+2*160 {
		t.Fatalf("WindowNM = %d", st.WindowNM())
	}
	core := st.CoreRect()
	if core != geom.R(160, 160, 760, 760) {
		t.Fatalf("CoreRect = %v", core)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	st := testStyle()
	a := Generate(st, rand.New(rand.NewSource(7)))
	b := Generate(st, rand.New(rand.NewSource(7)))
	if len(a.Rects) != len(b.Rects) {
		t.Fatalf("rect counts differ: %d vs %d", len(a.Rects), len(b.Rects))
	}
	for i := range a.Rects {
		if a.Rects[i] != b.Rects[i] {
			t.Fatalf("rect %d differs: %v vs %v", i, a.Rects[i], b.Rects[i])
		}
	}
	c := Generate(st, rand.New(rand.NewSource(8)))
	if len(a.Rects) == len(c.Rects) {
		same := true
		for i := range a.Rects {
			if a.Rects[i] != c.Rects[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical clips")
		}
	}
}

func TestGenerateGeometryInWindow(t *testing.T) {
	st := testStyle()
	for seed := int64(0); seed < 20; seed++ {
		clip := Generate(st, rand.New(rand.NewSource(seed)))
		if clip.Frame.W() != st.WindowNM() {
			t.Fatalf("frame width %d", clip.Frame.W())
		}
		for _, r := range clip.Rects {
			if !clip.Frame.ContainsRect(r) {
				t.Fatalf("seed %d: rect %v escapes frame", seed, r)
			}
			if r.Empty() {
				t.Fatalf("seed %d: empty rect emitted", seed)
			}
		}
	}
}

func TestGenerateOnGrid(t *testing.T) {
	st := testStyle()
	for seed := int64(0); seed < 10; seed++ {
		clip := Generate(st, rand.New(rand.NewSource(seed)))
		for _, r := range clip.Rects {
			// Frame-clipped edges may sit on the window boundary; interior
			// edges must be on the manufacturing grid.
			for _, v := range []int{r.X0, r.Y0, r.X1, r.Y1} {
				if v%st.GridNM != 0 && v != clip.Frame.X1 {
					t.Fatalf("seed %d: off-grid coordinate %d in %v", seed, v, r)
				}
			}
		}
	}
}

func TestGenerateDensityReasonable(t *testing.T) {
	st := testStyle()
	low, high := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		clip := Generate(st, rand.New(rand.NewSource(seed)))
		d := clip.Density()
		if d < 0.10 {
			low++
		}
		if d > 0.75 {
			high++
		}
	}
	if low > 3 || high > 3 {
		t.Fatalf("densities out of expected range too often: %d low, %d high", low, high)
	}
}

func TestLabelerProducesBothClasses(t *testing.T) {
	st := testStyle()
	labeler, err := NewLabeler(st, litho.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := 0, 0
	for seed := int64(0); seed < 40 && (hot == 0 || cold == 0); seed++ {
		clip := Generate(st, rand.New(rand.NewSource(seed)))
		rep, err := labeler.Label(clip)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Hotspot {
			hot++
		} else {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("labeler produced one-sided labels: %d hot, %d cold", hot, cold)
	}
}

func TestNewLabelerRejectsBadInputs(t *testing.T) {
	bad := testStyle()
	bad.GridNM = 0
	if _, err := NewLabeler(bad, litho.DefaultConfig()); err == nil {
		t.Fatal("expected style validation error")
	}
	cfg := litho.DefaultConfig()
	cfg.ResNM = 0
	if _, err := NewLabeler(testStyle(), cfg); err == nil {
		t.Fatal("expected litho validation error")
	}
}

func TestPaperCounts(t *testing.T) {
	c, err := PaperCounts("ICCAD")
	if err != nil {
		t.Fatal(err)
	}
	if c.TrainHS != 1204 || c.TrainNHS != 17096 || c.TestHS != 2524 || c.TestNHS != 13503 {
		t.Fatalf("ICCAD counts wrong: %+v", c)
	}
	if c.Total() != 1204+17096+2524+13503 {
		t.Fatalf("Total = %d", c.Total())
	}
	for _, n := range []string{"Industry1", "Industry2", "Industry3"} {
		if _, err := PaperCounts(n); err != nil {
			t.Errorf("PaperCounts(%q): %v", n, err)
		}
	}
	if _, err := PaperCounts("bogus"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestCountsScale(t *testing.T) {
	c := Counts{TrainHS: 1000, TrainNHS: 2000, TestHS: 500, TestNHS: 100}
	s := c.Scale(0.01)
	if s.TrainHS != 10 || s.TrainNHS != 20 || s.TestHS != 5 || s.TestNHS != 2 {
		t.Fatalf("scaled counts: %+v", s)
	}
	// Minimum of 2 per bucket.
	tiny := Counts{TrainHS: 1, TrainNHS: 1, TestHS: 1, TestNHS: 1}.Scale(0.001)
	if tiny.TrainHS != 2 || tiny.TestNHS != 2 {
		t.Fatalf("minimum not enforced: %+v", tiny)
	}
}

func TestBuildSuiteComposition(t *testing.T) {
	st := testStyle()
	counts := Counts{TrainHS: 3, TrainNHS: 6, TestHS: 2, TestNHS: 4}
	suite, err := BuildSuite(st, counts, BuildOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Train) != 9 || len(suite.Test) != 6 {
		t.Fatalf("suite sizes: %d train, %d test", len(suite.Train), len(suite.Test))
	}
	trainHS, testHS := 0, 0
	for _, s := range suite.Train {
		if s.Hotspot {
			trainHS++
		}
	}
	for _, s := range suite.Test {
		if s.Hotspot {
			testHS++
		}
	}
	if trainHS != 3 || testHS != 2 {
		t.Fatalf("hotspot composition: train %d, test %d", trainHS, testHS)
	}
}

func TestBuildSuiteDeterministicAcrossWorkers(t *testing.T) {
	st := testStyle()
	counts := Counts{TrainHS: 2, TrainNHS: 4, TestHS: 2, TestNHS: 2}
	a, err := BuildSuite(st, counts, BuildOptions{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSuite(st, counts, BuildOptions{Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Train) != len(b.Train) {
		t.Fatal("train sizes differ across worker counts")
	}
	for i := range a.Train {
		if a.Train[i].Hotspot != b.Train[i].Hotspot ||
			len(a.Train[i].Clip.Rects) != len(b.Train[i].Clip.Rects) {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
}

func TestBuildSuiteErrors(t *testing.T) {
	st := testStyle()
	if _, err := BuildSuite(st, Counts{}, BuildOptions{Seed: 1}); err == nil {
		t.Fatal("expected empty-composition error")
	}
	bad := st
	bad.GridNM = 0
	if _, err := BuildSuite(bad, Counts{TrainHS: 1, TrainNHS: 1, TestHS: 1, TestNHS: 1}, BuildOptions{Seed: 1}); err == nil {
		t.Fatal("expected style error")
	}
	// Impossible composition within a tiny attempt budget.
	if _, err := BuildSuite(st, Counts{TrainHS: 100000, TrainNHS: 1, TestHS: 1, TestNHS: 1},
		BuildOptions{Seed: 1, MaxAttempts: 8}); err == nil {
		t.Fatal("expected attempt-budget error")
	}
}

func TestHotspotRateSmoke(t *testing.T) {
	r, err := HotspotRate(testStyle(), 20, 3, litho.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > 1 {
		t.Fatalf("rate %v out of range", r)
	}
}

func TestGeneratedClipsRespectDRCFloor(t *testing.T) {
	// The generator's contract: drawn widths and spaces never fall below
	// the risky-band floor (36 nm here), so a raster DRC just under that
	// floor must pass for every clip, risky features included.
	st := testStyle()
	st.RiskProb = 0.4 // plenty of risky features
	res := 4
	floorPx := st.WidthRisk/res - 1 // just under the 36 nm floor
	for seed := int64(0); seed < 8; seed++ {
		clip := Generate(st, rand.New(rand.NewSource(seed)))
		im, err := raster.Rasterize(clip, res)
		if err != nil {
			t.Fatal(err)
		}
		region := litho.Region{X0: 8, Y0: 8, X1: im.W - 8, Y1: im.H - 8}
		v, err := litho.CheckRules(im, region, floorPx, floorPx)
		if err != nil {
			t.Fatal(err)
		}
		if v.WidthPixels != 0 {
			t.Fatalf("seed %d: drawn width below the generator floor: %+v", seed, v)
		}
	}
}
