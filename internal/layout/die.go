package layout

import (
	"fmt"
	"math/rand"

	"hotspot/internal/geom"
	"hotspot/internal/parallel"
)

// This file grows the per-clip generator to die scale, following the
// city-block recipe of the "Automatic Layout Generation" line of work
// (PAPERS.md): a full synthetic die is a grid of clip-sized cells grouped
// into districts, each district drawing its geometry from one of the
// benchmark styles in styles.go. The result is the whole-layout input the
// streaming scan engine (internal/scan) strides the detector across —
// per-clip classification is the paper's evaluation, full-die scanning is
// the deployment.

// DieConfig parameterizes deterministic city-scale die generation.
type DieConfig struct {
	// CellsX, CellsY give the city grid in clip-sized cells.
	CellsX, CellsY int
	// CellNM is the cell side in nanometres; 0 means the first style's
	// ClipNM. Every cell is drawn independently over its own window.
	CellNM int
	// Seed drives all generation. The same configuration always produces
	// the same die, under any worker count.
	Seed int64
	// Styles are the district styles; nil means AllStyles(). Districts of
	// DistrictCells×DistrictCells cells share one style, giving the die
	// city-like regions of distinct track geometry.
	Styles []Style
	// DistrictCells is the district side in cells; 0 means 2.
	DistrictCells int
	// Workers bounds generation parallelism; 0 means parallel.Default().
	Workers int
}

// Validate checks the configuration.
func (c DieConfig) Validate() error {
	if c.CellsX <= 0 || c.CellsY <= 0 {
		return fmt.Errorf("layout: die needs a positive cell grid, got %dx%d", c.CellsX, c.CellsY)
	}
	if c.CellNM < 0 || c.DistrictCells < 0 {
		return fmt.Errorf("layout: negative die geometry (cell %d nm, district %d cells)", c.CellNM, c.DistrictCells)
	}
	styles := c.Styles
	if styles == nil {
		styles = AllStyles()
	}
	if len(styles) == 0 {
		return fmt.Errorf("layout: die needs at least one style")
	}
	for _, s := range styles {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// GenerateDie produces a full synthetic die: a CellsX×CellsY city of
// independently drawn cells, styled per district. Each cell's geometry
// comes from its own position-keyed RNG stream and cells are concatenated
// in index order, so the die is bit-identical under any worker count.
func GenerateDie(cfg DieConfig) (geom.Clip, error) {
	if err := cfg.Validate(); err != nil {
		return geom.Clip{}, err
	}
	styles := cfg.Styles
	if styles == nil {
		styles = AllStyles()
	}
	cellNM := cfg.CellNM
	if cellNM == 0 {
		cellNM = styles[0].ClipNM
	}
	district := cfg.DistrictCells
	if district == 0 {
		district = 2
	}
	frame := geom.R(0, 0, cfg.CellsX*cellNM, cfg.CellsY*cellNM)
	cells, err := parallel.Map(parallel.New(cfg.Workers), cfg.CellsX*cfg.CellsY, func(_, i int) ([]geom.Rect, error) {
		cx, cy := i%cfg.CellsX, i/cfg.CellsX
		style := districtStyle(styles, cfg.Seed, cx/district, cy/district)
		rng := rand.New(rand.NewSource(cfg.Seed + 0x5ca0 + int64(i)*0x9e3779b9))
		rects := geom.MergeTouching(generateWindow(style, rng, cellNM))
		dx, dy := cx*cellNM, cy*cellNM
		for j, r := range rects {
			rects[j] = r.Translate(dx, dy)
		}
		return rects, nil
	})
	if err != nil {
		return geom.Clip{}, err
	}
	var all []geom.Rect
	for _, rs := range cells {
		all = append(all, rs...)
	}
	return geom.NewClip(frame, all), nil
}

// districtStyle picks the style of district (dx, dy) from its own keyed
// stream, so neighbouring districts vary independently of the cell draws.
func districtStyle(styles []Style, seed int64, dx, dy int) Style {
	if len(styles) == 1 {
		return styles[0]
	}
	rng := rand.New(rand.NewSource(seed ^ 0xd157 + int64(dy)*0xf00d1 + int64(dx)*0x2b))
	return styles[rng.Intn(len(styles))]
}

// Edit is one localized layout change: every rectangle lying entirely
// inside Region is removed and Rects (each contained in Region) are drawn
// in its place. Pixels outside Region are untouched — geometry that merely
// crosses the region boundary is kept — which is what lets the scan engine
// bound invalidation to the blocks Region overlaps.
type Edit struct {
	// Region is the replaced window, in die coordinates.
	Region geom.Rect
	// Rects is the replacement geometry; nil clears the region.
	Rects []geom.Rect
}

// ApplyEdit returns the edited die and the dirty rectangle (the edit
// region). Surviving rectangles keep their original order and replacements
// are appended after them, so an incremental re-rasterization of the dirty
// blocks sees the same rectangle sequence a cold rasterization of the
// edited die does — the bit-identity contract of incremental re-scan
// rests on exactly this.
func ApplyEdit(die geom.Clip, e Edit) (geom.Clip, geom.Rect, error) {
	if e.Region.Empty() {
		return geom.Clip{}, geom.Rect{}, fmt.Errorf("layout: edit region %v is empty", e.Region)
	}
	if !die.Frame.ContainsRect(e.Region) {
		return geom.Clip{}, geom.Rect{}, fmt.Errorf("layout: edit region %v outside die frame %v", e.Region, die.Frame)
	}
	for _, r := range e.Rects {
		if !e.Region.ContainsRect(r.Canon()) {
			return geom.Clip{}, geom.Rect{}, fmt.Errorf("layout: edit rect %v outside region %v", r, e.Region)
		}
	}
	out := geom.Clip{Frame: die.Frame, Rects: make([]geom.Rect, 0, len(die.Rects)+len(e.Rects))}
	for _, r := range die.Rects {
		if !e.Region.ContainsRect(r) {
			out.Rects = append(out.Rects, r)
		}
	}
	for _, r := range e.Rects {
		rc := r.Canon()
		if !rc.Empty() {
			out.Rects = append(out.Rects, rc)
		}
	}
	return out, e.Region, nil
}
