// Package raster converts layout geometry (geom.Clip) into pixel grids.
//
// The rasterizer is area-accurate: a pixel's value is the fraction of its
// area covered by drawn geometry, so any integer resolution (nanometres per
// pixel) yields an unbiased grayscale rendering. At 1 nm/px the output is
// the exact binary mask the paper operates on; coarser grids are used to
// trade accuracy for speed in tests and large sweeps.
package raster

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"hotspot/internal/geom"
)

// Image is a dense row-major 2-D grid of float64 pixel values in [0, 1].
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage returns a zero-filled W×H image.
func NewImage(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("raster: negative image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the pixel at (x, y); y indexes rows.
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set stores v at (x, y).
func (im *Image) Set(x, y int, v float64) { im.Pix[y*im.W+x] = v }

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	c := NewImage(im.W, im.H)
	copy(c.Pix, im.Pix)
	return c
}

// Sum returns the sum of all pixel values.
func (im *Image) Sum() float64 {
	s := 0.0
	for _, v := range im.Pix {
		s += v
	}
	return s
}

// Mean returns the average pixel value (0 for an empty image).
func (im *Image) Mean() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	return im.Sum() / float64(len(im.Pix))
}

// Threshold returns a binary image: 1 where im >= th, else 0.
func (im *Image) Threshold(th float64) *Image {
	out := NewImage(im.W, im.H)
	for i, v := range im.Pix {
		if v >= th {
			out.Pix[i] = 1
		}
	}
	return out
}

// SubImage copies the window [x0,x1)×[y0,y1) into a new image. The window
// must lie within the image.
func (im *Image) SubImage(x0, y0, x1, y1 int) (*Image, error) {
	if x0 < 0 || y0 < 0 || x1 > im.W || y1 > im.H || x0 > x1 || y0 > y1 {
		return nil, fmt.Errorf("raster: subimage window (%d,%d)-(%d,%d) outside %dx%d", x0, y0, x1, y1, im.W, im.H)
	}
	out := NewImage(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], im.Pix[y*im.W+x0:y*im.W+x1])
	}
	return out, nil
}

// Rasterize renders a clip at the given resolution (nanometres per pixel).
// The output has ceil(frame/res) pixels per side; each pixel holds its
// covered-area fraction. Overlapping rectangles saturate at 1.
func Rasterize(c geom.Clip, resNM int) (*Image, error) {
	if resNM <= 0 {
		return nil, fmt.Errorf("raster: resolution must be positive, got %d", resNM)
	}
	n := c.Normalize()
	w := (n.Frame.W() + resNM - 1) / resNM
	h := (n.Frame.H() + resNM - 1) / resNM
	im := NewImage(w, h)
	area := float64(resNM) * float64(resNM)
	for _, r := range n.Rects {
		px0 := r.X0 / resNM
		px1 := (r.X1 + resNM - 1) / resNM
		py0 := r.Y0 / resNM
		py1 := (r.Y1 + resNM - 1) / resNM
		for py := py0; py < py1 && py < h; py++ {
			cellY0, cellY1 := py*resNM, (py+1)*resNM
			ovY := minInt(r.Y1, cellY1) - maxInt(r.Y0, cellY0)
			if ovY <= 0 {
				continue
			}
			row := im.Pix[py*w:]
			for px := px0; px < px1 && px < w; px++ {
				cellX0, cellX1 := px*resNM, (px+1)*resNM
				ovX := minInt(r.X1, cellX1) - maxInt(r.X0, cellX0)
				if ovX <= 0 {
					continue
				}
				v := row[px] + float64(ovX)*float64(ovY)/area
				if v > 1 {
					v = 1
				}
				row[px] = v
			}
		}
	}
	return im, nil
}

// ASCII renders the image as a small text picture using a 4-level ramp; a
// debugging aid for examples and golden tests.
func (im *Image) ASCII() string {
	ramp := []byte(" .:#")
	out := make([]byte, 0, (im.W+1)*im.H)
	for y := im.H - 1; y >= 0; y-- { // print with y increasing upwards
		for x := 0; x < im.W; x++ {
			v := im.At(x, y)
			idx := int(math.Floor(v * float64(len(ramp))))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

// Downsample returns the image reduced by an integer factor using box
// averaging. The image dimensions must be divisible by the factor.
func (im *Image) Downsample(factor int) (*Image, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("raster: downsample factor must be positive, got %d", factor)
	}
	if im.W%factor != 0 || im.H%factor != 0 {
		return nil, fmt.Errorf("raster: image %dx%d not divisible by factor %d", im.W, im.H, factor)
	}
	w, h := im.W/factor, im.H/factor
	out := NewImage(w, h)
	inv := 1.0 / float64(factor*factor)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for dy := 0; dy < factor; dy++ {
				row := im.Pix[(y*factor+dy)*im.W:]
				for dx := 0; dx < factor; dx++ {
					s += row[x*factor+dx]
				}
			}
			out.Pix[y*w+x] = s * inv
		}
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WritePGM writes the image as a binary 8-bit PGM (portable graymap),
// clamping pixel values to [0, 1]. Rows are written top-down per PGM
// convention (our y axis points up, so the image is flipped on output).
// PGM is the simplest interchange format every image tool can open, which
// makes masks and aerial images inspectable without any dependencies.
func (im *Image) WritePGM(w io.Writer) error {
	if im.W == 0 || im.H == 0 {
		return fmt.Errorf("raster: cannot encode empty %dx%d image", im.W, im.H)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]byte, im.W)
	for y := im.H - 1; y >= 0; y-- {
		for x := 0; x < im.W; x++ {
			v := im.At(x, y)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			row[x] = byte(v*255 + 0.5)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// ReadPGM parses a binary 8-bit PGM written by WritePGM (or any P5 file
// with maxval 255), inverting the top-down row order back to y-up.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("raster: bad PGM header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("raster: unsupported PGM magic %q", magic)
	}
	if w <= 0 || h <= 0 || maxval != 255 {
		return nil, fmt.Errorf("raster: unsupported PGM geometry %dx%d maxval %d", w, h, maxval)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	im := NewImage(w, h)
	row := make([]byte, w)
	for y := h - 1; y >= 0; y-- {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("raster: truncated PGM: %w", err)
		}
		for x, b := range row {
			im.Set(x, y, float64(b)/255)
		}
	}
	return im, nil
}
