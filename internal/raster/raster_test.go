package raster

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hotspot/internal/geom"
)

func TestRasterizeExactBinary(t *testing.T) {
	// At 1 nm/px with nm-aligned geometry the raster is exactly binary.
	c := geom.NewClip(geom.R(0, 0, 10, 10), []geom.Rect{geom.R(2, 3, 7, 8)})
	im, err := Rasterize(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 10 || im.H != 10 {
		t.Fatalf("image size %dx%d", im.W, im.H)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			want := 0.0
			if x >= 2 && x < 7 && y >= 3 && y < 8 {
				want = 1.0
			}
			if im.At(x, y) != want {
				t.Fatalf("pixel (%d,%d) = %v, want %v", x, y, im.At(x, y), want)
			}
		}
	}
}

func TestRasterizePartialCoverage(t *testing.T) {
	// A 5-nm-wide stripe at 10 nm/px covers half of each pixel column.
	c := geom.NewClip(geom.R(0, 0, 10, 20), []geom.Rect{geom.R(0, 0, 5, 20)})
	im, err := Rasterize(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 1 || im.H != 2 {
		t.Fatalf("image size %dx%d", im.W, im.H)
	}
	if im.At(0, 0) != 0.5 || im.At(0, 1) != 0.5 {
		t.Fatalf("partial coverage = %v, %v, want 0.5", im.At(0, 0), im.At(0, 1))
	}
}

func TestRasterizeOverlapSaturates(t *testing.T) {
	c := geom.NewClip(geom.R(0, 0, 4, 4), []geom.Rect{
		geom.R(0, 0, 4, 4), geom.R(0, 0, 4, 4),
	})
	im, err := Rasterize(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range im.Pix {
		if v != 1 {
			t.Fatalf("overlap should saturate at 1, got %v", v)
		}
	}
}

func TestRasterizeErrors(t *testing.T) {
	c := geom.NewClip(geom.R(0, 0, 4, 4), nil)
	if _, err := Rasterize(c, 0); err == nil {
		t.Fatal("expected error for non-positive resolution")
	}
	if _, err := Rasterize(c, -3); err == nil {
		t.Fatal("expected error for negative resolution")
	}
}

func TestRasterizeTranslationInvariance(t *testing.T) {
	a := geom.NewClip(geom.R(0, 0, 40, 40), []geom.Rect{geom.R(4, 8, 20, 12)})
	b := geom.NewClip(geom.R(1000, 2000, 1040, 2040), []geom.Rect{geom.R(1004, 2008, 1020, 2012)})
	ia, _ := Rasterize(a, 4)
	ib, _ := Rasterize(b, 4)
	for i := range ia.Pix {
		if ia.Pix[i] != ib.Pix[i] {
			t.Fatal("rasterization should be translation invariant")
		}
	}
}

// Property: total rasterized mass equals drawn area / pixel area for
// non-overlapping geometry, at any resolution.
func TestRasterizeMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		res := []int{1, 2, 4, 5, 8}[r.Intn(5)]
		frame := geom.R(0, 0, 120, 120)
		// Disjoint horizontal stripes.
		var rects []geom.Rect
		y := r.Intn(5)
		for y < 110 {
			h := 1 + r.Intn(12)
			if y+h > 120 {
				break
			}
			x0 := r.Intn(40)
			x1 := x0 + 1 + r.Intn(80-x0+39)
			if x1 > 120 {
				x1 = 120
			}
			rects = append(rects, geom.R(x0, y, x1, y+h))
			y += h + 1 + r.Intn(8)
		}
		c := geom.NewClip(frame, rects)
		im, err := Rasterize(c, res)
		if err != nil {
			return false
		}
		wantMass := float64(c.DrawnArea()) / float64(res*res)
		return math.Abs(im.Sum()-wantMass) < 1e-9*(1+wantMass)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubImage(t *testing.T) {
	im := NewImage(4, 4)
	for i := range im.Pix {
		im.Pix[i] = float64(i)
	}
	sub, err := im.SubImage(1, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 2 || sub.H != 2 {
		t.Fatalf("sub size %dx%d", sub.W, sub.H)
	}
	if sub.At(0, 0) != 5 || sub.At(1, 1) != 10 {
		t.Fatalf("sub values: %v", sub.Pix)
	}
	if _, err := im.SubImage(-1, 0, 2, 2); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := im.SubImage(0, 0, 5, 2); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestThreshold(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0], im.Pix[1] = 0.3, 0.7
	b := im.Threshold(0.5)
	if b.Pix[0] != 0 || b.Pix[1] != 1 {
		t.Fatalf("threshold: %v", b.Pix)
	}
	// Boundary is inclusive.
	b2 := im.Threshold(0.7)
	if b2.Pix[1] != 1 {
		t.Fatal("threshold should be inclusive")
	}
}

func TestDownsample(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, 1)
	im.Set(1, 0, 1)
	im.Set(0, 1, 1)
	im.Set(1, 1, 1)
	d, err := im.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsample size %dx%d", d.W, d.H)
	}
	if d.At(0, 0) != 1 || d.At(1, 0) != 0 || d.At(0, 1) != 0 || d.At(1, 1) != 0 {
		t.Fatalf("downsample values: %v", d.Pix)
	}
	if _, err := im.Downsample(3); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := im.Downsample(0); err == nil {
		t.Fatal("expected positive-factor error")
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := NewImage(8, 8)
		for i := range im.Pix {
			im.Pix[i] = r.Float64()
		}
		d, err := im.Downsample(2)
		if err != nil {
			return false
		}
		return math.Abs(d.Mean()-im.Mean()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestASCII(t *testing.T) {
	im := NewImage(3, 2)
	im.Set(0, 0, 1)
	s := im.ASCII()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("ASCII lines = %d", len(lines))
	}
	// y=0 row prints last (bottom).
	if lines[1][0] != '#' {
		t.Fatalf("ASCII bottom-left = %q", lines[1][0])
	}
	if lines[0][0] != ' ' {
		t.Fatalf("ASCII top-left = %q", lines[0][0])
	}
}

func TestMeanEmpty(t *testing.T) {
	im := NewImage(0, 0)
	if im.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestCloneIndependent(t *testing.T) {
	im := NewImage(2, 2)
	c := im.Clone()
	c.Set(0, 0, 5)
	if im.At(0, 0) != 0 {
		t.Fatal("clone shares pixels")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	im := NewImage(7, 5)
	for i := range im.Pix {
		im.Pix[i] = float64(i%256) / 255
	}
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("roundtrip size %dx%d", got.W, got.H)
	}
	for i := range im.Pix {
		if math.Abs(got.Pix[i]-im.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v vs %v", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestPGMClampsOutOfRange(t *testing.T) {
	im := NewImage(2, 1)
	im.Pix[0], im.Pix[1] = -0.5, 1.5
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pix[0] != 0 || got.Pix[1] != 1 {
		t.Fatalf("clamping failed: %v", got.Pix)
	}
}

func TestPGMErrors(t *testing.T) {
	empty := NewImage(0, 0)
	var buf bytes.Buffer
	if err := empty.WritePGM(&buf); err == nil {
		t.Fatal("expected empty-image error")
	}
	if _, err := ReadPGM(bytes.NewReader([]byte("P6\n2 2\n255\n"))); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadPGM(bytes.NewReader([]byte("P5\n2 2\n255\nX"))); err == nil {
		t.Fatal("expected truncation error")
	}
	if _, err := ReadPGM(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected header error")
	}
}
