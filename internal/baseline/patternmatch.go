package baseline

import (
	"fmt"
	"math"
	"sort"

	"hotspot/internal/eval"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/obs"
)

// PatternMatchConfig parameterizes the fuzzy pattern-matching detector the
// paper's introduction describes as the other major pre-ML methodology
// [1, 2]: known hotspot patterns form a library; a test clip is flagged
// when it lies within a fuzzy-match distance of any library pattern.
// Patterns are compared by their density-grid signatures under the best of
// the 8 square symmetries, which is the grid-reduction fuzzy matching of
// Wen et al.
type PatternMatchConfig struct {
	// Density is the signature extractor.
	Density feature.DensityConfig
	// Threshold is the maximum mean absolute signature difference for a
	// fuzzy match.
	Threshold float64
	// MaxLibrary caps the stored hotspot library (most-distinct patterns
	// are kept); 0 means unlimited.
	MaxLibrary int
}

// DefaultPatternMatchConfig returns the configuration used alongside the
// Table 2 baselines.
func DefaultPatternMatchConfig() PatternMatchConfig {
	return PatternMatchConfig{
		Density:   feature.DensityConfig{Grid: 12, ResNM: 4},
		Threshold: 0.045,
	}
}

// PatternMatcher is the trained library detector.
type PatternMatcher struct {
	cfg     PatternMatchConfig
	core    geom.Rect
	library [][]float64
	grid    int
}

// TrainPatternMatcher builds the hotspot library from the training set's
// hotspot clips (non-hotspots are ignored: pattern matching only knows
// what it has seen fail).
func TrainPatternMatcher(samples []layout.Sample, core geom.Rect, cfg PatternMatchConfig) (*PatternMatcher, error) {
	if err := cfg.Density.Validate(); err != nil {
		return nil, err
	}
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("baseline: pattern-match threshold must be positive")
	}
	pm := &PatternMatcher{cfg: cfg, core: core, grid: cfg.Density.Grid}
	for _, s := range samples {
		if !s.Hotspot {
			continue
		}
		sig, err := feature.ExtractDensity(s.Clip, core, cfg.Density)
		if err != nil {
			return nil, err
		}
		pm.library = append(pm.library, sig)
	}
	if len(pm.library) == 0 {
		return nil, fmt.Errorf("baseline: no hotspot patterns to build a library from")
	}
	if cfg.MaxLibrary > 0 && len(pm.library) > cfg.MaxLibrary {
		pm.thin(cfg.MaxLibrary)
	}
	return pm, nil
}

// thin keeps a maximally-spread subset of the library via greedy
// farthest-point selection.
func (pm *PatternMatcher) thin(keep int) {
	kept := [][]float64{pm.library[0]}
	remaining := pm.library[1:]
	for len(kept) < keep && len(remaining) > 0 {
		bestIdx, bestDist := -1, -1.0
		for i, cand := range remaining {
			// Distance to the nearest kept pattern.
			near := math.Inf(1)
			for _, k := range kept {
				if d := meanAbsDiff(cand, k); d < near {
					near = d
				}
			}
			if near > bestDist {
				bestDist, bestIdx = near, i
			}
		}
		kept = append(kept, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	pm.library = kept
	sort.Slice(pm.library, func(a, b int) bool { return pm.library[a][0] < pm.library[b][0] })
}

// LibrarySize returns the number of stored patterns.
func (pm *PatternMatcher) LibrarySize() int { return len(pm.library) }

// Predict flags a clip when its signature fuzzy-matches any library
// pattern under any of the 8 square symmetries.
func (pm *PatternMatcher) Predict(c geom.Clip) (bool, error) {
	sig, err := feature.ExtractDensity(c, pm.core, pm.cfg.Density)
	if err != nil {
		return false, err
	}
	variants := signatureSymmetries(sig, pm.grid)
	for _, lib := range pm.library {
		for _, v := range variants {
			if meanAbsDiff(v, lib) <= pm.cfg.Threshold {
				return true, nil
			}
		}
	}
	return false, nil
}

// Evaluate scores a test set and returns the Table 2-style row.
func (pm *PatternMatcher) Evaluate(samples []layout.Sample, benchmark string) (eval.Result, error) {
	if len(samples) == 0 {
		return eval.Result{}, fmt.Errorf("baseline: empty test set")
	}
	tp, fp, fn := 0, 0, 0
	watch := obs.NewStopwatch()
	for _, s := range samples {
		pred, err := pm.Predict(s.Clip)
		if err != nil {
			return eval.Result{}, err
		}
		switch {
		case pred && s.Hotspot:
			tp++
		case pred && !s.Hotspot:
			fp++
		case !pred && s.Hotspot:
			fn++
		}
	}
	return eval.NewResult("PatternMatch", benchmark, tp, fp, fn, watch.Elapsed())
}

func meanAbsDiff(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s / float64(len(a))
}

// signatureSymmetries returns the 8 dihedral variants of a grid×grid
// signature (row-major).
func signatureSymmetries(sig []float64, grid int) [][]float64 {
	out := make([][]float64, 8)
	for op := 0; op < 8; op++ {
		v := make([]float64, len(sig))
		for y := 0; y < grid; y++ {
			for x := 0; x < grid; x++ {
				sx, sy := x, y
				if op&1 != 0 {
					sx = grid - 1 - sx
				}
				if op&2 != 0 {
					sy = grid - 1 - sy
				}
				if op&4 != 0 {
					sx, sy = sy, sx
				}
				v[y*grid+x] = sig[sy*grid+sx]
			}
		}
		out[op] = v
	}
	return out
}
