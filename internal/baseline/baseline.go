// Package baseline implements the two machine-learning hotspot detectors
// the paper compares against in Table 2:
//
//   - SPIE'15 [4]: simplified density features + AdaBoost over decision
//     stumps (Matsunawa et al.).
//   - ICCAD'16 [5]: optimized concentric-circle-sampling features with
//     information-theoretic (mutual information) feature selection and an
//     online smooth-boosting learner (Zhang et al.).
//
// Both expose the same Train/Predict/Evaluate surface as the paper's CNN
// detector so the Table 2 harness treats all three uniformly.
package baseline

import (
	"fmt"

	"hotspot/internal/boost"
	"hotspot/internal/dataset"
	"hotspot/internal/eval"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/obs"
)

// SPIE15Config parameterizes the density + AdaBoost detector.
type SPIE15Config struct {
	Density feature.DensityConfig
	Rounds  int
}

// DefaultSPIE15Config mirrors the published flow's scale.
func DefaultSPIE15Config() SPIE15Config {
	return SPIE15Config{Density: feature.DefaultDensityConfig(), Rounds: 150}
}

// SPIE15 is the trained density + AdaBoost detector.
type SPIE15 struct {
	cfg  SPIE15Config
	core geom.Rect
	ens  *boost.Ensemble
}

// TrainSPIE15 extracts density features for the training clips and boosts.
func TrainSPIE15(samples []layout.Sample, core geom.Rect, cfg SPIE15Config) (*SPIE15, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("baseline: SPIE15 rounds must be positive")
	}
	X, y, err := dataset.DensityMatrix(samples, core, cfg.Density, 0)
	if err != nil {
		return nil, err
	}
	ens, err := boost.TrainAdaBoost(X, y, cfg.Rounds)
	if err != nil {
		return nil, fmt.Errorf("baseline: SPIE15 training: %w", err)
	}
	return &SPIE15{cfg: cfg, core: core, ens: ens}, nil
}

// Predict classifies one clip.
func (d *SPIE15) Predict(c geom.Clip) (bool, error) {
	v, err := feature.ExtractDensity(c, d.core, d.cfg.Density)
	if err != nil {
		return false, err
	}
	return d.ens.Predict(v), nil
}

// Evaluate scores a test set and returns the Table 2 row.
func (d *SPIE15) Evaluate(samples []layout.Sample, benchmark string) (eval.Result, error) {
	return evaluateDetector("SPIE'15", benchmark, samples, d.Predict)
}

// ICCAD16Config parameterizes the CCS + MI + smooth boosting detector.
type ICCAD16Config struct {
	CCS feature.CCSConfig
	// SelectTop is the number of CCS features kept by mutual-information
	// ranking (the "information-theoretic feature optimization").
	SelectTop int
	// MIBins is the discretization used for the MI estimates.
	MIBins int
	Rounds int
}

// DefaultICCAD16Config mirrors the published flow's scale.
func DefaultICCAD16Config() ICCAD16Config {
	return ICCAD16Config{
		CCS:       feature.DefaultCCSConfig(),
		SelectTop: 80,
		MIBins:    12,
		Rounds:    200,
	}
}

// ICCAD16 is the trained CCS + smooth-boosting detector.
type ICCAD16 struct {
	cfg      ICCAD16Config
	core     geom.Rect
	selected []int
	sb       *boost.SmoothBoost
}

// TrainICCAD16 extracts CCS features, selects the most informative subset
// by mutual information, and fits the smooth-boosting ensemble.
func TrainICCAD16(samples []layout.Sample, core geom.Rect, cfg ICCAD16Config) (*ICCAD16, error) {
	if cfg.SelectTop <= 0 || cfg.Rounds <= 0 || cfg.MIBins < 2 {
		return nil, fmt.Errorf("baseline: ICCAD16 invalid config")
	}
	X, y, err := dataset.CCSMatrix(samples, core, cfg.CCS, 0)
	if err != nil {
		return nil, err
	}
	top := cfg.SelectTop
	if top > cfg.CCS.Dim() {
		top = cfg.CCS.Dim()
	}
	selected, err := feature.SelectMI(X, y, top, cfg.MIBins)
	if err != nil {
		return nil, fmt.Errorf("baseline: ICCAD16 feature selection: %w", err)
	}
	sb, err := boost.TrainSmoothBoost(feature.Project(X, selected), y, cfg.Rounds)
	if err != nil {
		return nil, fmt.Errorf("baseline: ICCAD16 training: %w", err)
	}
	return &ICCAD16{cfg: cfg, core: core, selected: selected, sb: sb}, nil
}

// Predict classifies one clip.
func (d *ICCAD16) Predict(c geom.Clip) (bool, error) {
	v, err := feature.ExtractCCS(c, d.core, d.cfg.CCS)
	if err != nil {
		return false, err
	}
	return d.sb.Predict(project(v, d.selected)), nil
}

// Update folds newly labelled clips into the detector online (the defining
// capability of the ICCAD'16 flow).
func (d *ICCAD16) Update(samples []layout.Sample, rounds int) error {
	X := make([][]float64, len(samples))
	y := make([]bool, len(samples))
	for i, s := range samples {
		v, err := feature.ExtractCCS(s.Clip, d.core, d.cfg.CCS)
		if err != nil {
			return err
		}
		X[i] = project(v, d.selected)
		y[i] = s.Hotspot
	}
	return d.sb.PartialFit(X, y, rounds)
}

// Evaluate scores a test set and returns the Table 2 row.
func (d *ICCAD16) Evaluate(samples []layout.Sample, benchmark string) (eval.Result, error) {
	return evaluateDetector("ICCAD'16", benchmark, samples, d.Predict)
}

func project(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

// evaluateDetector times predictions over a test set and assembles the
// Table 2 result row.
func evaluateDetector(name, benchmark string, samples []layout.Sample, predict func(geom.Clip) (bool, error)) (eval.Result, error) {
	if len(samples) == 0 {
		return eval.Result{}, fmt.Errorf("baseline: empty test set")
	}
	tp, fp, fn := 0, 0, 0
	watch := obs.NewStopwatch()
	for _, s := range samples {
		pred, err := predict(s.Clip)
		if err != nil {
			return eval.Result{}, err
		}
		switch {
		case pred && s.Hotspot:
			tp++
		case pred && !s.Hotspot:
			fp++
		case !pred && s.Hotspot:
			fn++
		}
	}
	return eval.NewResult(name, benchmark, tp, fp, fn, watch.Elapsed())
}
