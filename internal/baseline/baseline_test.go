package baseline

import (
	"math/rand"
	"testing"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
)

// syntheticSamples builds a deterministic, cleanly separable labelled set
// without invoking the lithography oracle: hotspots are dense clips,
// non-hotspots sparse. This isolates the detector mechanics from suite
// generation.
func syntheticSamples(n int, seed int64) []layout.Sample {
	rng := rand.New(rand.NewSource(seed))
	frame := geom.R(0, 0, 576, 576)
	out := make([]layout.Sample, n)
	for i := range out {
		hot := i%2 == 0
		var rects []geom.Rect
		pitch := 144
		width := 32
		if hot {
			pitch = 64
			width = 40
		}
		off := rng.Intn(24) * 8
		for x := off; x+width < 576; x += pitch {
			rects = append(rects, geom.R(x, 0, x+width, 576))
		}
		out[i] = layout.Sample{Clip: geom.NewClip(frame, rects), Hotspot: hot}
	}
	return out
}

var testCore = geom.R(0, 0, 576, 576)

func smallSPIE15Config() SPIE15Config {
	return SPIE15Config{Density: feature.DensityConfig{Grid: 12, ResNM: 4}, Rounds: 30}
}

func smallICCAD16Config() ICCAD16Config {
	cfg := DefaultICCAD16Config()
	cfg.Rounds = 30
	cfg.SelectTop = 24
	return cfg
}

func TestSPIE15LearnsSeparableTask(t *testing.T) {
	samples := syntheticSamples(40, 1)
	det, err := TrainSPIE15(samples[:30], testCore, smallSPIE15Config())
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Evaluate(samples[30:], "test")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("SPIE15 accuracy %.2f on separable task", res.Accuracy)
	}
	if res.FalseAlarms > 0 {
		t.Fatalf("SPIE15 FA %d on separable task", res.FalseAlarms)
	}
	if res.ODST < res.CPU.Seconds() {
		t.Fatal("ODST below CPU time")
	}
}

func TestSPIE15Predict(t *testing.T) {
	samples := syntheticSamples(30, 2)
	det, err := TrainSPIE15(samples, testCore, smallSPIE15Config())
	if err != nil {
		t.Fatal(err)
	}
	hot, err := det.Predict(samples[0].Clip)
	if err != nil {
		t.Fatal(err)
	}
	if hot != samples[0].Hotspot {
		t.Fatal("misclassified a training clip of a separable task")
	}
}

func TestSPIE15Errors(t *testing.T) {
	samples := syntheticSamples(10, 3)
	bad := smallSPIE15Config()
	bad.Rounds = 0
	if _, err := TrainSPIE15(samples, testCore, bad); err == nil {
		t.Fatal("expected rounds error")
	}
	badDensity := smallSPIE15Config()
	badDensity.Density.Grid = 0
	if _, err := TrainSPIE15(samples, testCore, badDensity); err == nil {
		t.Fatal("expected density config error")
	}
	det, err := TrainSPIE15(samples, testCore, smallSPIE15Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Evaluate(nil, "x"); err == nil {
		t.Fatal("expected empty test set error")
	}
}

func TestICCAD16LearnsSeparableTask(t *testing.T) {
	samples := syntheticSamples(40, 4)
	det, err := TrainICCAD16(samples[:30], testCore, smallICCAD16Config())
	if err != nil {
		t.Fatal(err)
	}
	res, err := det.Evaluate(samples[30:], "test")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("ICCAD16 accuracy %.2f on separable task", res.Accuracy)
	}
}

func TestICCAD16OnlineUpdate(t *testing.T) {
	samples := syntheticSamples(60, 5)
	det, err := TrainICCAD16(samples[:30], testCore, smallICCAD16Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Update(samples[30:50], 10); err != nil {
		t.Fatal(err)
	}
	res, err := det.Evaluate(samples[50:], "test")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("post-update accuracy %.2f", res.Accuracy)
	}
}

func TestICCAD16SelectTopClamped(t *testing.T) {
	samples := syntheticSamples(30, 6)
	cfg := smallICCAD16Config()
	cfg.SelectTop = 100000 // beyond CCS dimensionality: clamped, not an error
	if _, err := TrainICCAD16(samples, testCore, cfg); err != nil {
		t.Fatalf("SelectTop clamp failed: %v", err)
	}
}

func TestICCAD16Errors(t *testing.T) {
	samples := syntheticSamples(10, 7)
	bad := smallICCAD16Config()
	bad.Rounds = 0
	if _, err := TrainICCAD16(samples, testCore, bad); err == nil {
		t.Fatal("expected rounds error")
	}
	bad = smallICCAD16Config()
	bad.MIBins = 1
	if _, err := TrainICCAD16(samples, testCore, bad); err == nil {
		t.Fatal("expected bins error")
	}
	bad = smallICCAD16Config()
	bad.CCS.Rings = 0
	if _, err := TrainICCAD16(samples, testCore, bad); err == nil {
		t.Fatal("expected CCS config error")
	}
}

func TestPatternMatcherLearnsSeenPatterns(t *testing.T) {
	samples := syntheticSamples(40, 8)
	pm, err := TrainPatternMatcher(samples[:30], testCore, DefaultPatternMatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pm.LibrarySize() == 0 {
		t.Fatal("empty library")
	}
	// Unseen clips from the same two pattern families: the dense family
	// fuzzy-matches the library, the sparse family does not.
	res, err := pm.Evaluate(samples[30:], "test")
	if err != nil {
		t.Fatal(err)
	}
	// Pattern matching catches repeats of library patterns but generalizes
	// imperfectly to shifted variants — the weakness the paper's intro
	// cites; recall well above chance with near-zero FA is the expected
	// operating point.
	if res.Accuracy < 0.7 {
		t.Fatalf("pattern matcher recall %.2f on repeated patterns", res.Accuracy)
	}
	if res.FalseAlarms > 1 {
		t.Fatalf("pattern matcher FA %d", res.FalseAlarms)
	}
}

func TestPatternMatcherSymmetryInvariance(t *testing.T) {
	samples := syntheticSamples(20, 9)
	pm, err := TrainPatternMatcher(samples, testCore, DefaultPatternMatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Transpose a known hotspot clip: vertical wires become horizontal;
	// the symmetry-aware matcher must still flag it.
	hot := samples[0].Clip
	var rects []geom.Rect
	for _, r := range hot.Rects {
		rects = append(rects, geom.R(r.Y0, r.X0, r.Y1, r.X1))
	}
	flipped := geom.NewClip(hot.Frame, rects)
	match, err := pm.Predict(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatal("matcher missed the transposed pattern")
	}
}

func TestPatternMatcherLibraryThinning(t *testing.T) {
	samples := syntheticSamples(60, 10)
	cfg := DefaultPatternMatchConfig()
	cfg.MaxLibrary = 5
	pm, err := TrainPatternMatcher(samples, testCore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pm.LibrarySize() != 5 {
		t.Fatalf("library size %d, want 5", pm.LibrarySize())
	}
}

func TestPatternMatcherErrors(t *testing.T) {
	samples := syntheticSamples(10, 11)
	var coldOnly []layout.Sample
	for _, s := range samples {
		if !s.Hotspot {
			coldOnly = append(coldOnly, s)
		}
	}
	if _, err := TrainPatternMatcher(coldOnly, testCore, DefaultPatternMatchConfig()); err == nil {
		t.Fatal("expected empty-library error")
	}
	bad := DefaultPatternMatchConfig()
	bad.Threshold = 0
	if _, err := TrainPatternMatcher(samples, testCore, bad); err == nil {
		t.Fatal("expected threshold error")
	}
	bad = DefaultPatternMatchConfig()
	bad.Density.Grid = 0
	if _, err := TrainPatternMatcher(samples, testCore, bad); err == nil {
		t.Fatal("expected density config error")
	}
}
