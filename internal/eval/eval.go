// Package eval computes the paper's evaluation metrics: Accuracy
// (Definition 1, hotspot recall), False Alarm (Definition 2), and the
// overall detection and simulation time ODST (Definition 3), which charges
// every predicted hotspot — true or false — the lithography verification
// cost.
package eval

import (
	"fmt"
	"time"

	"hotspot/internal/litho"
)

// SimSecondsPerClip is the per-clip lithography simulation time the paper
// charges when computing ODST (≈10 s per instance, from the ICCAD 2013
// industrial simulator it cites). The value is no longer a free-standing
// prose constant: it is litho's explicit cost model — the default
// five-corner process at litho.ODSTSecondsPerCorner per corner — so Table
// 2 accounting and the active-learning label budget charge the same price.
var SimSecondsPerClip = litho.DefaultLabelCost()

// Result is one Table 2 cell group: a detector's performance on one
// benchmark.
type Result struct {
	Detector  string
	Benchmark string
	// FalseAlarms is the count of non-hotspots flagged as hotspots.
	FalseAlarms int
	// CPU is the model evaluation (testing) time.
	CPU time.Duration
	// ODST is the overall detection and simulation time in seconds.
	ODST float64
	// Accuracy is hotspot recall in [0, 1].
	Accuracy float64
	// TP/FN complete the confusion counts for reproducibility.
	TP, FN int
}

// ODST computes Definition 3: model evaluation time plus the simulation
// penalty for every clip predicted hotspot (true positives and false
// alarms).
func ODST(cpu time.Duration, predictedHotspots int) float64 {
	return cpu.Seconds() + SimSecondsPerClip*float64(predictedHotspots)
}

// NewResult assembles a Result from confusion counts and timing.
func NewResult(detector, benchmark string, tp, fp, fn int, cpu time.Duration) (Result, error) {
	if tp < 0 || fp < 0 || fn < 0 {
		return Result{}, fmt.Errorf("eval: negative confusion counts")
	}
	if cpu < 0 {
		return Result{}, fmt.Errorf("eval: negative CPU time")
	}
	r := Result{
		Detector:    detector,
		Benchmark:   benchmark,
		FalseAlarms: fp,
		CPU:         cpu,
		ODST:        ODST(cpu, tp+fp),
		TP:          tp,
		FN:          fn,
	}
	if tp+fn > 0 {
		r.Accuracy = float64(tp) / float64(tp+fn)
	}
	return r, nil
}

// Row renders the Result in Table 2 column order:
// FA#, CPU(s), ODST(s), Accu(%).
func (r Result) Row() string {
	return fmt.Sprintf("%6d %10.1f %12.1f %8.1f%%",
		r.FalseAlarms, r.CPU.Seconds(), r.ODST, 100*r.Accuracy)
}
