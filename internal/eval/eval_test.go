package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestODST(t *testing.T) {
	got := ODST(2*time.Second, 5)
	if got != 52 {
		t.Fatalf("ODST = %v, want 52", got)
	}
	if ODST(0, 0) != 0 {
		t.Fatal("zero case wrong")
	}
}

func TestNewResult(t *testing.T) {
	r, err := NewResult("Ours", "ICCAD", 90, 30, 10, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.FalseAlarms != 30 {
		t.Fatalf("FA = %d", r.FalseAlarms)
	}
	if math.Abs(r.Accuracy-0.9) > 1e-12 {
		t.Fatalf("Accuracy = %v", r.Accuracy)
	}
	// ODST charges both true and false positives.
	if math.Abs(r.ODST-(3+10*120)) > 1e-9 {
		t.Fatalf("ODST = %v", r.ODST)
	}
	if r.Detector != "Ours" || r.Benchmark != "ICCAD" {
		t.Fatal("labels lost")
	}
}

func TestNewResultNoHotspots(t *testing.T) {
	r, err := NewResult("x", "y", 0, 3, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy != 0 {
		t.Fatal("accuracy with no hotspots should be 0")
	}
}

func TestNewResultErrors(t *testing.T) {
	if _, err := NewResult("x", "y", -1, 0, 0, 0); err == nil {
		t.Fatal("expected negative count error")
	}
	if _, err := NewResult("x", "y", 0, 0, 0, -time.Second); err == nil {
		t.Fatal("expected negative CPU error")
	}
}

func TestRow(t *testing.T) {
	r, _ := NewResult("Ours", "ICCAD", 9, 2, 1, 1500*time.Millisecond)
	row := r.Row()
	if !strings.Contains(row, "90.0%") {
		t.Fatalf("row missing accuracy: %q", row)
	}
	if !strings.Contains(row, "2") {
		t.Fatalf("row missing FA: %q", row)
	}
}

// Property: ODST is monotone in both arguments and always >= CPU seconds.
func TestODSTMonotone(t *testing.T) {
	f := func(cpuMs uint16, hits uint8) bool {
		cpu := time.Duration(cpuMs) * time.Millisecond
		base := ODST(cpu, int(hits))
		if base < cpu.Seconds() {
			return false
		}
		return ODST(cpu, int(hits)+1) > base && ODST(cpu+time.Second, int(hits)) > base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
