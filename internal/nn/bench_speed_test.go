package nn

import (
	"math/rand"
	"testing"

	"hotspot/internal/tensor"
)

func BenchmarkPaperNetTrainStep(b *testing.B) {
	net, _ := NewPaperNet(DefaultPaperNetConfig())
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(32, 12, 12)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{1, 0}, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		out, _ := net.Forward(x, true)
		_, g, _ := SoftmaxCrossEntropy(out, target)
		_ = net.Backward(g)
	}
}
