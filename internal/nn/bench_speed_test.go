package nn

import (
	"math/rand"
	"testing"

	"hotspot/internal/tensor"
)

func BenchmarkPaperNetTrainStep(b *testing.B) {
	net, _ := NewPaperNet(DefaultPaperNetConfig())
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(32, 12, 12)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{1, 0}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		out, _ := net.Forward(x, true)
		_, g, _ := SoftmaxCrossEntropy(out, target)
		_ = net.Backward(g)
	}
}

// BenchmarkPaperNetInference tracks the steady-state forward pass — the
// per-clip testing cost — which the layer buffer reuse keeps allocation-free
// after warm-up.
func BenchmarkPaperNetInference(b *testing.B) {
	net, _ := NewPaperNet(DefaultPaperNetConfig())
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(32, 12, 12)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}
