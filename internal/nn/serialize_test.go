package nn

import (
	"bytes"
	"strings"
	"testing"
)

// saveSmallNet serializes a tiny PaperNet and returns the bytes.
func saveSmallNet(t *testing.T) []byte {
	t.Helper()
	cfg := PaperNetConfig{InChannels: 2, SpatialSize: 4, Conv1Maps: 2, Conv2Maps: 2, FC1: 4, DropoutRate: 0.5, Seed: 3}
	net, err := NewPaperNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointHeaderWritten(t *testing.T) {
	raw := saveSmallNet(t)
	if len(raw) < headerLen {
		t.Fatalf("checkpoint only %d bytes, shorter than its header", len(raw))
	}
	if string(raw[:len(checkpointMagic)]) != checkpointMagic {
		t.Fatalf("checkpoint starts with %q, want magic %q", raw[:len(checkpointMagic)], checkpointMagic)
	}
	version := int(raw[len(checkpointMagic)])<<8 | int(raw[len(checkpointMagic)+1])
	if version != checkpointVersion {
		t.Fatalf("header version %d, want %d", version, checkpointVersion)
	}
	if _, err := Load(bytes.NewReader(raw)); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	raw := saveSmallNet(t)
	raw[0] = 'X'
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "not a network checkpoint") {
		t.Fatalf("bad magic: got %v, want a not-a-checkpoint error", err)
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	raw := saveSmallNet(t)
	raw[len(checkpointMagic)] = 0xff // version 0xff01: far future
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: got %v, want a version error", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	raw := saveSmallNet(t)
	// Truncation inside the header and inside the gob payload both name
	// truncation, not a raw gob failure.
	for _, n := range []int{0, 3, headerLen - 1, headerLen + 1, len(raw) / 2, len(raw) - 1} {
		_, err := Load(bytes.NewReader(raw[:n]))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncated at %d bytes: got %v, want a truncation error", n, err)
		}
	}
}
