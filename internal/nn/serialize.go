package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"hotspot/internal/tensor"
)

// layerSpec is the gob wire form of one layer.
type layerSpec struct {
	Kind string // "conv", "relu", "maxpool", "dense", "dropout"
	Name string
	// Conv fields.
	InC, OutC, K, Stride, Pad int
	// Dense fields.
	In, Out int
	// Dropout fields.
	Rate float64
	Seed int64
	// Parameter payloads in Params() order.
	Weights [][]float64
	Shapes  [][]int
}

type netSpec struct {
	Version int
	Layers  []layerSpec
}

// Save serializes the network (architecture and weights) with encoding/gob.
func (n *Network) Save(w io.Writer) error {
	spec := netSpec{Version: 1}
	for _, l := range n.layers {
		var s layerSpec
		s.Name = l.Name()
		switch t := l.(type) {
		case *Conv2D:
			s.Kind = "conv"
			s.InC, s.OutC, s.K, s.Stride, s.Pad = t.inC, t.outC, t.kh, t.stride, t.pad
		case *ReLU:
			s.Kind = "relu"
		case *MaxPool2:
			s.Kind = "maxpool"
		case *Dense:
			s.Kind = "dense"
			s.In, s.Out = t.in, t.out
		case *Dropout:
			s.Kind = "dropout"
			s.Rate = t.rate
			s.Seed = 1
		default:
			return fmt.Errorf("nn: cannot serialize layer %T (%s)", l, l.Name())
		}
		for _, p := range l.Params() {
			s.Weights = append(s.Weights, append([]float64(nil), p.W.Data()...))
			s.Shapes = append(s.Shapes, p.W.Shape())
		}
		spec.Layers = append(spec.Layers, s)
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Load deserializes a network written by Save.
func Load(r io.Reader) (*Network, error) {
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if spec.Version != 1 {
		return nil, fmt.Errorf("nn: unsupported network version %d", spec.Version)
	}
	rng := rand.New(rand.NewSource(0))
	var layers []Layer
	for i, s := range spec.Layers {
		var l Layer
		var err error
		switch s.Kind {
		case "conv":
			l, err = NewConv2D(s.Name, s.InC, s.OutC, s.K, s.Stride, s.Pad, rng)
		case "relu":
			l = NewReLU(s.Name)
		case "maxpool":
			l = NewMaxPool2(s.Name)
		case "dense":
			l, err = NewDense(s.Name, s.In, s.Out, rng)
		case "dropout":
			l, err = NewDropout(s.Name, s.Rate, s.Seed)
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q at %d", s.Kind, i)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: rebuild layer %d (%s): %w", i, s.Name, err)
		}
		params := l.Params()
		if len(params) != len(s.Weights) {
			return nil, fmt.Errorf("nn: layer %s expects %d params, spec has %d", s.Name, len(params), len(s.Weights))
		}
		for j, p := range params {
			w, err := tensor.FromSlice(append([]float64(nil), s.Weights[j]...), s.Shapes[j]...)
			if err != nil {
				return nil, fmt.Errorf("nn: layer %s param %d: %w", s.Name, j, err)
			}
			if !tensor.SameShape(p.W, w) {
				return nil, fmt.Errorf("nn: layer %s param %d shape %v, want %v", s.Name, j, w.Shape(), p.W.Shape())
			}
			copy(p.W.Data(), w.Data())
		}
		layers = append(layers, l)
	}
	return NewNetwork(layers...), nil
}

// Clone deep-copies the network via a serialize/deserialize round trip.
// Layer caches and dropout RNG streams reset; weights are preserved.
func (n *Network) Clone() (*Network, error) {
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}
