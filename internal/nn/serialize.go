package nn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"hotspot/internal/tensor"
)

// layerSpec is the gob wire form of one layer.
type layerSpec struct {
	Kind string // "conv", "relu", "maxpool", "dense", "dropout"
	Name string
	// Conv fields.
	InC, OutC, K, Stride, Pad int
	// Dense fields.
	In, Out int
	// Dropout fields.
	Rate float64
	Seed int64
	// Parameter payloads in Params() order.
	Weights [][]float64
	Shapes  [][]int
}

type netSpec struct {
	Version int
	Layers  []layerSpec
}

// Checkpoint framing: every file written by Save starts with an 8-byte
// header — a 6-byte magic string identifying the format, followed by the
// format version as a big-endian uint16 — before the gob payload. The
// header lets Load reject not-a-checkpoint and wrong-version files with a
// precise error instead of surfacing a raw gob decode failure, which is
// what a long-running server's hot-reload path needs to refuse bad files
// safely.
const (
	checkpointMagic   = "HSDNET"
	checkpointVersion = 1
	headerLen         = len(checkpointMagic) + 2
)

// Save serializes the network (architecture and weights): the versioned
// checkpoint header followed by an encoding/gob payload.
func (n *Network) Save(w io.Writer) error {
	var hdr [headerLen]byte
	copy(hdr[:], checkpointMagic)
	hdr[len(checkpointMagic)] = byte(checkpointVersion >> 8)
	hdr[len(checkpointMagic)+1] = byte(checkpointVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint header: %w", err)
	}
	spec := netSpec{Version: 1}
	for _, l := range n.layers {
		var s layerSpec
		s.Name = l.Name()
		switch t := l.(type) {
		case *Conv2D:
			s.Kind = "conv"
			s.InC, s.OutC, s.K, s.Stride, s.Pad = t.inC, t.outC, t.kh, t.stride, t.pad
		case *ReLU:
			s.Kind = "relu"
		case *MaxPool2:
			s.Kind = "maxpool"
		case *Dense:
			s.Kind = "dense"
			s.In, s.Out = t.in, t.out
		case *Dropout:
			s.Kind = "dropout"
			s.Rate = t.rate
			s.Seed = 1
		default:
			return fmt.Errorf("nn: cannot serialize layer %T (%s)", l, l.Name())
		}
		for _, p := range l.Params() {
			s.Weights = append(s.Weights, append([]float64(nil), p.W.Data()...))
			s.Shapes = append(s.Shapes, p.W.Shape())
		}
		spec.Layers = append(spec.Layers, s)
	}
	return gob.NewEncoder(w).Encode(spec)
}

// Load deserializes a network written by Save. A stream that does not
// start with the checkpoint magic, carries an unsupported format version,
// or ends mid-payload is rejected with an error saying exactly that.
func Load(r io.Reader) (*Network, error) {
	var hdr [headerLen]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nn: truncated checkpoint: %d-byte header, want %d (%w)", n, headerLen, err)
	}
	if string(hdr[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("nn: not a network checkpoint (magic %q, want %q)", hdr[:len(checkpointMagic)], checkpointMagic)
	}
	version := int(hdr[len(checkpointMagic)])<<8 | int(hdr[len(checkpointMagic)+1])
	if version != checkpointVersion {
		return nil, fmt.Errorf("nn: checkpoint format version %d; this build reads version %d", version, checkpointVersion)
	}
	var spec netSpec
	if err := gob.NewDecoder(r).Decode(&spec); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("nn: truncated checkpoint payload: %w", err)
		}
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if spec.Version != 1 {
		return nil, fmt.Errorf("nn: unsupported network version %d", spec.Version)
	}
	rng := rand.New(rand.NewSource(0))
	var layers []Layer
	for i, s := range spec.Layers {
		var l Layer
		var err error
		switch s.Kind {
		case "conv":
			l, err = NewConv2D(s.Name, s.InC, s.OutC, s.K, s.Stride, s.Pad, rng)
		case "relu":
			l = NewReLU(s.Name)
		case "maxpool":
			l = NewMaxPool2(s.Name)
		case "dense":
			l, err = NewDense(s.Name, s.In, s.Out, rng)
		case "dropout":
			l, err = NewDropout(s.Name, s.Rate, s.Seed)
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q at %d", s.Kind, i)
		}
		if err != nil {
			return nil, fmt.Errorf("nn: rebuild layer %d (%s): %w", i, s.Name, err)
		}
		params := l.Params()
		if len(params) != len(s.Weights) {
			return nil, fmt.Errorf("nn: layer %s expects %d params, spec has %d", s.Name, len(params), len(s.Weights))
		}
		for j, p := range params {
			w, err := tensor.FromSlice(append([]float64(nil), s.Weights[j]...), s.Shapes[j]...)
			if err != nil {
				return nil, fmt.Errorf("nn: layer %s param %d: %w", s.Name, j, err)
			}
			if !tensor.SameShape(p.W, w) {
				return nil, fmt.Errorf("nn: layer %s param %d shape %v, want %v", s.Name, j, w.Shape(), p.W.Shape())
			}
			copy(p.W.Data(), w.Data())
		}
		layers = append(layers, l)
	}
	return NewNetwork(layers...), nil
}

// Clone deep-copies the network via a serialize/deserialize round trip.
// Layer caches and dropout RNG streams reset; weights are preserved.
func (n *Network) Clone() (*Network, error) {
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}
