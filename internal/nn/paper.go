package nn

import (
	"fmt"
	"math/rand"
)

// PaperNetConfig describes the Table 1 architecture for an (k, n, n)
// feature tensor input.
type PaperNetConfig struct {
	// InChannels is k, the feature tensor depth (32 in the reference
	// configuration).
	InChannels int
	// SpatialSize is n, the feature tensor side (12 in the paper).
	SpatialSize int
	// Conv1Maps and Conv2Maps are the feature map counts of the two
	// convolution stages (16 and 32 in Table 1).
	Conv1Maps, Conv2Maps int
	// FC1 is the first fully connected layer width (250 in Table 1).
	FC1 int
	// DropoutRate is applied to fc1 during training (0.5 in the paper).
	DropoutRate float64
	// Seed drives weight initialization and dropout sampling.
	Seed int64
}

// DefaultPaperNetConfig returns the exact Table 1 configuration.
func DefaultPaperNetConfig() PaperNetConfig {
	return PaperNetConfig{
		InChannels:  32,
		SpatialSize: 12,
		Conv1Maps:   16,
		Conv2Maps:   32,
		FC1:         250,
		DropoutRate: 0.5,
		Seed:        1,
	}
}

// Validate checks the configuration.
func (c PaperNetConfig) Validate() error {
	if c.InChannels <= 0 || c.SpatialSize <= 0 {
		return fmt.Errorf("nn: paper net needs positive input dims, got k=%d n=%d", c.InChannels, c.SpatialSize)
	}
	if c.SpatialSize%4 != 0 {
		return fmt.Errorf("nn: paper net spatial size %d must be divisible by 4 (two 2x2 pools)", c.SpatialSize)
	}
	if c.Conv1Maps <= 0 || c.Conv2Maps <= 0 || c.FC1 <= 0 {
		return fmt.Errorf("nn: paper net needs positive layer widths")
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		return fmt.Errorf("nn: paper net dropout rate %v outside [0, 1)", c.DropoutRate)
	}
	return nil
}

// NewPaperNet builds the paper's CNN (Figure 2 / Table 1): two convolution
// stages — each two 3×3 same-padded conv+ReLU layers and a 2×2 max-pool —
// followed by FC-250 (ReLU, dropout) and FC-2.
func NewPaperNet(cfg PaperNetConfig) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.SpatialSize
	flat := (n / 4) * (n / 4) * cfg.Conv2Maps

	conv11, err := NewConv2D("conv1-1", cfg.InChannels, cfg.Conv1Maps, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	conv12, err := NewConv2D("conv1-2", cfg.Conv1Maps, cfg.Conv1Maps, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	conv21, err := NewConv2D("conv2-1", cfg.Conv1Maps, cfg.Conv2Maps, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	conv22, err := NewConv2D("conv2-2", cfg.Conv2Maps, cfg.Conv2Maps, 3, 1, 1, rng)
	if err != nil {
		return nil, err
	}
	fc1, err := NewDense("fc1", flat, cfg.FC1, rng)
	if err != nil {
		return nil, err
	}
	drop, err := NewDropout("dropout1", cfg.DropoutRate, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	fc2, err := NewDense("fc2", cfg.FC1, 2, rng)
	if err != nil {
		return nil, err
	}
	return NewNetwork(
		conv11, NewReLU("relu1-1"),
		conv12, NewReLU("relu1-2"),
		NewMaxPool2("maxpooling1"),
		conv21, NewReLU("relu2-1"),
		conv22, NewReLU("relu2-2"),
		NewMaxPool2("maxpooling2"),
		fc1, NewReLU("relu-fc1"), drop,
		fc2,
	), nil
}
