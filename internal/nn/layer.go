// Package nn is the from-scratch neural network substrate: tensors-in,
// tensors-out layers with analytic backpropagation, He initialization,
// softmax cross-entropy with soft targets (required by the paper's biased
// learning), and a Network container with save/load.
//
// Layers process one sample at a time (channels-first (C, H, W) tensors);
// minibatch handling — sampling, gradient averaging, learning-rate decay —
// lives in internal/train. Every layer's Backward is verified against
// numerical differentiation in the package tests.
package nn

import (
	"fmt"

	"hotspot/internal/tensor"
)

// Param is one learnable tensor with its accumulated gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of the network.
type Layer interface {
	// Name returns a human-readable identifier ("conv1-1", "fc2", ...).
	Name() string
	// Forward computes the layer output for one sample. train selects
	// training behaviour (e.g. dropout active). Layers cache what Backward
	// needs, so Forward/Backward pairs must not be interleaved across
	// samples.
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients.
	Backward(grad *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the layer's learnable parameters (empty for
	// activation/pooling layers).
	Params() []*Param
	// OutputShape returns the output shape for a given input shape, for
	// architecture summaries and validation.
	OutputShape(in []int) ([]int, error)
}

// Network is an ordered stack of layers.
type Network struct {
	layers []Layer
}

// NewNetwork builds a network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{layers: layers} }

// Layers returns the layer stack.
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs all layers on one sample.
func (n *Network) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for _, l := range n.layers {
		x, err = l.Forward(x, train) //hsd:allow hotlint layer polymorphism is the training path's design; inference devirtualizes through the fused engine
		if err != nil {
			return nil, fmt.Errorf("nn: forward through %s: %w", l.Name(), err)
		}
	}
	return x, nil
}

// Backward propagates the output gradient back through all layers.
func (n *Network) Backward(grad *tensor.Tensor) error {
	var err error
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad, err = n.layers[i].Backward(grad) //hsd:allow hotlint layer polymorphism is the training path's design; backprop has no fused counterpart
		if err != nil {
			return fmt.Errorf("nn: backward through %s: %w", n.layers[i].Name(), err)
		}
	}
	return nil
}

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// ReseedDropout resets every dropout layer's mask stream to a value derived
// from seed (and the layer's position, so stacked dropout layers draw
// distinct streams). Parallel training calls this before each sample's
// forward pass with a seed derived from the sample's global index, which
// makes dropout masks — and therefore gradients — independent of worker
// assignment.
func (n *Network) ReseedDropout(seed int64) {
	k := int64(0)
	for _, l := range n.layers {
		if d, ok := l.(*Dropout); ok {
			d.Reseed(seed + k*0x9e3779b9)
			k++
		}
	}
}

// ParamCount returns the total number of learnable scalars.
func (n *Network) ParamCount() int {
	c := 0
	for _, p := range n.Params() {
		c += p.W.Len()
	}
	return c
}

// Summary renders a Table-1-style configuration listing for the given
// input shape.
func (n *Network) Summary(inShape []int) (string, error) {
	out := fmt.Sprintf("%-14s %-18s %s\n", "Layer", "Output Shape", "Params")
	shape := inShape
	var err error
	total := 0
	for _, l := range n.layers {
		shape, err = l.OutputShape(shape)
		if err != nil {
			return "", fmt.Errorf("nn: summary at %s: %w", l.Name(), err)
		}
		p := 0
		for _, par := range l.Params() {
			p += par.W.Len()
		}
		total += p
		out += fmt.Sprintf("%-14s %-18s %d\n", l.Name(), fmt.Sprint(shape), p)
	}
	out += fmt.Sprintf("total params: %d\n", total)
	return out, nil
}
