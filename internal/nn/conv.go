package nn

import (
	"fmt"
	"math/rand"

	"hotspot/internal/tensor"
)

// Conv2D is a 2-D convolution layer (cross-correlation, as in every deep
// learning framework) over channels-first (C, H, W) inputs, computed via
// im2col + matrix multiply. Work buffers are reused across samples, which
// matters on the single-sample training path: convolution dominates the
// paper network's cost.
type Conv2D struct {
	name                string
	inC, outC           int
	kh, kw, stride, pad int
	weight, bias        *Param
	inH, inW            int
	// Reused buffers (allocated lazily for the first input geometry).
	cols  *tensor.Tensor // (inC*kh*kw, oh*ow)
	out   *tensor.Tensor // (outC, oh*ow)
	dCols *tensor.Tensor // (inC*kh*kw, oh*ow)
	dx    *tensor.Tensor // (inC, inH, inW)
}

// NewConv2D builds a convolution layer. Weights are He-initialized from
// rng; biases start at zero.
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) (*Conv2D, error) {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("nn: conv %q invalid geometry (inC=%d outC=%d k=%d stride=%d pad=%d)",
			name, inC, outC, k, stride, pad)
	}
	w := tensor.New(outC, inC*k*k)
	heInit(w, inC*k*k, rng)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, inC: inC, outC: outC, kh: k, kw: k, stride: stride, pad: pad,
		weight: &Param{Name: name + ".w", W: w, Grad: tensor.New(outC, inC*k*k)},
		bias:   &Param{Name: name + ".b", W: b, Grad: tensor.New(outC)},
	}, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Geometry returns the layer's hyper-parameters: input and output channel
// counts, (square) kernel size, stride and zero padding. The fused
// inference engine compiles its plan from these.
func (c *Conv2D) Geometry() (inC, outC, k, stride, pad int) {
	return c.inC, c.outC, c.kh, c.stride, c.pad
}

// Weights returns the weight matrix (outC, inC·k·k) and bias vector
// (outC). Both alias the live parameter storage, so callers holding them
// observe optimizer updates and weight syncs without re-fetching.
func (c *Conv2D) Weights() (w, b *tensor.Tensor) { return c.weight.W, c.bias.W }

// OutputShape implements Layer.
func (c *Conv2D) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.inC {
		return nil, fmt.Errorf("nn: conv %q expects (%d, H, W) input, got %v", c.name, c.inC, in)
	}
	oh := tensor.ConvOutputSize(in[1], c.kh, c.stride, c.pad)
	ow := tensor.ConvOutputSize(in[2], c.kw, c.stride, c.pad)
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv %q output collapses for input %v", c.name, in)
	}
	return []int{c.outC, oh, ow}, nil
}

// ensureBuffers sizes the reusable work tensors for the input geometry.
func (c *Conv2D) ensureBuffers(h, w int) (oh, ow int) {
	oh = tensor.ConvOutputSize(h, c.kh, c.stride, c.pad)
	ow = tensor.ConvOutputSize(w, c.kw, c.stride, c.pad)
	if c.inH != h || c.inW != w || c.cols == nil {
		c.inH, c.inW = h, w
		c.cols = tensor.New(c.inC*c.kh*c.kw, oh*ow)
		c.out = tensor.New(c.outC, oh*ow)
		c.dCols = tensor.New(c.inC*c.kh*c.kw, oh*ow)
		c.dx = tensor.New(c.inC, h, w)
	}
	return oh, ow
}

// Forward implements Layer. The returned tensor aliases an internal buffer
// that is overwritten by the next Forward call on this layer; downstream
// layers consume it immediately, which is the contract of the sequential
// one-sample training loop.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 3 || x.Dim(0) != c.inC {
		return nil, fmt.Errorf("nn: conv %q expects (%d, H, W) input, got %v", c.name, c.inC, x.Shape())
	}
	oh, ow := c.ensureBuffers(x.Dim(1), x.Dim(2))
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv %q output collapses for input %v", c.name, x.Shape())
	}
	if err := tensor.Im2ColInto(c.cols, x, c.kh, c.kw, c.stride, c.pad); err != nil {
		return nil, err
	}
	// Bias rides the matmul's per-row epilogue instead of a second pass
	// over the output; values are bit-identical to the two-pass form.
	if err := tensor.MatMulBiasInto(c.out, c.weight.W, c.cols, c.bias.W); err != nil {
		return nil, err
	}
	return c.out.Reshape(c.outC, oh, ow)
}

// Backward implements Layer. The returned gradient aliases an internal
// buffer overwritten by the next Backward call.
func (c *Conv2D) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if c.cols == nil {
		return nil, fmt.Errorf("nn: conv %q backward before forward", c.name)
	}
	oh := tensor.ConvOutputSize(c.inH, c.kh, c.stride, c.pad)
	ow := tensor.ConvOutputSize(c.inW, c.kw, c.stride, c.pad)
	g, err := grad.Reshape(c.outC, oh*ow)
	if err != nil {
		return nil, fmt.Errorf("nn: conv %q gradient shape %v: %w", c.name, grad.Shape(), err)
	}
	// dW += g · colsᵀ
	if err := tensor.MatMulBTAddInto(c.weight.Grad.MustReshape(c.outC, c.inC*c.kh*c.kw), g, c.cols); err != nil {
		return nil, err
	}
	// db += row sums of g.
	gd := g.Data()
	for oc := 0; oc < c.outC; oc++ {
		s := 0.0
		for _, v := range gd[oc*oh*ow : (oc+1)*oh*ow] {
			s += v
		}
		c.bias.Grad.Data()[oc] += s
	}
	// dx = Col2Im(Wᵀ · g)
	if err := tensor.MatMulATInto(c.dCols, c.weight.W, g); err != nil {
		return nil, err
	}
	if err := tensor.Col2ImInto(c.dx, c.dCols, c.kh, c.kw, c.stride, c.pad); err != nil {
		return nil, err
	}
	return c.dx, nil
}

// heInit fills w with He-normal values: N(0, sqrt(2/fanIn)), the standard
// initialization for ReLU networks.
func heInit(w *tensor.Tensor, fanIn int, rng *rand.Rand) {
	std := 1.0
	if fanIn > 0 {
		std = sqrt2Over(float64(fanIn))
	}
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64() * std
	}
}
