package fused

import (
	"math"
	"math/rand"
	"testing"

	"hotspot/internal/tensor"
)

// TestIm2ColStride1MatchesTensor pins the copy-based stride-1 im2col
// bit-for-bit against tensor.Im2ColInto over assorted geometries,
// including pads larger than the kernel overhang and tiny inputs.
func TestIm2ColStride1MatchesTensor(t *testing.T) {
	cases := []struct {
		c, h, w, k, pad int
	}{
		{1, 1, 1, 1, 0},
		{1, 3, 3, 3, 1},
		{2, 5, 7, 3, 1},
		{3, 12, 12, 3, 1},
		{4, 6, 6, 5, 2},
		{2, 4, 4, 3, 3}, // pad wider than the kernel overhang
		{1, 3, 9, 3, 0},
		{16, 12, 12, 3, 1}, // Table-1 conv input geometry
	}
	rng := rand.New(rand.NewSource(41))
	for _, tc := range cases {
		oh := tc.h + 2*tc.pad - tc.k + 1
		ow := tc.w + 2*tc.pad - tc.k + 1
		if oh <= 0 || ow <= 0 {
			t.Fatalf("bad case %+v", tc)
		}
		src := randInput(rng, tc.c, tc.h, tc.w)
		kk := tc.c * tc.k * tc.k
		want := make([]float64, kk*oh*ow)
		wantT, err := tensor.FromSlice(want, kk, oh*ow)
		if err != nil {
			t.Fatal(err)
		}
		if err := tensor.Im2ColInto(wantT, src, tc.k, tc.k, 1, tc.pad); err != nil {
			t.Fatalf("case %+v: %v", tc, err)
		}
		got := make([]float64, kk*oh*ow)
		for i := range got {
			got[i] = math.NaN() // catch unwritten slots
		}
		im2colStride1(got, src.Data(), tc.c, tc.h, tc.w, tc.k, tc.pad, oh, ow)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("case %+v: cols[%d] = %g, want %g", tc, i, got[i], want[i])
			}
		}
	}
}
