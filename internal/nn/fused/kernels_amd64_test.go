package fused

import (
	"math"
	"testing"
)

// TestConvRowAVX2MatchesTail pins the assembly kernel bit-for-bit against
// the scalar tail loop (which is itself pinned against the layered path by
// the parity tests) across awkward k and n values, with and without bias
// and ReLU, including negative products that must rectify to +0.
func TestConvRowAVX2MatchesTail(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(int64(rng%2000)-1000) / 97.0
	}
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 144, 150} {
		for _, n := range []int{4, 8, 12, 36, 144} {
			a := make([]float64, k)
			b := make([]float64, k*n)
			for i := range a {
				a[i] = next()
			}
			for i := range b {
				b[i] = next()
			}
			for _, relu := range []bool{false, true} {
				bias := next()
				got := make([]float64, n)
				want := make([]float64, n)
				r := int64(0)
				if relu {
					r = 1
				}
				convRowAVX2(&got[0], &a[0], &b[0], k, n, n, bias, r)
				convRowTail(want, a, b, 0, n, bias, relu)
				for j := range want {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("k=%d n=%d relu=%v j=%d: asm %x (%g) != scalar %x (%g)",
							k, n, relu, j,
							math.Float64bits(got[j]), got[j],
							math.Float64bits(want[j]), want[j])
					}
				}
			}
		}
	}
}
