// Package fused is the forward-only inference engine: it compiles a trained
// nn.Network into a flat plan of fused operations that a single pass
// executes with zero allocations and no per-layer dispatch.
//
// Compilation fuses adjacent layers into one walk over the data — a
// convolution's bias add and following ReLU ride the im2col-product
// epilogue while the output row is still in registers, and an adjacent 2×2
// max-pool consumes each finished row before the next is computed, so the
// full pre-pool activation tensor never round-trips through memory.
// Dropout is the identity at inference and compiles to nothing. All
// intermediate buffers are planned at compile time into one arena slab;
// Forward never allocates and never touches a layer object.
//
// The convolution product itself runs on register-blocked kernels sized to
// the paper's Table 1 shapes (outC and inC·k·k both divisible by 4): four
// output channels advance together through the im2col matrix, so each
// streamed element of the (inC·k·k, oh·ow) column matrix feeds four
// accumulating rows instead of one. Arbitrary geometries fall back to
// remainder loops that mirror tensor's generic kernel row for row.
//
// Bit-for-bit contract: every kernel here accumulates each output element
// in exactly the per-element order and grouping of the layer-by-layer path
// (tensor.matmulInto's 4-way unrolled dense kernel, its row-skipping
// sparse variant behind the same tensor.SparseSkip gate, MatVecInto's
// sequential dot products, and MaxPool2's comparison order), so fused
// probabilities are bit-identical to nn.Network.Forward — the parity tests
// in this package and in internal/train pin that equality on every Table 1
// geometry and on stride/pad edge cases.
//
// An Engine aliases the source network's parameter tensors rather than
// copying them: weight updates (optimizer steps, train.Evaluator weight
// syncs, checkpoint reloads that copy in place) are visible immediately.
// An Engine is not safe for concurrent use — it owns one arena — so keep
// one engine per worker, exactly like the per-worker network replicas of
// train.Evaluator.
package fused

import (
	"fmt"

	"hotspot/internal/nn"
	"hotspot/internal/tensor"
)

// opKind selects the fused operation a plan step executes.
type opKind uint8

const (
	opConv  opKind = iota // conv + bias (+ ReLU) (+ 2×2 max-pool)
	opDense               // matvec + bias (+ ReLU)
	opReLU                // standalone rectifier
	opPool                // standalone 2×2 max-pool
)

// op is one step of the compiled plan. All slices are views into the
// engine arena except w and bias, which alias the network's parameters.
type op struct {
	kind opKind

	// Geometry. opConv: input (inC, inH, inW), square kernel k, stride,
	// pad, conv output (outC, oh, ow) and pooled output (ph, pw) when pool
	// is set. opPool: inC channels of inH×inW pooled to ph×pw. opDense:
	// inLen → outLen.
	inC, inH, inW        int
	outC, k, stride, pad int
	oh, ow               int
	ph, pw               int
	inLen, outLen        int
	relu, pool           bool

	w, bias []float64 // parameter aliases (opConv, opDense)

	in     []float64      // previous step's output; nil = the caller's input
	out    []float64      // this step's output
	cols   []float64      // im2col scratch (opConv; shared arena region)
	rowBuf []float64      // pooled-conv row-block scratch (shared region)
	inT    *tensor.Tensor // rank-3 view of in for Im2ColInto; nil = caller's input
	colsT  *tensor.Tensor // rank-2 view of cols
}

// Engine is a compiled forward-only inference plan for one input geometry.
// Build one with Compile. Not safe for concurrent use.
type Engine struct {
	inShape  []int
	outShape []int
	ops      []op
	arena    []float64
	out      []float64 // final output view (last op's out)
}

// Compile builds an engine executing net's inference forward pass for
// inputs of exactly inShape. It returns an error for layer types it cannot
// fuse (callers fall back to the layer-by-layer path) and for geometries
// the network itself would reject.
func Compile(net *nn.Network, inShape []int) (*Engine, error) {
	layers := net.Layers()
	if len(layers) == 0 {
		return nil, fmt.Errorf("fused: empty network")
	}
	if len(inShape) == 0 {
		return nil, fmt.Errorf("fused: empty input shape")
	}
	for _, d := range inShape {
		if d <= 0 {
			return nil, fmt.Errorf("fused: invalid input shape %v", inShape)
		}
	}

	// Pass 1: walk the stack, validating shapes through each layer's own
	// OutputShape and folding fusable neighbours into single ops.
	var ops []op
	shape := append([]int(nil), inShape...)
	for i := 0; i < len(layers); {
		switch l := layers[i].(type) {
		case *nn.Dropout:
			i++ // identity at inference

		case *nn.ReLU:
			ops = append(ops, op{kind: opReLU, inLen: prod(shape), outLen: prod(shape)})
			i++

		case *nn.MaxPool2:
			out, err := l.OutputShape(shape)
			if err != nil {
				return nil, fmt.Errorf("fused: %s: %w", l.Name(), err)
			}
			ops = append(ops, op{
				kind: opPool,
				inC:  shape[0], inH: shape[1], inW: shape[2],
				ph: out[1], pw: out[2],
				inLen: prod(shape), outLen: prod(out),
			})
			shape = out
			i++

		case *nn.Conv2D:
			out, err := l.OutputShape(shape)
			if err != nil {
				return nil, fmt.Errorf("fused: %s: %w", l.Name(), err)
			}
			inC, outC, k, stride, pad := l.Geometry()
			w, b := l.Weights()
			o := op{
				kind: opConv,
				inC:  inC, inH: shape[1], inW: shape[2],
				outC: outC, k: k, stride: stride, pad: pad,
				oh: out[1], ow: out[2],
				inLen: prod(shape), outLen: prod(out),
				w: w.Data(), bias: b.Data(),
			}
			shape = out
			i++
			// Fuse a directly following ReLU into the row epilogue.
			if i < len(layers) {
				if _, ok := layers[i].(*nn.ReLU); ok {
					o.relu = true
					i++
				}
			}
			// Fuse a directly following 2×2 max-pool into the row walk.
			if i < len(layers) {
				if mp, ok := layers[i].(*nn.MaxPool2); ok {
					pout, err := mp.OutputShape(shape)
					if err != nil {
						return nil, fmt.Errorf("fused: %s: %w", mp.Name(), err)
					}
					o.pool = true
					o.ph, o.pw = pout[1], pout[2]
					o.outLen = prod(pout)
					shape = pout
					i++
				}
			}
			ops = append(ops, o)

		case *nn.Dense:
			out, err := l.OutputShape(shape)
			if err != nil {
				return nil, fmt.Errorf("fused: %s: %w", l.Name(), err)
			}
			in, outN := l.Dims()
			w, b := l.Weights()
			o := op{
				kind:  opDense,
				inLen: in, outLen: outN,
				w: w.Data(), bias: b.Data(),
			}
			shape = out
			i++
			if i < len(layers) {
				if _, ok := layers[i].(*nn.ReLU); ok {
					o.relu = true
					i++
				}
			}
			ops = append(ops, o)

		default:
			return nil, fmt.Errorf("fused: unsupported layer type %T (%s)", l, l.Name())
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("fused: network reduces to the identity (dropout only)")
	}

	// Pass 2: plan the arena. One shared im2col region sized for the
	// largest conv, one shared row-block scratch for pooled convs, then
	// each op's output buffer, all in a single slab.
	colsMax, rowMax, actTotal := 0, 0, 0
	for _, o := range ops {
		if o.kind == opConv {
			need := o.inC * o.k * o.k * o.oh * o.ow
			if need > colsMax {
				colsMax = need
			}
			if o.pool && blockRows*o.oh*o.ow > rowMax {
				rowMax = blockRows * o.oh * o.ow
			}
		}
		actTotal += o.outLen
	}
	arena := make([]float64, colsMax+rowMax+actTotal)
	colsRegion := arena[:colsMax]
	rowRegion := arena[colsMax : colsMax+rowMax]
	cur := colsMax + rowMax

	e := &Engine{
		inShape: append([]int(nil), inShape...),
		arena:   arena,
		ops:     ops,
	}
	var prev []float64 // previous op's output view; nil = caller's input
	var prevShape []int
	for idx := range e.ops {
		o := &e.ops[idx]
		o.in = prev
		o.out = arena[cur : cur+o.outLen]
		cur += o.outLen
		if o.kind == opConv {
			kk := o.inC * o.k * o.k
			n := o.oh * o.ow
			o.cols = colsRegion[:kk*n]
			t, err := tensor.FromSlice(o.cols, kk, n)
			if err != nil {
				return nil, fmt.Errorf("fused: plan cols: %w", err)
			}
			o.colsT = t
			if o.pool {
				o.rowBuf = rowRegion[:blockRows*n]
			}
			if prev != nil {
				// Pre-wrap the producing buffer as a rank-3 tensor so
				// Forward's im2col needs no per-call wrapping.
				t, err := tensor.FromSlice(prev, prevShape[0], prevShape[1], prevShape[2])
				if err != nil {
					return nil, fmt.Errorf("fused: plan conv input: %w", err)
				}
				o.inT = t
			}
		}
		prev = o.out
		switch o.kind {
		case opConv:
			if o.pool {
				prevShape = []int{o.outC, o.ph, o.pw}
			} else {
				prevShape = []int{o.outC, o.oh, o.ow}
			}
		case opPool:
			prevShape = []int{o.inC, o.ph, o.pw}
		case opReLU:
			// Shape passes through unchanged.
		case opDense:
			prevShape = []int{o.outLen}
		}
	}
	e.out = prev
	e.outShape = append([]int(nil), shape...)
	return e, nil
}

// Vectorized names the conv-row kernel the engine runs on this host:
// "avx2" for the assembly kernel, "generic" for the pure-Go blocked
// kernels. Both produce bit-identical outputs; the name is recorded by
// benchmark reports so numbers are attributable to a kernel.
func Vectorized() string {
	if useAVX2 {
		return "avx2"
	}
	return "generic"
}

// prod returns the element count of a shape.
func prod(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// InShape returns the input shape the engine was compiled for.
func (e *Engine) InShape() []int { return append([]int(nil), e.inShape...) }

// OutShape returns the network output shape.
func (e *Engine) OutShape() []int { return append([]int(nil), e.outShape...) }

// OutLen returns the number of output scalars.
func (e *Engine) OutLen() int { return len(e.out) }

// Ops returns the number of fused plan steps (for introspection and tests;
// fewer steps than network layers means fusion happened).
func (e *Engine) Ops() int { return len(e.ops) }

// ArenaLen returns the total number of float64 slots the plan reserved —
// the engine's entire working memory.
func (e *Engine) ArenaLen() int { return len(e.arena) }

// Accepts reports whether x has the input shape the engine was compiled
// for, without allocating.
func (e *Engine) Accepts(x *tensor.Tensor) bool {
	if x.Rank() != len(e.inShape) {
		return false
	}
	for i, d := range e.inShape {
		if x.Dim(i) != d {
			return false
		}
	}
	return true
}

// Forward runs the compiled plan on one sample and returns the network
// output as a view into the engine arena, valid until the next Forward
// call. It performs no allocations.
func (e *Engine) Forward(x *tensor.Tensor) ([]float64, error) {
	if !e.Accepts(x) {
		return nil, fmt.Errorf("fused: input shape %v, engine compiled for %v", x.Shape(), e.inShape)
	}
	for i := range e.ops {
		o := &e.ops[i]
		switch o.kind {
		case opConv:
			if o.stride == 1 {
				src := o.in
				if src == nil {
					src = x.Data()
				}
				im2colStride1(o.cols, src, o.inC, o.inH, o.inW, o.k, o.pad, o.oh, o.ow)
			} else {
				src := o.inT
				if src == nil {
					src = x
				}
				if err := tensor.Im2ColInto(o.colsT, src, o.k, o.k, o.stride, o.pad); err != nil {
					return nil, err
				}
			}
			convRun(o)
		case opDense:
			denseRun(o, e.input(o, x))
		case opReLU:
			reluRun(o, e.input(o, x))
		case opPool:
			poolRun(o, e.input(o, x))
		}
	}
	return e.out, nil
}

// input resolves an op's input slice: its planned view, or the caller's
// tensor for the first op.
func (e *Engine) input(o *op, x *tensor.Tensor) []float64 {
	if o.in == nil {
		return x.Data()
	}
	return o.in
}
