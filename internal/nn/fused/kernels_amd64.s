// AVX2 conv-row kernel and CPU feature detection for the fused inference
// engine. See kernels_amd64.go for the calling contract and the
// bit-for-bit parity argument; the short version is that vector lanes are
// independent output columns, every lane executes the exact scalar
// operation sequence of the layered kernel (separate VMULPD/VADDPD — no
// FMA contraction, which would change results), and the rectifier is a
// GT_OQ compare-and-mask so NaN and -0 behave exactly like Go's v > 0.

#include "textflag.h"

// func convRowAVX2(d, a, b *float64, k, nv, n int, bias float64, relu int64)
//
// For each output column j in [0, nv), nv % 4 == 0:
//
//	s = 0
//	for p in 4-wide groups:   s += a[p]·b[p·n+j] + a[p+1]·b[(p+1)·n+j] + a[p+2]·b[(p+2)·n+j] + a[p+3]·b[(p+3)·n+j]
//	for remaining p:          s += a[p]·b[p·n+j]
//	s += bias
//	if relu != 0:             s = s > 0 ? s : +0
//	d[j] = s
TEXT ·convRowAVX2(SB), NOSPLIT, $0-64
	MOVQ d+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ k+24(FP), R8
	MOVQ nv+32(FP), R9
	MOVQ n+40(FP), R10
	MOVQ relu+56(FP), R11

	VBROADCASTSD bias+48(FP), Y14
	VXORPD Y15, Y15, Y15     // +0.0 lanes for the rectifier compare
	SHLQ $3, R10             // R10 = n*8, the byte stride between b rows
	MOVQ R8, R12
	ANDQ $-4, R12            // R12 = k &^ 3, the 4-wide group limit
	XORQ CX, CX              // j (element index)

loopj:
	CMPQ CX, R9
	JGE  done
	LEAQ (DX)(CX*8), BX      // &b[j], advanced by n*8 per p
	VXORPD Y0, Y0, Y0        // s = 0 (accumulates in-register; the layered
	XORQ R13, R13            // kernel's 0-then-+= start is 0 + group too)

loopp4:
	CMPQ R13, R12
	JGE  tailp
	VBROADCASTSD (SI)(R13*8), Y1
	VBROADCASTSD 8(SI)(R13*8), Y2
	VBROADCASTSD 16(SI)(R13*8), Y3
	VBROADCASTSD 24(SI)(R13*8), Y4
	VMULPD (BX), Y1, Y1      // a[p]·b-row lanes
	ADDQ R10, BX
	VMULPD (BX), Y2, Y2
	ADDQ R10, BX
	VMULPD (BX), Y3, Y3
	ADDQ R10, BX
	VMULPD (BX), Y4, Y4
	ADDQ R10, BX
	VADDPD Y2, Y1, Y1        // ((m0+m1)+m2)+m3: the Go expression's
	VADDPD Y3, Y1, Y1        // left-associative grouping, exactly
	VADDPD Y4, Y1, Y1
	VADDPD Y1, Y0, Y0        // s += group
	ADDQ $4, R13
	JMP  loopp4

tailp:
	CMPQ R13, R8
	JGE  epilogue
	VBROADCASTSD (SI)(R13*8), Y1
	VMULPD (BX), Y1, Y1
	ADDQ R10, BX
	VADDPD Y1, Y0, Y0        // s += a[p]·b[p·n+j]
	INCQ R13
	JMP  tailp

epilogue:
	VADDPD Y14, Y0, Y0       // s += bias (after the full dot, like the
	TESTQ R11, R11           // layered per-row epilogue)
	JZ   store
	VCMPPD $0x1e, Y15, Y0, Y1 // lanes where s > +0 (GT_OQ: NaN -> false)
	VANDPD Y1, Y0, Y0        // keep those lanes, others become +0

store:
	VMOVUPD Y0, (DI)(CX*8)
	ADDQ $4, CX
	JMP  loopj

done:
	VZEROUPPER
	RET

// func cpuHasAVX2() bool
//
// CPUID/XGETBV probe: OSXSAVE + AVX + OS-enabled YMM state + AVX2.
TEXT ·cpuHasAVX2(SB), NOSPLIT, $0-1
	MOVQ $0, AX
	CPUID
	CMPQ AX, $7
	JL   no                  // no leaf 7 -> no AVX2
	MOVQ $1, AX
	CPUID
	MOVL CX, R8
	TESTL $(1<<27), R8       // OSXSAVE
	JZ   no
	TESTL $(1<<28), R8       // AVX
	JZ   no
	XORL CX, CX
	XGETBV
	ANDL $6, AX              // XCR0: XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  no
	MOVQ $7, AX
	XORL CX, CX
	CPUID
	TESTL $(1<<5), BX        // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET
