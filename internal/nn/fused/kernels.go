package fused

import "hotspot/internal/tensor"

// blockRows is the register-blocking factor of the dense conv kernel: four
// output channels advance together through the im2col matrix, so each
// streamed element of the column matrix feeds four accumulating rows. The
// paper's Table 1 conv stages have outC ∈ {16, 32}, both multiples of
// four, so the remainder path never runs on the reference network.
const blockRows = 4

// convRun executes one fused conv(+bias)(+ReLU)(+pool) op over the im2col
// matrix already staged in o.cols. Kernel selection replicates the layered
// path's density gate exactly: the same tensor.SparseSkip decision over
// the same weight data, so the fused and layered paths always take
// structurally matching kernels and produce bit-identical outputs.
func convRun(o *op) {
	m, k, n := o.outC, o.inC*o.k*o.k, o.oh*o.ow
	if tensor.SparseSkip(o.w[:m*k]) {
		convSparse(o, m, k, n)
		return
	}
	convDense(o, m, k, n)
}

// convDense is the blocked dense kernel. Output rows are produced four at
// a time; each finished row gets its bias+ReLU epilogue while hot and, for
// pooled ops, is folded into the 2×2 max-pool immediately — the pre-pool
// activation never exists as a full tensor. On CPUs with AVX2 the row
// product runs on the assembly kernel instead, which vectorizes across
// output columns (lanes never interact, so per-element order — and hence
// every output bit — is unchanged).
func convDense(o *op, m, k, n int) {
	if useAVX2 {
		convDenseVec(o, m, k, n)
		return
	}
	a, b := o.w, o.cols
	if !o.pool {
		out := o.out
		i := 0
		for ; i+3 < m; i += 4 {
			d0 := out[i*n : i*n+n]
			d1 := out[(i+1)*n : (i+1)*n+n]
			d2 := out[(i+2)*n : (i+2)*n+n]
			d3 := out[(i+3)*n : (i+3)*n+n]
			block4(d0, d1, d2, d3,
				a[i*k:i*k+k], a[(i+1)*k:(i+1)*k+k], a[(i+2)*k:(i+2)*k+k], a[(i+3)*k:(i+3)*k+k],
				b, n)
			biasReLURow(d0, o.bias[i], o.relu)
			biasReLURow(d1, o.bias[i+1], o.relu)
			biasReLURow(d2, o.bias[i+2], o.relu)
			biasReLURow(d3, o.bias[i+3], o.relu)
		}
		for ; i < m; i++ {
			d := out[i*n : i*n+n]
			row1(d, a[i*k:i*k+k], b, n)
			biasReLURow(d, o.bias[i], o.relu)
		}
		return
	}
	rb := o.rowBuf
	r0, r1, r2, r3 := rb[0:n], rb[n:2*n], rb[2*n:3*n], rb[3*n:4*n]
	i := 0
	for ; i+3 < m; i += 4 {
		block4(r0, r1, r2, r3,
			a[i*k:i*k+k], a[(i+1)*k:(i+1)*k+k], a[(i+2)*k:(i+2)*k+k], a[(i+3)*k:(i+3)*k+k],
			b, n)
		for r := 0; r < 4; r++ {
			d := rb[r*n : r*n+n]
			biasReLURow(d, o.bias[i+r], o.relu)
			poolRow(o.out[(i+r)*o.ph*o.pw:(i+r+1)*o.ph*o.pw], d, o.ow, o.ph, o.pw)
		}
	}
	for ; i < m; i++ {
		row1(r0, a[i*k:i*k+k], b, n)
		biasReLURow(r0, o.bias[i], o.relu)
		poolRow(o.out[i*o.ph*o.pw:(i+1)*o.ph*o.pw], r0, o.ow, o.ph, o.pw)
	}
}

// convDenseVec is convDense on the AVX2 row kernel: one call per output
// row computes the whole im2col product row with bias and ReLU folded into
// the vector epilogue, keeping each column's accumulator in a register for
// the entire k walk. Pooled rows still stage through rowBuf and fold into
// the 2×2 max-pool immediately.
func convDenseVec(o *op, m, k, n int) {
	a, b := o.w, o.cols
	if !o.pool {
		for i := 0; i < m; i++ {
			convRowFast(o.out[i*n:i*n+n], a[i*k:i*k+k], b, n, o.bias[i], o.relu)
		}
		return
	}
	r0 := o.rowBuf[:n]
	for i := 0; i < m; i++ {
		convRowFast(r0, a[i*k:i*k+k], b, n, o.bias[i], o.relu)
		poolRow(o.out[i*o.ph*o.pw:(i+1)*o.ph*o.pw], r0, o.ow, o.ph, o.pw)
	}
}

// convRowFast computes one full fused output row d = arow · b (+bias,
// +optional ReLU) using the assembly kernel for the 4-aligned column
// prefix and an order-identical scalar loop for the 0–3 trailing columns.
func convRowFast(d, arow, b []float64, n int, bias float64, relu bool) {
	nv := n &^ 3
	if nv > 0 {
		r := int64(0)
		if relu {
			r = 1
		}
		convRowAVX2(&d[0], &arow[0], &b[0], len(arow), nv, n, bias, r)
	}
	if nv < n {
		convRowTail(d, arow, b, nv, n, bias, relu)
	}
}

// convRowTail computes columns [j0, n) of one fused output row, one column
// at a time with a register accumulator. The accumulation order per
// element — 4-wide coefficient groups summed left-associatively, then
// singles, then bias — is exactly the layered kernel's, so this path and
// the vector kernel produce identical bits for their respective columns.
func convRowTail(d, arow, b []float64, j0, n int, bias float64, relu bool) {
	k := len(arow)
	kg := k &^ 3
	for j := j0; j < n; j++ {
		s := 0.0
		p := 0
		for ; p < kg; p += 4 {
			s += arow[p]*b[p*n+j] + arow[p+1]*b[(p+1)*n+j] + arow[p+2]*b[(p+2)*n+j] + arow[p+3]*b[(p+3)*n+j]
		}
		for ; p < k; p++ {
			s += arow[p] * b[p*n+j]
		}
		s += bias
		if relu {
			s = rectify(s)
		}
		d[j] = s
	}
}

// convSparse mirrors tensor's row-skipping sparse kernel with the fused
// epilogue: per-row accumulation one coefficient at a time, zeros skipped.
func convSparse(o *op, m, k, n int) {
	a, b := o.w, o.cols
	for i := 0; i < m; i++ {
		var d []float64
		if o.pool {
			d = o.rowBuf[:n]
		} else {
			d = o.out[i*n : i*n+n]
		}
		for j := range d {
			d[j] = 0
		}
		arow := a[i*k : i*k+k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow[:len(d)] {
				d[j] += av * bv
			}
		}
		biasReLURow(d, o.bias[i], o.relu)
		if o.pool {
			poolRow(o.out[i*o.ph*o.pw:(i+1)*o.ph*o.pw], d, o.ow, o.ph, o.pw)
		}
	}
}

// block4 computes four output rows d0..d3 = a0..a3 · b at once, where each
// aI has length k and b is (k, n) row-major. The k dimension advances in
// the same 4-wide groups, with the same per-element addition grouping, as
// tensor.matmulInto's dense kernel — that grouping is load-bearing for the
// bit-for-bit parity contract. The blocking wins because every b element
// loaded feeds four accumulator rows instead of one, cutting the kernel's
// dominant memory traffic (streaming the im2col matrix) by 4×.
func block4(d0, d1, d2, d3, a0, a1, a2, a3, b []float64, n int) {
	d1 = d1[:len(d0)]
	d2 = d2[:len(d0)]
	d3 = d3[:len(d0)]
	for j := range d0 {
		d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
	}
	k := len(a0)
	p := 0
	for ; p+3 < k; p += 4 {
		b0 := b[p*n : p*n+n]
		b1 := b[(p+1)*n : (p+1)*n+n]
		b2 := b[(p+2)*n : (p+2)*n+n]
		b3 := b[(p+3)*n : (p+3)*n+n]
		b0 = b0[:len(d0)]
		b1 = b1[:len(d0)]
		b2 = b2[:len(d0)]
		b3 = b3[:len(d0)]
		a00, a01, a02, a03 := a0[p], a0[p+1], a0[p+2], a0[p+3]
		a10, a11, a12, a13 := a1[p], a1[p+1], a1[p+2], a1[p+3]
		a20, a21, a22, a23 := a2[p], a2[p+1], a2[p+2], a2[p+3]
		a30, a31, a32, a33 := a3[p], a3[p+1], a3[p+2], a3[p+3]
		for j := range d0 {
			bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
			d0[j] += a00*bv0 + a01*bv1 + a02*bv2 + a03*bv3
			d1[j] += a10*bv0 + a11*bv1 + a12*bv2 + a13*bv3
			d2[j] += a20*bv0 + a21*bv1 + a22*bv2 + a23*bv3
			d3[j] += a30*bv0 + a31*bv1 + a32*bv2 + a33*bv3
		}
	}
	for ; p < k; p++ {
		brow := b[p*n : p*n+n]
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		for j, bv := range brow[:len(d0)] {
			d0[j] += av0 * bv
			d1[j] += av1 * bv
			d2[j] += av2 * bv
			d3[j] += av3 * bv
		}
	}
}

// row1 computes one output row d = arow · b, reproducing tensor's dense
// single-row kernel exactly. It is the remainder path for outC % 4 rows.
func row1(d, arow, b []float64, n int) {
	for j := range d {
		d[j] = 0
	}
	k := len(arow)
	p := 0
	for ; p+3 < k; p += 4 {
		av0, av1, av2, av3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		b0 := b[p*n : p*n+n]
		b1 := b[(p+1)*n : (p+1)*n+n]
		b2 := b[(p+2)*n : (p+2)*n+n]
		b3 := b[(p+3)*n : (p+3)*n+n]
		b0 = b0[:len(d)]
		b1 = b1[:len(d)]
		b2 = b2[:len(d)]
		b3 = b3[:len(d)]
		for j := range d {
			d[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
		}
	}
	for ; p < k; p++ {
		av := arow[p]
		brow := b[p*n : p*n+n]
		for j, bv := range brow[:len(d)] {
			d[j] += av * bv
		}
	}
}

// biasReLURow adds the channel bias to a finished row and, when relu is
// set, rectifies in the same pass. The value is (full dot product) + bias
// — the order the layered path produces — and the rectifier uses the same
// strict v > 0 comparison as nn.ReLU.
func biasReLURow(d []float64, bias float64, relu bool) {
	if relu {
		for j, v := range d {
			v += bias
			if v > 0 {
				d[j] = v
			} else {
				d[j] = 0
			}
		}
		return
	}
	for j := range d {
		d[j] += bias
	}
}

// poolRow 2×2-max-pools one channel row: src is one channel's activation
// viewed as (h, w) with w = srcW, dst is (ph, pw). Comparison order (top
// left, top right, bottom left, bottom right; strictly greater replaces)
// matches nn.MaxPool2 so NaN propagation is identical too. Odd trailing
// rows/columns are dropped, as in the layered pool.
func poolRow(dst, src []float64, srcW, ph, pw int) {
	for py := 0; py < ph; py++ {
		srow := src[2*py*srcW:]
		drow := dst[py*pw : py*pw+pw]
		for px := 0; px < pw; px++ {
			i0 := 2 * px
			best := srow[i0]
			if v := srow[i0+1]; v > best {
				best = v
			}
			if v := srow[i0+srcW]; v > best {
				best = v
			}
			if v := srow[i0+srcW+1]; v > best {
				best = v
			}
			drow[px] = best
		}
	}
}

// im2colStride1 stages a (c, h, w) input into the im2col matrix for a
// stride-1 square-kernel conv. It produces exactly the values of
// tensor.Im2ColInto — im2col is pure data movement, so how the elements
// get there cannot affect parity — but each kernel-row's run of valid
// columns moves with one copy instead of per-column bounds-checked loads,
// which matters because im2col is ~30% of the fused forward.
func im2colStride1(cols, src []float64, c, h, w, k, pad, oh, ow int) {
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowBase := ((ch*k+ky)*k + kx) * ncols
				// With stride 1, ix = ox - pad + kx, so the in-bounds ox
				// run is [pad-kx, w+pad-kx) clamped to [0, ow).
				lo := pad - kx
				if lo < 0 {
					lo = 0
				} else if lo > ow {
					lo = ow
				}
				hi := w + pad - kx
				if hi < lo {
					hi = lo
				} else if hi > ow {
					hi = ow
				}
				for oy := 0; oy < oh; oy++ {
					dst := cols[rowBase+oy*ow : rowBase+oy*ow+ow]
					iy := oy - pad + ky
					if iy < 0 || iy >= h {
						for x := range dst {
							dst[x] = 0
						}
						continue
					}
					for x := 0; x < lo; x++ {
						dst[x] = 0
					}
					if hi > lo {
						s := chBase + iy*w + (lo - pad + kx)
						copy(dst[lo:hi], src[s:s+hi-lo])
					}
					for x := hi; x < ow; x++ {
						dst[x] = 0
					}
				}
			}
		}
	}
}

// denseRun executes one fused dense(+bias)(+ReLU) op. Each dot product
// accumulates in tensor.MatVecInto's sequential order; bias lands after
// the full dot, exactly as the layered Dense.Forward + ReLU pair computes.
// Four output rows advance together so their four accumulator chains
// overlap in the FP pipeline — each chain is still strictly sequential per
// element, so every output bit is unchanged; only the chains' relative
// scheduling differs, and they never interact.
func denseRun(o *op, x []float64) {
	w, bias, out := o.w, o.bias, o.out
	k := o.inLen
	x = x[:k]
	i := 0
	for ; i+3 < o.outLen; i += 4 {
		r0 := w[i*k : i*k+k]
		r1 := w[(i+1)*k : (i+1)*k+k]
		r2 := w[(i+2)*k : (i+2)*k+k]
		r3 := w[(i+3)*k : (i+3)*k+k]
		s0, s1, s2, s3 := 0.0, 0.0, 0.0, 0.0
		for j, v := range x {
			s0 += r0[j] * v
			s1 += r1[j] * v
			s2 += r2[j] * v
			s3 += r3[j] * v
		}
		s0 += bias[i]
		s1 += bias[i+1]
		s2 += bias[i+2]
		s3 += bias[i+3]
		if o.relu {
			s0, s1, s2, s3 = rectify(s0), rectify(s1), rectify(s2), rectify(s3)
		}
		out[i], out[i+1], out[i+2], out[i+3] = s0, s1, s2, s3
	}
	for ; i < o.outLen; i++ {
		row := w[i*k : i*k+k]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		s += bias[i]
		if o.relu {
			s = rectify(s)
		}
		out[i] = s
	}
}

// rectify is max(0, v) under nn.ReLU's exact rule: keep when v > 0, else 0.
func rectify(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// reluRun executes a standalone rectifier op (a ReLU not adjacent to a
// conv or dense producer, e.g. following a pool).
func reluRun(o *op, x []float64) {
	out := o.out
	for i, v := range x[:len(out)] {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// poolRun executes a standalone 2×2 max-pool op channel by channel.
func poolRun(o *op, x []float64) {
	hw := o.inH * o.inW
	phw := o.ph * o.pw
	for c := 0; c < o.inC; c++ {
		poolRow(o.out[c*phw:(c+1)*phw], x[c*hw:(c+1)*hw], o.inW, o.ph, o.pw)
	}
}
