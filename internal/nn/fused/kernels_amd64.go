package fused

// useAVX2 gates the assembly conv-row kernel. The probe checks CPUID for
// AVX2 and XGETBV for OS-enabled YMM state, so the binary stays correct on
// any amd64 machine; non-AVX2 hosts take the same pure-Go blocked kernels
// as other architectures.
var useAVX2 = cpuHasAVX2()

// convRowAVX2 computes columns [0, nv) of one conv output row d over the
// im2col matrix b ((k, n) row-major) with coefficients a (length k),
// including the +bias epilogue and, when relu != 0, the strict v > 0
// rectifier. nv must be a multiple of 4 and at most n.
//
// Each YMM lane is one output column, and every lane executes the layered
// kernel's exact scalar operation sequence: 4-wide coefficient groups
// summed left-associatively with separate multiply and add instructions
// (no FMA contraction), singles for the k remainder, bias after the full
// dot. Lanes never interact, so vectorizing across columns cannot change
// any per-element result — the output is bit-identical to row1 plus
// biasReLURow.
//
//go:noescape
func convRowAVX2(d, a, b *float64, k, nv, n int, bias float64, relu int64)

// cpuHasAVX2 reports AVX2 support with OS-enabled YMM state (CPUID +
// XGETBV; implemented in kernels_amd64.s).
func cpuHasAVX2() bool
