//go:build !amd64

package fused

// useAVX2 is always false off amd64; the pure-Go blocked kernels run.
const useAVX2 = false

// convRowAVX2 is never called when useAVX2 is false; this stub keeps the
// package compiling on architectures without the assembly kernel.
//hsd:noalloc
func convRowAVX2(d, a, b *float64, k, nv, n int, bias float64, relu int64) {
	panic("fused: convRowAVX2 called without AVX2 support")
}
