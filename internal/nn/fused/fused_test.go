package fused

import (
	"math"
	"math/rand"
	"testing"

	"hotspot/internal/nn"
	"hotspot/internal/tensor"
)

// randInput builds a seeded random (shape...) tensor.
func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return x
}

// assertBitEqual fails unless got and want match element for element at
// the bit level (the repo's parity idiom: Float64bits equality, which also
// distinguishes NaN payloads and signed zeros).
func assertBitEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d differs: fused %v (bits %x) vs layered %v (bits %x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// checkParity compiles net for inShape and compares the fused forward
// against the layer-by-layer inference path on several random inputs.
func checkParity(t *testing.T, net *nn.Network, inShape []int, label string, seed int64) {
	t.Helper()
	eng, err := Compile(net, inShape)
	if err != nil {
		t.Fatalf("%s: compile: %v", label, err)
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 3; trial++ {
		x := randInput(rng, inShape...)
		want, err := net.Forward(x, false)
		if err != nil {
			t.Fatalf("%s: layered forward: %v", label, err)
		}
		wantCopy := append([]float64(nil), want.Data()...) // layered buffer is reused
		got, err := eng.Forward(x)
		if err != nil {
			t.Fatalf("%s: fused forward: %v", label, err)
		}
		assertBitEqual(t, got, wantCopy, label)
	}
}

// table1Stages enumerates every conv stage geometry of the paper's Table 1
// (conv layer, whether a ReLU and a pool follow, input shape).
func table1Stages(t *testing.T) []struct {
	name    string
	net     *nn.Network
	inShape []int
} {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	mk := func(name string, inC, outC int, pool bool, h, w int) struct {
		name    string
		net     *nn.Network
		inShape []int
	} {
		conv, err := nn.NewConv2D(name, inC, outC, 3, 1, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		layers := []nn.Layer{conv, nn.NewReLU(name + "-relu")}
		if pool {
			layers = append(layers, nn.NewMaxPool2(name+"-pool"))
		}
		return struct {
			name    string
			net     *nn.Network
			inShape []int
		}{name, nn.NewNetwork(layers...), []int{inC, h, w}}
	}
	return []struct {
		name    string
		net     *nn.Network
		inShape []int
	}{
		mk("conv1-1", 32, 16, false, 12, 12),
		mk("conv1-2", 16, 16, true, 12, 12),
		mk("conv2-1", 16, 32, false, 6, 6),
		mk("conv2-2", 32, 32, true, 6, 6),
	}
}

// TestParityTable1Stages pins fused ≡ layered on every Table 1 conv stage.
func TestParityTable1Stages(t *testing.T) {
	for i, s := range table1Stages(t) {
		checkParity(t, s.net, s.inShape, s.name, int64(100+i))
	}
}

// TestParityPaperNet pins fused ≡ layered end to end on the full Table 1
// network, including the dense stages and the inference-identity dropout.
func TestParityPaperNet(t *testing.T) {
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	checkParity(t, net, []int{32, 12, 12}, "papernet", 42)
}

// TestParityOddGeometries exercises stride/pad edge cases and odd input
// sizes: strided convs, zero padding, pools over odd extents (trailing
// row/column dropped), non-multiple-of-4 channel counts (the kernel's
// remainder paths), standalone ReLU and pool ops, and dense-only nets.
func TestParityOddGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	conv := func(name string, inC, outC, k, stride, pad int) *nn.Conv2D {
		c, err := nn.NewConv2D(name, inC, outC, k, stride, pad, rng)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	dense := func(name string, in, out int) *nn.Dense {
		d, err := nn.NewDense(name, in, out, rng)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	drop := func(name string, rate float64) *nn.Dropout {
		d, err := nn.NewDropout(name, rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	cases := []struct {
		name    string
		net     *nn.Network
		inShape []int
	}{
		{"stride2-pad0-odd-input", nn.NewNetwork(
			conv("c", 3, 5, 3, 2, 0), nn.NewReLU("r"),
		), []int{3, 7, 9}},
		{"k5-pad2", nn.NewNetwork(
			conv("c", 2, 3, 5, 1, 2), nn.NewReLU("r"), nn.NewMaxPool2("p"),
		), []int{2, 5, 5}},
		{"pool-odd-extent", nn.NewNetwork(
			conv("c", 1, 7, 3, 1, 1), nn.NewMaxPool2("p"), // conv→pool, no relu between
		), []int{1, 5, 7}},
		{"standalone-relu-and-pool", nn.NewNetwork(
			conv("c", 2, 6, 3, 1, 1), nn.NewMaxPool2("p"), nn.NewReLU("r-after-pool"),
			dense("fc", 6*3*3, 4),
		), []int{2, 6, 6}},
		{"remainder-rows", nn.NewNetwork( // outC % 4 != 0 and k·k·inC % 4 != 0
			conv("c", 1, 5, 3, 1, 0), nn.NewReLU("r"),
		), []int{1, 8, 8}},
		{"dense-only-with-dropout", nn.NewNetwork(
			dense("fc1", 24, 10), nn.NewReLU("r"), drop("d", 0.5), dense("fc2", 10, 3),
		), []int{24}},
		{"dense-on-rank3-input", nn.NewNetwork(
			dense("fc", 2*3*4, 6), nn.NewReLU("r"),
		), []int{2, 3, 4}},
		{"trailing-dropout", nn.NewNetwork(
			dense("fc", 9, 2), drop("d", 0.3),
		), []int{9}},
		{"stacked-convs-mixed-strides", nn.NewNetwork(
			conv("c1", 2, 8, 3, 1, 1), nn.NewReLU("r1"),
			conv("c2", 8, 4, 3, 2, 1), nn.NewReLU("r2"), nn.NewMaxPool2("p"),
			dense("fc", 4*2*2, 2),
		), []int{2, 9, 9}},
	}
	for i, c := range cases {
		checkParity(t, c.net, c.inShape, c.name, int64(200+i))
	}
}

// TestParitySparseWeights forces the row-skipping kernel path: with >60%
// of a conv's weights zeroed, both the layered matmul and the fused kernel
// must take their sparse variants and still agree bit for bit.
func TestParitySparseWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	conv, err := nn.NewConv2D("c", 4, 8, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := conv.Weights()
	zrng := rand.New(rand.NewSource(32))
	for i := range w.Data() {
		if zrng.Float64() < 0.9 {
			w.Data()[i] = 0
		}
	}
	if !tensor.SparseSkip(w.Data()) {
		t.Fatal("test setup: weights did not trip the sparse gate")
	}
	net := nn.NewNetwork(conv, nn.NewReLU("r"), nn.NewMaxPool2("p"))
	checkParity(t, net, []int{4, 6, 6}, "sparse-weights", 33)
}

// TestWeightAliasing verifies an engine sees in-place weight updates (the
// contract train.Evaluator's weight sync relies on) without recompiling.
func TestWeightAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net, err := nn.NewPaperNet(nn.PaperNetConfig{
		InChannels: 4, SpatialSize: 8, Conv1Maps: 4, Conv2Maps: 8, FC1: 16,
		DropoutRate: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile(net, []int{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, 4, 8, 8)
	before, err := eng.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	beforeCopy := append([]float64(nil), before...)
	// Perturb every parameter in place, as an optimizer step would.
	for _, p := range net.Params() {
		for i := range p.W.Data() {
			p.W.Data()[i] += 0.25
		}
	}
	want, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := append([]float64(nil), want.Data()...)
	got, err := eng.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqual(t, got, wantCopy, "after in-place update")
	same := true
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(beforeCopy[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("engine output unchanged after weight update — weights were copied, not aliased")
	}
}

// TestForwardZeroAlloc pins the arena contract: a compiled engine's
// forward pass performs no heap allocations.
func TestForwardZeroAlloc(t *testing.T) {
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile(net, []int{32, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(rand.New(rand.NewSource(51)), 32, 12, 12)
	if _, err := eng.Forward(x); err != nil { // warm-up + error check
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := eng.Forward(x); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fused forward allocates %.1f times per pass, want 0", allocs)
	}
}

// TestCompileFusesLayers checks the plan actually collapses: the paper net
// has 13 layers but must compile to 6 fused ops (4 conv stages + 2 dense).
func TestCompileFusesLayers(t *testing.T) {
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile(net, []int{32, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Ops(); got != 6 {
		t.Fatalf("paper net compiled to %d ops, want 6 (4 fused conv stages + 2 dense)", got)
	}
	if eng.OutLen() != 2 {
		t.Fatalf("output length %d, want 2", eng.OutLen())
	}
	if eng.ArenaLen() == 0 {
		t.Fatal("empty arena")
	}
}

// TestCompileErrors exercises rejection paths: unsupported layers, bad
// input shapes, geometry collapse, and shape-mismatched Forward inputs.
func TestCompileErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	conv, err := nn.NewConv2D("c", 2, 4, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewNetwork(conv)

	if _, err := Compile(nn.NewNetwork(), []int{1}); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := Compile(net, nil); err == nil {
		t.Fatal("empty input shape accepted")
	}
	if _, err := Compile(net, []int{2, 0, 5}); err == nil {
		t.Fatal("zero dimension accepted")
	}
	if _, err := Compile(net, []int{3, 5, 5}); err == nil {
		t.Fatal("channel mismatch accepted")
	}
	d, err := nn.NewDropout("d", 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(nn.NewNetwork(d), []int{4}); err == nil {
		t.Fatal("dropout-only network accepted")
	}

	eng, err := Compile(net, []int{2, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Forward(tensor.New(2, 6, 6)); err == nil {
		t.Fatal("shape-mismatched input accepted")
	}
	if eng.Accepts(tensor.New(2, 6, 6)) {
		t.Fatal("Accepts approved a mismatched shape")
	}
	if !eng.Accepts(tensor.New(2, 5, 5)) {
		t.Fatal("Accepts rejected the compiled shape")
	}
}

// BenchmarkFusedPaperNetInference is the fused counterpart of
// nn.BenchmarkPaperNetInference for quick go-test comparisons; the
// authoritative numbers live in BENCH_infer.json via hsd-bench -infer.
func BenchmarkFusedPaperNetInference(b *testing.B) {
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := Compile(net, []int{32, 12, 12})
	if err != nil {
		b.Fatal(err)
	}
	x := randInput(rand.New(rand.NewSource(2)), 32, 12, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}
