package nn

import (
	"fmt"
	"math"
	"math/rand"

	"hotspot/internal/tensor"
)

func sqrt2Over(fanIn float64) float64 { return math.Sqrt(2 / fanIn) }

// reuseBuffer returns buf when it already has the wanted shape, otherwise a
// fresh tensor. Layers use it for forward/backward outputs so the steady
// state of a training loop allocates nothing; the returned tensor aliases
// layer-owned storage that the next Forward/Backward call on the same layer
// overwrites (the established contract of the sequential per-sample loop —
// see Conv2D).
func reuseBuffer(buf *tensor.Tensor, shape ...int) *tensor.Tensor {
	if buf != nil && buf.Rank() == len(shape) {
		same := true
		for i, d := range shape {
			if buf.Dim(i) != d {
				same = false
				break
			}
		}
		if same {
			return buf
		}
	}
	return tensor.New(shape...)
}

// ReLU is the element-wise rectifier max(0, x) (Equation (5) of the paper).
type ReLU struct {
	name string
	mask []bool
	out  *tensor.Tensor // reused forward output
	dx   *tensor.Tensor // reused backward output
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutputShape implements Layer.
func (r *ReLU) OutputShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer. The returned tensor aliases an internal buffer
// overwritten by the next Forward call on this layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	r.out = reuseBuffer(r.out, x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	xd, od := x.Data(), r.out.Data()
	for i, v := range xd {
		if v > 0 {
			r.mask[i] = true
			od[i] = v
		} else {
			r.mask[i] = false
			od[i] = 0
		}
	}
	return r.out, nil
}

// Backward implements Layer. The returned gradient aliases an internal
// buffer overwritten by the next Backward call.
func (r *ReLU) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if len(r.mask) != grad.Len() {
		return nil, fmt.Errorf("nn: relu %q backward size %d, forward saw %d", r.name, grad.Len(), len(r.mask))
	}
	r.dx = reuseBuffer(r.dx, grad.Shape()...)
	gd, dd := grad.Data(), r.dx.Data()
	for i, v := range gd {
		if r.mask[i] {
			dd[i] = v
		} else {
			dd[i] = 0
		}
	}
	return r.dx, nil
}

// MaxPool2 is 2×2 max pooling with stride 2 over (C, H, W) inputs; odd
// trailing rows/columns are dropped (the paper's shapes are all even).
type MaxPool2 struct {
	name   string
	argmax []int
	inShp  []int
	out    *tensor.Tensor // reused forward output
	dx     *tensor.Tensor // reused backward output
}

// NewMaxPool2 builds the pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Name implements Layer.
func (m *MaxPool2) Name() string { return m.name }

// Params implements Layer.
func (m *MaxPool2) Params() []*Param { return nil }

// OutputShape implements Layer.
func (m *MaxPool2) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: maxpool %q expects (C, H, W) input, got %v", m.name, in)
	}
	if in[1] < 2 || in[2] < 2 {
		return nil, fmt.Errorf("nn: maxpool %q input %v too small", m.name, in)
	}
	return []int{in[0], in[1] / 2, in[2] / 2}, nil
}

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	shp, err := m.OutputShape(x.Shape())
	if err != nil {
		return nil, err
	}
	c, oh, ow := shp[0], shp[1], shp[2]
	h, w := x.Dim(1), x.Dim(2)
	m.out = reuseBuffer(m.out, c, oh, ow)
	out := m.out
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	m.inShp = x.Shape()
	xd, od := x.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				i0 := base + (2*oy)*w + 2*ox
				best, bestIdx := xd[i0], i0
				for _, di := range [3]int{1, w, w + 1} {
					if v := xd[i0+di]; v > best {
						best, bestIdx = v, i0+di
					}
				}
				oi := (ch*oh+oy)*ow + ox
				od[oi] = best
				m.argmax[oi] = bestIdx
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (m *MaxPool2) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if len(m.argmax) != grad.Len() {
		return nil, fmt.Errorf("nn: maxpool %q backward size %d, forward saw %d", m.name, grad.Len(), len(m.argmax))
	}
	m.dx = reuseBuffer(m.dx, m.inShp...)
	m.dx.Zero() // scatter-add below requires a clean slate
	dd := m.dx.Data()
	for i, v := range grad.Data() {
		dd[m.argmax[i]] += v
	}
	return m.dx, nil
}

// Dense is a fully connected layer; any input shape is flattened.
type Dense struct {
	name     string
	in, out  int
	weight   *Param
	bias     *Param
	cachedIn *tensor.Tensor
	inShp    []int
	fwdOut   *tensor.Tensor // reused forward output
	dx       *tensor.Tensor // reused backward output
}

// NewDense builds a fully connected layer with He-initialized weights.
func NewDense(name string, in, out int, rng *rand.Rand) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: dense %q invalid size %dx%d", name, in, out)
	}
	w := tensor.New(out, in)
	heInit(w, in, rng)
	return &Dense{
		name: name, in: in, out: out,
		weight: &Param{Name: name + ".w", W: w, Grad: tensor.New(out, in)},
		bias:   &Param{Name: name + ".b", W: tensor.New(out), Grad: tensor.New(out)},
	}, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Dims returns the layer's input and output widths. The fused inference
// engine compiles its plan from these.
func (d *Dense) Dims() (in, out int) { return d.in, d.out }

// Weights returns the weight matrix (out, in) and bias vector (out). Both
// alias the live parameter storage.
func (d *Dense) Weights() (w, b *tensor.Tensor) { return d.weight.W, d.bias.W }

// OutputShape implements Layer.
func (d *Dense) OutputShape(in []int) ([]int, error) {
	n := 1
	for _, v := range in {
		n *= v
	}
	if n != d.in {
		return nil, fmt.Errorf("nn: dense %q expects %d inputs, got %v (%d)", d.name, d.in, in, n)
	}
	return []int{d.out}, nil
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Len() != d.in {
		return nil, fmt.Errorf("nn: dense %q expects %d inputs, got %v", d.name, d.in, x.Shape())
	}
	d.inShp = x.Shape()
	flat := x.MustReshape(d.in)
	d.cachedIn = flat
	d.fwdOut = reuseBuffer(d.fwdOut, d.out)
	if err := tensor.MatVecInto(d.fwdOut, d.weight.W, flat); err != nil {
		return nil, err
	}
	if err := d.fwdOut.Add(d.bias.W); err != nil {
		return nil, err
	}
	return d.fwdOut, nil
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if d.cachedIn == nil {
		return nil, fmt.Errorf("nn: dense %q backward before forward", d.name)
	}
	if grad.Len() != d.out {
		return nil, fmt.Errorf("nn: dense %q gradient length %d, want %d", d.name, grad.Len(), d.out)
	}
	gd := grad.Data()
	xd := d.cachedIn.Data()
	wg := d.weight.Grad.Data()
	for o := 0; o < d.out; o++ {
		g := gd[o]
		if g == 0 {
			continue
		}
		row := wg[o*d.in : (o+1)*d.in]
		for i, xv := range xd {
			row[i] += g * xv
		}
		d.bias.Grad.Data()[o] += g
	}
	// dx = Wᵀ · g
	d.dx = reuseBuffer(d.dx, d.in)
	d.dx.Zero() // accumulated below
	wd := d.weight.W.Data()
	dd := d.dx.Data()
	for o := 0; o < d.out; o++ {
		g := gd[o]
		if g == 0 {
			continue
		}
		row := wd[o*d.in : (o+1)*d.in]
		for i, wv := range row {
			dd[i] += g * wv
		}
	}
	return d.dx.Reshape(d.inShp...)
}

// Dropout implements inverted dropout: during training each activation is
// zeroed with probability Rate and survivors are scaled by 1/(1-Rate);
// inference is the identity. The paper applies 50% dropout to fc1.
//
// The mask stream is a splitmix64 counter PRNG rather than math/rand: its
// whole state is one uint64, so Reseed is O(1) and the mask drawn for a
// given (seed, position) pair is a pure function of those values. Parallel
// training exploits this — train.MGD reseeds per sample from the sample's
// global index, making dropout masks independent of which worker (or how
// many workers) processes the sample.
type Dropout struct {
	name  string
	rate  float64
	state uint64
	mask  []float64
	out   *tensor.Tensor // reused forward output
	dx    *tensor.Tensor // reused backward output
}

// NewDropout builds a dropout layer with its own deterministic RNG stream.
func NewDropout(name string, rate float64, seed int64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout %q rate %v outside [0, 1)", name, rate)
	}
	return &Dropout{name: name, rate: rate, state: uint64(seed)}, nil
}

// Reseed resets the mask stream so the next Forward draws masks determined
// solely by seed, regardless of prior history.
func (d *Dropout) Reseed(seed int64) { d.state = uint64(seed) }

// nextFloat advances the splitmix64 stream and returns a uniform in [0, 1).
func (d *Dropout) nextFloat() float64 {
	d.state += 0x9e3779b97f4a7c15
	z := d.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) * (1.0 / (1 << 53))
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutputShape implements Layer.
func (d *Dropout) OutputShape(in []int) ([]int, error) { return in, nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if !train || d.rate == 0 {
		// Identity mask so Backward stays consistent.
		if cap(d.mask) < x.Len() {
			d.mask = make([]float64, x.Len())
		}
		d.mask = d.mask[:x.Len()]
		for i := range d.mask {
			d.mask[i] = 1
		}
		return x, nil
	}
	d.out = reuseBuffer(d.out, x.Shape()...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]float64, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := 1 / (1 - d.rate)
	xd, od := x.Data(), d.out.Data()
	for i, v := range xd {
		if d.nextFloat() < d.rate {
			d.mask[i] = 0
			od[i] = 0
		} else {
			d.mask[i] = scale
			od[i] = v * scale
		}
	}
	return d.out, nil
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) (*tensor.Tensor, error) {
	if len(d.mask) != grad.Len() {
		return nil, fmt.Errorf("nn: dropout %q backward size %d, forward saw %d", d.name, grad.Len(), len(d.mask))
	}
	d.dx = reuseBuffer(d.dx, grad.Shape()...)
	gd, dd := grad.Data(), d.dx.Data()
	for i, g := range gd {
		dd[i] = g * d.mask[i]
	}
	return d.dx, nil
}
