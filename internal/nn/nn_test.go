package nn

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hotspot/internal/tensor"
)

func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		x := tensor.New(n)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64() * 10
		}
		p, err := Softmax(x)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range p.Data() {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1000, 1001}, 2)
	p, err := Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	if p.HasNaN() {
		t.Fatal("softmax overflowed on large logits")
	}
	if math.Abs(p.At(0)+p.At(1)-1) > 1e-9 {
		t.Fatal("softmax of large logits not normalized")
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := tensor.MustFromSlice([]float64{0.3, -0.7, 1.2}, 3)
	b := a.Clone()
	for i := range b.Data() {
		b.Data()[i] += 100
	}
	pa, _ := Softmax(a)
	pb, _ := Softmax(b)
	for i := range pa.Data() {
		if math.Abs(pa.Data()[i]-pb.Data()[i]) > 1e-9 {
			t.Fatal("softmax not shift invariant")
		}
	}
}

func TestSoftmaxErrors(t *testing.T) {
	if _, err := Softmax(tensor.New(2, 2)); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := Softmax(tensor.New(0)); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{0, 0}, 2)
	target := tensor.MustFromSlice([]float64{0, 1}, 2)
	loss, grad, err := SoftmaxCrossEntropy(logits, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln 2", loss)
	}
	if math.Abs(grad.At(0)-0.5) > 1e-12 || math.Abs(grad.At(1)+0.5) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data())
	}
}

func TestCrossEntropySoftTarget(t *testing.T) {
	logits := tensor.MustFromSlice([]float64{2, -1}, 2)
	eps := 0.2
	target := tensor.MustFromSlice([]float64{1 - eps, eps}, 2)
	loss, grad, err := SoftmaxCrossEntropy(logits, target)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Softmax(logits)
	want := -(1-eps)*math.Log(p.At(0)) - eps*math.Log(p.At(1))
	if math.Abs(loss-want) > 1e-12 {
		t.Fatalf("soft loss = %v, want %v", loss, want)
	}
	if math.Abs(grad.At(0)-(p.At(0)-(1-eps))) > 1e-12 {
		t.Fatalf("soft grad = %v", grad.Data())
	}
}

func TestCrossEntropyErrors(t *testing.T) {
	ok := tensor.MustFromSlice([]float64{0, 0}, 2)
	if _, _, err := SoftmaxCrossEntropy(ok, tensor.MustFromSlice([]float64{0.5, 0.4}, 2)); err == nil {
		t.Fatal("expected non-normalized target error")
	}
	if _, _, err := SoftmaxCrossEntropy(ok, tensor.MustFromSlice([]float64{-0.5, 1.5}, 2)); err == nil {
		t.Fatal("expected negative target error")
	}
	if _, _, err := SoftmaxCrossEntropy(ok, tensor.MustFromSlice([]float64{1, 0, 0}, 3)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float64{-1, 0, 2}, 3)
	y, err := r.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 0 || y.At(1) != 0 || y.At(2) != 2 {
		t.Fatalf("relu forward: %v", y.Data())
	}
	// Input untouched (no aliasing).
	if x.At(0) != -1 {
		t.Fatal("relu mutated its input")
	}
	g, err := r.Backward(tensor.MustFromSlice([]float64{5, 5, 5}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0) != 0 || g.At(1) != 0 || g.At(2) != 5 {
		t.Fatalf("relu backward: %v", g.Data())
	}
	if _, err := r.Backward(tensor.New(5)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestMaxPoolForward(t *testing.T) {
	p := NewMaxPool2("p")
	x := tensor.MustFromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		0, 0, 1, 0,
		0, 9, 0, 1,
	}, 1, 4, 4)
	y, err := p.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 9, 1}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool forward: %v, want %v", y.Data(), want)
		}
	}
	// Gradient routes to the argmax positions.
	g, err := p.Backward(tensor.MustFromSlice([]float64{1, 2, 3, 4}, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 1, 1) != 1 || g.At(0, 1, 3) != 2 || g.At(0, 3, 1) != 3 || g.At(0, 2, 2) != 4 {
		t.Fatalf("maxpool backward: %v", g.Data())
	}
}

func TestMaxPoolErrors(t *testing.T) {
	p := NewMaxPool2("p")
	if _, err := p.Forward(tensor.New(4, 4), true); err == nil {
		t.Fatal("expected rank error")
	}
	if _, err := p.Forward(tensor.New(1, 1, 1), true); err == nil {
		t.Fatal("expected too-small error")
	}
}

func TestDropoutTrainEval(t *testing.T) {
	d, err := NewDropout("d", 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1000)
	x.Fill(1)
	y, err := d.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range y.Data() {
		switch v {
		case 0:
			zeros++
		case 2:
			// survivor scaled by 1/(1-0.5)
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d of 1000 at rate 0.5", zeros)
	}
	// Eval mode is the identity.
	ye, err := d.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ye.Data() {
		if v != 1 {
			t.Fatal("dropout not identity at inference")
		}
	}
	// Backward applies the same mask.
	yt, _ := d.Forward(x, true)
	g, err := d.Backward(x.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data() {
		if (yt.Data()[i] == 0) != (g.Data()[i] == 0) {
			t.Fatal("dropout backward mask differs from forward")
		}
	}
}

func TestDropoutRateValidation(t *testing.T) {
	if _, err := NewDropout("d", -0.1, 1); err == nil {
		t.Fatal("expected negative rate error")
	}
	if _, err := NewDropout("d", 1.0, 1); err == nil {
		t.Fatal("expected rate-1 error")
	}
}

func TestConvSamePaddingShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewConv2D("c", 32, 16, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	shp, err := c.OutputShape([]int{32, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	if shp[0] != 16 || shp[1] != 12 || shp[2] != 12 {
		t.Fatalf("Table-1 conv shape %v, want [16 12 12]", shp)
	}
	if _, err := c.OutputShape([]int{3, 12, 12}); err == nil {
		t.Fatal("expected channel mismatch error")
	}
}

func TestConvConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewConv2D("c", 0, 4, 3, 1, 1, rng); err == nil {
		t.Fatal("expected inC error")
	}
	if _, err := NewConv2D("c", 1, 4, 3, 0, 1, rng); err == nil {
		t.Fatal("expected stride error")
	}
	if _, err := NewDense("d", 0, 4, rng); err == nil {
		t.Fatal("expected dense size error")
	}
}

func TestConvBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := NewConv2D("c", 1, 2, 1, 1, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 1x1 conv on zero input: output equals bias everywhere.
	c.bias.W.Set(3, 0)
	c.bias.W.Set(-1, 1)
	y, err := c.Forward(tensor.New(1, 3, 3), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if y.Data()[i] != 3 || y.Data()[9+i] != -1 {
			t.Fatalf("conv bias broadcast wrong: %v", y.Data())
		}
	}
}

func TestNetworkForwardBackwardErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fc, err := NewDense("fc", 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(fc)
	if _, err := net.Forward(tensor.New(3), false); err == nil {
		t.Fatal("expected forward shape error")
	}
	if err := net.Backward(tensor.New(2)); err == nil {
		t.Fatal("expected backward-before-forward error")
	}
}

func TestPaperNetShapesMatchTable1(t *testing.T) {
	cfg := DefaultPaperNetConfig()
	net, err := NewPaperNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name string
		shp  []int
	}{
		{"conv1-1", []int{16, 12, 12}},
		{"conv1-2", []int{16, 12, 12}},
		{"maxpooling1", []int{16, 6, 6}},
		{"conv2-1", []int{32, 6, 6}},
		{"conv2-2", []int{32, 6, 6}},
		{"maxpooling2", []int{32, 3, 3}},
		{"fc1", []int{250}},
		{"fc2", []int{2}},
	}
	shape := []int{32, 12, 12}
	wi := 0
	for _, l := range net.Layers() {
		var err error
		shape, err = l.OutputShape(shape)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if wi < len(want) && l.Name() == want[wi].name {
			for d, v := range want[wi].shp {
				if shape[d] != v {
					t.Fatalf("%s output %v, want %v", l.Name(), shape, want[wi].shp)
				}
			}
			wi++
		}
	}
	if wi != len(want) {
		t.Fatalf("matched %d of %d Table-1 rows", wi, len(want))
	}
	out, err := net.Forward(tensor.New(32, 12, 12), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("paper net output length %d", out.Len())
	}
}

func TestPaperNetConfigValidation(t *testing.T) {
	bad := DefaultPaperNetConfig()
	bad.SpatialSize = 10 // not divisible by 4
	if _, err := NewPaperNet(bad); err == nil {
		t.Fatal("expected spatial size error")
	}
	bad = DefaultPaperNetConfig()
	bad.InChannels = 0
	if _, err := NewPaperNet(bad); err == nil {
		t.Fatal("expected channels error")
	}
	bad = DefaultPaperNetConfig()
	bad.DropoutRate = 1
	if _, err := NewPaperNet(bad); err == nil {
		t.Fatal("expected dropout error")
	}
}

func TestNetworkSummary(t *testing.T) {
	net, err := NewPaperNet(DefaultPaperNetConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := net.Summary([]int{32, 12, 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"conv1-1", "maxpooling2", "fc1", "fc2", "total params"} {
		if !strings.Contains(s, row) {
			t.Fatalf("summary missing %q:\n%s", row, s)
		}
	}
	if _, err := net.Summary([]int{3, 5, 5}); err == nil {
		t.Fatal("expected summary shape error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := PaperNetConfig{InChannels: 4, SpatialSize: 8, Conv1Maps: 4, Conv2Maps: 6, FC1: 10, DropoutRate: 0.5, Seed: 9}
	net, err := NewPaperNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 8, 8)
	rng := rand.New(rand.NewSource(10))
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if math.Abs(want.Data()[i]-got.Data()[i]) > 1e-12 {
			t.Fatalf("loaded network differs: %v vs %v", got.Data(), want.Data())
		}
	}
	if loaded.ParamCount() != net.ParamCount() {
		t.Fatal("param count changed across save/load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestCloneIndependent(t *testing.T) {
	cfg := PaperNetConfig{InChannels: 2, SpatialSize: 4, Conv1Maps: 2, Conv2Maps: 2, FC1: 4, DropoutRate: 0, Seed: 11}
	net, err := NewPaperNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the clone's weights must not affect the original.
	c.Params()[0].W.Fill(0)
	if net.Params()[0].W.Norm2() == 0 {
		t.Fatal("clone shares weights with original")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	fc, err := NewDense("fc", 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(fc)
	x := tensor.MustFromSlice([]float64{1, 2, 3}, 3)
	out, _ := net.Forward(x, true)
	_, g, _ := SoftmaxCrossEntropy(out, tensor.MustFromSlice([]float64{1, 0}, 2))
	_ = net.Backward(g)
	if net.Params()[0].Grad.Norm2() == 0 {
		t.Fatal("gradient should be nonzero after backward")
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		if p.Grad.Norm2() != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}

func TestGradientAccumulation(t *testing.T) {
	// Two backward passes accumulate: grad after 2 passes = 2x grad after 1.
	rng := rand.New(rand.NewSource(13))
	fc, err := NewDense("fc", 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(fc)
	x := tensor.MustFromSlice([]float64{1, -1, 0.5}, 3)
	target := tensor.MustFromSlice([]float64{0, 1}, 2)

	step := func() {
		out, _ := net.Forward(x, false)
		_, g, _ := SoftmaxCrossEntropy(out, target)
		_ = net.Backward(g)
	}
	net.ZeroGrads()
	step()
	once := append([]float64(nil), net.Params()[0].Grad.Data()...)
	net.ZeroGrads()
	step()
	step()
	twice := net.Params()[0].Grad.Data()
	for i := range once {
		if math.Abs(twice[i]-2*once[i]) > 1e-12 {
			t.Fatal("gradients do not accumulate linearly")
		}
	}
}
