package nn

import (
	"math"
	"math/rand"
	"testing"

	"hotspot/internal/tensor"
)

// lossOf runs a forward pass in eval mode (dropout off) and returns the
// cross-entropy loss against target.
func lossOf(t *testing.T, net *Network, x, target *tensor.Tensor) float64 {
	t.Helper()
	out, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	loss, _, err := SoftmaxCrossEntropy(out, target)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

// checkGradients compares analytic parameter and input gradients against
// central differences for the given network and sample.
func checkGradients(t *testing.T, net *Network, x, target *tensor.Tensor, tol float64) {
	t.Helper()
	// Analytic pass.
	net.ZeroGrads()
	out, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	_, dlogits, err := SoftmaxCrossEntropy(out, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(dlogits); err != nil {
		t.Fatal(err)
	}
	// Snapshot analytic grads (param grads accumulate, so copy now).
	analytic := make([][]float64, 0)
	for _, p := range net.Params() {
		analytic = append(analytic, append([]float64(nil), p.Grad.Data()...))
	}

	const h = 1e-5
	for pi, p := range net.Params() {
		data := p.W.Data()
		// Probe a subset of entries for speed on larger layers.
		step := 1
		if len(data) > 60 {
			step = len(data) / 40
		}
		for i := 0; i < len(data); i += step {
			orig := data[i]
			data[i] = orig + h
			lp := lossOf(t, net, x, target)
			data[i] = orig - h
			lm := lossOf(t, net, x, target)
			data[i] = orig
			num := (lp - lm) / (2 * h)
			got := analytic[pi][i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, got, num)
			}
		}
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fc1, err := NewDense("fc1", 6, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc2, err := NewDense("fc2", 5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(fc1, NewReLU("r"), fc2)
	x := tensor.New(6)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{0.3, 0.7}, 2)
	checkGradients(t, net, x, target, 1e-5)
}

func TestGradCheckConv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv, err := NewConv2D("c1", 2, 3, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 3*4*4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(conv, NewReLU("r"), fc)
	x := tensor.New(2, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{1, 0}, 2)
	checkGradients(t, net, x, target, 1e-5)
}

func TestGradCheckMaxPool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv, err := NewConv2D("c1", 1, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 2*2*2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(conv, NewReLU("r1"), NewMaxPool2("p"), fc)
	x := tensor.New(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{0, 1}, 2)
	checkGradients(t, net, x, target, 1e-5)
}

func TestGradCheckStridedUnpaddedConv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv, err := NewConv2D("c1", 1, 2, 2, 2, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 2*3*3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(conv, fc)
	x := tensor.New(1, 6, 6)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{0.5, 0.5}, 2)
	checkGradients(t, net, x, target, 1e-5)
}

func TestGradCheckPaperNetSmall(t *testing.T) {
	// A scaled-down paper network: same topology, small widths.
	cfg := PaperNetConfig{
		InChannels:  3,
		SpatialSize: 8,
		Conv1Maps:   4,
		Conv2Maps:   6,
		FC1:         10,
		DropoutRate: 0, // gradcheck needs determinism
		Seed:        5,
	}
	net, err := NewPaperNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := tensor.New(3, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{0.9, 0.1}, 2)
	// Looser tolerance: a deep stack of ReLU kinks and max-pool switches
	// makes central differences locally non-smooth; real backprop bugs are
	// orders of magnitude larger than this.
	checkGradients(t, net, x, target, 5e-3)
}

func TestGradCheckSoftTargets(t *testing.T) {
	// Biased-learning targets [1-eps, eps] must back-propagate correctly.
	rng := rand.New(rand.NewSource(7))
	fc, err := NewDense("fc", 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(fc)
	x := tensor.MustFromSlice([]float64{0.2, -0.4, 1.0, 0.3}, 4)
	for _, eps := range []float64{0, 0.1, 0.3} {
		target := tensor.MustFromSlice([]float64{1 - eps, eps}, 2)
		checkGradients(t, net, x, target, 1e-6)
	}
}

// Input gradient check: dL/dx via network backward vs numeric.
func TestGradCheckInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv, err := NewConv2D("c", 1, 2, 3, 1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 2*4*4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(conv, NewReLU("r"), fc)
	x := tensor.New(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	target := tensor.MustFromSlice([]float64{0.6, 0.4}, 2)

	net.ZeroGrads()
	out, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	_, dlogits, err := SoftmaxCrossEntropy(out, target)
	if err != nil {
		t.Fatal(err)
	}
	// Manually thread the gradient to recover dx.
	grad := dlogits
	layers := net.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		grad, err = layers[i].Backward(grad)
		if err != nil {
			t.Fatal(err)
		}
	}
	const h = 1e-5
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + h
		lp := lossOf(t, net, x, target)
		x.Data()[i] = orig - h
		lm := lossOf(t, net, x, target)
		x.Data()[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-grad.Data()[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: analytic %.8f vs numeric %.8f", i, grad.Data()[i], num)
		}
	}
}
