package nn

import (
	"fmt"
	"math"

	"hotspot/internal/tensor"
)

// Softmax returns the softmax distribution of a logit vector, computed with
// the max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) (*tensor.Tensor, error) {
	if logits.Rank() != 1 || logits.Len() == 0 {
		return nil, fmt.Errorf("nn: softmax expects a non-empty vector, got %v", logits.Shape())
	}
	out := logits.Clone()
	m := out.Max()
	sum := 0.0
	for i, v := range out.Data() {
		e := math.Exp(v - m)
		out.Data()[i] = e
		sum += e
	}
	for i := range out.Data() {
		out.Data()[i] /= sum
	}
	return out, nil
}

// SoftmaxCrossEntropy computes the cross-entropy loss between softmax(logits)
// and a target distribution (Equations (6)–(7)), supporting soft targets —
// the paper's biased learning sets the non-hotspot target to [1−ε, ε].
// It returns the loss and dL/dlogits = softmax(logits) − target.
func SoftmaxCrossEntropy(logits, target *tensor.Tensor) (float64, *tensor.Tensor, error) {
	if logits.Rank() != 1 || target.Rank() != 1 || logits.Len() != target.Len() {
		return 0, nil, fmt.Errorf("nn: cross-entropy shape mismatch %v vs %v", logits.Shape(), target.Shape())
	}
	tsum := 0.0
	for _, v := range target.Data() {
		if v < 0 {
			return 0, nil, fmt.Errorf("nn: cross-entropy target has negative entry %v", v)
		}
		tsum += v
	}
	if math.Abs(tsum-1) > 1e-9 {
		return 0, nil, fmt.Errorf("nn: cross-entropy target sums to %v, want 1", tsum)
	}
	probs, err := Softmax(logits)
	if err != nil {
		return 0, nil, err
	}
	loss := 0.0
	for i, t := range target.Data() {
		if t == 0 {
			continue // lim x→0 x·log x = 0 (Equation (8))
		}
		loss -= t * math.Log(probs.Data()[i])
	}
	grad := probs.Clone()
	if err := grad.Sub(target); err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}
