package scan

import (
	"testing"

	"hotspot/internal/layout"
	"hotspot/internal/obs/trace"
)

// TestScanTraceParity: a traced scan and a dark scan of the same die
// produce bit-identical probability grids — tracing observes, never
// perturbs.
func TestScanTraceParity(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	_, dark := mustScan(t, testConfig(3), net, die)
	lit := testConfig(3)
	lit.Tracer = trace.New(trace.Config{Seed: 9})
	_, traced := mustScan(t, lit, net, die)
	for i := range dark.Probs {
		if traced.Probs[i] != dark.Probs[i] {
			t.Fatalf("window %d: traced %v, dark %v", i, traced.Probs[i], dark.Probs[i])
		}
	}
}

// TestScanTraceTree checks the recorded shape of a scan pass and an
// incremental rescan: extract/infer/regions stage spans, per-tile and
// per-window-row children, and the cache-attribution attributes on the
// root.
func TestScanTraceTree(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	cfg := testConfig(2)
	cfg.Tracer = trace.New(trace.Config{Seed: 9})
	s, res := mustScan(t, cfg, net, die)

	edit := layout.Edit{Region: s.WindowRect(4, 0)} // nil Rects: clear the window
	if _, err := s.Rescan(edit); err != nil {
		t.Fatal(err)
	}

	byName := map[string]*trace.TraceJSON{}
	snap := cfg.Tracer.Snapshot()
	for i := range snap {
		byName[snap[i].Name] = &snap[i]
	}
	for _, name := range []string{"scan", "rescan"} {
		tr := byName[name]
		if tr == nil {
			t.Fatalf("no %q trace recorded (have %d traces)", name, len(snap))
		}
		stages := map[string]trace.SpanJSON{}
		for _, sp := range tr.Spans {
			stages[sp.Name] = sp
		}
		for _, st := range []string{"extract", "infer", "regions"} {
			if _, ok := stages[st]; !ok {
				t.Fatalf("%s trace missing %q span: %+v", name, st, tr.Spans)
			}
		}
		tiles, rows := 0, 0
		for _, sp := range stages["extract"].Children {
			if sp.Name == "tile" {
				tiles++
				if _, ok := sp.Attrs["blocks"]; !ok {
					t.Fatalf("%s tile span missing blocks attr: %+v", name, sp)
				}
			}
		}
		for _, sp := range stages["infer"].Children {
			if sp.Name == "row" {
				rows++
				if _, ok := sp.Attrs["windows"]; !ok {
					t.Fatalf("%s row span missing windows attr: %+v", name, sp)
				}
			}
		}
		if tiles == 0 || rows == 0 {
			t.Fatalf("%s trace: %d tile spans, %d row spans; want both > 0", name, tiles, rows)
		}
		for _, attr := range []string{"block_dcts", "block_gathers", "windows", "cache_hit_rate", "regions"} {
			if _, ok := tr.Attrs[attr]; !ok {
				t.Fatalf("%s trace missing root attr %q: %v", name, attr, tr.Attrs)
			}
		}
	}
	// The cold pass touched every block exactly once; the rescan reports
	// its dirty-block count and re-DCTs only those.
	scanT, rescanT := byName["scan"], byName["rescan"]
	if scanT.Attrs["block_dcts"] != int64(res.Stats.BlockDCTs) {
		t.Fatalf("scan block_dcts = %v, want %d", scanT.Attrs["block_dcts"], res.Stats.BlockDCTs)
	}
	if rescanT.Attrs["dirty_blocks"] == int64(0) {
		t.Fatal("rescan recorded zero dirty blocks")
	}
	if rescanT.Attrs["block_dcts"] != rescanT.Attrs["dirty_blocks"] {
		t.Fatalf("rescan block_dcts %v != dirty_blocks %v",
			rescanT.Attrs["block_dcts"], rescanT.Attrs["dirty_blocks"])
	}
}
