package scan

import (
	"fmt"

	"hotspot/internal/layout"
	"hotspot/internal/obs"
)

// Rescan applies a localized layout edit and incrementally refreshes the
// heat map: only the blocks the edit region overlaps are re-encoded, and
// only the windows that gather one of those blocks are re-scored. Every
// other window keeps its stored probability. The refreshed result is
// bit-identical to a cold Scan of the edited die: surviving geometry
// keeps its rectangle order (layout.ApplyEdit's contract), rasterization
// is per-pixel local, and clean blocks' cached vectors are exactly what a
// cold pass would recompute.
//
// Rescan requires a prior Scan. Applying the same edit again is a no-op
// on the layout and re-scores the same window set, so repeated calls are
// idempotent — which is what lets the benchmark time it under repetition.
func (s *Scanner) Rescan(e layout.Edit) (*Result, error) {
	if !s.scanned {
		return nil, fmt.Errorf("scan: Rescan before initial Scan")
	}
	die, dirty, err := layout.ApplyEdit(s.die, e)
	if err != nil {
		return nil, err
	}
	s.die = die
	if err := s.ev.Prepare([]int{s.k, s.n, s.n}); err != nil {
		return nil, err
	}

	// Dirty block range [bx0, bx1)×[by0, by1): every block the edit region
	// overlaps. Geometry outside the region is untouched, so all other
	// blocks' pixels — and cached coefficient vectors — are still exact.
	f := s.die.Frame
	bx0 := maxInt(0, (dirty.X0-f.X0)/s.blockNM)
	by0 := maxInt(0, (dirty.Y0-f.Y0)/s.blockNM)
	bx1 := minInt(s.nbx, (dirty.X1-f.X0+s.blockNM-1)/s.blockNM)
	by1 := minInt(s.nby, (dirty.Y1-f.Y0+s.blockNM-1)/s.blockNM)

	str := s.cfg.Tracer.Start("rescan")
	watch := obs.NewStopwatch()
	ex := str.StartSpan("extract")
	tilesX := (bx1 - bx0 + s.tileBlocks - 1) / s.tileBlocks
	tilesY := (by1 - by0 + s.tileBlocks - 1) / s.tileBlocks
	err = s.pool.For(tilesX*tilesY, func(worker, t int) error {
		tx, ty := t%tilesX, t/tilesX
		tbx0, tby0 := bx0+tx*s.tileBlocks, by0+ty*s.tileBlocks
		tbx1, tby1 := minInt(tbx0+s.tileBlocks, bx1), minInt(tby0+s.tileBlocks, by1)
		tsp := ex.Child("tile")
		tsp.SetInt("tx", int64(tx))
		tsp.SetInt("ty", int64(ty))
		tsp.SetInt("blocks", int64((tbx1-tbx0)*(tby1-tby0)))
		encErr := s.encodeRegion(worker, tbx0, tby0, tbx1, tby1)
		tsp.End()
		return encErr
	})
	d := watch.Elapsed()
	obs.Default().Stage("scan/extract").ObserveDuration(d)
	ex.EndWith(d)
	if err != nil {
		return nil, s.fail(str, err)
	}

	// Affected windows: window (wx, wy) gathers blocks [wx, wx+n)×[wy,
	// wy+n), so it needs re-scoring iff that range meets the dirty range.
	wx0 := maxInt(0, bx0-s.n+1)
	wy0 := maxInt(0, by0-s.n+1)
	wx1 := minInt(s.wnx, bx1)
	wy1 := minInt(s.wny, by1)

	watch = obs.NewStopwatch()
	in := str.StartSpan("infer")
	err = s.pool.For(wy1-wy0, func(worker, j int) error {
		rsp := in.Child("row")
		rsp.SetInt("wy", int64(wy0+j))
		rsp.SetInt("windows", int64(wx1-wx0))
		rowErr := s.scoreRow(worker, wy0+j, wx0, wx1)
		rsp.End()
		return rowErr
	})
	d = watch.Elapsed()
	obs.Default().Stage("scan/infer").ObserveDuration(d)
	in.EndWith(d)
	if err != nil {
		return nil, s.fail(str, err)
	}

	dirtyBlocks := (bx1 - bx0) * (by1 - by0)
	windows := (wx1 - wx0) * (wy1 - wy0)
	st := Stats{
		BlockDCTs:    dirtyBlocks,
		DirtyBlocks:  dirtyBlocks,
		Windows:      windows,
		BlockGathers: int64(windows) * int64(s.n*s.n),
	}
	return s.finish(st, str), nil
}
