package scan

// mergeRegions groups hot windows into region proposals by 8-connected
// component search over the window grid, BFS in row-major index order so
// the output is deterministic. Overlapping hot windows one stride apart
// are by construction 8-neighbours, so a contiguous hotspot area — which
// the scanner sees as a run of overlapping hot windows — collapses into
// one proposal instead of dozens of near-duplicate clips.
func mergeRegions(hot []bool, probs []float64, wnx, wny int, s *Scanner) []Region {
	var regions []Region
	visited := make([]bool, len(hot))
	var queue []int
	for start := range hot {
		if !hot[start] || visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		reg := Region{Rect: s.WindowRect(start%wnx, start/wnx), MaxProb: probs[start]}
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			reg.Windows++
			wx, wy := w%wnx, w/wnx
			reg.Rect = reg.Rect.Union(s.WindowRect(wx, wy))
			if probs[w] > reg.MaxProb {
				reg.MaxProb = probs[w]
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := wx+dx, wy+dy
					if nx < 0 || ny < 0 || nx >= wnx || ny >= wny {
						continue
					}
					ni := ny*wnx + nx
					if hot[ni] && !visited[ni] {
						visited[ni] = true
						queue = append(queue, ni)
					}
				}
			}
		}
		regions = append(regions, reg)
	}
	return regions
}
