package scan

import (
	"testing"

	"hotspot/internal/geom"
	"hotspot/internal/layout"
)

// wideDie is a 3×1-cell city (3600×1200 nm, 25×1 windows): wide enough
// that a localized edit leaves windows genuinely untouched.
func wideDie(t *testing.T) geom.Clip {
	t.Helper()
	die, err := layout.GenerateDie(layout.DieConfig{CellsX: 3, CellsY: 1, CellNM: 1200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return die
}

// testEdit clears a 300×300 nm patch near the die centre and draws one
// replacement wire — a localized change crossing block boundaries.
func testEdit() layout.Edit {
	return layout.Edit{
		Region: geom.R(1000, 400, 1300, 700),
		Rects:  []geom.Rect{geom.R(1040, 440, 1120, 660)},
	}
}

// TestRescanMatchesColdScan is the incremental-correctness gate: after an
// edit, Rescan's heat map must be bit-identical to a cold Scan of the
// edited die — every probability, hot flag and region.
func TestRescanMatchesColdScan(t *testing.T) {
	net := testNet(t)
	die := wideDie(t)
	cfg := testConfig(4)
	cfg.Shift = 0.5 // make regions non-trivial regardless of the weights

	s, cold := mustScan(t, cfg, net, die)
	inc, err := s.Rescan(testEdit())
	if err != nil {
		t.Fatal(err)
	}

	edited, _, err := layout.ApplyEdit(die, testEdit())
	if err != nil {
		t.Fatal(err)
	}
	_, want := mustScan(t, cfg, net, edited)

	for i := range want.Probs {
		if inc.Probs[i] != want.Probs[i] {
			t.Fatalf("window %d: rescan %v, cold scan of edited die %v", i, inc.Probs[i], want.Probs[i])
		}
		if inc.Hot[i] != want.Hot[i] {
			t.Fatalf("window %d: rescan hot=%v, cold hot=%v", i, inc.Hot[i], want.Hot[i])
		}
	}
	if len(inc.Regions) != len(want.Regions) {
		t.Fatalf("rescan %d regions, cold %d", len(inc.Regions), len(want.Regions))
	}
	for i := range want.Regions {
		if inc.Regions[i] != want.Regions[i] {
			t.Fatalf("region %d: rescan %+v, cold %+v", i, inc.Regions[i], want.Regions[i])
		}
	}

	// The edit region spans blocks [10,13)×[4,7): 9 dirty blocks out of
	// 288, and only windows gathering one of them re-scored.
	if inc.Stats.DirtyBlocks != 9 {
		t.Fatalf("DirtyBlocks %d, want 9", inc.Stats.DirtyBlocks)
	}
	if inc.Stats.BlockDCTs != 9 {
		t.Fatalf("rescan BlockDCTs %d, want 9 (dirty only)", inc.Stats.BlockDCTs)
	}
	if inc.Stats.Windows >= cold.Stats.Windows {
		t.Fatalf("rescan re-scored %d windows, cold scored %d", inc.Stats.Windows, cold.Stats.Windows)
	}

	// Sanity: the edit actually changed some probabilities (the replacement
	// geometry differs from what was cleared).
	changed := false
	for i := range cold.Probs {
		if cold.Probs[i] != want.Probs[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("edit left every window probability unchanged; test is vacuous")
	}
}

// TestRescanRepeatIdempotent re-applies the same edit and expects the
// identical result — the property the benchmark's timed repetitions use.
func TestRescanRepeatIdempotent(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	s, _ := mustScan(t, testConfig(2), net, die)
	first, err := s.Rescan(testEdit())
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := s.Rescan(testEdit())
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Probs {
			if again.Probs[i] != first.Probs[i] {
				t.Fatalf("rep %d window %d: %v, want %v", rep, i, again.Probs[i], first.Probs[i])
			}
		}
	}
}

// TestRescanEdgeRegion dirties the die corner, exercising the clamped
// dirty-block and affected-window ranges.
func TestRescanEdgeRegion(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	s, _ := mustScan(t, testConfig(3), net, die)
	edge := layout.Edit{Region: geom.R(0, 0, 150, 150)}
	inc, err := s.Rescan(edge)
	if err != nil {
		t.Fatal(err)
	}
	edited, _, err := layout.ApplyEdit(die, edge)
	if err != nil {
		t.Fatal(err)
	}
	_, want := mustScan(t, testConfig(3), net, edited)
	for i := range want.Probs {
		if inc.Probs[i] != want.Probs[i] {
			t.Fatalf("window %d: rescan %v, cold %v", i, inc.Probs[i], want.Probs[i])
		}
	}
	// Corner region touches blocks [0,2)² → only the windows whose 12-block
	// span reaches them: wx in [0, 1], wy = 0.
	if inc.Stats.DirtyBlocks != 4 || inc.Stats.Windows != 2 {
		t.Fatalf("stats %+v, want 4 dirty blocks and 2 windows", inc.Stats)
	}
}

func TestRescanBeforeScan(t *testing.T) {
	s, err := New(testConfig(0), testNet(t), testDie(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rescan(testEdit()); err == nil {
		t.Fatal("expected error for Rescan before Scan")
	}
}

func TestRescanBadEdit(t *testing.T) {
	net := testNet(t)
	s, _ := mustScan(t, testConfig(0), net, testDie(t))
	if _, err := s.Rescan(layout.Edit{Region: geom.R(2000, 1000, 3000, 2000)}); err == nil {
		t.Fatal("expected error for edit outside the die")
	}
}
