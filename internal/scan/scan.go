// Package scan is the full-layout streaming scan engine: it strides the
// trained detector across an entire die (millions of overlapping windows
// on real designs) instead of classifying isolated clips.
//
// The core optimization is stride quantization to the DCT block grid.
// The paper's feature tensor divides a window into Blocks×Blocks pixel
// blocks and keeps K zig-zag-truncated DCT coefficients per block; with
// the window stride fixed to one block, every block of the die is covered
// by up to Blocks² overlapping windows that all need exactly the same
// coefficient vector for it. A naive scanner re-rasterizes and
// re-transforms each window — recomputing each block DCT up to Blocks²
// (144) times — while this engine computes every block DCT exactly once
// per die into a block-plane cache and assembles each window's feature
// tensor by gathering cached vectors.
//
// The two passes run on the shared worker-pool substrate under its
// standing determinism contract: the extract pass shards the die into
// tiles whose blocks land in disjoint, index-addressed cache slots; the
// score pass fans window rows across evaluator replicas into
// index-addressed probability slots. Windows near tile boundaries gather
// blocks owned by neighbouring tiles — halo reads into the shared cache,
// never halo recomputation, which is what keeps "exactly once" true.
// Results are bit-identical under any worker count, and bit-identical to
// the per-clip path (feature.ExtractTensor + train.Evaluator) on every
// window: both paths run the same feature.BlockEncoder kernel and the
// same fused inference engines.
//
// After a layout edit, Rescan invalidates only the blocks the edit
// touches and rescores only the windows that gather a dirty block,
// producing bit-for-bit the heat map a cold scan of the edited die would.
package scan

import (
	"fmt"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/nn"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/raster"
	"hotspot/internal/tensor"
	"hotspot/internal/train"
)

// Config parameterizes a scanner.
type Config struct {
	// Feature is the tensor extraction configuration; it must match the
	// configuration the model was trained with.
	Feature feature.TensorConfig
	// WindowNM is the scan window side in nanometres (the detector's clip
	// size; the paper uses 1200). The scan stride is WindowNM/Blocks — one
	// DCT block — in both axes.
	WindowNM int
	// TileBlocks is the tile side in blocks for the extract-pass fan-out;
	// 0 means 16.
	TileBlocks int
	// Workers bounds both passes' parallelism; 0 means parallel.Default().
	Workers int
	// Shift is the decision-boundary shift of train.Decide: a window is
	// hot when prob > 0.5 − Shift.
	Shift float64
	// Tracer, when non-nil, records one trace tree per (re)scan pass:
	// extract/infer/regions spans with per-tile and per-window-row child
	// spans and cache-attribution attributes. Observation only — the heat
	// map is bit-identical with tracing lit or dark. Nil is free.
	Tracer *trace.Tracer
}

// DefaultConfig mirrors the paper's clip geometry: 1200 nm windows under
// the default feature tensor configuration.
func DefaultConfig() Config {
	return Config{Feature: feature.DefaultTensorConfig(), WindowNM: 1200, TileBlocks: 16}
}

// Stats describes the work one pass performed.
type Stats struct {
	// BlockDCTs is the number of block transforms computed this pass.
	BlockDCTs int `json:"block_dcts"`
	// BlockGathers is the number of coefficient vectors served from the
	// cache while assembling window tensors (Blocks² per scored window).
	BlockGathers int64 `json:"block_gathers"`
	// Windows is the number of windows (re)scored this pass.
	Windows int `json:"windows"`
	// DirtyBlocks is the number of invalidated blocks (rescan only).
	DirtyBlocks int `json:"dirty_blocks"`
	// CacheHitRate is BlockGathers/(BlockGathers+BlockDCTs): the fraction
	// of block-coefficient demands served without a transform.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Region is one merged run of hot windows: a region proposal.
type Region struct {
	// Rect is the union bounding box of the member windows, in die
	// coordinates (nm).
	Rect geom.Rect `json:"rect"`
	// Windows is the number of hot windows merged into the region.
	Windows int `json:"windows"`
	// MaxProb is the highest hotspot probability inside the region.
	MaxProb float64 `json:"max_prob"`
}

// Result is one pass' output: the heat map and its derived proposals.
type Result struct {
	// WindowsX, WindowsY give the window grid; window (wx, wy) sits at
	// die offset (wx, wy) blocks.
	WindowsX, WindowsY int
	// Probs is the row-major [WindowsY][WindowsX] hotspot heat map.
	Probs []float64
	// Hot marks windows past the decision boundary.
	Hot []bool
	// Regions are the merged hot-window proposals, in first-hot-window
	// scan order.
	Regions []Region
	// Stats describes the pass' work.
	Stats Stats
}

// HotWindows counts the hot windows in the heat map.
func (r *Result) HotWindows() int {
	n := 0
	for _, h := range r.Hot {
		if h {
			n++
		}
	}
	return n
}

// workerState is one worker's scratch: a block encoder with its pixel
// buffer and the assembled feature tensor fed to that worker's inference
// replica. Every field is fully overwritten per item, so reuse across
// items cannot leak state between them.
type workerState struct {
	enc   *feature.BlockEncoder
	block []float64
	x     *tensor.Tensor
}

// Scanner scans one die. It owns the block-plane cache and the last heat
// map, which is what makes incremental re-scan possible. Not safe for
// concurrent use; build with New.
type Scanner struct {
	cfg Config
	die geom.Clip
	ev  *train.Evaluator
	pool *parallel.Pool

	blockPx, blockNM int
	n, k             int // window side in blocks, coefficients per block
	nbx, nby         int // die block grid
	wnx, wny         int // window grid
	tileBlocks       int

	planes []float64 // [nby][nbx][k] cached block coefficient vectors
	probs  []float64 // [wny][wnx] last heat map
	scanned bool

	workers []*workerState
}

// New builds a scanner for the die with the given trained network. The
// die frame must divide evenly into DCT blocks and hold at least one
// window.
func New(cfg Config, net *nn.Network, die geom.Clip) (*Scanner, error) {
	if cfg.WindowNM <= 0 {
		return nil, fmt.Errorf("scan: window side must be positive, got %d", cfg.WindowNM)
	}
	blockPx, err := cfg.Feature.BlockPx(cfg.WindowNM)
	if err != nil {
		return nil, err
	}
	blockNM := blockPx * cfg.Feature.ResNM
	if die.Frame.Empty() {
		return nil, fmt.Errorf("scan: empty die frame %v", die.Frame)
	}
	if die.Frame.W()%blockNM != 0 || die.Frame.H()%blockNM != 0 {
		return nil, fmt.Errorf("scan: die %dx%d nm not divisible into %d nm blocks", die.Frame.W(), die.Frame.H(), blockNM)
	}
	n, k := cfg.Feature.Blocks, cfg.Feature.K
	nbx, nby := die.Frame.W()/blockNM, die.Frame.H()/blockNM
	if nbx < n || nby < n {
		return nil, fmt.Errorf("scan: die of %dx%d blocks smaller than the %d-block window", nbx, nby, n)
	}
	tb := cfg.TileBlocks
	if tb <= 0 {
		tb = 16
	}
	ev, err := train.NewEvaluator(net, cfg.Workers)
	if err != nil {
		return nil, err
	}
	s := &Scanner{
		cfg: cfg, die: die, ev: ev, pool: parallel.New(cfg.Workers),
		blockPx: blockPx, blockNM: blockNM,
		n: n, k: k, nbx: nbx, nby: nby,
		wnx: nbx - n + 1, wny: nby - n + 1,
		tileBlocks: tb,
		planes:     make([]float64, nbx*nby*k),
		probs:      make([]float64, (nbx-n+1)*(nby-n+1)),
	}
	s.workers = make([]*workerState, s.pool.Size())
	for i := range s.workers {
		enc, err := cfg.Feature.NewBlockEncoder(blockPx)
		if err != nil {
			return nil, err
		}
		s.workers[i] = &workerState{
			enc:   enc,
			block: make([]float64, blockPx*blockPx),
			x:     tensor.New(k, n, n),
		}
	}
	return s, nil
}

// Windows returns the window grid dimensions.
func (s *Scanner) Windows() (wnx, wny int) { return s.wnx, s.wny }

// Blocks returns the die block grid dimensions.
func (s *Scanner) Blocks() (nbx, nby int) { return s.nbx, s.nby }

// BlockNM returns the block side — the scan stride — in nanometres.
func (s *Scanner) BlockNM() int { return s.blockNM }

// Die returns the die currently scanned (the edited die after Rescan).
func (s *Scanner) Die() geom.Clip { return s.die }

// WindowRect returns window (wx, wy)'s rectangle in die coordinates.
func (s *Scanner) WindowRect(wx, wy int) geom.Rect {
	x0 := s.die.Frame.X0 + wx*s.blockNM
	y0 := s.die.Frame.Y0 + wy*s.blockNM
	return geom.R(x0, y0, x0+s.cfg.WindowNM, y0+s.cfg.WindowNM)
}

// blockRect returns block (bx, by)'s rectangle in die coordinates.
func (s *Scanner) blockRect(bx, by int) geom.Rect {
	x0 := s.die.Frame.X0 + bx*s.blockNM
	y0 := s.die.Frame.Y0 + by*s.blockNM
	return geom.R(x0, y0, x0+s.blockNM, y0+s.blockNM)
}

// Scan runs a cold full scan: every block transformed once, every window
// assembled from the cache and scored.
func (s *Scanner) Scan() (*Result, error) {
	if err := s.ev.Prepare([]int{s.k, s.n, s.n}); err != nil {
		return nil, err
	}
	str := s.cfg.Tracer.Start("scan")
	tilesX := (s.nbx + s.tileBlocks - 1) / s.tileBlocks
	tilesY := (s.nby + s.tileBlocks - 1) / s.tileBlocks
	watch := obs.NewStopwatch()
	ex := str.StartSpan("extract")
	// Per-tile spans live in this closure, not in encodeRegion: the
	// hotpath kernel stays span-free and the spans no-op when dark.
	err := s.pool.For(tilesX*tilesY, func(worker, t int) error {
		tx, ty := t%tilesX, t/tilesX
		bx0, by0 := tx*s.tileBlocks, ty*s.tileBlocks
		bx1, by1 := minInt(bx0+s.tileBlocks, s.nbx), minInt(by0+s.tileBlocks, s.nby)
		tsp := ex.Child("tile")
		tsp.SetInt("tx", int64(tx))
		tsp.SetInt("ty", int64(ty))
		tsp.SetInt("blocks", int64((bx1-bx0)*(by1-by0)))
		encErr := s.encodeRegion(worker, bx0, by0, bx1, by1)
		tsp.End()
		return encErr
	})
	d := watch.Elapsed()
	obs.Default().Stage("scan/extract").ObserveDuration(d)
	ex.EndWith(d)
	if err != nil {
		return nil, s.fail(str, err)
	}
	watch = obs.NewStopwatch()
	in := str.StartSpan("infer")
	err = s.pool.For(s.wny, func(worker, wy int) error {
		rsp := in.Child("row")
		rsp.SetInt("wy", int64(wy))
		rsp.SetInt("windows", int64(s.wnx))
		rowErr := s.scoreRow(worker, wy, 0, s.wnx)
		rsp.End()
		return rowErr
	})
	d = watch.Elapsed()
	obs.Default().Stage("scan/infer").ObserveDuration(d)
	in.EndWith(d)
	if err != nil {
		return nil, s.fail(str, err)
	}
	s.scanned = true
	st := Stats{
		BlockDCTs:    s.nbx * s.nby,
		Windows:      s.wnx * s.wny,
		BlockGathers: int64(s.wnx*s.wny) * int64(s.n*s.n),
	}
	return s.finish(st, str), nil
}

// fail closes a pass trace on an error path and passes the error through.
func (s *Scanner) fail(tr *trace.Trace, err error) error {
	if tr != nil {
		tr.SetError(err.Error())
		tr.Finish()
	}
	return err
}

// encodeRegion rasterizes the block range [bx0,bx1)×[by0,by1) and encodes
// every block into its cache slot. Workers own disjoint block ranges, so
// slot writes never overlap; pixel values are independent of the region
// bounds (area-accurate rasterization is per-pixel local), so the cached
// vectors are independent of tiling and worker count.
//hsd:hotpath
func (s *Scanner) encodeRegion(worker, bx0, by0, bx1, by1 int) error {
	ws := s.workers[worker]
	region := geom.R(
		s.die.Frame.X0+bx0*s.blockNM, s.die.Frame.Y0+by0*s.blockNM,
		s.die.Frame.X0+bx1*s.blockNM, s.die.Frame.Y0+by1*s.blockNM,
	)
	im, err := raster.Rasterize(geom.NewClip(region, s.die.Rects), s.cfg.Feature.ResNM)
	if err != nil {
		return err
	}
	b := s.blockPx
	for by := by0; by < by1; by++ {
		for bx := bx0; bx < bx1; bx++ {
			px0 := (bx - bx0) * b
			py0 := (by - by0) * b
			for y := 0; y < b; y++ {
				srcRow := (py0+y)*im.W + px0
				copy(ws.block[y*b:(y+1)*b], im.Pix[srcRow:srcRow+b])
			}
			slot := (by*s.nbx + bx) * s.k
			if err := ws.enc.EncodeInto(s.planes[slot:slot+s.k], ws.block); err != nil {
				return err
			}
		}
	}
	return nil
}

// scoreRow assembles and scores windows (wx0..wx1) of window row wy on
// one worker's replica, writing into the row's probability slots.
//hsd:hotpath
func (s *Scanner) scoreRow(worker, wy, wx0, wx1 int) error {
	ws := s.workers[worker]
	dst := ws.x.Data()
	for wx := wx0; wx < wx1; wx++ {
		s.assembleWindow(dst, wx, wy)
		p, err := s.ev.PredictOn(worker, ws.x)
		if err != nil {
			return err
		}
		s.probs[wy*s.wnx+wx] = p
	}
	return nil
}

// assembleWindow gathers the cached coefficient vectors of the Blocks²
// blocks under window (wx, wy) into a channels-first (K, n, n) tensor
// buffer — the exact layout feature.ExtractTensor produces, with the
// exact values the BlockEncoder cached.
//hsd:noalloc
func (s *Scanner) assembleWindow(dst []float64, wx, wy int) {
	n, k, nbx := s.n, s.k, s.nbx
	plane := n * n
	for r := 0; r < n; r++ {
		rowBase := ((wy+r)*nbx + wx) * k
		for c := 0; c < n; c++ {
			vec := s.planes[rowBase+c*k : rowBase+(c+1)*k]
			di := r*n + c
			for i, v := range vec {
				dst[i*plane+di] = v
			}
		}
	}
}

// finish derives the thresholded heat map and region proposals from the
// current probability grid, publishes pass metrics, and closes the pass
// trace (tr is nil when tracing is dark).
func (s *Scanner) finish(st Stats, tr *trace.Trace) *Result {
	res := &Result{
		WindowsX: s.wnx, WindowsY: s.wny,
		Probs: append([]float64(nil), s.probs...),
		Hot:   make([]bool, len(s.probs)),
	}
	for i, p := range s.probs {
		res.Hot[i] = train.Decide(p, s.cfg.Shift)
	}
	watch := obs.NewStopwatch()
	res.Regions = mergeRegions(res.Hot, res.Probs, s.wnx, s.wny, s)
	d := watch.Elapsed()
	obs.Default().Stage("scan/regions").ObserveDuration(d)
	tr.StartSpan("regions").EndWith(d)

	demand := st.BlockGathers + int64(st.BlockDCTs)
	if demand > 0 {
		st.CacheHitRate = float64(st.BlockGathers) / float64(demand)
	}
	res.Stats = st
	reg := obs.Default()
	reg.Counter("hsd_scan_block_dcts_total").Add(int64(st.BlockDCTs))
	reg.Counter("hsd_scan_block_gathers_total").Add(st.BlockGathers)
	reg.Counter("hsd_scan_windows_total").Add(int64(st.Windows))
	reg.Counter("hsd_scan_dirty_blocks_total").Add(int64(st.DirtyBlocks))
	reg.Gauge("hsd_scan_block_cache_hit_rate", 4).Set(st.CacheHitRate)
	tr.SetInt("block_dcts", int64(st.BlockDCTs))
	tr.SetInt("block_gathers", st.BlockGathers)
	tr.SetInt("windows", int64(st.Windows))
	tr.SetInt("dirty_blocks", int64(st.DirtyBlocks))
	tr.SetInt("regions", int64(len(res.Regions)))
	tr.SetFloat("cache_hit_rate", st.CacheHitRate)
	tr.Finish()
	return res
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
