package scan

import (
	"testing"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/train"
)

// testNet builds a small (but real) paper-architecture network; untrained
// weights are fine — every parity statement is about deterministic
// probabilities, not about classification quality.
func testNet(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.NewPaperNet(nn.PaperNetConfig{
		InChannels: 32, SpatialSize: 12,
		Conv1Maps: 4, Conv2Maps: 4, FC1: 16,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testDie is a 2×1-cell city: 2400×1200 nm, a 24×12 block grid scanned by
// 13×1 windows — small enough for exhaustive per-window comparison.
func testDie(t *testing.T) geom.Clip {
	t.Helper()
	die, err := layout.GenerateDie(layout.DieConfig{CellsX: 2, CellsY: 1, CellNM: 1200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return die
}

func testConfig(workers int) Config {
	cfg := DefaultConfig()
	cfg.Workers = workers
	return cfg
}

func mustScan(t *testing.T, cfg Config, net *nn.Network, die geom.Clip) (*Scanner, *Result) {
	t.Helper()
	s, err := New(cfg, net, die)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestScanMatchesPerClip is the acceptance gate: every scanned window's
// probability must be bit-identical to extracting that window as a
// standalone clip and scoring it through the per-clip path.
func TestScanMatchesPerClip(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	s, res := mustScan(t, testConfig(0), net, die)
	wnx, wny := s.Windows()
	if wnx != 13 || wny != 1 {
		t.Fatalf("window grid %dx%d, want 13x1", wnx, wny)
	}
	fcfg := DefaultConfig().Feature
	for wy := 0; wy < wny; wy++ {
		for wx := 0; wx < wnx; wx++ {
			ft, err := feature.ExtractTensor(die, s.WindowRect(wx, wy), fcfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := train.PredictProb(net, ft)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Probs[wy*wnx+wx]
			if got != want {
				t.Fatalf("window (%d,%d): scan %v, per-clip %v", wx, wy, got, want)
			}
		}
	}
}

func TestScanWorkerInvariance(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	_, base := mustScan(t, testConfig(1), net, die)
	for _, w := range []int{2, 4, 7} {
		_, res := mustScan(t, testConfig(w), net, die)
		for i := range base.Probs {
			if res.Probs[i] != base.Probs[i] {
				t.Fatalf("workers=%d: window %d prob %v, want %v", w, i, res.Probs[i], base.Probs[i])
			}
		}
		if len(res.Regions) != len(base.Regions) {
			t.Fatalf("workers=%d: %d regions, want %d", w, len(res.Regions), len(base.Regions))
		}
	}
}

// TestScanPartialTiles forces ragged extract-pass tiles (24 blocks over
// 5-block tiles) and checks the cache — and with it every probability —
// is unchanged, covering halo gathers across tile seams and edge tiles.
func TestScanPartialTiles(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	_, base := mustScan(t, testConfig(3), net, die)
	small := testConfig(3)
	small.TileBlocks = 5
	_, res := mustScan(t, small, net, die)
	for i := range base.Probs {
		if res.Probs[i] != base.Probs[i] {
			t.Fatalf("tileBlocks=5: window %d prob %v, want %v", i, res.Probs[i], base.Probs[i])
		}
	}
}

func TestScanStatsAndRegions(t *testing.T) {
	net := testNet(t)
	die := testDie(t)

	allHot := testConfig(0)
	allHot.Shift = 0.5 // boundary at 0: every window is hot
	s, res := mustScan(t, allHot, net, die)
	if res.HotWindows() != 13 {
		t.Fatalf("%d hot windows with shift 0.5, want all 13", res.HotWindows())
	}
	if len(res.Regions) != 1 {
		t.Fatalf("%d regions from a fully hot die, want 1", len(res.Regions))
	}
	r := res.Regions[0]
	if r.Windows != 13 || r.Rect != die.Frame {
		t.Fatalf("region %+v, want 13 windows spanning %v", r, die.Frame)
	}
	nbx, nby := s.Blocks()
	st := res.Stats
	if st.BlockDCTs != nbx*nby {
		t.Fatalf("BlockDCTs %d, want one per block (%d)", st.BlockDCTs, nbx*nby)
	}
	if st.BlockGathers != 13*144 {
		t.Fatalf("BlockGathers %d, want 13*144", st.BlockGathers)
	}
	wantHit := float64(st.BlockGathers) / float64(st.BlockGathers+int64(st.BlockDCTs))
	if st.CacheHitRate != wantHit {
		t.Fatalf("CacheHitRate %v, want %v", st.CacheHitRate, wantHit)
	}

	allCold := testConfig(0)
	allCold.Shift = -0.5 // boundary at 1: nothing is hot
	_, res = mustScan(t, allCold, net, die)
	if res.HotWindows() != 0 || len(res.Regions) != 0 {
		t.Fatalf("shift -0.5: %d hot windows, %d regions, want none", res.HotWindows(), len(res.Regions))
	}
}

func TestNewErrors(t *testing.T) {
	net := testNet(t)
	die := testDie(t)
	bad := testConfig(0)
	bad.WindowNM = 0
	if _, err := New(bad, net, die); err == nil {
		t.Error("expected error for zero window")
	}
	uneven := geom.Clip{Frame: geom.R(0, 0, 2450, 1200)}
	if _, err := New(testConfig(0), net, uneven); err == nil {
		t.Error("expected error for die not divisible into blocks")
	}
	tiny := geom.Clip{Frame: geom.R(0, 0, 600, 600)}
	if _, err := New(testConfig(0), net, tiny); err == nil {
		t.Error("expected error for die smaller than one window")
	}
	if _, err := New(testConfig(0), net, geom.Clip{}); err == nil {
		t.Error("expected error for empty die")
	}
}
