package serve

import (
	"container/list"
	"math"
	"sync"

	"hotspot/internal/raster"
)

// clipCache is a bounded LRU of hotspot probabilities keyed by a hash of
// the rasterized core window. Repeated clips — the common case in an
// online flow, where the same pattern is queried from many contexts — skip
// the DCT and the CNN forward pass entirely. Entries are whole-model
// artifacts: the server clears the cache when a reload swaps the network.
//
// All methods are safe for concurrent use.
type clipCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[uint64]*list.Element
}

// cacheEntry is one key → probability binding plus its LRU position.
type cacheEntry struct {
	key  uint64
	prob float64
}

// newClipCache builds a cache holding at most cap entries; cap <= 0
// disables caching (every lookup misses, every insert is dropped).
func newClipCache(cap int) *clipCache {
	c := &clipCache{cap: cap}
	if cap > 0 {
		c.order = list.New()
		c.entries = make(map[uint64]*list.Element, cap)
	}
	return c
}

// get returns the cached probability for key, marking it most recently
// used.
func (c *clipCache) get(key uint64) (float64, bool) {
	if c.cap <= 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).prob, true
}

// add inserts (or refreshes) key → prob, evicting the least recently used
// entry when full.
func (c *clipCache) add(key uint64, prob float64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock() //hsd:allow hotlint LRU fill is one short critical section per served request, off the numeric path
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).prob = prob
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, prob: prob})
}

// clear drops every entry (model reload invalidates all cached outputs).
func (c *clipCache) clear() {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
}

// len returns the current entry count.
func (c *clipCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// hashImage fingerprints a rasterized core window with FNV-1a over the
// dimensions and the bit patterns of every pixel. Rasterization is
// deterministic, so two requests for the same geometry at the same
// resolution hash identically; the bit-pattern basis means the key —
// unlike any rounded representation — can never merge clips whose tensors
// would differ.
func hashImage(im *raster.Image) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (v >> shift) & 0xff
			h *= prime64
		}
	}
	mix(uint64(im.W))
	mix(uint64(im.H))
	for _, p := range im.Pix {
		mix(math.Float64bits(p))
	}
	return h
}
