package serve

import (
	"fmt"
	"os"

	"hotspot/internal/nn"
	"hotspot/internal/train"
)

// model is one immutable serving generation: a network plus the evaluator
// replicas that fan its inference across the worker pool. A reload builds
// a complete new model and swaps the Server's atomic pointer; batches in
// flight finish on the generation they started with, and the evaluator's
// single-owner contract holds because only the batcher's flush loop ever
// runs one.
type model struct {
	net        *nn.Network
	ev         *train.Evaluator
	origin     string // checkpoint path or a description like "untrained"
	generation int    // monotonically increasing swap counter
}

// ModelInfo describes the currently served model.
type ModelInfo struct {
	// Origin is the checkpoint path the model came from (or a description
	// for models installed programmatically).
	Origin string `json:"origin"`
	// Generation counts model swaps since startup, starting at 1.
	Generation int `json:"generation"`
	// Params is the network's parameter count.
	Params int `json:"params"`
	// Fused reports whether the model serves through compiled fused
	// inference engines (bit-identical to the layer stack, but one fused
	// zero-allocation pass per sample) rather than layer-by-layer.
	Fused bool `json:"fused"`
}

// LoadNetwork validates net against the server's feature configuration and
// installs it as the serving model, clearing the clip cache (cached
// probabilities are artifacts of the previous weights). origin is recorded
// for /admin/reload responses and logs.
func (s *Server) LoadNetwork(net *nn.Network, origin string) error {
	f := s.cfg.Feature
	if _, err := net.Summary([]int{f.K, f.Blocks, f.Blocks}); err != nil {
		return fmt.Errorf("serve: network incompatible with %d×%d×%d feature tensors: %w",
			f.K, f.Blocks, f.Blocks, err)
	}
	ev, err := train.NewEvaluator(net, s.cfg.Workers)
	if err != nil {
		return err
	}
	// Compile fused engines for the serving feature shape up front so the
	// first batch doesn't pay compilation. Networks the engine cannot fuse
	// are fine — the evaluator keeps its always-correct layered path and
	// ModelInfo reports Fused: false.
	_ = ev.EnsureFused([]int{f.K, f.Blocks, f.Blocks})
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	gen := 1
	if cur := s.model.Load(); cur != nil {
		gen = cur.generation + 1
	}
	s.model.Store(&model{net: net, ev: ev, origin: origin, generation: gen})
	s.cache.clear()
	// Re-register build info for the new generation so every scrape names
	// the model it was taken against (the superseded generation's series
	// drops to 0). Serialized by reloadMu.
	s.metrics.buildInfo(gen, ev.FusedActive())
	return nil
}

// LoadCheckpoint reads a checkpoint written by nn.Save (or hsd-train) and
// installs it. The versioned header means a truncated, corrupt, or
// wrong-version file is rejected here — with the old model left serving —
// rather than poisoning the running server.
func (s *Server) LoadCheckpoint(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serve: open checkpoint: %w", err)
	}
	net, err := nn.Load(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := s.LoadNetwork(net, path); err != nil {
		return err
	}
	s.reloadMu.Lock()
	s.lastPath = path
	s.reloadMu.Unlock()
	return nil
}

// Model returns information about the currently served model; ok is false
// before the first successful load.
func (s *Server) Model() (ModelInfo, bool) {
	m := s.model.Load()
	if m == nil {
		return ModelInfo{}, false
	}
	return ModelInfo{
		Origin:     m.origin,
		Generation: m.generation,
		Params:     m.net.ParamCount(),
		Fused:      m.ev.FusedActive(),
	}, true
}
