package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// BenchmarkServePredict measures end-to-end /v1/predict latency through
// the full HTTP + micro-batcher + feature + CNN pipeline.
//
// serial:  one client, cache off — every request pays extraction and
//
//	inference; this is the per-clip floor.
//
// batched: b.RunParallel clients, cache off — concurrent requests
//
//	coalesce into micro-batches; throughput per clip should beat
//	serial once batches form.
//
// cached:  one client re-asking one clip — the dedup LRU answer path.
func BenchmarkServePredict(b *testing.B) {
	newBench := func(b *testing.B, cacheSize int) (string, *http.Client, func()) {
		cfg := testConfig()
		cfg.CacheSize = cacheSize
		srv, ts := newTestServer(b, cfg, 1)
		_ = srv
		return ts.URL, ts.Client(), ts.Close
	}
	clips := testClips(64, 11)
	bodies := make([][]byte, len(clips))
	for i, c := range clips {
		raw, err := json.Marshal(clipRequest(c))
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = raw
	}
	post := func(client *http.Client, url string, body []byte) error {
		resp, err := client.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		var pr struct{ Prob float64 }
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	b.Run("serial", func(b *testing.B) {
		url, client, done := newBench(b, 0)
		defer done()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := post(client, url, bodies[i%len(bodies)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("batched", func(b *testing.B) {
		url, client, done := newBench(b, 0)
		defer done()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := post(client, url, bodies[i%len(bodies)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})

	b.Run("cached", func(b *testing.B) {
		url, client, done := newBench(b, 64)
		defer done()
		if err := post(client, url, bodies[0]); err != nil { // warm the entry
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := post(client, url, bodies[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
