package serve

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"hotspot/internal/feature"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/raster"
	"hotspot/internal/tensor"
)

// Sentinel errors surfaced by the request pipeline; the HTTP layer maps
// them to status codes (429, 503).
var (
	// ErrQueueFull is returned when the bounded request queue is at
	// capacity — explicit backpressure instead of unbounded buffering.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrShuttingDown is returned for requests arriving after Close.
	ErrShuttingDown = errors.New("serve: server shutting down")
	// ErrNoModel is returned when no model has been loaded yet.
	ErrNoModel = errors.New("serve: no model loaded")
)

// request is one clip waiting for a prediction: the rasterized core
// window plus its cache key. resp is buffered with capacity 1 and receives
// exactly one result, so the flush loop never blocks on a caller that
// timed out and walked away.
type request struct {
	im   *raster.Image
	key  uint64
	resp chan result
	enq  obs.Stopwatch // started at enqueue; read when the batch starts (queue stage)
	// qspan is the request trace's queue-wait span, set by the handler
	// before enqueue and ended by the flush loop when the batch picks the
	// request up. Nil when tracing is dark; all span methods no-op then.
	qspan *trace.Span
}

// result is the outcome delivered back to the waiting handler.
type result struct {
	prob float64
	err  error
}

// batcher coalesces concurrent single-clip requests into micro-batches.
// Handlers enqueue onto a bounded channel; one flush loop drains it,
// closing a batch when it reaches maxBatch clips or when maxWait has
// elapsed since the batch's first clip, and runs the batch through the
// two-stage pipeline (feature extraction fan-out, then batched CNN
// inference on the evaluator's replicas).
//
// Determinism: each clip's tensor and probability depend only on that
// clip and the current model — extraction and inference are pure
// per-item functions running on parallel.Map's index-addressed slots — so
// how requests happen to group into batches cannot change any response
// bit. The parity test in serve_test.go holds the server to that.
type batcher struct {
	srv      *Server
	queue    chan *request
	maxBatch int
	maxWait  time.Duration
	pool     *parallel.Pool

	stop chan struct{} // closed by Close: stop filling, drain, exit
	done chan struct{} // closed by the flush loop on exit

	// mu guards closed. enqueue holds the read lock across its
	// check-then-send, so once Close flips closed under the write lock no
	// request can slip into the queue behind the flush loop's final
	// drain — every accepted request is answered.
	mu     sync.RWMutex
	closed bool

	scratch []*request       // batch assembly buffer, owned by the flush loop
	xs      []*tensor.Tensor // extracted-tensor scratch, reused across batches
	idx     []int            // xs→batch index scratch, reused across batches
}

func newBatcher(srv *Server, queueSize, maxBatch int, maxWait time.Duration, pool *parallel.Pool) *batcher {
	return &batcher{
		srv:      srv,
		queue:    make(chan *request, queueSize),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		pool:     pool,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		scratch:  make([]*request, 0, maxBatch),
		xs:       make([]*tensor.Tensor, 0, maxBatch),
		idx:      make([]int, 0, maxBatch),
	}
}

// start launches the flush loop.
func (b *batcher) start() {
	go b.loop() //hsd:allow goroutinelint service loop, not batch fan-out; joined by Close, which closes stop and blocks on done
}

// enqueue hands a request to the flush loop, failing fast with
// ErrShuttingDown after Close and ErrQueueFull when the bounded queue is
// at capacity.
func (b *batcher) enqueue(r *request) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrShuttingDown
	}
	r.enq = obs.NewStopwatch()
	select {
	case b.queue <- r:
		return nil
	default:
		return ErrQueueFull
	}
}

// Close stops intake, waits for the flush loop to drain every accepted
// request, and returns. Idempotent; concurrent calls all block until the
// drain finishes.
func (b *batcher) Close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.stop)
	}
	<-b.done
}

// loop is the flush loop: one long-lived goroutine that assembles and runs
// micro-batches until Close.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case r := <-b.queue:
			b.run(b.fill(r))
		case <-b.stop:
			b.drain()
			return
		}
	}
}

// fill assembles a batch around its first request: it keeps pulling until
// the batch holds maxBatch clips or maxWait has elapsed (or shutdown
// begins — the partial batch still runs, and the outer loop drains the
// rest).
func (b *batcher) fill(first *request) []*request {
	batch := append(b.scratch[:0], first)
	if b.maxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}

// drain answers everything still queued at shutdown, in maxBatch-sized
// bites with no deadline waits.
func (b *batcher) drain() {
	for {
		batch := b.scratch[:0]
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		if len(batch) == 0 {
			return
		}
		b.run(batch)
	}
}

// extraction is one clip's stage-1 outcome; errors are per-item so one
// malformed clip cannot fail its batch mates.
type extraction struct {
	x   *tensor.Tensor
	err error
}

// run executes one micro-batch: parallel feature extraction, batched
// inference, replies, cache fills.
//
//hsd:hotpath
func (b *batcher) run(batch []*request) {
	watch := obs.NewStopwatch()
	btr := b.srv.tracer.Start("batch")
	m := b.srv.model.Load() //hsd:allow hotlint one atomic pointer read per micro-batch pins the model across the batch
	if m == nil {
		for _, r := range batch {
			r.qspan.End()
			r.resp <- result{err: ErrNoModel} //hsd:allow hotlint reply into the request's cap-1 buffered channel; never blocks
		}
		btr.SetStatus(503)
		btr.SetError("no model loaded")
		btr.FinishWith(watch.Elapsed())
		return
	}
	n := len(batch)
	b.srv.metrics.batch(n)
	btr.SetInt("size", int64(n))
	btr.SetInt("model_generation", int64(m.generation))
	for _, r := range batch {
		dq := r.enq.Elapsed()
		b.srv.metrics.stage(stageQueue, dq)
		r.qspan.EndWith(dq)
		r.qspan.SetStr("batch_id", btr.ID())
	}
	// Batch linkage, the reverse direction: the batch trace names the
	// request traces that rode in it. Guarded by a nil check because the
	// indexed keys are built with strconv — never on the dark path.
	if btr != nil {
		for i, r := range batch {
			if r.qspan != nil {
				btr.SetStr("member_"+strconv.Itoa(i), r.qspan.TraceID())
			}
		}
	}

	extractWatch := obs.NewStopwatch()
	exts, _ := parallel.Map(b.pool, n, func(_, i int) (extraction, error) {
		x, err := feature.ExtractTensorFromImage(batch[i].im, b.srv.cfg.Feature)
		return extraction{x: x, err: err}, nil
	})
	de := extractWatch.Elapsed()
	b.srv.metrics.stage(stageExtract, de)
	btr.StartSpan("extract").EndWith(de)

	xs := b.xs[:0]
	idx := b.idx[:0]
	for i, e := range exts {
		if e.err != nil {
			batch[i].resp <- result{err: e.err} //hsd:allow hotlint reply into the request's cap-1 buffered channel; never blocks
			continue
		}
		xs = append(xs, e.x)
		idx = append(idx, i)
	}
	if len(xs) > 0 {
		inferWatch := obs.NewStopwatch()
		probs, err := m.ev.PredictProbs(xs)
		di := inferWatch.Elapsed()
		b.srv.metrics.stage(stageInfer, di)
		btr.StartSpan("infer").EndWith(di)
		for j, i := range idx {
			if err != nil {
				batch[i].resp <- result{err: err} //hsd:allow hotlint reply into the request's cap-1 buffered channel; never blocks
				continue
			}
			b.srv.cache.add(batch[i].key, probs[j])
			batch[i].resp <- result{prob: probs[j]} //hsd:allow hotlint reply into the request's cap-1 buffered channel; never blocks
		}
	}
	db := watch.Elapsed()
	b.srv.metrics.stage(stageBatch, db)
	btr.FinishWith(db)
}
