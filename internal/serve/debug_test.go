package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hotspot/internal/serve"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugHandlerOff: with debug disabled, DebugHandler is the server
// itself — /debug/* 404s and the service endpoints still answer.
func TestDebugHandlerOff(t *testing.T) {
	srv, err := serve.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(serve.DebugHandler(srv, false))
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/obs"} {
		if code, _ := getBody(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s with debug off = %d, want 404", path, code)
		}
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz through disabled debug handler = %d, want 200", code)
	}
}

// TestDebugHandlerOn: with debug enabled, pprof and the registry dump are
// mounted and the service endpoints still answer.
func TestDebugHandlerOn(t *testing.T) {
	srv, err := serve.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(serve.DebugHandler(srv, true))
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof cmdline = %d (%d bytes), want 200 with content", code, len(body))
	}
	code, body = getBody(t, ts.URL+"/debug/obs")
	if code != http.StatusOK {
		t.Fatalf("/debug/obs = %d, want 200", code)
	}
	for _, want := range []string{
		"# server registry",
		"# process registry",
		`serve_stage_seconds_count{stage="extract"}`,
		"serve_cache_hit_rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/obs missing %q:\n%s", want, body)
		}
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz through debug handler = %d, want 200", code)
	}
}
