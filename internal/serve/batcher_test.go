package serve

import (
	"errors"
	"testing"
	"time"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/raster"
)

func testFeatureCfg() feature.TensorConfig {
	return feature.TensorConfig{Blocks: 4, K: 8, ResNM: 4, Normalize: true}
}

// TestEnqueueBackpressure exercises the bounded queue directly: a batcher
// whose flush loop is never started accepts exactly QueueSize requests,
// then fails fast with ErrQueueFull.
func TestEnqueueBackpressure(t *testing.T) {
	b := newBatcher(nil, 2, 4, time.Millisecond, parallel.New(1))
	mk := func() *request {
		return &request{im: raster.NewImage(4, 4), resp: make(chan result, 1)}
	}
	if err := b.enqueue(mk()); err != nil {
		t.Fatal(err)
	}
	if err := b.enqueue(mk()); err != nil {
		t.Fatal(err)
	}
	if err := b.enqueue(mk()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third enqueue on a 2-slot queue: %v, want ErrQueueFull", err)
	}
}

// TestEnqueueAfterClose: once Close returns, every enqueue is refused
// with ErrShuttingDown and every request accepted before Close was
// answered.
func TestEnqueueAfterClose(t *testing.T) {
	s, err := New(Config{
		Feature:        testFeatureCfg(),
		CoreSide:       192,
		MaxBatch:       4,
		MaxWait:        time.Millisecond,
		QueueSize:      8,
		RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No model loaded: accepted requests drain with ErrNoModel, which is
	// still an answer — the invariant is one result per accepted request.
	reqs := make([]*request, 4)
	for i := range reqs {
		reqs[i] = &request{im: raster.NewImage(48, 48), resp: make(chan result, 1)}
		if err := s.batcher.enqueue(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	for i, r := range reqs {
		select {
		case res := <-r.resp:
			if !errors.Is(res.err, ErrNoModel) {
				t.Fatalf("request %d: err %v, want ErrNoModel", i, res.err)
			}
		default:
			t.Fatalf("request %d accepted before Close was never answered", i)
		}
	}
	late := &request{im: raster.NewImage(48, 48), resp: make(chan result, 1)}
	if err := s.batcher.enqueue(late); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("enqueue after Close: %v, want ErrShuttingDown", err)
	}
	// Close is idempotent.
	s.Close()
}

// TestClipCacheLRU covers insert, hit, LRU eviction order, clear, and the
// disabled (cap 0) mode.
func TestClipCacheLRU(t *testing.T) {
	c := newClipCache(2)
	c.add(1, 0.1)
	c.add(2, 0.2)
	if p, ok := c.get(1); !ok || p != 0.1 {
		t.Fatalf("get(1) = %v,%v", p, ok)
	}
	// 1 is now most recent; adding 3 evicts 2.
	c.add(3, 0.3)
	if _, ok := c.get(2); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("LRU evicted the most recently used entry")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// Refreshing an existing key updates in place, no growth.
	c.add(1, 0.9)
	if p, _ := c.get(1); p != 0.9 {
		t.Fatalf("refresh did not update: %v", p)
	}
	if c.len() != 2 {
		t.Fatalf("len after refresh = %d, want 2", c.len())
	}
	c.clear()
	if c.len() != 0 {
		t.Fatalf("len after clear = %d", c.len())
	}
	if _, ok := c.get(1); ok {
		t.Fatal("clear left an entry behind")
	}

	off := newClipCache(0)
	off.add(1, 0.5)
	if _, ok := off.get(1); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if off.len() != 0 {
		t.Fatal("disabled cache reports entries")
	}
}

// TestHashImageDistinguishes: images differing in one pixel bit or in
// shape hash differently, and hashing is reproducible.
func TestHashImageDistinguishes(t *testing.T) {
	a := raster.NewImage(8, 8)
	a.Set(3, 4, 0.25)
	b := a.Clone()
	if hashImage(a) != hashImage(b) {
		t.Fatal("equal images hash differently")
	}
	b.Set(3, 4, 0.250000000000001)
	if hashImage(a) == hashImage(b) {
		t.Fatal("a one-ulp pixel change did not change the hash")
	}
	wide := raster.NewImage(16, 4) // same pixel count, different shape
	tall := raster.NewImage(4, 16)
	if hashImage(wide) == hashImage(tall) {
		t.Fatal("shape is not part of the hash")
	}
}

// TestCenteredCore pins the default-core geometry.
func TestCenteredCore(t *testing.T) {
	got := CenteredCore(geom.R(0, 0, 480, 480), 192)
	want := geom.R(144, 144, 336, 336)
	if got != want {
		t.Fatalf("CenteredCore = %+v, want %+v", got, want)
	}
	// Core == frame.
	if got := CenteredCore(geom.R(10, 20, 1210, 1220), 1200); got != geom.R(10, 20, 1210, 1220) {
		t.Fatalf("full-frame core = %+v", got)
	}
}

// TestConfigValidate rejects the obvious misconfigurations.
func TestConfigValidate(t *testing.T) {
	good := Config{
		Feature: testFeatureCfg(), CoreSide: 192, MaxBatch: 4,
		MaxWait: time.Millisecond, QueueSize: 8, RequestTimeout: time.Second,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.CoreSide = 100 // 25 px does not divide into 4 blocks
	if bad.Validate() == nil {
		t.Fatal("accepted an indivisible core")
	}
	bad = good
	bad.MaxBatch = 0
	if bad.Validate() == nil {
		t.Fatal("accepted MaxBatch 0")
	}
	bad = good
	bad.MaxWait = 0
	if bad.Validate() == nil {
		t.Fatal("accepted MaxWait 0 with batching on")
	}
	bad = good
	bad.QueueSize = 0
	if bad.Validate() == nil {
		t.Fatal("accepted QueueSize 0")
	}
	bad = good
	bad.RequestTimeout = 0
	if bad.Validate() == nil {
		t.Fatal("accepted RequestTimeout 0")
	}
	// MaxBatch 1 needs no deadline.
	solo := good
	solo.MaxBatch = 1
	solo.MaxWait = 0
	if err := solo.Validate(); err != nil {
		t.Fatal(err)
	}
}

// darkTraceSequence replays exactly the trace calls the batcher and the
// predict path make per request when tracing is dark (nil tracer): the
// zero-allocations-when-dark contract, measured where it matters.
func darkTraceSequence(tracer *trace.Tracer, req *request) {
	btr := tracer.Start("batch")
	btr.SetInt("size", 1)
	btr.SetInt("model_generation", 1)
	req.qspan.EndWith(0)
	req.qspan.SetStr("batch_id", btr.ID())
	if btr != nil {
		btr.SetStr("member_0", req.qspan.TraceID())
	}
	btr.StartSpan("extract").EndWith(0)
	btr.StartSpan("infer").EndWith(0)
	btr.FinishWith(0)
}

// TestBatcherDarkTraceZeroAlloc pins the hot-path contract directly:
// with tracing disabled the full per-batch instrumentation sequence
// allocates nothing.
func TestBatcherDarkTraceZeroAlloc(t *testing.T) {
	req := &request{} // dark server: no trace, no qspan
	allocs := testing.AllocsPerRun(200, func() {
		darkTraceSequence(nil, req)
	})
	if allocs != 0 {
		t.Fatalf("dark batcher tracing allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkBatcherDarkTrace is the 0 B/op acceptance benchmark for the
// serving hot path with tracing disabled.
func BenchmarkBatcherDarkTrace(b *testing.B) {
	req := &request{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		darkTraceSequence(nil, req)
	}
}
