package serve

import (
	"io"
	"net/http"
	"net/http/pprof"

	"hotspot/internal/obs"
)

// DebugHandler wraps the server with its optional debug surface. With
// debug off and tracing dark (the defaults) it returns srv unchanged, so
// /debug/* 404s like any unknown path. With debug on it mounts, next to
// the service's own endpoints:
//
//	/debug/pprof/...   the standard net/http/pprof profile endpoints
//	/debug/obs         a text dump of the server's metrics registry
//	                   followed by the process-wide obs.Default registry
//
// Independently, when the server was built with request tracing lit
// (Config.Trace), it mounts:
//
//	/debug/trace       a JSON dump of the flight recorder — every trace
//	                   retained by the tail-keep policy, with keep reasons
//
// Each endpoint is gated by its own switch: -pprof does not expose traces
// and -trace does not expose profiles. Both expose internals (stacks,
// heap contents, request attributes), so the flags gating them must stay
// off by default and on trusted interfaces only.
func DebugHandler(srv *Server, debug bool) http.Handler {
	if !debug && srv.Tracer() == nil {
		return srv
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = io.WriteString(w, "# server registry\n")
			_ = srv.Registry().WriteText(w)
			_, _ = io.WriteString(w, "# process registry\n")
			_ = obs.Default().WriteText(w)
		})
	}
	if srv.Tracer() != nil {
		mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = srv.Tracer().WriteJSON(w)
		})
	}
	return mux
}
