package serve

import (
	"io"
	"net/http"
	"net/http/pprof"

	"hotspot/internal/obs"
)

// DebugHandler wraps the server with an optional debug surface. With
// debug off (the default) it returns srv unchanged, so /debug/* 404s like
// any unknown path. With debug on it mounts, next to the service's own
// endpoints:
//
//	/debug/pprof/...   the standard net/http/pprof profile endpoints
//	/debug/obs         a text dump of the server's metrics registry
//	                   followed by the process-wide obs.Default registry
//
// The profile endpoints expose internals (stacks, heap contents), so the
// flag gating this must stay off by default and on trusted interfaces
// only.
func DebugHandler(srv *Server, debug bool) http.Handler {
	if !debug {
		return srv
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "# server registry\n")
		_ = srv.Registry().WriteText(w)
		_, _ = io.WriteString(w, "# process registry\n")
		_ = obs.Default().WriteText(w)
	})
	return mux
}
