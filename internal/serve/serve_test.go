package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/nn"
	"hotspot/internal/serve"
	"hotspot/internal/train"
)

// testFrame is the clip window every test clip lives in.
var testFrame = geom.R(0, 0, 480, 480)

// testConfig is a reduced service for fast tests: 4-block/8-coefficient
// tensors over a 192 nm core into a narrow CNN.
func testConfig() serve.Config {
	cfg := serve.DefaultConfig()
	cfg.Feature = feature.TensorConfig{Blocks: 4, K: 8, ResNM: 4, Normalize: true}
	cfg.CoreSide = 192
	cfg.RequestTimeout = 10 * time.Second
	return cfg
}

// testNet builds a small deterministic random-weight network matching
// testConfig; equal seeds give bit-equal weights.
func testNet(t testing.TB, seed int64) *nn.Network {
	t.Helper()
	net, err := nn.NewPaperNet(nn.PaperNetConfig{
		InChannels: 8, SpatialSize: 4, Conv1Maps: 4, Conv2Maps: 4,
		FC1: 12, DropoutRate: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testClips generates n wire-track clips with varied pitch, width, phase
// and crossbars.
func testClips(n int, seed int64) []geom.Clip {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Clip, n)
	for i := range out {
		pitch := 48 + 16*rng.Intn(6)
		width := 24 + 8*rng.Intn(4)
		off := 8 * rng.Intn(6)
		var rects []geom.Rect
		for x := off; x+width <= 480; x += pitch {
			rects = append(rects, geom.R(x, 0, x+width, 480))
		}
		if rng.Intn(2) == 0 {
			y := 32 * rng.Intn(12)
			rects = append(rects, geom.R(0, y, 480, y+24))
		}
		out[i] = geom.NewClip(testFrame, rects)
	}
	return out
}

func clipRequest(c geom.Clip) serve.ClipRequest {
	cr := serve.ClipRequest{
		Frame: &serve.RectJSON{X0: c.Frame.X0, Y0: c.Frame.Y0, X1: c.Frame.X1, Y1: c.Frame.Y1},
	}
	for _, r := range c.Rects {
		cr.Rects = append(cr.Rects, serve.RectJSON{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1})
	}
	return cr
}

// serialProbs is the offline reference: feature.ExtractTensor +
// train.PredictProb per clip, one at a time, on the calling goroutine.
func serialProbs(t testing.TB, net *nn.Network, clips []geom.Clip, cfg serve.Config) []float64 {
	t.Helper()
	core := serve.CenteredCore(testFrame, cfg.CoreSide)
	out := make([]float64, len(clips))
	for i, c := range clips {
		x, err := feature.ExtractTensor(c, core, cfg.Feature)
		if err != nil {
			t.Fatal(err)
		}
		p, err := train.PredictProb(net, x)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// newTestServer builds a ready server plus its httptest front end.
func newTestServer(t testing.TB, cfg serve.Config, netSeed int64) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadNetwork(testNet(t, netSeed), "test"); err != nil {
		t.Fatal(err)
	}
	// The parity tests in this file compare served probabilities against
	// the serial layer-by-layer reference. Guard that the server really is
	// on the fused engine path, so those comparisons pin fused-vs-layered
	// parity rather than silently testing layered against itself.
	if info, ok := srv.Model(); !ok || !info.Fused {
		t.Fatalf("test server is not serving through fused engines (info %+v, ok %v)", info, ok)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodePredict(t testing.TB, raw []byte) serve.PredictResponse {
	t.Helper()
	var pr serve.PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("bad predict response %q: %v", raw, err)
	}
	return pr
}

// TestServerParityUnderLoad is the acceptance parity test: under 8
// concurrent clients, at every micro-batch size, the probabilities the
// server returns are bit-identical to serial one-at-a-time inference on
// the same clips. JSON carries float64 at full round-trip precision, so
// bit equality survives the wire.
func TestServerParityUnderLoad(t *testing.T) {
	const clients = 8
	clips := testClips(24, 11)
	refCfg := testConfig()
	want := serialProbs(t, testNet(t, 5), clips, refCfg)

	for _, maxBatch := range []int{1, 3, 8, 32} {
		t.Run(fmt.Sprintf("maxBatch=%d", maxBatch), func(t *testing.T) {
			cfg := testConfig()
			cfg.MaxBatch = maxBatch
			_, ts := newTestServer(t, cfg, 5)
			var wg sync.WaitGroup
			got := make([][]float64, clients)
			errs := make([]error, clients)
			for cl := 0; cl < clients; cl++ {
				got[cl] = make([]float64, len(clips))
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					perm := rand.New(rand.NewSource(int64(100 + cl))).Perm(len(clips))
					for _, i := range perm {
						resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clips[i]))
						if resp.StatusCode != http.StatusOK {
							errs[cl] = fmt.Errorf("clip %d: status %d: %s", i, resp.StatusCode, raw)
							return
						}
						var pr serve.PredictResponse
						if err := json.Unmarshal(raw, &pr); err != nil {
							errs[cl] = err
							return
						}
						got[cl][i] = pr.Prob
					}
				}(cl)
			}
			wg.Wait()
			for cl, err := range errs {
				if err != nil {
					t.Fatalf("client %d: %v", cl, err)
				}
			}
			for cl := 0; cl < clients; cl++ {
				for i := range clips {
					if math.Float64bits(got[cl][i]) != math.Float64bits(want[i]) {
						t.Fatalf("client %d clip %d: server %v != serial %v (maxBatch %d)",
							cl, i, got[cl][i], want[i], maxBatch)
					}
				}
			}
		})
	}
}

// TestBatchEndpointParity checks /v1/predict/batch against the serial
// reference and the order of results.
func TestBatchEndpointParity(t *testing.T) {
	clips := testClips(16, 23)
	cfg := testConfig()
	want := serialProbs(t, testNet(t, 5), clips, cfg)
	_, ts := newTestServer(t, cfg, 5)

	var br serve.BatchRequest
	for _, c := range clips {
		br.Clips = append(br.Clips, clipRequest(c))
	}
	resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict/batch", br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out serve.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(clips) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(clips))
	}
	for i, r := range out.Results {
		if math.Float64bits(r.Prob) != math.Float64bits(want[i]) {
			t.Fatalf("clip %d: batch endpoint %v != serial %v", i, r.Prob, want[i])
		}
	}
}

// TestBitmapInputParity: a pre-rasterized core bitmap must score
// bit-identically to the geometry form of the same clip.
func TestBitmapInputParity(t *testing.T) {
	cfg := testConfig()
	clips := testClips(3, 31)
	_, ts := newTestServer(t, cfg, 5)
	core := serve.CenteredCore(testFrame, cfg.CoreSide)
	for i, c := range clips {
		resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(c))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("geometry clip %d: status %d: %s", i, resp.StatusCode, raw)
		}
		geomPr := decodePredict(t, raw)

		// Build the same core window as a raw bitmap.
		im, err := feature.ExtractCoreImage(c, core, cfg.Feature)
		if err != nil {
			t.Fatal(err)
		}
		bm := serve.BitmapJSON{W: im.W, H: im.H, Pix: im.Pix}
		resp, raw = postJSON(t, ts.Client(), ts.URL+"/v1/predict", serve.ClipRequest{Bitmap: &bm})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bitmap clip %d: status %d: %s", i, resp.StatusCode, raw)
		}
		bmPr := decodePredict(t, raw)
		if math.Float64bits(bmPr.Prob) != math.Float64bits(geomPr.Prob) {
			t.Fatalf("clip %d: bitmap %v != geometry %v", i, bmPr.Prob, geomPr.Prob)
		}
	}
}

// TestCacheDedup: a repeated clip is served from the LRU (cached=true,
// identical bits), and the hit shows up in the metrics.
func TestCacheDedup(t *testing.T) {
	cfg := testConfig()
	srv, ts := newTestServer(t, cfg, 5)
	clip := clipRequest(testClips(1, 7)[0])

	_, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clip)
	first := decodePredict(t, raw)
	if first.Cached {
		t.Fatal("first request claims a cache hit")
	}
	_, raw = postJSON(t, ts.Client(), ts.URL+"/v1/predict", clip)
	second := decodePredict(t, raw)
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if math.Float64bits(first.Prob) != math.Float64bits(second.Prob) {
		t.Fatalf("cache changed the answer: %v vs %v", first.Prob, second.Prob)
	}
	snap := srv.Metrics()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}
}

// TestFlushBySize: with a long deadline, MaxBatch concurrent clients
// coalesce into one full micro-batch.
func TestFlushBySize(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 4
	cfg.MaxWait = 10 * time.Second // deadline flush would blow RequestTimeout
	cfg.CacheSize = 0
	cfg.RequestTimeout = 5 * time.Second
	srv, ts := newTestServer(t, cfg, 5)

	clips := testClips(4, 41)
	var wg sync.WaitGroup
	status := make([]int, len(clips))
	for i := range clips {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clips[i]))
			status[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, st := range status {
		if st != http.StatusOK {
			t.Fatalf("clip %d: status %d (flush-by-size never fired?)", i, st)
		}
	}
	snap := srv.Metrics()
	total := 0
	for size, n := range snap.BatchSizes {
		total += size * int(n)
	}
	if total != len(clips) {
		t.Fatalf("batch histogram accounts for %d clips, want %d (%v)", total, len(clips), snap.BatchSizes)
	}
	if snap.BatchSizes[4] == 0 {
		// The four posts raced the flush loop; all were answered, but if
		// no size-4 batch formed the size-flush path is suspect. Allow
		// any split whose largest batch is >= 2 — a 1+1+1+1 split under a
		// 10 s deadline would mean size-based flushing never coalesced.
		if snap.BatchSizes[2] == 0 && snap.BatchSizes[3] == 0 {
			t.Fatalf("no coalesced batch formed under a 10s deadline: %v", snap.BatchSizes)
		}
	}
}

// TestFlushByDeadline: one lone request in a 32-clip batcher returns
// promptly via the deadline flush, as a batch of one.
func TestFlushByDeadline(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 32
	cfg.MaxWait = 20 * time.Millisecond
	cfg.RequestTimeout = 5 * time.Second
	srv, ts := newTestServer(t, cfg, 5)

	start := time.Now()
	resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(testClips(1, 43)[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("lone request took %v; deadline flush missing", elapsed)
	}
	if srv.Metrics().BatchSizes[1] == 0 {
		t.Fatalf("no size-1 batch recorded: %v", srv.Metrics().BatchSizes)
	}
}

// TestQueueFullBackpressure: a burst far beyond a 1-slot queue must
// surface 429s while every accepted request still succeeds.
func TestQueueFullBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.QueueSize = 1
	cfg.MaxBatch = 2
	cfg.MaxWait = 50 * time.Millisecond
	cfg.CacheSize = 0
	_, ts := newTestServer(t, cfg, 5)

	clips := testClips(32, 53)
	saw429 := false
	for round := 0; round < 5 && !saw429; round++ {
		var wg sync.WaitGroup
		status := make([]int, len(clips))
		for i := range clips {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clips[i]))
				status[i] = resp.StatusCode
			}(i)
		}
		wg.Wait()
		for i, st := range status {
			switch st {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				saw429 = true
			default:
				t.Fatalf("clip %d: unexpected status %d", i, st)
			}
		}
	}
	if !saw429 {
		t.Fatal("no 429 from a 32-client burst against a 1-slot queue in 5 rounds")
	}
}

// TestShutdownMidTraffic: closing the server while clients are in flight
// answers every request with 200 or 503 — never a hang, never a lost
// reply — and flips readyz to 503.
func TestShutdownMidTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 8
	cfg.MaxWait = 5 * time.Millisecond
	cfg.CacheSize = 0
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadNetwork(testNet(t, 5), "test"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	clips := testClips(24, 61)
	var wg sync.WaitGroup
	status := make([]int, len(clips))
	for i := range clips {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clips[i]))
			status[i] = resp.StatusCode
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some requests get in flight
	srv.Close()
	wg.Wait()
	for i, st := range status {
		if st != http.StatusOK && st != http.StatusServiceUnavailable {
			t.Fatalf("clip %d: status %d, want 200 or 503", i, st)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close: %d, want 503", resp.StatusCode)
	}
	resp2, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clips[0]))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict after Close: %d (%s), want 503", resp2.StatusCode, raw)
	}
}

// TestHealthReadyMetricsEndpoints covers the operability surface,
// including readiness before any model is loaded.
func TestHealthReadyMetricsEndpoints(t *testing.T) {
	cfg := testConfig()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}

	if st, body := get("/healthz"); st != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", st, body)
	}
	if st, body := get("/readyz"); st != http.StatusServiceUnavailable || !strings.Contains(body, "no model") {
		t.Fatalf("readyz without model: %d %q, want 503/no model", st, body)
	}
	// Predicting without a model is a 503, not a crash.
	resp, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(testClips(1, 3)[0]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict without model: %d (%s), want 503", resp.StatusCode, raw)
	}
	if err := srv.LoadNetwork(testNet(t, 5), "test"); err != nil {
		t.Fatal(err)
	}
	if st, _ := get("/readyz"); st != http.StatusOK {
		t.Fatalf("readyz with model: %d, want 200", st)
	}
	if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(testClips(1, 3)[0])); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with model: %d", resp.StatusCode)
	}
	st, body := get("/metrics")
	if st != http.StatusOK {
		t.Fatalf("metrics: %d", st)
	}
	for _, want := range []string{
		"serve_requests_total{endpoint=\"predict\",status=\"200\"}",
		"serve_cache_hit_rate",
		"serve_batch_size_total",
		"serve_stage_seconds{stage=\"extract\",q=\"p50\"}",
		"serve_stage_seconds{stage=\"infer\",q=\"p99\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestHotReload: /admin/reload atomically swaps checkpoints, clears the
// clip cache, serves the new weights, and leaves the old model serving
// when the new file is garbage.
func TestHotReload(t *testing.T) {
	cfg := testConfig()
	_, ts := newTestServer(t, cfg, 5)
	clip := testClips(1, 71)[0]

	// Serial references under both weight sets.
	wantOld := serialProbs(t, testNet(t, 5), []geom.Clip{clip}, cfg)[0]
	wantNew := serialProbs(t, testNet(t, 9), []geom.Clip{clip}, cfg)[0]
	if math.Float64bits(wantOld) == math.Float64bits(wantNew) {
		t.Fatal("test nets 5 and 9 agree on the probe clip; pick different seeds")
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "new.gob")
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := testNet(t, 9).Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, raw := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clip))
	before := decodePredict(t, raw)
	if math.Float64bits(before.Prob) != math.Float64bits(wantOld) {
		t.Fatalf("pre-reload prob %v != serial %v", before.Prob, wantOld)
	}

	resp, raw := postJSON(t, ts.Client(), ts.URL+"/admin/reload", map[string]string{"path": ckpt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d (%s)", resp.StatusCode, raw)
	}
	var info serve.ModelInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || info.Origin != ckpt {
		t.Fatalf("reload info %+v, want generation 2 from %s", info, ckpt)
	}

	_, raw = postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clip))
	after := decodePredict(t, raw)
	if after.Cached {
		t.Fatal("cache survived a model reload")
	}
	if math.Float64bits(after.Prob) != math.Float64bits(wantNew) {
		t.Fatalf("post-reload prob %v != serial %v", after.Prob, wantNew)
	}

	// A garbage checkpoint must be rejected and leave the new model up.
	garbage := filepath.Join(dir, "garbage.gob")
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, ts.Client(), ts.URL+"/admin/reload", map[string]string{"path": garbage})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "not a network checkpoint") {
		t.Fatalf("garbage reload: %d (%s), want 400/bad magic", resp.StatusCode, raw)
	}
	_, raw = postJSON(t, ts.Client(), ts.URL+"/v1/predict", clipRequest(clip))
	still := decodePredict(t, raw)
	if math.Float64bits(still.Prob) != math.Float64bits(wantNew) {
		t.Fatal("failed reload disturbed the serving model")
	}
}

// TestRequestValidation: malformed requests come back as 400s with JSON
// errors, not 500s.
func TestRequestValidation(t *testing.T) {
	cfg := testConfig()
	_, ts := newTestServer(t, cfg, 5)
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"not json", `{{{`},
		{"no frame", `{"rects":[{"x0":0,"y0":0,"x1":10,"y1":10}]}`},
		{"empty frame", `{"frame":{"x0":0,"y0":0,"x1":0,"y1":0}}`},
		{"core outside frame", `{"frame":{"x0":0,"y0":0,"x1":480,"y1":480},"core":{"x0":400,"y0":400,"x1":592,"y1":592}}`},
		{"non-square core", `{"frame":{"x0":0,"y0":0,"x1":480,"y1":480},"core":{"x0":0,"y0":0,"x1":192,"y1":96}}`},
		{"indivisible core", `{"frame":{"x0":0,"y0":0,"x1":480,"y1":480},"core":{"x0":0,"y0":0,"x1":100,"y1":100}}`},
		{"bitmap size mismatch", `{"bitmap":{"w":48,"h":48,"pix":[0,1]}}`},
		{"bitmap not square", `{"bitmap":{"w":48,"h":32,"pix":[]}}`},
		{"bitmap plus geometry", `{"frame":{"x0":0,"y0":0,"x1":480,"y1":480},"bitmap":{"w":48,"h":48,"pix":[]}}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, b.String())
		}
	}
	// Batch-level validation.
	for _, body := range []string{`{}`, `{"clips":[]}`} {
		resp, err := ts.Client().Post(ts.URL+"/v1/predict/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}
