// Package serve is the online half of the system: a long-running HTTP
// inference service answering "is this clip a hotspot?" queries with the
// paper's pipeline (feature tensor §3 → Table 1 CNN §4.1).
//
// Per-clip inference is a pure function, so the serving layer wins its
// throughput at the batching layer: concurrent single-clip requests are
// coalesced by a micro-batcher (flush on max batch size or max wait
// deadline) and run through the shared worker pool as one extraction
// fan-out plus one batched forward pass — with responses bit-identical to
// one-at-a-time serial inference, because batching only regroups pure
// per-item work (see batcher.go and the parity test). A bounded LRU keyed
// by a hash of the rasterized clip lets repeated clips skip the DCT and
// the CNN entirely, and a bounded queue turns overload into explicit 429
// backpressure instead of latency collapse.
//
// Endpoints: POST /v1/predict and /v1/predict/batch (clips as JSON
// rectangles or a raw rasterized bitmap), GET /healthz, GET /readyz,
// GET /metrics (plain-text counters: requests, cache hit rate, batch-size
// histogram, per-stage latency), and POST /admin/reload, which atomically
// swaps in a new checkpoint without dropping a request.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/obs"
	"hotspot/internal/obs/trace"
	"hotspot/internal/parallel"
	"hotspot/internal/raster"
	"hotspot/internal/train"
)

// Config parameterizes the inference service.
type Config struct {
	// Feature is the feature tensor configuration; it must match the
	// served network's input shape (checked at model load).
	Feature feature.TensorConfig
	// CoreSide is the default clip-core side in nanometres; a request
	// that does not name an explicit core is scored on a CoreSide square
	// centered in its frame.
	CoreSide int
	// MaxBatch is the micro-batcher's flush size.
	MaxBatch int
	// MaxWait is how long a batch waits for company before flushing.
	MaxWait time.Duration
	// QueueSize bounds the pending-request queue; a full queue fails
	// fast with HTTP 429.
	QueueSize int
	// CacheSize bounds the clip-dedup LRU (entries); 0 disables it.
	CacheSize int
	// Workers bounds the goroutines for extraction and inference
	// (0 = parallel.Default()). Pure throughput knob.
	Workers int
	// Shift is the decision-boundary shift λ of Equation (11), applied
	// to the hotspot verdict (probabilities are reported unshifted).
	Shift float64
	// RequestTimeout bounds how long a request waits for its prediction.
	RequestTimeout time.Duration
	// Trace, when non-nil, lights request tracing: every predict request
	// records a span tree into an in-memory flight recorder (see
	// internal/obs/trace) and GET /debug/trace is mounted by DebugHandler.
	// Nil (the default) is dark: zero allocations on the serving hot path
	// and no trace endpoint. Tracing is observation-only — served
	// probabilities are bit-identical lit or dark (parity-tested).
	Trace *trace.Config
}

// DefaultConfig serves the paper-shaped model: 1200 nm cores into
// 12×12×32 tensors, 32-clip/2ms micro-batches, a 4096-clip cache.
func DefaultConfig() Config {
	return Config{
		Feature:        feature.DefaultTensorConfig(),
		CoreSide:       1200,
		MaxBatch:       32,
		MaxWait:        2 * time.Millisecond,
		QueueSize:      256,
		CacheSize:      4096,
		RequestTimeout: 5 * time.Second,
	}
}

// Validate cross-checks the configuration.
func (c Config) Validate() error {
	if err := c.Feature.Validate(); err != nil {
		return err
	}
	if err := c.Feature.ValidateCore(c.CoreSide); err != nil {
		return fmt.Errorf("serve: default core side %d nm: %w", c.CoreSide, err)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serve: MaxBatch must be >= 1, got %d", c.MaxBatch)
	}
	if c.MaxBatch > 1 && c.MaxWait <= 0 {
		return fmt.Errorf("serve: MaxWait must be positive when batching (MaxBatch=%d)", c.MaxBatch)
	}
	if c.QueueSize < 1 {
		return fmt.Errorf("serve: QueueSize must be >= 1, got %d", c.QueueSize)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("serve: CacheSize must be >= 0, got %d", c.CacheSize)
	}
	if c.RequestTimeout <= 0 {
		return fmt.Errorf("serve: RequestTimeout must be positive, got %v", c.RequestTimeout)
	}
	return nil
}

// Server is the inference service. Build one with New, install a model
// with LoadNetwork or LoadCheckpoint, and mount it anywhere an
// http.Handler goes. Close drains in-flight batches; requests arriving
// afterwards get 503s.
type Server struct {
	cfg     Config
	model   atomic.Pointer[model]
	cache   *clipCache
	metrics *metrics
	batcher *batcher
	tracer  *trace.Tracer // nil when tracing is dark
	mux     *http.ServeMux
	closed  atomic.Bool

	// reloadMu serializes model swaps; lastPath remembers the most
	// recent checkpoint path for path-less /admin/reload requests.
	reloadMu sync.Mutex
	lastPath string
}

// New validates the configuration and starts the (model-less) service;
// readyz stays 503 until a model is loaded.
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cache: newClipCache(cfg.CacheSize),
	}
	if cfg.Trace != nil {
		s.tracer = trace.New(*cfg.Trace)
	}
	s.metrics = newMetrics(s.cache.len)
	s.batcher = newBatcher(s, cfg.QueueSize, cfg.MaxBatch, cfg.MaxWait, parallel.New(cfg.Workers))
	s.batcher.start()
	mux := http.NewServeMux()
	mux.Handle("POST /v1/predict", s.instrument("predict", s.handlePredict))
	mux.Handle("POST /v1/predict/batch", s.instrument("predict_batch", s.handlePredictBatch))
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.Handle("POST /admin/reload", s.instrument("reload", s.handleReload))
	s.mux = mux
	return s, nil
}

// ServeHTTP dispatches to the service's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops accepting predictions and drains every in-flight and queued
// request. Safe to call more than once; HTTP shutdown (http.Server
// .Shutdown) should run first so handlers are not mid-enqueue.
func (s *Server) Close() {
	s.closed.Store(true)
	s.batcher.Close()
}

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() MetricsSnapshot { return s.metrics.snapshot() }

// Registry returns the server's metrics registry (each server owns a
// private one), for debug endpoints and programmatic scrapes.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// Tracer returns the server's request tracer, or nil when tracing is
// dark (Config.Trace unset).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// CenteredCore returns the side×side core window centered in frame (the
// default scoring window when a request names no explicit core).
func CenteredCore(frame geom.Rect, side int) geom.Rect {
	x0 := frame.X0 + (frame.W()-side)/2
	y0 := frame.Y0 + (frame.H()-side)/2
	return geom.R(x0, y0, x0+side, y0+side)
}

// --- wire types ---

// RectJSON is an axis-aligned rectangle in nanometres (x0,y0 inclusive,
// x1,y1 exclusive), the wire form of geom.Rect.
type RectJSON struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

func (r RectJSON) rect() geom.Rect { return geom.R(r.X0, r.Y0, r.X1, r.Y1) }

// BitmapJSON is a pre-rasterized core window: a row-major W×H grid of
// pixel coverage values in [0, 1] at the server's configured resolution.
// The side must be square and divide evenly into the configured DCT
// blocks.
type BitmapJSON struct {
	W   int       `json:"w"`
	H   int       `json:"h"`
	Pix []float64 `json:"pix"`
}

// ClipRequest is one clip to score: either drawn geometry (Frame plus
// Rects, with an optional explicit Core window) or a raw Bitmap of the
// core.
type ClipRequest struct {
	Frame  *RectJSON   `json:"frame,omitempty"`
	Rects  []RectJSON  `json:"rects,omitempty"`
	Core   *RectJSON   `json:"core,omitempty"`
	Bitmap *BitmapJSON `json:"bitmap,omitempty"`
}

// PredictResponse is one clip's verdict.
type PredictResponse struct {
	// Prob is the hotspot probability y(1).
	Prob float64 `json:"prob"`
	// Hotspot applies the (shifted) decision rule to Prob.
	Hotspot bool `json:"hotspot"`
	// Cached reports whether the clip-dedup cache answered.
	Cached bool `json:"cached"`
}

// BatchRequest scores several clips in one HTTP round trip.
type BatchRequest struct {
	Clips []ClipRequest `json:"clips"`
}

// BatchResponse carries one result per request clip, in order.
type BatchResponse struct {
	Results []PredictResponse `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; a 300×300 float64 bitmap in JSON is
// well under 8 MB.
const maxBodyBytes = 8 << 20

// maxBatchClips bounds one /v1/predict/batch request.
const maxBatchClips = 1024

// --- request pipeline ---

// coreImage turns a request clip into the rasterized core window the
// pipeline operates on, mirroring feature.ExtractTensor's geometry exactly
// (rasterize the full clip, crop the core) so served predictions are
// bit-identical to offline ones.
func (s *Server) coreImage(cr ClipRequest) (*raster.Image, error) {
	cfg := s.cfg.Feature
	if cr.Bitmap != nil {
		bm := cr.Bitmap
		if cr.Frame != nil || len(cr.Rects) > 0 || cr.Core != nil {
			return nil, fmt.Errorf("clip has both bitmap and geometry; send one")
		}
		if bm.W <= 0 || bm.W != bm.H {
			return nil, fmt.Errorf("bitmap %dx%d must be square and non-empty", bm.W, bm.H)
		}
		if len(bm.Pix) != bm.W*bm.H {
			return nil, fmt.Errorf("bitmap has %d pixels, want %d", len(bm.Pix), bm.W*bm.H)
		}
		if err := cfg.ValidateCore(bm.W * cfg.ResNM); err != nil {
			return nil, err
		}
		im := raster.NewImage(bm.W, bm.H)
		copy(im.Pix, bm.Pix)
		return im, nil
	}
	if cr.Frame == nil {
		return nil, fmt.Errorf("clip needs a frame (or a bitmap)")
	}
	frame := cr.Frame.rect()
	if frame.Empty() {
		return nil, fmt.Errorf("frame %+v is empty", *cr.Frame)
	}
	rects := make([]geom.Rect, len(cr.Rects))
	for i, r := range cr.Rects {
		rects[i] = r.rect()
	}
	clip := geom.NewClip(frame, rects)
	core := CenteredCore(frame, s.cfg.CoreSide)
	if cr.Core != nil {
		core = cr.Core.rect()
	}
	if core.W() != core.H() || core.Empty() {
		return nil, fmt.Errorf("core %+v must be square and non-empty", core)
	}
	if !frame.ContainsRect(core) {
		return nil, fmt.Errorf("core %+v outside clip frame %+v", core, frame)
	}
	if err := cfg.ValidateCore(core.W()); err != nil {
		return nil, err
	}
	return feature.ExtractCoreImage(clip, core, cfg)
}

// predictOne resolves one core image to a verdict: cache lookup, then
// enqueue and wait for the micro-batcher. qparent, when tracing is lit,
// is the span the request's queue wait is recorded under (the trace root
// for single predicts, the per-clip span for batch requests); nil spans
// no-op.
func (s *Server) predictOne(ctx context.Context, im *raster.Image, qparent *trace.Span) (PredictResponse, error) {
	key := hashImage(im)
	if p, ok := s.cache.get(key); ok {
		s.metrics.cache(true)
		qparent.SetBool("cache_hit", true)
		return PredictResponse{Prob: p, Hotspot: train.Decide(p, s.cfg.Shift), Cached: true}, nil
	}
	s.metrics.cache(false)
	qparent.SetBool("cache_hit", false)
	req := &request{im: im, key: key, resp: make(chan result, 1), qspan: qparent.Child("queue")}
	if err := s.batcher.enqueue(req); err != nil {
		req.qspan.EndWith(0) // never reached the queue
		return PredictResponse{}, err
	}
	select {
	case res := <-req.resp:
		if res.err != nil {
			return PredictResponse{}, res.err
		}
		return PredictResponse{Prob: res.prob, Hotspot: train.Decide(res.prob, s.cfg.Shift)}, nil
	case <-ctx.Done():
		return PredictResponse{}, ctx.Err()
	}
}

// statusOf maps pipeline errors to HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrNoModel):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// --- handlers ---

// failTrace closes a request trace on an error path: outcome recorded,
// duration from the handler's own stopwatch. Nil-safe (dark tracing).
func failTrace(tr *trace.Trace, watch obs.Stopwatch, status int, msg string) {
	if tr == nil {
		return
	}
	tr.SetStatus(status)
	tr.SetError(msg)
	tr.FinishWith(watch.Elapsed())
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	watch := obs.NewStopwatch()
	tr := s.tracer.Start("predict")
	dec := tr.StartSpan("decode")
	var cr ClipRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&cr); err != nil {
		msg := "bad request body: " + err.Error()
		failTrace(tr, watch, http.StatusBadRequest, msg)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
		return
	}
	im, err := s.coreImage(cr)
	dec.End()
	if err != nil {
		failTrace(tr, watch, http.StatusBadRequest, err.Error())
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	resp, err := s.predictOne(ctx, im, tr.Root())
	if err != nil {
		failTrace(tr, watch, statusOf(err), err.Error())
		writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
		return
	}
	d := watch.Elapsed()
	s.metrics.stageExemplar(stageRequest, d, tr.ID())
	tr.SetStatus(http.StatusOK)
	tr.FinishWith(d)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	watch := obs.NewStopwatch()
	tr := s.tracer.Start("predict_batch")
	dec := tr.StartSpan("decode")
	var br BatchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&br); err != nil {
		msg := "bad request body: " + err.Error()
		failTrace(tr, watch, http.StatusBadRequest, msg)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
		return
	}
	if len(br.Clips) == 0 {
		failTrace(tr, watch, http.StatusBadRequest, "no clips")
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no clips"})
		return
	}
	if len(br.Clips) > maxBatchClips {
		msg := fmt.Sprintf("%d clips exceeds the %d-clip limit", len(br.Clips), maxBatchClips)
		failTrace(tr, watch, http.StatusBadRequest, msg)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
		return
	}
	tr.SetInt("clips", int64(len(br.Clips)))
	ims := make([]*raster.Image, len(br.Clips))
	for i, cr := range br.Clips {
		im, err := s.coreImage(cr)
		if err != nil {
			msg := fmt.Sprintf("clip %d: %v", i, err)
			failTrace(tr, watch, http.StatusBadRequest, msg)
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
			return
		}
		ims[i] = im
	}
	dec.End()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Resolve cache hits and enqueue the misses before waiting on any of
	// them, so one batch request can fill whole micro-batches.
	results := make([]PredictResponse, len(ims))
	type pending struct {
		i    int
		req  *request
		span *trace.Span
	}
	var waits []pending
	hits := 0
	for i, im := range ims {
		key := hashImage(im)
		if p, ok := s.cache.get(key); ok {
			s.metrics.cache(true)
			hits++
			results[i] = PredictResponse{Prob: p, Hotspot: train.Decide(p, s.cfg.Shift), Cached: true}
			continue
		}
		s.metrics.cache(false)
		csp := tr.StartSpan("clip")
		csp.SetInt("index", int64(i))
		csp.SetBool("cache_hit", false)
		req := &request{im: im, key: key, resp: make(chan result, 1), qspan: csp.Child("queue")}
		if err := s.batcher.enqueue(req); err != nil {
			req.qspan.EndWith(0) // never reached the queue
			csp.End()
			msg := fmt.Sprintf("clip %d: %v", i, err)
			failTrace(tr, watch, statusOf(err), msg)
			writeJSON(w, statusOf(err), errorResponse{Error: msg})
			return
		}
		waits = append(waits, pending{i: i, req: req, span: csp})
	}
	tr.SetInt("cache_hits", int64(hits))
	for _, p := range waits {
		select {
		case res := <-p.req.resp:
			p.span.End()
			if res.err != nil {
				msg := fmt.Sprintf("clip %d: %v", p.i, res.err)
				failTrace(tr, watch, statusOf(res.err), msg)
				writeJSON(w, statusOf(res.err), errorResponse{Error: msg})
				return
			}
			results[p.i] = PredictResponse{Prob: res.prob, Hotspot: train.Decide(res.prob, s.cfg.Shift)}
		case <-ctx.Done():
			p.span.End()
			failTrace(tr, watch, statusOf(ctx.Err()), ctx.Err().Error())
			writeJSON(w, statusOf(ctx.Err()), errorResponse{Error: ctx.Err().Error()})
			return
		}
	}
	d := watch.Elapsed()
	s.metrics.stageExemplar(stageRequest, d, tr.ID())
	tr.SetStatus(http.StatusOK)
	tr.FinishWith(d)
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.closed.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "shutting down\n")
	case s.model.Load() == nil:
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "no model loaded\n")
	default:
		_, _ = io.WriteString(w, "ready\n")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.metrics.reg.WriteText(w)
}

// reloadRequest is the /admin/reload body; an empty path re-reads the
// checkpoint the server last loaded from disk.
type reloadRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var rr reloadRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&rr); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	path := rr.Path
	if path == "" {
		s.reloadMu.Lock()
		path = s.lastPath
		s.reloadMu.Unlock()
	}
	if path == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no checkpoint path: none given and none loaded before"})
		return
	}
	if err := s.LoadCheckpoint(path); err != nil {
		// The old model keeps serving; reload is all-or-nothing.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	info, _ := s.Model()
	writeJSON(w, http.StatusOK, info)
}

// --- plumbing ---

// statusRecorder captures the handler's status code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request counting.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.metrics.request(endpoint, rec.status)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf)
}
