package serve

import (
	"strconv"
	"time"

	"hotspot/internal/obs"
)

// stage names for per-stage latency tracking. "extract" and "infer" are
// the two compute stages of a flushed batch, "batch" is a whole flush
// (dequeue to replies), "queue" is a request's wait between enqueue and
// its batch starting, and "request" is a predict request's wall time
// inside the handler (queue wait included, JSON codec excluded).
const (
	stageExtract = "extract"
	stageInfer   = "infer"
	stageBatch   = "batch"
	stageQueue   = "queue"
	stageRequest = "request"
)

// metrics adapts the server's instrumentation points onto an obs.Registry.
// Each server owns a private registry (tests boot several servers in one
// process), with the stage metric renamed to serve_stage_seconds so the
// scrape keeps the series names the service has always exposed. The
// sliding-window quantile summaries replace the serve-private ring buffers
// the package used before internal/obs existed — and fix their truncation
// quantile bias (obs.Summary uses ceiling nearest-rank).
type metrics struct {
	reg      *obs.Registry
	hits     *obs.Counter
	misses   *obs.Counter
	batches  *obs.IntHist
	cacheLen func() int

	// buildLabels remembers the label set of the current hsd_build_info
	// series so a model swap can zero the superseded generation's series
	// before registering the new one. Guarded by the server's reloadMu
	// (buildInfo is only called from LoadNetwork).
	buildLabels []obs.Label
}

func newMetrics(cacheLen func() int) *metrics {
	reg := obs.NewRegistry()
	reg.SetStageMetric("serve_stage_seconds")
	m := &metrics{
		reg:      reg,
		hits:     reg.Counter("serve_cache_hits_total"),
		misses:   reg.Counter("serve_cache_misses_total"),
		batches:  reg.IntHist("serve_batch_size_total", "size"),
		cacheLen: cacheLen,
	}
	reg.GaugeFunc("serve_cache_hit_rate", 6, func() float64 {
		return hitRate(m.hits.Value(), m.misses.Value())
	})
	reg.GaugeFunc("serve_cache_entries", -1, func() float64 {
		return float64(cacheLen())
	})
	// Pre-create the stage series so every scrape lists the full stage
	// taxonomy, observed or not (as the old fixed ring set did).
	for _, s := range []string{stageExtract, stageInfer, stageBatch, stageQueue, stageRequest} {
		reg.Stage(s)
	}
	return m
}

func hitRate(hits, misses int64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

func (m *metrics) request(endpoint string, status int) {
	m.reg.Counter("serve_requests_total",
		obs.L("endpoint", endpoint), obs.L("status", strconv.Itoa(status))).Inc()
}

func (m *metrics) cache(hit bool) {
	if hit {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
}

func (m *metrics) batch(size int) { m.batches.Observe(size) }

func (m *metrics) stage(name string, d time.Duration) {
	m.reg.Stage(name).ObserveDuration(d)
}

// stageExemplar records a stage latency tagged with the request's trace
// ID, so the scrape's q="max" exemplar line links the slowest windowed
// request into GET /debug/trace. An empty ID (tracing dark) records a
// plain observation.
func (m *metrics) stageExemplar(name string, d time.Duration, traceID string) {
	s := m.reg.Stage(name)
	if traceID == "" {
		s.ObserveDuration(d)
		return
	}
	s.ObserveExemplar(d.Seconds(), traceID)
}

// buildInfo (re)registers the hsd_build_info gauge for a freshly
// installed model generation: binary identity labels plus the model
// generation and fused-engine flag. Called under the server's reloadMu.
func (m *metrics) buildInfo(generation int, fused bool) {
	if m.buildLabels != nil {
		m.reg.Gauge(obs.BuildInfoMetric, -1, m.buildLabels...).Set(0)
	}
	labels := obs.BuildLabels(
		obs.L("model_generation", strconv.Itoa(generation)),
		obs.L("fused", strconv.FormatBool(fused)))
	m.reg.Gauge(obs.BuildInfoMetric, -1, labels...).Set(1)
	m.buildLabels = labels
}

// StageStats summarizes one pipeline stage's latency.
type StageStats struct {
	// Count is the total number of observations since startup.
	Count int64
	// P50 and P99 are quantiles in seconds over the most recent
	// observations (a sliding window of obs.DefaultWindow samples).
	P50, P99 float64
}

// MetricsSnapshot is a point-in-time copy of every counter, exposed for
// tests and programmatic scraping. The /metrics endpoint renders the same
// registry as text.
type MetricsSnapshot struct {
	// Requests counts finished HTTP requests by endpoint and status code.
	Requests map[string]map[int]int64
	// CacheHits and CacheMisses count predict-pipeline cache lookups.
	CacheHits, CacheMisses int64
	// CacheLen is the current number of cached clips.
	CacheLen int
	// BatchSizes histograms flushed micro-batches by exact size.
	BatchSizes map[int]int64
	// Stages maps stage name (extract, infer, batch, queue, request) to
	// latency stats.
	Stages map[string]StageStats
}

// HitRate returns the cache hit fraction (0 when no lookups happened).
func (s MetricsSnapshot) HitRate() float64 { return hitRate(s.CacheHits, s.CacheMisses) }

func (m *metrics) snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Requests:    make(map[string]map[int]int64),
		CacheHits:   m.hits.Value(),
		CacheMisses: m.misses.Value(),
		CacheLen:    m.cacheLen(),
		BatchSizes:  m.batches.Counts(),
		Stages:      make(map[string]StageStats),
	}
	for _, s := range m.reg.Snapshot("serve_requests_total") {
		code, err := strconv.Atoi(s.Label("status"))
		if err != nil {
			continue
		}
		ep := s.Label("endpoint")
		byStatus, ok := snap.Requests[ep]
		if !ok {
			byStatus = make(map[int]int64)
			snap.Requests[ep] = byStatus
		}
		byStatus[code] = int64(s.Value)
	}
	for _, s := range m.reg.Snapshot("serve_stage_seconds") {
		snap.Stages[s.Label("stage")] = StageStats{Count: s.Count, P50: s.P50, P99: s.P99}
	}
	return snap
}
