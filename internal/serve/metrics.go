package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// stage names for per-stage latency tracking. "extract" and "infer" are
// the two compute stages of a flushed batch, "batch" is a whole flush
// (dequeue to replies), and "request" is a predict request's wall time
// inside the handler (queue wait included, JSON codec excluded).
const (
	stageExtract = "extract"
	stageInfer   = "infer"
	stageBatch   = "batch"
	stageRequest = "request"
)

// windowSize is the per-stage sliding window backing the p50/p99
// estimates: quantiles are computed over the most recent windowSize
// observations at scrape time.
const windowSize = 1024

// ring is a fixed-capacity overwrite-oldest buffer of latency samples in
// seconds.
type ring struct {
	buf  []float64
	n    int // live samples, <= len(buf)
	next int
}

func newRing() *ring { return &ring{buf: make([]float64, windowSize)} }

func (r *ring) record(v float64) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// quantile returns the p-quantile (0 <= p <= 1) of the live window by
// nearest-rank over a sorted copy; 0 when empty. Sorting at scrape time
// keeps the record path O(1).
func (r *ring) quantile(p float64, scratch []float64) float64 {
	if r.n == 0 {
		return 0
	}
	s := append(scratch[:0], r.buf[:r.n]...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// metrics is the server's counter registry. Everything is guarded by one
// mutex — the critical sections are a few map operations, invisible next
// to a rasterization or a CNN forward pass.
type metrics struct {
	mu         sync.Mutex
	requests   map[string]map[int]int64 // endpoint → HTTP status → count
	cacheHits  int64
	cacheMiss  int64
	batchSizes map[int]int64 // flushed batch size → count
	stages     map[string]*ring
	stageCount map[string]int64 // total observations per stage (window-independent)
	scratch    []float64        // quantile sort buffer, reused under mu
}

func newMetrics() *metrics {
	m := &metrics{
		requests:   make(map[string]map[int]int64),
		batchSizes: make(map[int]int64),
		stages:     make(map[string]*ring),
		stageCount: make(map[string]int64),
		scratch:    make([]float64, 0, windowSize),
	}
	for _, s := range []string{stageExtract, stageInfer, stageBatch, stageRequest} {
		m.stages[s] = newRing()
	}
	return m
}

func (m *metrics) request(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[endpoint]
	if !ok {
		byStatus = make(map[int]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
}

func (m *metrics) cache(hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMiss++
	}
}

func (m *metrics) batch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSizes[size]++
}

func (m *metrics) stage(name string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stages[name].record(d.Seconds())
	m.stageCount[name]++
}

// StageStats summarizes one pipeline stage's latency.
type StageStats struct {
	// Count is the total number of observations since startup.
	Count int64
	// P50 and P99 are quantiles in seconds over the most recent
	// observations (a sliding window of windowSize samples).
	P50, P99 float64
}

// MetricsSnapshot is a point-in-time copy of every counter, exposed for
// tests and programmatic scraping. The /metrics endpoint renders the same
// data as text.
type MetricsSnapshot struct {
	// Requests counts finished HTTP requests by endpoint and status code.
	Requests map[string]map[int]int64
	// CacheHits and CacheMisses count predict-pipeline cache lookups.
	CacheHits, CacheMisses int64
	// CacheLen is the current number of cached clips.
	CacheLen int
	// BatchSizes histograms flushed micro-batches by exact size.
	BatchSizes map[int]int64
	// Stages maps stage name (extract, infer, batch, request) to latency
	// stats.
	Stages map[string]StageStats
}

// HitRate returns the cache hit fraction (0 when no lookups happened).
func (s MetricsSnapshot) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (m *metrics) snapshot(cacheLen int) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Requests:    make(map[string]map[int]int64, len(m.requests)),
		CacheHits:   m.cacheHits,
		CacheMisses: m.cacheMiss,
		CacheLen:    cacheLen,
		BatchSizes:  make(map[int]int64, len(m.batchSizes)),
		Stages:      make(map[string]StageStats, len(m.stages)),
	}
	for ep, byStatus := range m.requests {
		cp := make(map[int]int64, len(byStatus))
		for code, n := range byStatus {
			cp[code] = n
		}
		snap.Requests[ep] = cp
	}
	for size, n := range m.batchSizes {
		snap.BatchSizes[size] = n
	}
	for name, r := range m.stages {
		snap.Stages[name] = StageStats{
			Count: m.stageCount[name],
			P50:   r.quantile(0.50, m.scratch),
			P99:   r.quantile(0.99, m.scratch),
		}
	}
	return snap
}

// renderText writes the snapshot in a flat, Prometheus-flavoured text
// form. Map keys are emitted in sorted order so scrapes are deterministic.
func (s MetricsSnapshot) renderText(b *strings.Builder) {
	endpoints := make([]string, 0, len(s.Requests))
	for ep := range s.Requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(s.Requests[ep]))
		for code := range s.Requests[ep] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(b, "serve_requests_total{endpoint=%q,status=\"%d\"} %d\n", ep, code, s.Requests[ep][code])
		}
	}
	fmt.Fprintf(b, "serve_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintf(b, "serve_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintf(b, "serve_cache_hit_rate %.6f\n", s.HitRate())
	fmt.Fprintf(b, "serve_cache_entries %d\n", s.CacheLen)
	sizes := make([]int, 0, len(s.BatchSizes))
	for size := range s.BatchSizes {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	for _, size := range sizes {
		fmt.Fprintf(b, "serve_batch_size_total{size=\"%d\"} %d\n", size, s.BatchSizes[size])
	}
	stages := make([]string, 0, len(s.Stages))
	for name := range s.Stages {
		stages = append(stages, name)
	}
	sort.Strings(stages)
	for _, name := range stages {
		st := s.Stages[name]
		fmt.Fprintf(b, "serve_stage_seconds_count{stage=%q} %d\n", name, st.Count)
		fmt.Fprintf(b, "serve_stage_seconds{stage=%q,q=\"p50\"} %.9f\n", name, st.P50)
		fmt.Fprintf(b, "serve_stage_seconds{stage=%q,q=\"p99\"} %.9f\n", name, st.P99)
	}
}
