package serve_test

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hotspot/internal/obs/trace"
	"hotspot/internal/serve"
)

// traceConfig is testConfig with request tracing lit.
func traceConfig() serve.Config {
	cfg := testConfig()
	cfg.Trace = &trace.Config{Seed: 11}
	return cfg
}

// TestServeTraceParity is the serving half of the instrumentation-parity
// contract: a traced server and a dark server with the same weights
// return bit-identical probabilities for the same clips.
func TestServeTraceParity(t *testing.T) {
	_, darkTS := newTestServer(t, testConfig(), 41)
	_, litTS := newTestServer(t, traceConfig(), 41)
	clips := testClips(24, 17)
	for i, c := range clips {
		respD, rawD := postJSON(t, darkTS.Client(), darkTS.URL+"/v1/predict", clipRequest(c))
		respL, rawL := postJSON(t, litTS.Client(), litTS.URL+"/v1/predict", clipRequest(c))
		if respD.StatusCode != http.StatusOK || respL.StatusCode != http.StatusOK {
			t.Fatalf("clip %d: status dark=%d lit=%d", i, respD.StatusCode, respL.StatusCode)
		}
		pd, pl := decodePredict(t, rawD), decodePredict(t, rawL)
		if math.Float64bits(pd.Prob) != math.Float64bits(pl.Prob) || pd.Hotspot != pl.Hotspot {
			t.Fatalf("clip %d: traced prob %v != dark prob %v", i, pl.Prob, pd.Prob)
		}
	}
}

// TestRequestTraceTree drives one miss and one hit through a traced
// server and checks the recorded shapes: the predict trace carries
// decode and queue spans, the queue span names its batch, the batch
// trace names the member request back, and the cached repeat is marked
// cache_hit with no queue wait.
func TestRequestTraceTree(t *testing.T) {
	srv, ts := newTestServer(t, traceConfig(), 41)
	clip := clipRequest(testClips(1, 3)[0])
	for i := 0; i < 2; i++ { // second request answers from the clip cache
		if resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/predict", clip); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	// The batch trace is finished by the flush loop after replies go out,
	// so it can trail the HTTP response by a moment: poll for it.
	var missT, hitT, batchT *trace.TraceJSON
	for attempt := 0; attempt < 200 && batchT == nil; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Millisecond)
		}
		snap := srv.Tracer().Snapshot()
		missT, hitT, batchT = nil, nil, nil
		for i := range snap {
			x := snap[i]
			switch {
			case x.Name == "batch":
				batchT = &snap[i]
			case x.Name == "predict" && x.Attrs["cache_hit"] == true:
				hitT = &snap[i]
			case x.Name == "predict":
				missT = &snap[i]
			}
		}
	}
	if missT == nil || hitT == nil || batchT == nil {
		t.Fatalf("recorder missing traces: miss=%v hit=%v batch=%v", missT != nil, hitT != nil, batchT != nil)
	}
	if missT.Status != http.StatusOK || missT.Attrs["cache_hit"] != false {
		t.Fatalf("miss trace wrong: %+v", missT)
	}
	spans := map[string]trace.SpanJSON{}
	for _, sp := range missT.Spans {
		spans[sp.Name] = sp
	}
	q, ok := spans["queue"]
	if _, okDec := spans["decode"]; !ok || !okDec {
		t.Fatalf("miss trace spans missing decode/queue: %+v", missT.Spans)
	}
	batchID, _ := q.Attrs["batch_id"].(string)
	if batchID != batchT.TraceID {
		t.Fatalf("queue batch_id %q does not name the batch trace %q", batchID, batchT.TraceID)
	}
	// Reverse linkage: the batch names its member request.
	if got := batchT.Attrs["member_0"]; got != missT.TraceID {
		t.Fatalf("batch member_0 = %v, want %s", got, missT.TraceID)
	}
	if batchT.Attrs["size"] != int64(1) || batchT.Attrs["model_generation"] != int64(1) {
		t.Fatalf("batch attrs wrong: %v", batchT.Attrs)
	}
	bspans := map[string]bool{}
	for _, sp := range batchT.Spans {
		bspans[sp.Name] = true
	}
	if !bspans["extract"] || !bspans["infer"] {
		t.Fatalf("batch trace spans missing extract/infer: %+v", batchT.Spans)
	}
	// The cache hit never queued.
	for _, sp := range hitT.Spans {
		if sp.Name == "queue" {
			t.Fatalf("cache-hit trace grew a queue span: %+v", hitT.Spans)
		}
	}
}

// TestDebugTraceGating: /debug/trace is mounted exactly when tracing is
// lit — independent of the pprof debug switch — and 404s when dark.
func TestDebugTraceGating(t *testing.T) {
	dark, _ := newTestServer(t, testConfig(), 41)
	darkTS := httptest.NewServer(serve.DebugHandler(dark, false))
	defer darkTS.Close()
	if code, _ := getBody(t, darkTS.URL+"/debug/trace"); code != http.StatusNotFound {
		t.Fatalf("dark server /debug/trace = %d, want 404", code)
	}

	lit, litTS := newTestServer(t, traceConfig(), 41)
	postJSON(t, litTS.Client(), litTS.URL+"/v1/predict", clipRequest(testClips(1, 3)[0]))
	debugTS := httptest.NewServer(serve.DebugHandler(lit, false))
	defer debugTS.Close()
	if code, _ := getBody(t, debugTS.URL+"/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("tracing lit without -pprof exposed pprof: %d", code)
	}
	code, body := getBody(t, debugTS.URL+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("lit server /debug/trace = %d, want 200", code)
	}
	var dump trace.DumpJSON
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/debug/trace body does not parse: %v", err)
	}
	if dump.Recorded < 2 || len(dump.Traces) < 2 { // predict + its batch at minimum
		t.Fatalf("dump suspiciously empty: recorded=%d traces=%d", dump.Recorded, len(dump.Traces))
	}
	// The slowest request's trace ID surfaces as a /metrics exemplar.
	if code, metrics := getBody(t, litTS.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(metrics, `q="max",trace_id="`) {
		t.Fatalf("/metrics (%d) missing trace exemplar line:\n%s", code, metrics)
	}
}
