package boost

import (
	"fmt"
	"math"
)

// SmoothBoost is a smooth-boosting learner (MadaBoost-style): instance
// weights are exp(−margin) capped at 1, which bounds any single instance's
// influence and makes the learner robust to label noise — the property the
// ICCAD'16 detector relies on for its online flow. The model keeps its
// training buffer so it can be updated with newly arriving instances
// (PartialFit), re-boosting only the incremental rounds.
type SmoothBoost struct {
	Ensemble
	roundsPerFit int
	bufX         [][]float64
	bufY         []float64
}

// TrainSmoothBoost fits a smooth-boosting ensemble with the given number of
// rounds.
func TrainSmoothBoost(X [][]float64, y []bool, rounds int) (*SmoothBoost, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("boost: rounds must be positive, got %d", rounds)
	}
	sb := &SmoothBoost{roundsPerFit: rounds}
	pm := labelsToPM(y)
	sb.bufX = append(sb.bufX, X...)
	sb.bufY = append(sb.bufY, pm...)
	if err := sb.boost(rounds); err != nil {
		return nil, err
	}
	return sb, nil
}

// boost adds up to `rounds` stumps fitted on the current buffer with
// capped-exponential weights computed from the current ensemble margins.
func (sb *SmoothBoost) boost(rounds int) error {
	trainer, err := newStumpTrainer(sb.bufX, sb.bufY)
	if err != nil {
		return err
	}
	n := len(sb.bufX)
	margins := make([]float64, n)
	for i := range margins {
		margins[i] = sb.bufY[i] * sb.Score(sb.bufX[i])
	}
	classW := classBalancedWeights(sb.bufY)
	w := make([]float64, n)
	for r := 0; r < rounds; r++ {
		// Capped smooth weights: w_i = classW_i · min(1, exp(-margin_i)),
		// normalized; class balancing as in adaboost.go.
		sum := 0.0
		for i := range w {
			w[i] = math.Exp(-margins[i])
			if w[i] > 1 {
				w[i] = 1
			}
			w[i] *= classW[i] * float64(n)
			sum += w[i]
		}
		if sum == 0 {
			break
		}
		for i := range w {
			w[i] /= sum
		}
		stump, errW := trainer.best(w)
		if errW >= 0.5 {
			break
		}
		edge := 0.5 - errW
		// Smooth boosting uses a conservative, bounded vote proportional to
		// the edge rather than AdaBoost's log-odds.
		alpha := edge
		if errW < 1e-12 {
			alpha = 0.5
		}
		sb.Stumps = append(sb.Stumps, stump)
		sb.Alphas = append(sb.Alphas, alpha)
		for i := range margins {
			margins[i] += alpha * sb.bufY[i] * stump.Predict(sb.bufX[i])
		}
	}
	if len(sb.Stumps) == 0 {
		return fmt.Errorf("boost: no stump beat chance; features carry no signal")
	}
	return nil
}

// PartialFit appends newly arriving labelled instances to the training
// buffer and boosts additional rounds over the union — the online update
// mode of the ICCAD'16 flow (new lithography results folded into the
// detector without retraining from scratch).
func (sb *SmoothBoost) PartialFit(X [][]float64, y []bool, rounds int) error {
	if len(X) == 0 {
		return fmt.Errorf("boost: PartialFit with no instances")
	}
	if len(X) != len(y) {
		return fmt.Errorf("boost: PartialFit %d instances but %d labels", len(X), len(y))
	}
	if rounds <= 0 {
		rounds = sb.roundsPerFit / 4
		if rounds == 0 {
			rounds = 1
		}
	}
	sb.bufX = append(sb.bufX, X...)
	sb.bufY = append(sb.bufY, labelsToPM(y)...)
	return sb.boost(rounds)
}

// BufferSize returns the number of instances the model has absorbed.
func (sb *SmoothBoost) BufferSize() int { return len(sb.bufX) }
