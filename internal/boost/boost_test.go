package boost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStumpPredict(t *testing.T) {
	s := Stump{Feature: 1, Threshold: 0.5, Polarity: +1}
	if s.Predict([]float64{9, 0.6}) != 1 {
		t.Fatal("above threshold should be +1")
	}
	if s.Predict([]float64{9, 0.4}) != -1 {
		t.Fatal("below threshold should be -1")
	}
	neg := Stump{Feature: 0, Threshold: 0, Polarity: -1}
	if neg.Predict([]float64{1}) != -1 || neg.Predict([]float64{-1}) != 1 {
		t.Fatal("negative polarity inverted")
	}
}

// separableData builds a 2-D dataset where the label depends on feature 0
// with margin; feature 1 is noise.
func separableData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		label := rng.Intn(2) == 0
		f0 := rng.Float64()*0.8 + 0.1
		if label {
			f0 += 1.0
		}
		X[i] = []float64{f0, rng.NormFloat64()}
		y[i] = label
	}
	return X, y
}

// intervalData is not separable by one stump (the positive class is a
// band in feature 0) but a small stump ensemble represents it exactly.
func intervalData(n int, seed int64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := range X {
		f0 := rng.Float64()
		X[i] = []float64{f0, rng.NormFloat64()}
		y[i] = f0 > 0.35 && f0 < 0.75
	}
	return X, y
}

func accuracy(scoreFn func([]float64) bool, X [][]float64, y []bool) float64 {
	correct := 0
	for i := range X {
		if scoreFn(X[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func TestAdaBoostSeparable(t *testing.T) {
	X, y := separableData(200, 1)
	ens, err := TrainAdaBoost(X, y, 20)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(ens.Predict, X, y); acc < 0.99 {
		t.Fatalf("separable accuracy %.3f", acc)
	}
	// A separable problem should terminate early on a perfect stump.
	if ens.Rounds() > 3 {
		t.Fatalf("expected early stop, got %d rounds", ens.Rounds())
	}
}

func TestAdaBoostInterval(t *testing.T) {
	X, y := intervalData(400, 2)
	ens, err := TrainAdaBoost(X, y, 100)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(ens.Predict, X, y); acc < 0.95 {
		t.Fatalf("interval accuracy %.3f, want >= 0.95", acc)
	}
	if ens.Rounds() < 2 {
		t.Fatal("interval target needs more than one stump")
	}
}

func TestAdaBoostErrors(t *testing.T) {
	X, y := separableData(10, 3)
	if _, err := TrainAdaBoost(X, y, 0); err == nil {
		t.Fatal("expected rounds error")
	}
	if _, err := TrainAdaBoost(nil, nil, 5); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := TrainAdaBoost([][]float64{{1}, {2}}, []bool{true}, 5); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := TrainAdaBoost([][]float64{{1}, {2, 3}}, []bool{true, false}, 5); err == nil {
		t.Fatal("expected ragged error")
	}
	if _, err := TrainAdaBoost([][]float64{{}, {}}, []bool{true, false}, 5); err == nil {
		t.Fatal("expected zero-dim error")
	}
	// Pure-noise labels identical to features: constant feature has no
	// stump beating chance.
	Xc := [][]float64{{1}, {1}, {1}, {1}}
	yc := []bool{true, false, true, false}
	if _, err := TrainAdaBoost(Xc, yc, 5); err == nil {
		t.Fatal("expected no-signal error")
	}
}

func TestEnsembleProbMonotoneInScore(t *testing.T) {
	ens := &Ensemble{
		Stumps: []Stump{{Feature: 0, Threshold: 0, Polarity: 1}},
		Alphas: []float64{1.0},
	}
	pHigh := ens.Prob([]float64{1})
	pLow := ens.Prob([]float64{-1})
	if pHigh <= 0.5 || pLow >= 0.5 {
		t.Fatalf("prob link broken: %v, %v", pHigh, pLow)
	}
	if pHigh <= pLow {
		t.Fatal("prob not monotone in score")
	}
}

// Property: Prob is always in (0, 1) and Predict agrees with Prob > 0.5.
func TestProbPredictConsistency(t *testing.T) {
	X, y := intervalData(200, 4)
	ens, err := TrainAdaBoost(X, y, 40)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := []float64{r.Float64() * 2, r.Float64() * 2}
		p := ens.Prob(x)
		if p <= 0 || p >= 1 {
			return false
		}
		return ens.Predict(x) == (p > 0.5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSmoothBoostSeparable(t *testing.T) {
	X, y := separableData(200, 5)
	sb, err := TrainSmoothBoost(X, y, 30)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(sb.Predict, X, y); acc < 0.98 {
		t.Fatalf("smooth boost separable accuracy %.3f", acc)
	}
}

func TestSmoothBoostInterval(t *testing.T) {
	X, y := intervalData(400, 6)
	sb, err := TrainSmoothBoost(X, y, 150)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(sb.Predict, X, y); acc < 0.9 {
		t.Fatalf("smooth boost interval accuracy %.3f", acc)
	}
}

func TestSmoothBoostNoiseRobustness(t *testing.T) {
	// With 10% label noise, smooth boosting must still fit the clean
	// structure; capped weights prevent noisy points from dominating.
	X, y := separableData(300, 7)
	rng := rand.New(rand.NewSource(8))
	noisy := append([]bool(nil), y...)
	for i := range noisy {
		if rng.Float64() < 0.1 {
			noisy[i] = !noisy[i]
		}
	}
	sb, err := TrainSmoothBoost(X, noisy, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate against the CLEAN labels.
	if acc := accuracy(sb.Predict, X, y); acc < 0.9 {
		t.Fatalf("noise-robust accuracy %.3f", acc)
	}
}

func TestSmoothBoostPartialFit(t *testing.T) {
	X, y := separableData(100, 9)
	sb, err := TrainSmoothBoost(X[:50], y[:50], 20)
	if err != nil {
		t.Fatal(err)
	}
	before := sb.Rounds()
	if err := sb.PartialFit(X[50:], y[50:], 10); err != nil {
		t.Fatal(err)
	}
	if sb.BufferSize() != 100 {
		t.Fatalf("buffer size %d, want 100", sb.BufferSize())
	}
	if sb.Rounds() < before {
		t.Fatal("PartialFit dropped rounds")
	}
	if acc := accuracy(sb.Predict, X, y); acc < 0.95 {
		t.Fatalf("post-update accuracy %.3f", acc)
	}
}

func TestSmoothBoostPartialFitErrors(t *testing.T) {
	X, y := separableData(20, 10)
	sb, err := TrainSmoothBoost(X, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.PartialFit(nil, nil, 5); err == nil {
		t.Fatal("expected empty error")
	}
	if err := sb.PartialFit([][]float64{{1, 1}}, []bool{true, false}, 5); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestSmoothBoostWeightsAreCapped(t *testing.T) {
	// Indirect check via margins: alphas are bounded by 0.5 per round, so
	// the total score is bounded by rounds/2.
	X, y := intervalData(200, 11)
	sb, err := TrainSmoothBoost(X, y, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sb.Alphas {
		if a > 0.5+1e-12 || a <= 0 {
			t.Fatalf("smooth-boost alpha %v outside (0, 0.5]", a)
		}
	}
	maxScore := 0.0
	for i := range X {
		if s := math.Abs(sb.Score(X[i])); s > maxScore {
			maxScore = s
		}
	}
	if maxScore > float64(sb.Rounds())/2+1e-9 {
		t.Fatalf("score %v exceeds alpha budget", maxScore)
	}
}
