package boost

import (
	"fmt"
	"math"
)

// Ensemble is a weighted vote of decision stumps; both AdaBoost and smooth
// boosting produce one.
type Ensemble struct {
	Stumps []Stump
	Alphas []float64
}

// Score returns the signed ensemble margin Σ α_h · h(x).
func (e *Ensemble) Score(x []float64) float64 {
	s := 0.0
	for i, st := range e.Stumps {
		s += e.Alphas[i] * st.Predict(x)
	}
	return s
}

// Predict returns the boolean class (margin > 0).
func (e *Ensemble) Predict(x []float64) bool { return e.Score(x) > 0 }

// Prob squashes the margin to (0, 1) with a logistic link, giving a
// probability-like confidence used for threshold shifting in evaluations.
func (e *Ensemble) Prob(x []float64) float64 {
	return 1 / (1 + math.Exp(-2*e.Score(x)))
}

// Rounds returns the ensemble size.
func (e *Ensemble) Rounds() int { return len(e.Stumps) }

// classBalancedWeights gives each class half the total weight regardless of
// its count — the standard cost-sensitive initialization for hotspot data,
// where non-hotspots outnumber hotspots by an order of magnitude and plain
// 0/1-error boosting would otherwise collapse to the majority class.
func classBalancedWeights(pm []float64) []float64 {
	pos, neg := 0, 0
	for _, v := range pm {
		if v > 0 {
			pos++
		} else {
			neg++
		}
	}
	w := make([]float64, len(pm))
	for i, v := range pm {
		if v > 0 && pos > 0 {
			w[i] = 0.5 / float64(pos)
		} else if neg > 0 {
			w[i] = 0.5 / float64(neg)
		}
	}
	// One-class degenerate case: uniform.
	if pos == 0 || neg == 0 {
		for i := range w {
			w[i] = 1 / float64(len(pm))
		}
	}
	return w
}

// labelsToPM converts bool labels to ±1.
func labelsToPM(y []bool) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		if v {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// TrainAdaBoost runs discrete AdaBoost with decision stumps for the given
// number of rounds (the SPIE'15 baseline's learner). Training stops early
// when a stump achieves zero error (its vote would be unbounded) or no
// stump beats chance.
func TrainAdaBoost(X [][]float64, y []bool, rounds int) (*Ensemble, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("boost: rounds must be positive, got %d", rounds)
	}
	pm := labelsToPM(y)
	trainer, err := newStumpTrainer(X, pm)
	if err != nil {
		return nil, err
	}
	w := classBalancedWeights(pm)
	ens := &Ensemble{}
	for r := 0; r < rounds; r++ {
		stump, errW := trainer.best(w)
		if errW >= 0.5 {
			break // no stump beats chance on the current weighting
		}
		var alpha float64
		if errW < 1e-12 {
			// Perfect stump: cap its vote and stop — additional rounds
			// cannot improve the training margin.
			alpha = 12.0
			ens.Stumps = append(ens.Stumps, stump)
			ens.Alphas = append(ens.Alphas, alpha)
			break
		}
		alpha = 0.5 * math.Log((1-errW)/errW)
		ens.Stumps = append(ens.Stumps, stump)
		ens.Alphas = append(ens.Alphas, alpha)
		// Reweight and normalize.
		sum := 0.0
		for i := range w {
			w[i] *= math.Exp(-alpha * pm[i] * stump.Predict(X[i]))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	}
	if len(ens.Stumps) == 0 {
		return nil, fmt.Errorf("boost: no stump beat chance; features carry no signal")
	}
	return ens, nil
}
