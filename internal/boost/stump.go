// Package boost implements the shallow ensemble learners behind the two
// baselines the paper compares against: AdaBoost over decision stumps
// (the SPIE'15 detector [4]) and smooth boosting with capped instance
// weights plus online updates (the learner of the ICCAD'16 detector [5]).
package boost

import (
	"fmt"
	"sort"
)

// Stump is a one-feature threshold classifier: it predicts +1 when
// Polarity·(x[Feature] − Threshold) > 0, else −1.
type Stump struct {
	Feature   int
	Threshold float64
	Polarity  int // +1 or -1
}

// Predict returns the stump's ±1 vote for a feature vector.
func (s Stump) Predict(x []float64) float64 {
	v := x[s.Feature] - s.Threshold
	if float64(s.Polarity)*v > 0 {
		return 1
	}
	return -1
}

// sortedFeature caches one feature column sorted by value, for O(n) stump
// search per round after an O(n log n) one-time sort.
type sortedFeature struct {
	order  []int // sample indices sorted by feature value
	values []float64
}

// stumpTrainer finds the minimum-weighted-error stump over a dataset.
type stumpTrainer struct {
	X     [][]float64
	y     []float64 // ±1
	cols  []sortedFeature
	nDims int
}

func newStumpTrainer(X [][]float64, y []float64) (*stumpTrainer, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("boost: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("boost: %d samples but %d labels", len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("boost: zero-dimensional features")
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("boost: ragged feature row %d", i)
		}
	}
	t := &stumpTrainer{X: X, y: y, nDims: d, cols: make([]sortedFeature, d)}
	for j := 0; j < d; j++ {
		order := make([]int, len(X))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return X[order[a]][j] < X[order[b]][j] })
		vals := make([]float64, len(X))
		for k, i := range order {
			vals[k] = X[i][j]
		}
		t.cols[j] = sortedFeature{order: order, values: vals}
	}
	return t, nil
}

// best returns the stump minimizing weighted error under weights w (assumed
// normalized), along with that error.
func (t *stumpTrainer) best(w []float64) (Stump, float64) {
	bestErr := 2.0
	var bestStump Stump
	for j := 0; j < t.nDims; j++ {
		col := t.cols[j]
		// leftPos = weight of positive samples with value <= threshold as
		// we sweep thresholds between consecutive sorted values.
		// err(polarity=+1) = P(y=+1, x<=th) + P(y=-1, x>th)
		var posBelow, negBelow float64
		var posTotal, negTotal float64
		for i := range t.y {
			if t.y[i] > 0 {
				posTotal += w[i]
			} else {
				negTotal += w[i]
			}
		}
		for k := 0; k < len(col.order); k++ {
			i := col.order[k]
			if t.y[i] > 0 {
				posBelow += w[i]
			} else {
				negBelow += w[i]
			}
			// Threshold between values[k] and values[k+1]; skip ties.
			// values is sorted ascending, so "tie" means not strictly
			// greater — no float equality needed.
			if k+1 < len(col.values) && !(col.values[k+1] > col.values[k]) {
				continue
			}
			var th float64
			if k+1 < len(col.values) {
				th = (col.values[k] + col.values[k+1]) / 2
			} else {
				th = col.values[k] + 1
			}
			// polarity +1: predict +1 for x > th.
			errPlus := posBelow + (negTotal - negBelow)
			if errPlus < bestErr {
				bestErr = errPlus
				bestStump = Stump{Feature: j, Threshold: th, Polarity: +1}
			}
			// polarity -1: predict +1 for x <= th.
			errMinus := negBelow + (posTotal - posBelow)
			if errMinus < bestErr {
				bestErr = errMinus
				bestStump = Stump{Feature: j, Threshold: th, Polarity: -1}
			}
		}
	}
	return bestStump, bestErr
}
