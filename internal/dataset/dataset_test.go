package dataset

import (
	"bytes"
	"math/rand"
	"testing"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
)

func testStyle() layout.Style {
	return layout.Style{
		Name:   "dstest",
		ClipNM: 480, HaloNM: 96, GridNM: 8,
		WidthRisk: 44, WidthSafe: 72, WidthMax: 104,
		SpaceRisk: 44, SpaceSafe: 72, SpaceMax: 136,
		RiskProb:  0.2,
		BreakProb: 0.3, JogProb: 0.2, StubProb: 0.2, ViaProb: 0.2,
	}
}

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	style := testStyle()
	var samples []layout.Sample
	for seed := int64(0); seed < 12; seed++ {
		clip := layout.Generate(style, rand.New(rand.NewSource(seed)))
		samples = append(samples, layout.Sample{Clip: clip, Hotspot: seed%3 == 0})
	}
	suite := &layout.Suite{Name: style.Name, Train: samples[:8], Test: samples[8:]}
	return FromSuite(suite, style)
}

func TestFromSuiteAndCore(t *testing.T) {
	ds := testDataset(t)
	if ds.Name != "dstest" || len(ds.Train) != 8 || len(ds.Test) != 4 {
		t.Fatalf("dataset shape wrong: %s %d/%d", ds.Name, len(ds.Train), len(ds.Test))
	}
	if ds.Core() != geom.R(96, 96, 576, 576) {
		t.Fatalf("Core = %v", ds.Core())
	}
}

func TestStats(t *testing.T) {
	ds := testDataset(t)
	hs, nhs := Stats(ds.Train)
	if hs+nhs != len(ds.Train) {
		t.Fatal("stats do not sum")
	}
	if hs != 3 { // seeds 0, 3, 6 of the first 8
		t.Fatalf("hs = %d, want 3", hs)
	}
	if h0, n0 := Stats(nil); h0 != 0 || n0 != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || len(got.Train) != len(ds.Train) || len(got.Test) != len(ds.Test) {
		t.Fatal("roundtrip lost structure")
	}
	for i := range ds.Train {
		if got.Train[i].Hotspot != ds.Train[i].Hotspot ||
			len(got.Train[i].Clip.Rects) != len(ds.Train[i].Clip.Rects) {
			t.Fatalf("train sample %d differs", i)
		}
	}
	if got.Style.WidthRisk != ds.Style.WidthRisk {
		t.Fatal("style lost in roundtrip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestTensorSamples(t *testing.T) {
	ds := testDataset(t)
	cfg := feature.TensorConfig{Blocks: 12, K: 16, ResNM: 4, Normalize: true}
	ts, err := TensorSamples(ds.Train, ds.Core(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(ds.Train) {
		t.Fatalf("got %d tensor samples", len(ts))
	}
	for i, s := range ts {
		sh := s.X.Shape()
		if sh[0] != 16 || sh[1] != 12 || sh[2] != 12 {
			t.Fatalf("sample %d shape %v", i, sh)
		}
		if s.Hotspot != ds.Train[i].Hotspot {
			t.Fatal("label mismatch")
		}
	}
	// Invalid config surfaces the error with context.
	bad := cfg
	bad.ResNM = 7
	if _, err := TensorSamples(ds.Train, ds.Core(), bad, 0); err == nil {
		t.Fatal("expected extraction error")
	}
}

func TestDensityMatrix(t *testing.T) {
	ds := testDataset(t)
	cfg := feature.DensityConfig{Grid: 12, ResNM: 4}
	X, y, err := DensityMatrix(ds.Train, ds.Core(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != len(ds.Train) || len(y) != len(ds.Train) {
		t.Fatal("matrix shape wrong")
	}
	if len(X[0]) != 144 {
		t.Fatalf("density dim %d", len(X[0]))
	}
	bad := cfg
	bad.Grid = 7
	if _, _, err := DensityMatrix(ds.Train, ds.Core(), bad, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestCCSMatrix(t *testing.T) {
	ds := testDataset(t)
	cfg := feature.DefaultCCSConfig()
	X, y, err := CCSMatrix(ds.Train, ds.Core(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != len(ds.Train) || len(y) != len(ds.Train) {
		t.Fatal("matrix shape wrong")
	}
	if len(X[0]) != cfg.Dim() {
		t.Fatalf("ccs dim %d, want %d", len(X[0]), cfg.Dim())
	}
}

func TestLabels(t *testing.T) {
	ds := testDataset(t)
	y := Labels(ds.Train)
	for i := range y {
		if y[i] != ds.Train[i].Hotspot {
			t.Fatal("labels mismatch")
		}
	}
}

func TestAugmentedTensorSamples(t *testing.T) {
	ds := testDataset(t)
	cfg := feature.TensorConfig{Blocks: 4, K: 8, ResNM: 4, Normalize: true}
	aug, err := AugmentedTensorSamples(ds.Train, ds.Core(), cfg, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(aug) != 8*len(ds.Train) {
		t.Fatalf("augmented count %d, want %d", len(aug), 8*len(ds.Train))
	}
	// Labels repeat per variant block.
	for i, s := range aug {
		if s.Hotspot != ds.Train[i/8].Hotspot {
			t.Fatal("augmented label mismatch")
		}
	}
	// Variant 0 equals the plain extraction.
	plain, err := TensorSamples(ds.Train, ds.Core(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		a, b := plain[i].X.Data(), aug[i*8].X.Data()
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("identity variant differs from plain extraction")
			}
		}
	}
	// The DC channel's total mass is symmetry invariant.
	for i := range plain {
		base := channelSum(aug[i*8].X.Data(), 16)
		for v := 1; v < 8; v++ {
			if d := channelSum(aug[i*8+v].X.Data(), 16) - base; d > 1e-9 || d < -1e-9 {
				t.Fatalf("variant %d changed total density", v)
			}
		}
	}
	if _, err := AugmentedTensorSamples(ds.Train, ds.Core(), cfg, 0, 0); err == nil {
		t.Fatal("expected variants range error")
	}
	if _, err := AugmentedTensorSamples(ds.Train, ds.Core(), cfg, 9, 0); err == nil {
		t.Fatal("expected variants range error")
	}
}

func channelSum(data []float64, n int) float64 {
	s := 0.0
	for _, v := range data[:n] {
		s += v
	}
	return s
}
