// Package dataset bridges generated benchmark suites (internal/layout) and
// the learners: it materializes feature tensors for the CNN and flat
// feature matrices for the baselines, reports class statistics, and
// persists suites with encoding/gob so expensive lithography labelling runs
// once.
package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/parallel"
	"hotspot/internal/train"
)

// Dataset is a named, labelled benchmark: clips plus the style that
// generated them (the style carries the core-window geometry feature
// extraction needs).
type Dataset struct {
	Name  string
	Style layout.Style
	Train []layout.Sample
	Test  []layout.Sample
}

// FromSuite wraps a generated suite and its style.
func FromSuite(s *layout.Suite, style layout.Style) *Dataset {
	return &Dataset{Name: s.Name, Style: style, Train: s.Train, Test: s.Test}
}

// Core returns the clip-core rectangle shared by every sample.
func (d *Dataset) Core() geom.Rect { return d.Style.CoreRect() }

// Stats reports hotspot/non-hotspot counts of a sample list.
func Stats(samples []layout.Sample) (hs, nhs int) {
	for _, s := range samples {
		if s.Hotspot {
			hs++
		} else {
			nhs++
		}
	}
	return hs, nhs
}

// Save persists the dataset with gob.
func (d *Dataset) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("dataset: encode %q: %w", d.Name, err)
	}
	return nil
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return &d, nil
}

// TensorSamples extracts the feature tensor of every clip's core,
// producing CNN training samples. Extraction fans across workers
// goroutines (0 = parallel.Default()); the output order — and every tensor
// in it — is identical under any worker count.
func TensorSamples(samples []layout.Sample, core geom.Rect, cfg feature.TensorConfig, workers int) ([]train.Sample, error) {
	out := make([]train.Sample, len(samples))
	err := parallel.New(workers).For(len(samples), func(_, i int) error {
		ft, err := feature.ExtractTensor(samples[i].Clip, core, cfg)
		if err != nil {
			return fmt.Errorf("dataset: sample %d: %w", i, err)
		}
		out[i] = train.Sample{X: ft, Hotspot: samples[i].Hotspot}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DensityMatrix extracts SPIE'15 density features for every sample across
// workers goroutines (0 = parallel.Default()).
func DensityMatrix(samples []layout.Sample, core geom.Rect, cfg feature.DensityConfig, workers int) ([][]float64, []bool, error) {
	X := make([][]float64, len(samples))
	y := make([]bool, len(samples))
	err := parallel.New(workers).For(len(samples), func(_, i int) error {
		v, err := feature.ExtractDensity(samples[i].Clip, core, cfg)
		if err != nil {
			return fmt.Errorf("dataset: sample %d: %w", i, err)
		}
		X[i] = v
		y[i] = samples[i].Hotspot
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return X, y, nil
}

// CCSMatrix extracts ICCAD'16 concentric-circle features for every sample
// across workers goroutines (0 = parallel.Default()).
func CCSMatrix(samples []layout.Sample, core geom.Rect, cfg feature.CCSConfig, workers int) ([][]float64, []bool, error) {
	X := make([][]float64, len(samples))
	y := make([]bool, len(samples))
	err := parallel.New(workers).For(len(samples), func(_, i int) error {
		v, err := feature.ExtractCCS(samples[i].Clip, core, cfg)
		if err != nil {
			return fmt.Errorf("dataset: sample %d: %w", i, err)
		}
		X[i] = v
		y[i] = samples[i].Hotspot
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return X, y, nil
}

// Labels extracts the label vector of a sample list.
func Labels(samples []layout.Sample) []bool {
	y := make([]bool, len(samples))
	for i, s := range samples {
		y[i] = s.Hotspot
	}
	return y
}

// dihedral transforms a rect under one of the 8 square symmetries within a
// win×win frame: bit 0 mirrors x, bit 1 mirrors y, bit 2 transposes.
func dihedral(r geom.Rect, win, op int) geom.Rect {
	if op&1 != 0 {
		r = geom.R(win-r.X1, r.Y0, win-r.X0, r.Y1)
	}
	if op&2 != 0 {
		r = geom.R(r.X0, win-r.Y1, r.X1, win-r.Y0)
	}
	if op&4 != 0 {
		r = geom.R(r.Y0, r.X0, r.Y1, r.X1)
	}
	return r
}

// AugmentedTensorSamples extracts feature tensors for every clip under the
// first `variants` symmetries of the square (1 = identity only, 8 = the
// full dihedral group). Hotspot labels are invariant under these
// symmetries — the optical model is isotropic and the analysis window is
// centred — so augmentation multiplies the effective training set without
// new lithography runs. The paper trains on industrial-scale suites; at
// reduced scale augmentation recovers some of that data volume (a noted
// deviation, applied to training data only). Extraction fans one task per
// (clip, symmetry) pair across workers goroutines (0 = parallel.Default());
// output order is clip-major, identical to the serial loop.
func AugmentedTensorSamples(samples []layout.Sample, core geom.Rect, cfg feature.TensorConfig, variants, workers int) ([]train.Sample, error) {
	if variants < 1 || variants > 8 {
		return nil, fmt.Errorf("dataset: augmentation variants %d outside [1, 8]", variants)
	}
	out := make([]train.Sample, len(samples)*variants)
	err := parallel.New(workers).For(len(out), func(_, task int) error {
		i, op := task/variants, task%variants
		s := samples[i]
		win := s.Clip.Frame.W()
		if s.Clip.Frame.H() != win || s.Clip.Frame.X0 != 0 || s.Clip.Frame.Y0 != 0 {
			// Normalize so symmetry maths applies.
			s.Clip = s.Clip.Normalize()
			win = s.Clip.Frame.W()
			if s.Clip.Frame.H() != win {
				return fmt.Errorf("dataset: sample %d frame not square", i)
			}
		}
		c := s.Clip
		if op != 0 {
			rects := make([]geom.Rect, len(s.Clip.Rects))
			for j, r := range s.Clip.Rects {
				rects[j] = dihedral(r, win, op)
			}
			c = geom.Clip{Frame: s.Clip.Frame, Rects: rects}
		}
		ft, err := feature.ExtractTensor(c, core, cfg)
		if err != nil {
			return fmt.Errorf("dataset: sample %d variant %d: %w", i, op, err)
		}
		out[task] = train.Sample{X: ft, Hotspot: s.Hotspot}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
