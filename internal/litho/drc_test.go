package litho

import (
	"testing"

	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

func drcMask(t *testing.T, rects []geom.Rect) *raster.Image {
	t.Helper()
	im, err := raster.Rasterize(geom.NewClip(geom.R(0, 0, 256, 256), rects), 1)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func fullRegion(im *raster.Image) Region { return Region{X0: 0, Y0: 0, X1: im.W, Y1: im.H} }

func TestCheckRulesCleanLayout(t *testing.T) {
	im := drcMask(t, []geom.Rect{
		geom.R(20, 10, 60, 240),   // 40 wide
		geom.R(100, 10, 140, 240), // 40 space to the first
	})
	v, err := CheckRules(im, fullRegion(im), 21, 21)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() {
		t.Fatalf("clean layout flagged: %+v", v)
	}
}

func TestCheckRulesNarrowWidth(t *testing.T) {
	im := drcMask(t, []geom.Rect{geom.R(100, 10, 107, 240)}) // 7 wide
	v, err := CheckRules(im, fullRegion(im), 21, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.WidthPixels == 0 {
		t.Fatal("7-wide feature not flagged against 21 minimum")
	}
	if v.SpacePixels != 0 {
		t.Fatalf("unexpected space violations: %+v", v)
	}
}

func TestCheckRulesNarrowSpace(t *testing.T) {
	im := drcMask(t, []geom.Rect{
		geom.R(40, 10, 100, 240),
		geom.R(107, 10, 167, 240), // 7 gap
	})
	v, err := CheckRules(im, fullRegion(im), 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if v.SpacePixels == 0 {
		t.Fatal("7-wide gap not flagged against 21 minimum")
	}
	if v.WidthPixels != 0 {
		t.Fatalf("unexpected width violations: %+v", v)
	}
}

func TestCheckRulesExactMinimumPasses(t *testing.T) {
	// A feature exactly at the minimum width (2r+1) survives opening.
	im := drcMask(t, []geom.Rect{geom.R(100, 10, 121, 240)}) // 21 wide
	v, err := CheckRules(im, fullRegion(im), 21, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.WidthPixels != 0 {
		t.Fatalf("at-minimum feature flagged: %+v", v)
	}
}

func TestCheckRulesRegionScoping(t *testing.T) {
	// A violation outside the region must not count.
	im := drcMask(t, []geom.Rect{geom.R(4, 10, 11, 240)}) // 7 wide at far left
	region := Region{X0: 128, Y0: 0, X1: 256, Y1: 256}
	v, err := CheckRules(im, region, 21, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Clean() {
		t.Fatalf("out-of-region violation counted: %+v", v)
	}
}

func TestCheckRulesErrors(t *testing.T) {
	im := raster.NewImage(32, 32)
	if _, err := CheckRules(im, fullRegion(im), 0, 5); err == nil {
		t.Fatal("expected min-width error")
	}
	if _, err := CheckRules(im, Region{X0: -1, Y0: 0, X1: 8, Y1: 8}, 5, 5); err == nil {
		t.Fatal("expected region error")
	}
}
