package litho

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotspot/internal/raster"
)

func imageFromRows(rows []string) *raster.Image {
	h := len(rows)
	w := len(rows[0])
	im := raster.NewImage(w, h)
	for y, row := range rows {
		for x, ch := range row {
			if ch == '#' {
				im.Set(x, y, 1)
			}
		}
	}
	return im
}

func TestErodeBasic(t *testing.T) {
	im := imageFromRows([]string{
		".....",
		".###.",
		".###.",
		".###.",
		".....",
	})
	e := Erode(im, 1)
	// Only the centre survives.
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			want := 0.0
			if x == 2 && y == 2 {
				want = 1.0
			}
			if e.At(x, y) != want {
				t.Fatalf("erode(%d,%d) = %v, want %v", x, y, e.At(x, y), want)
			}
		}
	}
}

func TestDilateBasic(t *testing.T) {
	im := raster.NewImage(5, 5)
	im.Set(2, 2, 1)
	d := Dilate(im, 1)
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			want := 0.0
			if x >= 1 && x <= 3 && y >= 1 && y <= 3 {
				want = 1.0
			}
			if d.At(x, y) != want {
				t.Fatalf("dilate(%d,%d) = %v, want %v", x, y, d.At(x, y), want)
			}
		}
	}
}

func TestErodeBorderIsBackground(t *testing.T) {
	// Foreground touching the image border erodes away.
	im := raster.NewImage(4, 4)
	for i := range im.Pix {
		im.Pix[i] = 1
	}
	e := Erode(im, 1)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			want := 0.0
			if x >= 1 && x <= 2 && y >= 1 && y <= 2 {
				want = 1.0
			}
			if e.At(x, y) != want {
				t.Fatalf("erode(%d,%d) = %v, want %v", x, y, e.At(x, y), want)
			}
		}
	}
}

func TestMorphZeroRadiusBinarizes(t *testing.T) {
	im := raster.NewImage(2, 1)
	im.Pix[0], im.Pix[1] = 0.4, 0.9
	e := Erode(im, 0)
	d := Dilate(im, 0)
	if e.Pix[0] != 0 || e.Pix[1] != 1 || d.Pix[0] != 0 || d.Pix[1] != 1 {
		t.Fatal("radius 0 should binarize only")
	}
}

// Property: erosion shrinks, dilation grows (extensivity/anti-extensivity).
func TestMorphOrdering(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := raster.NewImage(12, 12)
		for i := range im.Pix {
			if r.Float64() < 0.4 {
				im.Pix[i] = 1
			}
		}
		rad := 1 + r.Intn(2)
		e := Erode(im, rad)
		d := Dilate(im, rad)
		for i := range im.Pix {
			if e.Pix[i] > im.Pix[i] || d.Pix[i] < im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: opening (erode then dilate) is contained in the original, and
// closing (dilate then erode) contains it.
func TestOpeningClosingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := raster.NewImage(10, 10)
		for i := range im.Pix {
			if r.Float64() < 0.5 {
				im.Pix[i] = 1
			}
		}
		opened := Dilate(Erode(im, 1), 1)
		closed := Erode(Dilate(im, 1), 1)
		for i := range im.Pix {
			if opened.Pix[i] > im.Pix[i] {
				return false
			}
			// Closing may shrink at borders (background padding), so only
			// check the interior.
			y, x := i/10, i%10
			if x >= 2 && x < 8 && y >= 2 && y < 8 && closed.Pix[i] < im.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: dilation is monotone — a larger image dilates to a larger image.
func TestDilateMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := raster.NewImage(10, 10)
		b := raster.NewImage(10, 10)
		for i := range a.Pix {
			if r.Float64() < 0.3 {
				a.Pix[i] = 1
				b.Pix[i] = 1
			} else if r.Float64() < 0.3 {
				b.Pix[i] = 1 // b is a superset of a
			}
		}
		da := Dilate(a, 1)
		db := Dilate(b, 1)
		for i := range da.Pix {
			if da.Pix[i] > db.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
