package litho

import (
	"testing"

	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

func sweepGrids() (doses, defoci []float64) {
	return []float64{0.90, 0.95, 1.00, 1.05, 1.10}, []float64{0, 0.5, 1.0}
}

func TestMeasureWindowRobustPattern(t *testing.T) {
	s := mustSim(t)
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(452, 128, 572, 896), // 120 nm line: robust
	}))
	region := Region{X0: 32, Y0: 32, X1: mask.W - 32, Y1: mask.H - 32}
	doses, defoci := sweepGrids()
	rep, err := s.MeasureWindow(mask, region, doses, defoci)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(doses)*len(defoci) {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.CleanFraction < 0.8 {
		t.Fatalf("robust pattern clean fraction %.2f", rep.CleanFraction)
	}
	if rep.DepthOfFocus != 1.0 {
		t.Fatalf("robust pattern DoF %v, want full range", rep.DepthOfFocus)
	}
	if rep.DoseLatitude < 0.15 {
		t.Fatalf("robust pattern dose latitude %.2f", rep.DoseLatitude)
	}
}

func TestMeasureWindowMarginalPatternShrinks(t *testing.T) {
	s := mustSim(t)
	robust := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(452, 128, 572, 896),
	}))
	marginal := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(486, 128, 538, 896), // 52 nm line: the cliff
	}))
	region := Region{X0: 32, Y0: 32, X1: robust.W - 32, Y1: robust.H - 32}
	doses, defoci := sweepGrids()
	rr, err := s.MeasureWindow(robust, region, doses, defoci)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := s.MeasureWindow(marginal, region, doses, defoci)
	if err != nil {
		t.Fatal(err)
	}
	// A hotspot IS a smaller process window (the paper's definition).
	if rm.CleanFraction >= rr.CleanFraction {
		t.Fatalf("marginal window (%.2f) not smaller than robust (%.2f)",
			rm.CleanFraction, rr.CleanFraction)
	}
	// DepthOfFocus is "any dose prints": over-dosing can rescue a narrow
	// line even at full defocus, so DoF may tie; it must never exceed.
	if rm.DepthOfFocus > rr.DepthOfFocus {
		t.Fatalf("marginal DoF %v exceeds robust %v", rm.DepthOfFocus, rr.DepthOfFocus)
	}
	// This marginal line fails under defocus, not dose, so its
	// zero-defocus dose latitude may tie the robust one.
	if rm.DoseLatitude > rr.DoseLatitude {
		t.Fatalf("marginal dose latitude %.2f exceeds robust %.2f",
			rm.DoseLatitude, rr.DoseLatitude)
	}
}

func TestMeasureWindowAgreesWithAnalyze(t *testing.T) {
	// Sampling exactly the configured corners must agree with Analyze.
	s := mustSim(t)
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(486, 128, 538, 896),
	}))
	region := Region{X0: 32, Y0: 32, X1: mask.W - 32, Y1: mask.H - 32}
	rep, err := s.Analyze(mask, region)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Corners {
		w, err := s.MeasureWindow(mask, region, []float64{c.Condition.Dose}, []float64{c.Condition.Defocus})
		if err != nil {
			t.Fatal(err)
		}
		if w.Points[0].Clean != (c.Defect == DefectNone) {
			t.Fatalf("corner %+v: window says clean=%v, analyze says %v",
				c.Condition, w.Points[0].Clean, c.Defect)
		}
	}
}

func TestMeasureWindowErrors(t *testing.T) {
	s := mustSim(t)
	mask := raster.NewImage(32, 32)
	region := Region{X0: 4, Y0: 4, X1: 28, Y1: 28}
	if _, err := s.MeasureWindow(mask, region, nil, []float64{0}); err == nil {
		t.Fatal("expected empty dose grid error")
	}
	if _, err := s.MeasureWindow(mask, region, []float64{1}, nil); err == nil {
		t.Fatal("expected empty defocus grid error")
	}
	if _, err := s.MeasureWindow(mask, Region{X0: -1, Y0: 0, X1: 8, Y1: 8}, []float64{1}, []float64{0}); err == nil {
		t.Fatal("expected bad region error")
	}
}
