package litho

import (
	"testing"

	"hotspot/internal/raster"
)

func TestLabel4Components(t *testing.T) {
	im := imageFromRows([]string{
		"##..#",
		"##..#",
		".....",
		"#..##",
	})
	labels, n := label4(im)
	// Top-left 2x2 block, right column pair, bottom-left pixel,
	// bottom-right pair: four components.
	if n != 4 {
		t.Fatalf("components = %d, want 4", n)
	}
	// Pixels of one block share a label; distinct blocks differ.
	l00 := labels[0]
	if labels[1] != l00 || labels[5] != l00 || labels[6] != l00 {
		t.Fatal("top-left block not connected")
	}
	if labels[4] == l00 {
		t.Fatal("disjoint blocks share a label")
	}
	// Background stays zero.
	if labels[2] != 0 || labels[10] != 0 {
		t.Fatal("background labelled")
	}
}

func TestLabel4DiagonalNotConnected(t *testing.T) {
	im := imageFromRows([]string{
		"#.",
		".#",
	})
	_, n := label4(im)
	if n != 2 {
		t.Fatalf("diagonal pixels merged: %d components", n)
	}
}

func TestLabel4Empty(t *testing.T) {
	im := raster.NewImage(4, 4)
	labels, n := label4(im)
	if n != 0 {
		t.Fatalf("empty image has %d components", n)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("empty image labelled")
		}
	}
}

func TestLabel4LargeBlob(t *testing.T) {
	// A serpentine shape: connected despite turns.
	im := imageFromRows([]string{
		"#####",
		"....#",
		"#####",
		"#....",
		"#####",
	})
	_, n := label4(im)
	if n != 1 {
		t.Fatalf("serpentine split into %d components", n)
	}
}
