package litho

import (
	"math"
	"testing"

	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

func mustSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := NewSimulator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// rasterizeClip renders a clip with the default config's resolution.
func rasterizeClip(t *testing.T, c geom.Clip) *raster.Image {
	t.Helper()
	im, err := raster.Rasterize(c, DefaultConfig().ResNM)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := DefaultConfig()
	mutate := []struct {
		name string
		f    func(*Config)
	}{
		{"no kernels", func(c *Config) { c.Optics.Kernels = nil }},
		{"bad sigma", func(c *Config) { c.Optics.Kernels[0].SigmaNM = 0 }},
		{"bad weight", func(c *Config) { c.Optics.Kernels[0].Weight = -1 }},
		{"threshold 0", func(c *Config) { c.Resist.Threshold = 0 }},
		{"threshold 1", func(c *Config) { c.Resist.Threshold = 1 }},
		{"bad res", func(c *Config) { c.ResNM = 0 }},
		{"no corners", func(c *Config) { c.Corners = nil }},
		{"bad dose", func(c *Config) { c.Corners[0].Dose = 0 }},
		{"negative defocus", func(c *Config) { c.Corners[0].Defocus = -1 }},
		{"negative tolerance", func(c *Config) { c.EPEToleranceNM = -1 }},
	}
	for _, m := range mutate {
		cfg := base
		cfg.Optics.Kernels = append([]Kernel(nil), base.Optics.Kernels...)
		cfg.Corners = append([]Condition(nil), base.Corners...)
		m.f(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
		if _, err := NewSimulator(cfg); err == nil {
			t.Errorf("%s: NewSimulator should fail", m.name)
		}
	}
}

func TestAerialEmptyMaskIsDark(t *testing.T) {
	s := mustSim(t)
	mask := raster.NewImage(64, 64)
	a := s.Aerial(mask, 0)
	if a.Sum() != 0 {
		t.Fatalf("empty mask aerial sum = %v, want 0", a.Sum())
	}
}

func TestAerialClearFieldIsUnity(t *testing.T) {
	s := mustSim(t)
	mask := raster.NewImage(128, 128)
	for i := range mask.Pix {
		mask.Pix[i] = 1
	}
	a := s.Aerial(mask, 0)
	// Far from the boundary, intensity must be ~1 (weights normalized).
	center := a.At(64, 64)
	if math.Abs(center-1) > 1e-6 {
		t.Fatalf("clear-field centre intensity = %v, want 1", center)
	}
}

func TestAerialEdgeIntensity(t *testing.T) {
	// For a straight isolated edge, the field at the edge is 0.5, so the
	// intensity is 0.25 — the resist threshold, placing the contour on the
	// drawn edge by construction.
	s := mustSim(t)
	w, h := 128, 64
	mask := raster.NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < 64; x++ {
			mask.Set(x, y, 1)
		}
	}
	a := s.Aerial(mask, 0)
	// The half-plane boundary sits between px 63 and 64; sample the mean of
	// the two pixels bracketing it.
	edge := (a.At(63, 32) + a.At(64, 32)) / 2
	if math.Abs(edge-0.25) > 0.02 {
		t.Fatalf("edge intensity = %v, want ~0.25", edge)
	}
}

func TestAerialMonotoneInMask(t *testing.T) {
	// Adding geometry can only increase intensity everywhere (all-positive
	// kernels).
	s := mustSim(t)
	base := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 512, 512), []geom.Rect{
		geom.R(100, 100, 180, 400),
	}))
	more := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 512, 512), []geom.Rect{
		geom.R(100, 100, 180, 400),
		geom.R(300, 100, 380, 400),
	}))
	a1 := s.Aerial(base, 0)
	a2 := s.Aerial(more, 0)
	for i := range a1.Pix {
		if a2.Pix[i] < a1.Pix[i]-1e-12 {
			t.Fatal("aerial intensity decreased when geometry was added")
		}
	}
}

func TestDefocusBlursImage(t *testing.T) {
	// Defocus must lower the peak intensity of a narrow line.
	s := mustSim(t)
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 512, 512), []geom.Rect{
		geom.R(224, 64, 288, 448), // 64 nm line
	}))
	nom := s.Aerial(mask, 0)
	def := s.Aerial(mask, 1)
	cx, cy := 256/DefaultConfig().ResNM, 256/DefaultConfig().ResNM
	if def.At(cx, cy) >= nom.At(cx, cy) {
		t.Fatalf("defocus did not lower line-centre intensity: %v >= %v", def.At(cx, cy), nom.At(cx, cy))
	}
}

func TestPrintDoseMonotone(t *testing.T) {
	s := mustSim(t)
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 512, 512), []geom.Rect{
		geom.R(200, 100, 280, 400),
	}))
	a := s.Aerial(mask, 0)
	lo := s.Print(a, 0.9)
	hi := s.Print(a, 1.1)
	for i := range lo.Pix {
		if lo.Pix[i] > hi.Pix[i] {
			t.Fatal("higher dose must print a superset of pixels")
		}
	}
}

func TestWideIsolatedLineIsClean(t *testing.T) {
	s := mustSim(t)
	// 120 nm line in a 1024 nm window: prints robustly at all corners.
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(452, 128, 572, 896),
	}))
	region := Region{X0: 32, Y0: 32, X1: mask.W - 32, Y1: mask.H - 32}
	rep, err := s.Analyze(mask, region)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hotspot {
		for _, c := range rep.Corners {
			t.Logf("corner %+v: %v (%d violations)", c.Condition, c.Defect, c.Violations)
		}
		t.Fatal("wide isolated line flagged as hotspot")
	}
	if rep.WindowFraction != 1 {
		t.Fatalf("WindowFraction = %v, want 1", rep.WindowFraction)
	}
}

func TestSubResolutionLineIsOpenDefect(t *testing.T) {
	s := mustSim(t)
	// 24 nm line: far below the printable width, must fail open at nominal.
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(500, 128, 524, 896),
	}))
	region := Region{X0: 16, Y0: 16, X1: mask.W - 16, Y1: mask.H - 16}
	rep, err := s.Analyze(mask, region)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Hotspot {
		t.Fatal("sub-resolution line not flagged as hotspot")
	}
	if rep.Corners[0].Defect != DefectOpen {
		t.Fatalf("nominal corner defect = %v, want open", rep.Corners[0].Defect)
	}
}

func TestTightSpaceBridges(t *testing.T) {
	s := mustSim(t)
	// Two 120 nm lines separated by a 24 nm gap: the gap fills in.
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
		geom.R(336, 128, 456, 896),
		geom.R(480, 128, 600, 896),
	}))
	region := Region{X0: 16, Y0: 16, X1: mask.W - 16, Y1: mask.H - 16}
	rep, err := s.Analyze(mask, region)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Hotspot {
		t.Fatal("tight space not flagged as hotspot")
	}
	sawBridge := false
	for _, c := range rep.Corners {
		if c.Defect == DefectBridge {
			sawBridge = true
		}
	}
	if !sawBridge {
		t.Fatal("expected a bridge defect at some corner")
	}
}

func TestMarginalLineFailsOnlyOffNominal(t *testing.T) {
	s := mustSim(t)
	// A width in the marginal band: prints at nominal, fails under
	// defocus/dose stress — the canonical process-window hotspot.
	for width := 44; width <= 72; width += 4 {
		mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
			geom.R(512-width/2, 128, 512+width/2, 896),
		}))
		region := Region{X0: 16, Y0: 16, X1: mask.W - 16, Y1: mask.H - 16}
		rep, err := s.Analyze(mask, region)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corners[0].Defect == DefectNone && rep.Hotspot {
			// Found the marginal regime; that's all we assert.
			return
		}
	}
	t.Fatal("no width in 44..72 nm printed at nominal but failed at a corner")
}

func TestAnalyzeRegionValidation(t *testing.T) {
	s := mustSim(t)
	mask := raster.NewImage(32, 32)
	bad := []Region{
		{X0: -1, Y0: 0, X1: 10, Y1: 10},
		{X0: 0, Y0: 0, X1: 33, Y1: 10},
		{X0: 10, Y0: 0, X1: 5, Y1: 10},
		{X0: 0, Y0: 5, X1: 10, Y1: 5},
	}
	for _, r := range bad {
		if _, err := s.Analyze(mask, r); err == nil {
			t.Errorf("region %+v: expected error", r)
		}
	}
}

func TestIsHotspotAgreesWithAnalyze(t *testing.T) {
	s := mustSim(t)
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 512, 512), []geom.Rect{
		geom.R(200, 64, 224, 448), // 24 nm: hotspot
	}))
	region := Region{X0: 8, Y0: 8, X1: mask.W - 8, Y1: mask.H - 8}
	hot, err := s.IsHotspot(mask, region)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Analyze(mask, region)
	if err != nil {
		t.Fatal(err)
	}
	if hot != rep.Hotspot {
		t.Fatal("IsHotspot disagrees with Analyze")
	}
}

func TestDefectKindString(t *testing.T) {
	if DefectNone.String() != "none" || DefectOpen.String() != "open" || DefectBridge.String() != "bridge" {
		t.Fatal("DefectKind strings wrong")
	}
	if DefectKind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestAerialFFTAgreesWithSeparable(t *testing.T) {
	s := mustSim(t)
	mask := rasterizeClip(t, geom.NewClip(geom.R(0, 0, 512, 512), []geom.Rect{
		geom.R(96, 64, 176, 448),
		geom.R(256, 128, 336, 384),
		geom.R(400, 200, 472, 272),
	}))
	for _, defocus := range []float64{0, 1} {
		fast := s.Aerial(mask, defocus)
		slow, err := s.AerialFFT(mask, defocus)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Pix {
			if math.Abs(fast.Pix[i]-slow.Pix[i]) > 1e-6 {
				t.Fatalf("defocus %v: separable and FFT aerials differ at %d: %v vs %v",
					defocus, i, fast.Pix[i], slow.Pix[i])
			}
		}
	}
}

func TestSimulateKernelsErrors(t *testing.T) {
	s := mustSim(t)
	mask := raster.NewImage(16, 16)
	if _, err := s.SimulateKernels(mask, nil, nil); err == nil {
		t.Fatal("expected empty kernels error")
	}
	k := raster.NewImage(3, 3)
	if _, err := s.SimulateKernels(mask, []*raster.Image{k}, []float64{1, 2}); err == nil {
		t.Fatal("expected weight mismatch error")
	}
}
