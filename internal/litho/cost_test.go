package litho

import (
	"math"
	"strings"
	"testing"

	"hotspot/internal/obs"
)

// TestLabelCost pins the explicit cost model to the paper's figure: the
// default five-corner process prices a label at exactly 10 ODST seconds,
// and the cost scales linearly with the corner count.
func TestLabelCost(t *testing.T) {
	if got := DefaultLabelCost(); got != 10.0 {
		t.Fatalf("DefaultLabelCost = %v, want 10", got)
	}
	cfg := DefaultConfig()
	cfg.Corners = cfg.Corners[:2]
	if got := cfg.LabelCost(); got != 2*ODSTSecondsPerCorner {
		t.Fatalf("two-corner LabelCost = %v, want %v", got, 2*ODSTSecondsPerCorner)
	}
}

// TestBudgetCharging covers exact accounting: charges succeed up to and
// including the last affordable label, the first unaffordable charge is
// refused without spending, and the meter readings stay exact throughout.
func TestBudgetCharging(t *testing.T) {
	b := NewBudget(25)
	cost := DefaultLabelCost()
	if !b.TryCharge(cost) || !b.TryCharge(cost) {
		t.Fatal("budget refused affordable charges")
	}
	if b.TryCharge(cost) {
		t.Fatal("budget allowed a charge past the limit")
	}
	if got := b.Spent(); got != 20 {
		t.Fatalf("Spent = %v, want 20 (the refused charge must not spend)", got)
	}
	if got := b.Remaining(); got != 5 {
		t.Fatalf("Remaining = %v, want 5", got)
	}
	if got := b.Labels(); got != 2 {
		t.Fatalf("Labels = %d, want 2", got)
	}
	// A cheaper label still fits in the remainder.
	if !b.TryCharge(5) {
		t.Fatal("budget refused a charge that exactly exhausts it")
	}
	if got := b.Remaining(); got != 0 {
		t.Fatalf("Remaining = %v, want 0 after exact exhaustion", got)
	}
}

// TestBudgetUnlimited: seconds <= 0 means every charge succeeds and
// Remaining is +Inf, while spend is still metered.
func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	for i := 0; i < 100; i++ {
		if !b.TryCharge(DefaultLabelCost()) {
			t.Fatal("unlimited budget refused a charge")
		}
	}
	if !math.IsInf(b.Remaining(), 1) {
		t.Fatalf("Remaining = %v, want +Inf", b.Remaining())
	}
	if got := b.Spent(); got != 1000 {
		t.Fatalf("Spent = %v, want 1000", got)
	}
}

// TestBudgetMetrics: the obs series carry the exact charged spend. The
// counters are process-wide, so the test asserts deltas, not absolutes.
func TestBudgetMetrics(t *testing.T) {
	reg := obs.Default()
	msBefore := reg.Counter("hsd_litho_odst_milliseconds_total").Value()
	labelsBefore := reg.Counter("hsd_litho_labels_total").Value()

	b := NewBudget(30)
	if !b.TryCharge(DefaultLabelCost()) || !b.TryCharge(DefaultLabelCost()) {
		t.Fatal("charges refused")
	}
	if d := reg.Counter("hsd_litho_odst_milliseconds_total").Value() - msBefore; d != 20000 {
		t.Fatalf("odst ms counter delta = %d, want 20000", d)
	}
	if d := reg.Counter("hsd_litho_labels_total").Value() - labelsBefore; d != 2 {
		t.Fatalf("labels counter delta = %d, want 2", d)
	}
	if got := reg.Gauge("hsd_litho_budget_remaining_seconds", 3).Value(); got != 10 {
		t.Fatalf("remaining gauge = %v, want 10", got)
	}
	if !strings.Contains(reg.Text(), "hsd_litho_budget_remaining_seconds 10.000") {
		t.Fatalf("scrape text missing exact remaining gauge:\n%s", reg.Text())
	}
}

// TestBudgetNegativeCharge: a negative cost is refused outright.
func TestBudgetNegativeCharge(t *testing.T) {
	b := NewBudget(10)
	if b.TryCharge(-1) {
		t.Fatal("negative charge accepted")
	}
	if b.Spent() != 0 || b.Labels() != 0 {
		t.Fatal("refused charge mutated the meter")
	}
}
