package litho

import (
	"fmt"

	"hotspot/internal/raster"
)

// WindowPoint is one (dose, defocus) condition with its printability
// verdict.
type WindowPoint struct {
	Condition Condition
	Clean     bool
}

// WindowReport is a sampled process window: the set of (dose, defocus)
// conditions under which a pattern prints within tolerance. The paper's
// Preliminaries define hotspots as patterns "with a smaller process
// window"; Analyze checks fixed corners, while MeasureWindow maps the
// window itself.
type WindowReport struct {
	Points []WindowPoint
	// DoseLatitude is the widest contiguous clean dose range at zero
	// defocus, as a fraction of nominal dose (e.g. 0.10 = ±5%).
	DoseLatitude float64
	// DepthOfFocus is the largest defocus at which any dose in the swept
	// range prints cleanly (normalized units; -1 when none).
	DepthOfFocus float64
	// CleanFraction is the fraction of sampled conditions that print
	// cleanly — a scalar process-window size.
	CleanFraction float64
}

// MeasureWindow sweeps a dose × defocus grid and reports the pattern's
// process window. doses and defoci must be non-empty; doses should be
// sorted ascending for a meaningful DoseLatitude.
func (s *Simulator) MeasureWindow(mask *raster.Image, region Region, doses, defoci []float64) (WindowReport, error) {
	if len(doses) == 0 || len(defoci) == 0 {
		return WindowReport{}, fmt.Errorf("litho: MeasureWindow needs non-empty dose and defocus grids")
	}
	if region.X0 < 0 || region.Y0 < 0 || region.X1 > mask.W || region.Y1 > mask.H ||
		region.X0 >= region.X1 || region.Y0 >= region.Y1 {
		return WindowReport{}, fmt.Errorf("litho: invalid analysis region")
	}
	target := mask.Threshold(0.5)
	epePx := s.cfg.EPEToleranceNM / s.cfg.ResNM
	bridgePx := s.cfg.BridgeToleranceNM / s.cfg.ResNM
	nearTarget := Dilate(target, bridgePx)
	targetLabels, _ := label4(target)

	rep := WindowReport{DepthOfFocus: -1}
	clean := 0
	for _, defocus := range defoci {
		aerial := s.Aerial(mask, defocus)
		anyCleanAtDefocus := false
		for _, dose := range doses {
			printed := s.Print(aerial, dose)
			kind, _ := s.scoreDefects(printed, target, nearTarget, targetLabels, region, epePx)
			ok := kind == DefectNone
			rep.Points = append(rep.Points, WindowPoint{
				Condition: Condition{Dose: dose, Defocus: defocus},
				Clean:     ok,
			})
			if ok {
				clean++
				anyCleanAtDefocus = true
			}
		}
		if anyCleanAtDefocus && defocus > rep.DepthOfFocus {
			rep.DepthOfFocus = defocus
		}
	}
	rep.CleanFraction = float64(clean) / float64(len(rep.Points))

	// Widest contiguous clean dose run at the lowest sampled defocus.
	best, run := 0, 0
	var runLo, runHi, bestLo, bestHi float64
	for _, p := range rep.Points[:len(doses)] {
		if p.Clean {
			if run == 0 {
				runLo = p.Condition.Dose
			}
			runHi = p.Condition.Dose
			run++
			if run > best {
				best = run
				bestLo, bestHi = runLo, runHi
			}
		} else {
			run = 0
		}
	}
	if best > 1 {
		rep.DoseLatitude = bestHi - bestLo
	}
	return rep, nil
}
