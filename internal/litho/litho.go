// Package litho is the lithography-simulation substrate: a scalar aerial
// image model, a constant-threshold resist, process-window corners, and the
// printability checks (pullback/necking and bridging) that define ground
// truth.
//
// The paper's labels and its ODST metric come from an industrial simulator
// that is not available; this package substitutes a sum-of-coherent-systems
// (SOCS) style model with Gaussian coherent kernels:
//
//	I(x, y) = Σ_i w_i · (mask ⊛ g_i)²(x, y)
//
// Gaussians are separable, so each field convolution is two 1-D passes.
// Defocus widens every kernel; dose scales the effective threshold. What
// matters for the reproduction is preserved: a clip's hotspot label is an
// *optical* property that depends on the clip's surroundings through the
// point-spread function, which is exactly the spatial coupling the feature
// tensor and CNN are designed to capture.
package litho

import (
	"fmt"
	"math"

	"hotspot/internal/fft"
	"hotspot/internal/raster"
)

// Kernel is one coherent Gaussian kernel of the SOCS decomposition.
type Kernel struct {
	// SigmaNM is the Gaussian standard deviation in nanometres.
	SigmaNM float64
	// Weight is the kernel's intensity weight; weights are normalized at
	// simulation time so an infinite clear field has intensity 1.
	Weight float64
}

// Condition is one process corner.
type Condition struct {
	// Dose is the exposure dose multiplier (1.0 = nominal).
	Dose float64
	// Defocus is the normalized defocus in [0, 1]; kernels widen by
	// (1 + DefocusSpread·Defocus).
	Defocus float64
}

// OpticalModel describes the projection optics.
type OpticalModel struct {
	Kernels []Kernel
	// DefocusSpread is the fractional sigma widening at Defocus = 1.
	DefocusSpread float64
}

// Resist is a constant-threshold resist model: a point prints when
// dose·I >= Threshold. With normalized optics, 0.25 places the printed
// contour of an isolated straight edge exactly on the drawn edge.
type Resist struct {
	Threshold float64
}

// Config assembles a full simulator.
type Config struct {
	Optics OpticalModel
	Resist Resist
	// Corners are the process-window conditions checked by the hotspot
	// oracle; a clip is a hotspot when any corner produces a defect.
	Corners []Condition
	// ResNM is the raster resolution (nanometres per pixel) the simulator
	// expects its mask images at.
	ResNM int
	// EPEToleranceNM is how far a printed edge may pull back from the drawn
	// edge before the pattern counts as failing (open / necking).
	EPEToleranceNM int
	// BridgeToleranceNM is how far printing may extend beyond drawn
	// geometry before it counts as a bridge.
	BridgeToleranceNM int
}

// DefaultConfig returns the process used for all generated benchmarks:
// two-kernel SOCS optics sized for a ~28 nm-node metal layer (the ICCAD 2012
// suite's node), ±5% dose and full defocus corners.
func DefaultConfig() Config {
	return Config{
		Optics: OpticalModel{
			Kernels: []Kernel{
				{SigmaNM: 28, Weight: 0.8},
				{SigmaNM: 70, Weight: 0.2},
			},
			DefocusSpread: 0.30,
		},
		Resist: Resist{Threshold: 0.25},
		Corners: []Condition{
			{Dose: 1.00, Defocus: 0},
			{Dose: 1.05, Defocus: 0},
			{Dose: 0.95, Defocus: 0},
			{Dose: 1.05, Defocus: 1},
			{Dose: 0.95, Defocus: 1},
		},
		ResNM:             8,
		EPEToleranceNM:    40,
		BridgeToleranceNM: 32,
	}
}

// Validate checks a configuration for usability.
func (c Config) Validate() error {
	if len(c.Optics.Kernels) == 0 {
		return fmt.Errorf("litho: optical model has no kernels")
	}
	wsum := 0.0
	for i, k := range c.Optics.Kernels {
		if k.SigmaNM <= 0 {
			return fmt.Errorf("litho: kernel %d has non-positive sigma %v", i, k.SigmaNM)
		}
		if k.Weight <= 0 {
			return fmt.Errorf("litho: kernel %d has non-positive weight %v", i, k.Weight)
		}
		wsum += k.Weight
	}
	if wsum == 0 {
		return fmt.Errorf("litho: kernel weights sum to zero")
	}
	if c.Resist.Threshold <= 0 || c.Resist.Threshold >= 1 {
		return fmt.Errorf("litho: resist threshold %v outside (0, 1)", c.Resist.Threshold)
	}
	if c.ResNM <= 0 {
		return fmt.Errorf("litho: resolution must be positive, got %d", c.ResNM)
	}
	if len(c.Corners) == 0 {
		return fmt.Errorf("litho: no process corners configured")
	}
	for i, cond := range c.Corners {
		if cond.Dose <= 0 {
			return fmt.Errorf("litho: corner %d has non-positive dose", i)
		}
		if cond.Defocus < 0 {
			return fmt.Errorf("litho: corner %d has negative defocus", i)
		}
	}
	if c.EPEToleranceNM < 0 || c.BridgeToleranceNM < 0 {
		return fmt.Errorf("litho: tolerances must be non-negative")
	}
	return nil
}

// Simulator computes aerial images and printability for mask rasters.
type Simulator struct {
	cfg     Config
	weights []float64 // normalized kernel weights
}

// NewSimulator validates cfg and returns a simulator.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wsum := 0.0
	for _, k := range cfg.Optics.Kernels {
		wsum += k.Weight
	}
	s := &Simulator{cfg: cfg, weights: make([]float64, len(cfg.Optics.Kernels))}
	for i, k := range cfg.Optics.Kernels {
		s.weights[i] = k.Weight / wsum
	}
	return s, nil
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Aerial computes the aerial image of a mask raster at the given defocus.
// The mask must be rasterized at Config.ResNM nanometres per pixel.
func (s *Simulator) Aerial(mask *raster.Image, defocus float64) *raster.Image {
	out := raster.NewImage(mask.W, mask.H)
	widen := 1 + s.cfg.Optics.DefocusSpread*defocus
	for i, k := range s.cfg.Optics.Kernels {
		sigmaPx := k.SigmaNM * widen / float64(s.cfg.ResNM)
		field := gaussianBlur(mask, sigmaPx)
		w := s.weights[i]
		for j, v := range field.Pix {
			out.Pix[j] += w * v * v
		}
	}
	return out
}

// Print thresholds an aerial image under the given dose, returning the
// binary printed image.
func (s *Simulator) Print(aerial *raster.Image, dose float64) *raster.Image {
	th := s.cfg.Resist.Threshold / dose
	return aerial.Threshold(th)
}

// gaussianBlur convolves im with a normalized separable Gaussian of the
// given sigma (pixels), truncated at 3σ, with zero (dark-field) padding.
func gaussianBlur(im *raster.Image, sigmaPx float64) *raster.Image {
	if sigmaPx <= 0 {
		return im.Clone()
	}
	radius := int(math.Ceil(3 * sigmaPx))
	if radius < 1 {
		radius = 1
	}
	kern := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range kern {
		d := float64(i - radius)
		kern[i] = math.Exp(-d * d / (2 * sigmaPx * sigmaPx))
		sum += kern[i]
	}
	for i := range kern {
		kern[i] /= sum
	}
	// Horizontal pass.
	tmp := raster.NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		orow := tmp.Pix[y*im.W : (y+1)*im.W]
		for x := 0; x < im.W; x++ {
			s := 0.0
			for k := -radius; k <= radius; k++ {
				xx := x + k
				if xx < 0 || xx >= im.W {
					continue
				}
				s += row[xx] * kern[k+radius]
			}
			orow[x] = s
		}
	}
	// Vertical pass.
	out := raster.NewImage(im.W, im.H)
	for x := 0; x < im.W; x++ {
		for y := 0; y < im.H; y++ {
			s := 0.0
			for k := -radius; k <= radius; k++ {
				yy := y + k
				if yy < 0 || yy >= im.H {
					continue
				}
				s += tmp.Pix[yy*im.W+x] * kern[k+radius]
			}
			out.Pix[y*im.W+x] = s
		}
	}
	return out
}

// AerialFFT computes the same aerial image as Aerial but convolves with
// explicit 2-D kernel grids through internal/fft instead of the separable
// two-pass filter. It exists for two reasons: it validates the fast path
// (the package tests assert agreement), and it accepts non-separable
// kernels via SimulateKernels for users replacing the Gaussian optics with
// tabulated SOCS kernels.
func (s *Simulator) AerialFFT(mask *raster.Image, defocus float64) (*raster.Image, error) {
	widen := 1 + s.cfg.Optics.DefocusSpread*defocus
	kernels := make([]*raster.Image, len(s.cfg.Optics.Kernels))
	for i, k := range s.cfg.Optics.Kernels {
		kernels[i] = gaussianKernelImage(k.SigmaNM * widen / float64(s.cfg.ResNM))
	}
	return s.SimulateKernels(mask, kernels, s.weights)
}

// SimulateKernels computes I = Σ w_i (mask ⊛ K_i)² for arbitrary kernel
// grids (odd dimensions recommended so the centre is well-defined).
func (s *Simulator) SimulateKernels(mask *raster.Image, kernels []*raster.Image, weights []float64) (*raster.Image, error) {
	if len(kernels) == 0 || len(kernels) != len(weights) {
		return nil, fmt.Errorf("litho: need matching kernels and weights, got %d/%d", len(kernels), len(weights))
	}
	out := raster.NewImage(mask.W, mask.H)
	for i, k := range kernels {
		field, err := fft.ConvolveSame2D(mask.Pix, mask.H, mask.W, k.Pix, k.H, k.W)
		if err != nil {
			return nil, err
		}
		w := weights[i]
		for j, v := range field {
			out.Pix[j] += w * v * v
		}
	}
	return out, nil
}

// gaussianKernelImage renders a normalized 2-D Gaussian kernel truncated at
// 3σ as an image grid.
func gaussianKernelImage(sigmaPx float64) *raster.Image {
	radius := int(math.Ceil(3 * sigmaPx))
	if radius < 1 {
		radius = 1
	}
	side := 2*radius + 1
	k := raster.NewImage(side, side)
	sum := 0.0
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			dx, dy := float64(x-radius), float64(y-radius)
			v := math.Exp(-(dx*dx + dy*dy) / (2 * sigmaPx * sigmaPx))
			k.Set(x, y, v)
			sum += v
		}
	}
	for i := range k.Pix {
		k.Pix[i] /= sum
	}
	return k
}
