package litho

import (
	"math"
	"sync"

	"hotspot/internal/obs"
)

// ODSTSecondsPerCorner is the simulated lithography verification cost of
// printing and analyzing one process corner of one clip, in ODST seconds.
// The paper charges ≈10 s per clip for its industrial ODST simulator;
// DefaultConfig checks five process corners, so pricing a corner at 2 s
// reproduces that figure while letting reduced-corner configurations pay
// proportionally less.
const ODSTSecondsPerCorner = 2.0

// LabelCost returns the simulated ODST seconds charged for labeling one
// clip under this configuration. Every corner in the process window is
// printed and analyzed by the hotspot oracle, so the cost scales with the
// corner count; it is the explicit form of the 10 s/clip constant the
// paper cites (see eval.SimSecondsPerClip, which re-exports the default).
func (c Config) LabelCost() float64 {
	return ODSTSecondsPerCorner * float64(len(c.Corners))
}

// DefaultLabelCost is DefaultConfig().LabelCost(): the per-clip price of a
// label from the default five-corner process, 10 ODST seconds.
func DefaultLabelCost() float64 { return DefaultConfig().LabelCost() }

// Budget meters simulated labeling spend in ODST seconds. Labeling is the
// scarce resource of the hotspot-detection setting — the active-learning
// loop charges every ground-truth query against a Budget and stops
// selecting once the remaining budget cannot cover another clip.
//
// Spend is exported through internal/obs: a monotone counter of charged
// milliseconds (hsd_litho_odst_milliseconds_total — counters are integers,
// and the corner-priced costs are exact in ms), a counter of labels
// charged (hsd_litho_labels_total), and, for finite budgets, a gauge of
// the remaining seconds (hsd_litho_budget_remaining_seconds). The series
// are process-wide like every obs metric: multiple budgets accumulate into
// the same counters, and the gauge shows the most recently charged budget.
//
// Safe for concurrent use; nothing read from the meter feeds any
// computation except the charge decision itself, which is a pure function
// of the charge sequence.
type Budget struct {
	mu     sync.Mutex
	total  float64 // <= 0 means unlimited
	spent  float64
	labels int64

	spentMS   *obs.Counter
	labelsTot *obs.Counter
	remaining *obs.Gauge
}

// NewBudget builds a budget of the given ODST seconds; seconds <= 0 means
// unlimited (charges always succeed, spend is still metered).
func NewBudget(seconds float64) *Budget {
	reg := obs.Default()
	b := &Budget{
		total:     seconds,
		spentMS:   reg.Counter("hsd_litho_odst_milliseconds_total"),
		labelsTot: reg.Counter("hsd_litho_labels_total"),
	}
	if seconds > 0 {
		b.remaining = reg.Gauge("hsd_litho_budget_remaining_seconds", 3)
		b.remaining.Set(seconds)
	}
	return b
}

// TryCharge charges one label of the given cost against the budget. It
// returns false — and charges nothing — when the remaining budget cannot
// cover the full cost, so a caller labeling a batch stops deterministically
// at the first clip it cannot afford.
func (b *Budget) TryCharge(seconds float64) bool {
	if seconds < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total > 0 && b.spent+seconds > b.total {
		return false
	}
	b.spent += seconds
	b.labels++
	b.spentMS.Add(int64(math.Round(seconds * 1000)))
	b.labelsTot.Inc()
	if b.remaining != nil {
		b.remaining.Set(b.total - b.spent)
	}
	return true
}

// Total returns the configured budget in seconds (<= 0 when unlimited).
func (b *Budget) Total() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Spent returns the ODST seconds charged so far.
func (b *Budget) Spent() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Remaining returns the seconds left, or +Inf for an unlimited budget.
func (b *Budget) Remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total <= 0 {
		return math.Inf(1)
	}
	return b.total - b.spent
}

// Labels returns the number of labels charged so far.
func (b *Budget) Labels() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.labels
}
