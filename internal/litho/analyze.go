package litho

import (
	"fmt"

	"hotspot/internal/raster"
)

// DefectKind classifies a printability violation.
type DefectKind int

const (
	// DefectNone means the pattern printed within tolerance.
	DefectNone DefectKind = iota
	// DefectOpen means drawn geometry failed to print (pullback, necking,
	// or a full open) beyond the EPE tolerance.
	DefectOpen
	// DefectBridge means printing extended beyond drawn geometry by more
	// than the bridge tolerance, or fused two distinct drawn shapes.
	DefectBridge
)

// String implements fmt.Stringer.
func (d DefectKind) String() string {
	switch d {
	case DefectNone:
		return "none"
	case DefectOpen:
		return "open"
	case DefectBridge:
		return "bridge"
	default:
		return fmt.Sprintf("DefectKind(%d)", int(d))
	}
}

// CornerResult is the printability verdict at one process corner.
type CornerResult struct {
	Condition Condition
	Defect    DefectKind
	// Violations counts the defective pixels inside the analysis region; a
	// severity indicator for diagnostics.
	Violations int
}

// Report is the full process-window analysis of one mask.
type Report struct {
	Corners []CornerResult
	// Hotspot is true when any corner produced a defect.
	Hotspot bool
	// WindowFraction is the fraction of corners that printed cleanly — a
	// process-window size proxy (1.0 = robust pattern).
	WindowFraction float64
}

// Region is a pixel-space rectangle [X0,X1)×[Y0,Y1) restricting analysis to
// the interior of a clip so that dark-field boundary effects of the finite
// simulation window are not scored.
type Region struct {
	X0, Y0, X1, Y1 int
}

// Analyze runs the full process-window printability analysis of a mask
// raster (at Config.ResNM nm/px), scoring defects only inside region.
//
// The per-corner checks are the standard EPE-style tolerances:
//
//   - open: a drawn (target) pixel farther than the EPE tolerance from any
//     printed pixel — catches pullback, necking breaks and full opens;
//   - bridge: a printed pixel farther than the bridge tolerance from any
//     drawn pixel, or a printed connected component that fuses two distinct
//     drawn shapes (a short), however narrow the fused gap is.
func (s *Simulator) Analyze(mask *raster.Image, region Region) (Report, error) {
	if region.X0 < 0 || region.Y0 < 0 || region.X1 > mask.W || region.Y1 > mask.H ||
		region.X0 >= region.X1 || region.Y0 >= region.Y1 {
		return Report{}, fmt.Errorf("litho: analysis region (%d,%d)-(%d,%d) invalid for %dx%d mask",
			region.X0, region.Y0, region.X1, region.Y1, mask.W, mask.H)
	}

	target := mask.Threshold(0.5)
	epePx := s.cfg.EPEToleranceNM / s.cfg.ResNM
	bridgePx := s.cfg.BridgeToleranceNM / s.cfg.ResNM
	// Printing within bridgePx of drawn geometry is tolerated.
	nearTarget := Dilate(target, bridgePx)
	targetLabels, _ := label4(target)

	// Group corners by defocus: dose only rescales the threshold, so one
	// aerial image serves every dose at the same defocus.
	aerials := make(map[float64]*raster.Image)
	rep := Report{Corners: make([]CornerResult, len(s.cfg.Corners))}
	clean := 0
	for i, cond := range s.cfg.Corners {
		aerial, ok := aerials[cond.Defocus]
		if !ok {
			aerial = s.Aerial(mask, cond.Defocus)
			aerials[cond.Defocus] = aerial
		}
		printed := s.Print(aerial, cond.Dose)
		kind, count := s.scoreDefects(printed, target, nearTarget, targetLabels, region, epePx)
		rep.Corners[i] = CornerResult{Condition: cond, Defect: kind, Violations: count}
		if kind == DefectNone {
			clean++
		} else {
			rep.Hotspot = true
		}
	}
	rep.WindowFraction = float64(clean) / float64(len(s.cfg.Corners))
	return rep, nil
}

func (s *Simulator) scoreDefects(printed, target, nearTarget *raster.Image, targetLabels []int, region Region, epePx int) (DefectKind, int) {
	w := printed.W
	nearPrinted := Dilate(printed, epePx)

	opens, bridges := 0, 0
	for y := region.Y0; y < region.Y1; y++ {
		base := y * w
		for x := region.X0; x < region.X1; x++ {
			i := base + x
			if target.Pix[i] >= 0.5 && nearPrinted.Pix[i] < 0.5 {
				opens++
			} else if printed.Pix[i] >= 0.5 && nearTarget.Pix[i] < 0.5 {
				bridges++
			}
		}
	}

	// Shorts: a printed component that touches two distinct target shapes
	// and intersects the analysis region.
	if bridges == 0 {
		printedLabels, nComp := label4(printed)
		if nComp > 0 {
			first := make([]int, nComp+1) // printed label -> first target label seen (0 = none)
			merged := make([]bool, nComp+1)
			inRegion := make([]bool, nComp+1)
			for y := 0; y < printed.H; y++ {
				base := y * w
				for x := 0; x < w; x++ {
					i := base + x
					pl := printedLabels[i]
					if pl == 0 {
						continue
					}
					if y >= region.Y0 && y < region.Y1 && x >= region.X0 && x < region.X1 {
						inRegion[pl] = true
					}
					tl := targetLabels[i]
					if tl == 0 {
						continue
					}
					switch first[pl] {
					case 0:
						first[pl] = tl
					case tl:
					default:
						merged[pl] = true
					}
				}
			}
			for pl := 1; pl <= nComp; pl++ {
				if merged[pl] && inRegion[pl] {
					bridges++
				}
			}
		}
	}

	switch {
	case opens > 0:
		return DefectOpen, opens + bridges
	case bridges > 0:
		return DefectBridge, bridges
	default:
		return DefectNone, 0
	}
}

// label4 labels 4-connected components of a binary image. Returns a
// per-pixel label array (0 = background, labels start at 1) and the number
// of components.
func label4(im *raster.Image) ([]int, int) {
	labels := make([]int, len(im.Pix))
	next := 0
	var stack []int
	for start, v := range im.Pix {
		if v < 0.5 || labels[start] != 0 {
			continue
		}
		next++
		labels[start] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			y, x := i/im.W, i%im.W
			for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
				ny, nx := y+d[0], x+d[1]
				if ny < 0 || ny >= im.H || nx < 0 || nx >= im.W {
					continue
				}
				j := ny*im.W + nx
				if im.Pix[j] >= 0.5 && labels[j] == 0 {
					labels[j] = next
					stack = append(stack, j)
				}
			}
		}
	}
	return labels, next
}

// IsHotspot is the convenience oracle: simulate and return only the label.
func (s *Simulator) IsHotspot(mask *raster.Image, region Region) (bool, error) {
	rep, err := s.Analyze(mask, region)
	if err != nil {
		return false, err
	}
	return rep.Hotspot, nil
}
