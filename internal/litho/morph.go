package litho

import "hotspot/internal/raster"

// Erode returns the binary erosion of im (values >= 0.5 are foreground)
// with a square structuring element of Chebyshev radius r: a pixel stays 1
// only when every pixel within the (2r+1)² window is 1. Pixels outside the
// image count as background, so foreground touching the border erodes.
func Erode(im *raster.Image, r int) *raster.Image {
	return morph(im, r, true)
}

// Dilate returns the binary dilation of im with a square structuring
// element of Chebyshev radius r: a pixel becomes 1 when any pixel within
// the window is 1.
func Dilate(im *raster.Image, r int) *raster.Image {
	return morph(im, r, false)
}

// morph runs a separable sliding-window min (erode) or max (dilate) over
// rows then columns; a square window separates exactly.
func morph(im *raster.Image, r int, erode bool) *raster.Image {
	if r <= 0 {
		return binarize(im)
	}
	src := binarize(im)
	tmp := raster.NewImage(im.W, im.H)
	// Horizontal pass.
	for y := 0; y < im.H; y++ {
		row := src.Pix[y*im.W : (y+1)*im.W]
		orow := tmp.Pix[y*im.W : (y+1)*im.W]
		for x := 0; x < im.W; x++ {
			v := windowOp(row, x, r, im.W, erode)
			orow[x] = v
		}
	}
	// Vertical pass.
	out := raster.NewImage(im.W, im.H)
	col := make([]float64, im.H)
	for x := 0; x < im.W; x++ {
		for y := 0; y < im.H; y++ {
			col[y] = tmp.Pix[y*im.W+x]
		}
		for y := 0; y < im.H; y++ {
			out.Pix[y*im.W+x] = windowOp(col, y, r, im.H, erode)
		}
	}
	return out
}

func windowOp(line []float64, i, r, n int, erode bool) float64 {
	lo, hi := i-r, i+r
	if erode {
		// Out-of-bounds counts as 0, so the window immediately fails.
		if lo < 0 || hi >= n {
			return 0
		}
		for j := lo; j <= hi; j++ {
			if line[j] < 0.5 {
				return 0
			}
		}
		return 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	for j := lo; j <= hi; j++ {
		if line[j] >= 0.5 {
			return 1
		}
	}
	return 0
}

func binarize(im *raster.Image) *raster.Image {
	return im.Threshold(0.5)
}
