package litho

import (
	"fmt"

	"hotspot/internal/raster"
)

// RuleViolations summarizes a design-rule check of drawn geometry: the
// other half of the physical-verification flow the paper situates hotspot
// detection in (DRC-clean layouts can still fail lithography — that is the
// entire premise).
type RuleViolations struct {
	// WidthPixels counts pixels belonging to drawn features narrower than
	// the minimum width.
	WidthPixels int
	// SpacePixels counts pixels of gaps narrower than the minimum space.
	SpacePixels int
}

// Clean reports whether no rule was violated.
func (v RuleViolations) Clean() bool { return v.WidthPixels == 0 && v.SpacePixels == 0 }

// CheckRules runs a raster DRC over the mask inside region: minimum drawn
// width and minimum space, both in pixels (Chebyshev metric). Width
// violations are pixels removed by a morphological opening with radius
// ⌊(minWidth−1)/2⌋; space violations are gap pixels filled by the closing
// with radius ⌊(minSpace−1)/2⌋. A feature exactly at the minimum passes.
func CheckRules(mask *raster.Image, region Region, minWidthPx, minSpacePx int) (RuleViolations, error) {
	if minWidthPx < 1 || minSpacePx < 1 {
		return RuleViolations{}, fmt.Errorf("litho: rule minima must be >= 1 pixel")
	}
	if region.X0 < 0 || region.Y0 < 0 || region.X1 > mask.W || region.Y1 > mask.H ||
		region.X0 >= region.X1 || region.Y0 >= region.Y1 {
		return RuleViolations{}, fmt.Errorf("litho: invalid DRC region")
	}
	target := mask.Threshold(0.5)
	var v RuleViolations

	if r := (minWidthPx - 1) / 2; r > 0 {
		opened := Dilate(Erode(target, r), r)
		for y := region.Y0; y < region.Y1; y++ {
			for x := region.X0; x < region.X1; x++ {
				i := y*mask.W + x
				if target.Pix[i] >= 0.5 && opened.Pix[i] < 0.5 {
					v.WidthPixels++
				}
			}
		}
	}
	if r := (minSpacePx - 1) / 2; r > 0 {
		closed := Erode(Dilate(target, r), r)
		for y := region.Y0; y < region.Y1; y++ {
			for x := region.X0; x < region.X1; x++ {
				i := y*mask.W + x
				if target.Pix[i] < 0.5 && closed.Pix[i] >= 0.5 {
					v.SpacePixels++
				}
			}
		}
	}
	return v, nil
}
