package hotspot_test

import (
	"math/rand"
	"testing"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/tensor"
	"hotspot/internal/train"
)

// paperShapedSamples builds n synthetic training samples with the paper's
// feature-tensor shape (32, 12, 12), alternating labels.
func paperShapedSamples(n int, seed int64) []train.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]train.Sample, n)
	for i := range out {
		x := tensor.New(32, 12, 12)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		out[i] = train.Sample{X: x, Hotspot: i%2 == 0}
	}
	return out
}

// benchMGD times full MGD iterations (batch 8) of the Table 1 network at a
// given worker count. One b.N unit = one optimization step.
func benchMGD(b *testing.B, workers int) {
	b.Helper()
	samples := paperShapedSamples(64, 11)
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := train.MGDConfig{
		LearningRate: 0.01,
		DecayFactor:  0.5,
		DecayStep:    1 << 30,
		BatchSize:    8,
		MaxIters:     b.N,
		ValEvery:     0,
		Seed:         5,
		Workers:      workers,
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := train.MGD(net, samples, nil, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMGDParallel compares gradient-parallel training against the
// serial baseline; the weight trajectories are bit-identical, only the
// wall clock differs.
func BenchmarkMGDParallel(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchMGD(b, 1) })
	b.Run("workers=4", func(b *testing.B) { benchMGD(b, 4) })
}

// benchEvalSet times full-set inference (64 paper-shaped samples per
// iteration) at a given worker count.
func benchEvalSet(b *testing.B, workers int) {
	b.Helper()
	samples := paperShapedSamples(64, 13)
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		b.Fatal(err)
	}
	ev, err := train.NewEvaluator(net, workers)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalSet(samples, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalSetParallel(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchEvalSet(b, 1) })
	b.Run("workers=4", func(b *testing.B) { benchEvalSet(b, 4) })
}

// benchExtractTensors times batch feature-tensor extraction (rasterization
// + blocked DCT) over 16 ICCAD-style clips at a given worker count.
func benchExtractTensors(b *testing.B, workers int) {
	b.Helper()
	style := layout.StyleICCAD()
	rng := rand.New(rand.NewSource(17))
	clips := make([]geom.Clip, 16)
	for i := range clips {
		clips[i] = layout.Generate(style, rng)
	}
	cfg := feature.DefaultTensorConfig()
	core := style.CoreRect()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feature.ExtractTensors(clips, core, cfg, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractTensors(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchExtractTensors(b, 1) })
	b.Run("workers=4", func(b *testing.B) { benchExtractTensors(b, 4) })
}
