// Command lithosim demonstrates the lithography-simulation substrate on
// three canonical patterns: a robust isolated wire, a wire at the
// printability cliff, and a pair of wires with a bridging-risk gap. It
// prints each pattern's aerial-image cross-section and its process-window
// report — the same oracle that labels every benchmark clip.
//
// Run with: go run ./examples/lithosim
package main

import (
	"fmt"
	"log"
	"strings"

	"hotspot/internal/geom"
	"hotspot/internal/litho"
	"hotspot/internal/raster"
)

func main() {
	cfg := litho.DefaultConfig()
	sim, err := litho.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	patterns := []struct {
		name  string
		rects []geom.Rect
	}{
		{"robust 96nm isolated wire", []geom.Rect{geom.R(452, 128, 548, 896)}},
		{"marginal 52nm wire (cliff)", []geom.Rect{geom.R(474, 128, 526, 896)}},
		{"bridging pair, 48nm gap", []geom.Rect{
			geom.R(380, 128, 476, 896),
			geom.R(524, 128, 620, 896),
		}},
	}

	for _, p := range patterns {
		clip := geom.NewClip(geom.R(0, 0, 1024, 1024), p.rects)
		mask, err := raster.Rasterize(clip, cfg.ResNM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", p.name)

		// Horizontal aerial-intensity cross-section through the middle.
		aerial := sim.Aerial(mask, 0)
		mid := mask.H / 2
		fmt.Println("aerial intensity across y-midline (x in nm, I in [0,1]):")
		var bar strings.Builder
		for x := 40; x < mask.W-40; x += 4 {
			i := aerial.At(x, mid)
			mark := " "
			if i >= cfg.Resist.Threshold {
				mark = "#"
			}
			bar.WriteString(mark)
		}
		fmt.Printf("  printed: |%s|\n", bar.String())

		region := litho.Region{X0: 16, Y0: 16, X1: mask.W - 16, Y1: mask.H - 16}
		rep, err := sim.Analyze(mask, region)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  process window: %.0f%% of corners clean, hotspot=%v\n",
			100*rep.WindowFraction, rep.Hotspot)
		for _, c := range rep.Corners {
			fmt.Printf("    dose=%.2f defocus=%.0f -> %-6s (%d violations)\n",
				c.Condition.Dose, c.Condition.Defocus, c.Defect, c.Violations)
		}
		fmt.Println()
	}
}
