// Command biasedlearning demonstrates the paper's central training idea
// (Algorithm 2 and Figure 4): after converging with hard targets, the
// non-hotspot ground truth is softened to [1−ε, ε] and the network is
// fine-tuned, raising hotspot recall at far lower false-alarm cost than
// shifting the decision boundary of the original model.
//
// Run with: go run ./examples/biasedlearning
package main

import (
	"fmt"
	"log"

	"hotspot/internal/dataset"
	"hotspot/internal/feature"
	"hotspot/internal/layout"
	"hotspot/internal/nn"
	"hotspot/internal/train"
)

func main() {
	log.SetFlags(0)

	// A compact Industry3-style suite (the paper runs Figure 4 there).
	style := layout.StyleIndustry3()
	counts := layout.Counts{TrainHS: 60, TrainNHS: 140, TestHS: 40, TestNHS: 100}
	fmt.Println("generating labelled clips...")
	suite, err := layout.BuildSuite(style, counts, layout.BuildOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	cfg := train.MGDConfig{
		LearningRate: 0.02, DecayFactor: 0.5, DecayStep: 400,
		BatchSize: 16, MaxIters: 800, ValEvery: 100, Patience: 0,
		BalanceClasses: true, Seed: 7,
	}
	ds := dataset.FromSuite(suite, style)
	tens, err := dataset.TensorSamples(ds.Train, ds.Core(), feature.DefaultTensorConfig(), 0)
	if err != nil {
		log.Fatal(err)
	}
	testT, err := dataset.TensorSamples(ds.Test, ds.Core(), feature.DefaultTensorConfig(), 0)
	if err != nil {
		log.Fatal(err)
	}
	trainSet, valSet, err := train.Split(tens, 0.25, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Initial model with hard targets (ε = 0).
	net, err := nn.NewPaperNet(nn.DefaultPaperNetConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training initial model (ε = 0)...")
	if _, err := train.MGD(net, trainSet, valSet, cfg); err != nil {
		log.Fatal(err)
	}
	initial, err := net.Clone()
	if err != nil {
		log.Fatal(err)
	}
	m0, err := train.EvalSet(net, testT, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: accuracy %.1f%%, false alarms %d\n\n", 100*m0.Recall, m0.FalseAlarms)

	// Biased fine-tuning vs matched boundary shifting.
	fine := cfg
	fine.MaxIters = 250
	fine.LearningRate = 0.004
	fmt.Printf("%-8s | %-22s | %-22s\n", "", "biased learning", "boundary shifting")
	fmt.Printf("%-8s | %8s %12s | %8s %12s\n", "ε", "accuracy", "false alarms", "accuracy", "false alarms")
	grid := make([]float64, 0, 100)
	for s := 0.0; s < 0.5; s += 0.005 {
		grid = append(grid, s)
	}
	for i, eps := range []float64{0.1, 0.2, 0.3} {
		fine.Eps = eps
		fine.Seed = int64(100 + i)
		if _, err := train.MGD(net, trainSet, valSet, fine); err != nil {
			log.Fatal(err)
		}
		mb, err := train.EvalSet(net, testT, 0)
		if err != nil {
			log.Fatal(err)
		}
		_, ms, _, err := train.MatchShiftToRecall(initial, testT, mb.Recall, grid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.1f | %7.1f%% %12d | %7.1f%% %12d\n",
			eps, 100*mb.Recall, mb.FalseAlarms, 100*ms.Recall, ms.FalseAlarms)
	}
	fmt.Println("\nbiased learning reaches each accuracy level with fewer false alarms,")
	fmt.Println("which is the paper's Figure 4 (each false alarm costs ~10 s of ODST).")
}
