// Command processwindow maps the process window of wires of decreasing
// width — the quantity that *defines* a hotspot in the paper's
// Preliminaries ("layout patterns with a smaller process window ... are
// defined as hotspots"). It sweeps dose × defocus for each width and
// prints the window as a small matrix, showing the window collapsing as
// the width approaches the lithographic cliff.
//
// Run with: go run ./examples/processwindow
package main

import (
	"fmt"
	"log"

	"hotspot/internal/geom"
	"hotspot/internal/litho"
	"hotspot/internal/raster"
)

func main() {
	log.SetFlags(0)
	cfg := litho.DefaultConfig()
	sim, err := litho.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	doses := []float64{0.90, 0.95, 1.00, 1.05, 1.10}
	defoci := []float64{0, 0.25, 0.5, 0.75, 1.0}

	fmt.Println("process window per wire width (rows: defocus; cols: dose; #=prints clean)")
	fmt.Println()
	for _, width := range []int{96, 72, 60, 52, 44} {
		clip := geom.NewClip(geom.R(0, 0, 1024, 1024), []geom.Rect{
			geom.R(512-width/2, 128, 512+width/2, 896),
		})
		mask, err := raster.Rasterize(clip, cfg.ResNM)
		if err != nil {
			log.Fatal(err)
		}
		region := litho.Region{X0: 16, Y0: 16, X1: mask.W - 16, Y1: mask.H - 16}
		rep, err := sim.MeasureWindow(mask, region, doses, defoci)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("width %3d nm   window %.0f%%   depth of focus %v\n",
			width, 100*rep.CleanFraction, rep.DepthOfFocus)
		fmt.Print("  dose:    ")
		for _, d := range doses {
			fmt.Printf("%5.2f", d)
		}
		fmt.Println()
		for di, defocus := range defoci {
			fmt.Printf("  f=%.2f    ", defocus)
			for j := range doses {
				p := rep.Points[di*len(doses)+j]
				if p.Clean {
					fmt.Print("    #")
				} else {
					fmt.Print("    .")
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("the shrinking window is exactly what the detector learns to predict")
	fmt.Println("from geometry alone — without running any of these simulations.")
}
