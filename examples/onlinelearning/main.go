// Command onlinelearning demonstrates the online-update capability that
// distinguishes the ICCAD'16 baseline (and that the paper's MGD inherits):
// a detector trained on an initial batch of lithography results is folded
// forward as newly labelled clips arrive, without retraining from scratch.
//
// Run with: go run ./examples/onlinelearning
package main

import (
	"fmt"
	"log"

	"hotspot/internal/baseline"
	"hotspot/internal/layout"
)

func main() {
	log.SetFlags(0)

	style := layout.StyleIndustry2()
	fmt.Println("generating labelled clips (three arrival waves + a test set)...")
	suite, err := layout.BuildSuite(style, layout.Counts{
		TrainHS: 90, TrainNHS: 210, TestHS: 30, TestNHS: 90,
	}, layout.BuildOptions{Seed: 12})
	if err != nil {
		log.Fatal(err)
	}

	// Split the training stream into three arrival waves.
	third := len(suite.Train) / 3
	waves := [][]layout.Sample{
		suite.Train[:third],
		suite.Train[third : 2*third],
		suite.Train[2*third:],
	}

	cfg := baseline.DefaultICCAD16Config()
	det, err := baseline.TrainICCAD16(waves[0], style.CoreRect(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := det.Evaluate(suite.Test, style.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wave 1 (%3d clips): accuracy %5.1f%%, false alarms %d\n",
		len(waves[0]), 100*res.Accuracy, res.FalseAlarms)

	for i, wave := range waves[1:] {
		if err := det.Update(wave, cfg.Rounds/4); err != nil {
			log.Fatal(err)
		}
		res, err = det.Evaluate(suite.Test, style.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wave %d (+%3d clips): accuracy %5.1f%%, false alarms %d\n",
			i+2, len(wave), 100*res.Accuracy, res.FalseAlarms)
	}
	fmt.Println("\neach Update call boosts additional rounds over the accumulated stream;")
	fmt.Println("no retraining from scratch — the online mode of the ICCAD'16 flow.")
}
