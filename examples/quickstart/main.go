// Command quickstart is the end-to-end API tour: generate a small labelled
// benchmark with the lithography oracle, train the paper's detector
// (feature tensor + CNN + biased learning), and evaluate it against the
// paper's metrics. Sized to finish in about two minutes on one core.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/layout"
	"hotspot/internal/obs"
)

func main() {
	log.SetFlags(0)

	// 1. Generate a small labelled suite in the ICCAD style. BuildSuite
	//    keeps sampling synthetic clips and labelling them with the
	//    lithography simulator until the requested composition is met.
	style := layout.StyleICCAD()
	counts := layout.Counts{TrainHS: 40, TrainNHS: 160, TestHS: 20, TestNHS: 80}
	fmt.Println("generating labelled clips (lithography oracle)...")
	watch := obs.NewStopwatch()
	suite, err := layout.BuildSuite(style, counts, layout.BuildOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	hs, nhs := dataset.Stats(suite.Train)
	fmt.Printf("  %d train clips (%d hotspot / %d not), %d test clips in %v\n",
		len(suite.Train), hs, nhs, len(suite.Test), watch.Elapsed().Round(time.Second))

	// 2. Build the detector: 12×12×32 feature tensors into the Table 1
	//    CNN, trained with biased learning. The quickstart shortens the
	//    schedule; defaults suit larger suites.
	cfg := core.DefaultConfig()
	cfg.Biased.Initial.MaxIters = 600
	cfg.Biased.Initial.ValEvery = 100
	cfg.Biased.Initial.DecayStep = 300
	cfg.Biased.FineTune.MaxIters = 150
	cfg.Biased.FineTune.ValEvery = 50
	cfg.Biased.Rounds = 3
	det, err := core.NewDetector(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training (biased learning: ε = 0.0, 0.1, 0.2)...")
	report, err := det.Train(suite.Train, style.CoreRect())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range report.Rounds {
		fmt.Printf("  ε=%.1f: validation recall %.0f%%, false alarms %d\n",
			r.Eps, 100*r.Val.Recall, r.Val.FalseAlarms)
	}

	// 3. Evaluate on held-out clips with the paper's metrics.
	res, err := det.Evaluate(suite.Test, style.CoreRect(), style.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test: accuracy (hotspot recall) %.1f%%, false alarms %d, ODST %.0f s\n",
		100*res.Accuracy, res.FalseAlarms, res.ODST)

	// 4. Classify a single new clip.
	clip := layout.Generate(style, rand.New(rand.NewSource(777)))
	p, err := det.Predict(clip, style.CoreRect())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one fresh clip: hotspot probability %.2f -> %v\n", p, p > 0.5)
}
