// Command featuretensor walks through Figure 1 of the paper: a layout clip
// is divided into blocks, each block is DCT-transformed, the coefficients
// are zig-zag flattened and truncated, and the clip is approximately
// recovered from the truncated tensor. It prints the compression ratio and
// reconstruction error, and renders the original and reconstructed clip as
// ASCII art.
//
// Run with: go run ./examples/featuretensor
package main

import (
	"fmt"
	"log"
	"math"

	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/raster"
)

func main() {
	// A 1200×1200 nm clip, as in the paper's Figure 1.
	clip := geom.NewClip(geom.R(0, 0, 1200, 1200), []geom.Rect{
		geom.R(100, 0, 180, 1200),
		geom.R(300, 0, 380, 700),
		geom.R(300, 800, 380, 1200),
		geom.R(520, 200, 600, 1200),
		geom.R(700, 0, 1100, 90),
		geom.R(760, 250, 840, 1000),
		geom.R(950, 250, 1160, 330),
		geom.R(950, 430, 1030, 1200),
	})

	cfg := feature.TensorConfig{Blocks: 12, K: 32, ResNM: 4}
	ft, err := feature.ExtractTensor(clip, clip.Frame, cfg)
	if err != nil {
		log.Fatal(err)
	}

	im, err := raster.Rasterize(clip, cfg.ResNM)
	if err != nil {
		log.Fatal(err)
	}
	blockPx := im.W / cfg.Blocks
	rec, err := feature.DecodeTensor(ft, blockPx, false)
	if err != nil {
		log.Fatal(err)
	}

	origPx := im.W * im.H
	tensorVals := ft.Len()
	fmt.Printf("clip: %d nm square, rasterized to %dx%d px\n", clip.Frame.W(), im.W, im.H)
	fmt.Printf("feature tensor: %v  (n=%d blocks, k=%d of %d DCT coefficients per block)\n",
		ft.Shape(), cfg.Blocks, cfg.K, blockPx*blockPx)
	fmt.Printf("compression: %d px -> %d values (%.1fx)\n",
		origPx, tensorVals, float64(origPx)/float64(tensorVals))

	var errE, sigE float64
	for i := range im.Pix {
		d := rec.Pix[i] - im.Pix[i]
		errE += d * d
		sigE += im.Pix[i] * im.Pix[i]
	}
	fmt.Printf("reconstruction relative L2 error: %.1f%% (energy preserved: %.1f%%)\n\n",
		100*math.Sqrt(errE/sigE), 100*(1-errE/sigE))

	// Downsample for terminal-sized ASCII rendering.
	small, err := im.Downsample(4)
	if err != nil {
		log.Fatal(err)
	}
	recSmall, err := rec.Downsample(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original clip:")
	fmt.Println(small.ASCII())
	fmt.Println("recovered from truncated feature tensor:")
	fmt.Println(recSmall.ASCII())
}
