// Command hsd-eval evaluates a trained model on a suite's test set and
// prints the Table-2-style row (false alarms, CPU, ODST, accuracy).
//
// Example:
//
//	hsd-eval -data iccad.gob -model model.gob
//	hsd-eval -data iccad.gob -model model.gob -shift 0.1   # shifted boundary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hotspot/internal/core"
	"hotspot/internal/dataset"
	"hotspot/internal/eval"
	"hotspot/internal/obs"
	"hotspot/internal/parallel"
	"hotspot/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-eval: ")
	var (
		data       = flag.String("data", "", "suite file written by hsd-gen (required)")
		model      = flag.String("model", "", "model file written by hsd-train (required)")
		shift      = flag.Float64("shift", 0, "decision-boundary shift λ (Equation (11))")
		workers    = flag.Int("workers", 0, "worker goroutines for extraction and inference (0 = GOMAXPROCS); metrics are identical for any value")
		fusedOn    = flag.Bool("fused", true, "run inference on the compiled fused engine (bit-identical to the layer-by-layer path; disable to pin the layered path)")
		metricsOut = flag.String("metrics-out", "", "dump the metrics registry as scrape text to this file at exit")
	)
	flag.Parse()
	parallel.SetDefault(*workers)
	obs.SetBuildInfo(obs.Default(), obs.L("tool", "hsd-eval"))
	if *data == "" || *model == "" {
		log.Fatal("-data and -model are required")
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}

	mf, err := os.Open(*model)
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.LoadDetector(mf, core.DefaultConfig())
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}

	watch := obs.NewStopwatch()
	testT, err := dataset.TensorSamples(ds.Test, ds.Core(), det.Config().Feature, *workers)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := train.NewEvaluator(det.Network(), *workers)
	if err != nil {
		log.Fatal(err)
	}
	ev.SetFused(*fusedOn)
	m, err := ev.EvalSet(testT, *shift)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eval.NewResult("Ours", ds.Name, m.TP, m.FP, m.FN, watch.Elapsed())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %6s %10s %12s %9s\n", "Bench", "FA#", "CPU(s)", "ODST(s)", "Accu")
	fmt.Printf("%-10s %s\n", res.Benchmark, res.Row())

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut); err != nil {
			log.Fatal(err)
		}
	}
}

// writeMetrics dumps the process metrics registry scrape text to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.Default().WriteText(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
