// Command hsd-inspect renders clips from a generated suite as ASCII art
// together with their lithography verdicts — a debugging lens into what the
// detectors actually see.
//
// Examples:
//
//	hsd-inspect -data iccad.gob -index 3
//	hsd-inspect -data iccad.gob -hotspots -n 2   # first 2 hotspots
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hotspot/internal/dataset"
	"hotspot/internal/layout"
	"hotspot/internal/litho"
	"hotspot/internal/raster"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-inspect: ")
	var (
		data     = flag.String("data", "", "suite file written by hsd-gen (required)")
		index    = flag.Int("index", -1, "specific test-set clip index to render")
		hotspots = flag.Bool("hotspots", false, "walk hotspot clips only")
		n        = flag.Int("n", 1, "number of clips to render")
		train    = flag.Bool("train", false, "inspect the training set instead of the test set")
	)
	flag.Parse()
	if *data == "" {
		log.Fatal("-data is required")
	}
	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := dataset.Load(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	set := ds.Test
	if *train {
		set = ds.Train
	}

	labeler, err := layout.NewLabeler(ds.Style, litho.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	shown := 0
	for i, s := range set {
		if *index >= 0 && i != *index {
			continue
		}
		if *index < 0 && *hotspots && !s.Hotspot {
			continue
		}
		if err := render(i, s, ds, labeler); err != nil {
			log.Fatal(err)
		}
		shown++
		if shown >= *n {
			break
		}
	}
	if shown == 0 {
		log.Fatal("no clip matched the selection")
	}
}

func render(i int, s layout.Sample, ds *dataset.Dataset, labeler *layout.Labeler) error {
	fmt.Printf("=== clip %d: hotspot=%v, %d rects, density %.2f ===\n",
		i, s.Hotspot, len(s.Clip.Rects), s.Clip.Density())
	im, err := raster.Rasterize(s.Clip, 16)
	if err != nil {
		return err
	}
	fmt.Println(im.ASCII())
	rep, err := labeler.Label(s.Clip)
	if err != nil {
		return err
	}
	fmt.Printf("process window: %.0f%% corners clean\n", 100*rep.WindowFraction)
	for _, c := range rep.Corners {
		fmt.Printf("  dose=%.2f defocus=%.0f -> %v (%d violations)\n",
			c.Condition.Dose, c.Condition.Defocus, c.Defect, c.Violations)
	}
	fmt.Println()
	return nil
}
