package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"hotspot/internal/nn"
	"hotspot/internal/nn/fused"
	"hotspot/internal/obs"
	"hotspot/internal/tensor"
)

// The -exp infer suite benchmarks the layer-by-layer inference path
// against the fused engine on the paper's Table 1 geometries: each conv
// stage and FC layer in isolation, then the full network end to end at
// batch sizes 1, 8 and 32. Before any timing it gates on parity — every
// target's fused output must match the layered output bit for bit, or the
// run fails — so the report can never show a speedup for a kernel that
// changed the numbers. Results go to -infer-out as JSON (BENCH_infer.json
// is the checked-in record) with ns/op, B/op and allocs/op per path, and
// the geometric-mean end-to-end speedup across batch sizes.

// inferTarget is one benchmark subject: a network plus its input shape.
type inferTarget struct {
	name  string
	net   *nn.Network
	shape []int
	batch int
}

// inferEntry is one row of the JSON report. ns/op, B/op and allocs/op are
// per single forward pass (batch runs divide by the batch size).
type inferEntry struct {
	Name  string `json:"name"`
	Batch int    `json:"batch"`
	// Reps is the repetition count actually timed — the -infer-reps value
	// when fixed, the calibrated count otherwise (calibration is
	// per-target, so the count varies per row).
	Reps            int     `json:"reps"`
	LayeredNsOp     float64 `json:"layered_ns_op"`
	FusedNsOp       float64 `json:"fused_ns_op"`
	LayeredBOp      float64 `json:"layered_b_op"`
	FusedBOp        float64 `json:"fused_b_op"`
	LayeredAllocsOp float64 `json:"layered_allocs_op"`
	FusedAllocsOp   float64 `json:"fused_allocs_op"`
	Speedup         float64 `json:"speedup"`
}

// inferReport is the -infer-out JSON document.
type inferReport struct {
	GOOS           string       `json:"goos"`
	GOARCH         string       `json:"goarch"`
	NumCPU         int          `json:"num_cpu"`
	Kernel         string       `json:"kernel"` // fused conv-row kernel: avx2 or generic
	Entries        []inferEntry `json:"entries"`
	GeomeanSpeedup float64      `json:"geomean_e2e_speedup"` // over end-to-end entries
}

// inferTargets builds the benchmark subjects from the Table 1
// configuration: each stage as a standalone network with the shape it sees
// inside the full net, plus the full network end to end.
func inferTargets() ([]inferTarget, []inferTarget, error) {
	cfg := nn.DefaultPaperNetConfig()
	rng := rand.New(rand.NewSource(7))
	k, n := cfg.InChannels, cfg.SpatialSize
	c1, c2, fc1 := cfg.Conv1Maps, cfg.Conv2Maps, cfg.FC1

	conv := func(name string, inC, outC int, pool bool) (*nn.Network, error) {
		c, err := nn.NewConv2D(name, inC, outC, 3, 1, 1, rng)
		if err != nil {
			return nil, err
		}
		layers := []nn.Layer{c, nn.NewReLU(name + "-relu")}
		if pool {
			layers = append(layers, nn.NewMaxPool2(name+"-pool"))
		}
		return nn.NewNetwork(layers...), nil
	}
	dense := func(name string, in, out int, relu bool) (*nn.Network, error) {
		d, err := nn.NewDense(name, in, out, rng)
		if err != nil {
			return nil, err
		}
		layers := []nn.Layer{d}
		if relu {
			layers = append(layers, nn.NewReLU(name+"-relu"))
		}
		return nn.NewNetwork(layers...), nil
	}

	var layersT []inferTarget
	add := func(name string, net *nn.Network, err error, shape ...int) error {
		if err != nil {
			return err
		}
		layersT = append(layersT, inferTarget{name: name, net: net, shape: shape, batch: 1})
		return nil
	}
	s1, err := conv("conv1-1", k, c1, false)
	if err := add("conv1-1", s1, err, k, n, n); err != nil {
		return nil, nil, err
	}
	s2, err := conv("conv1-2", c1, c1, true)
	if err := add("conv1-2+pool", s2, err, c1, n, n); err != nil {
		return nil, nil, err
	}
	s3, err := conv("conv2-1", c1, c2, false)
	if err := add("conv2-1", s3, err, c1, n/2, n/2); err != nil {
		return nil, nil, err
	}
	s4, err := conv("conv2-2", c2, c2, true)
	if err := add("conv2-2+pool", s4, err, c2, n/2, n/2); err != nil {
		return nil, nil, err
	}
	flat := c2 * (n / 4) * (n / 4)
	d1, err := dense("fc1", flat, fc1, true)
	if err := add("fc1", d1, err, flat); err != nil {
		return nil, nil, err
	}
	d2, err := dense("fc2", fc1, 2, false)
	if err := add("fc2", d2, err, fc1); err != nil {
		return nil, nil, err
	}

	var e2e []inferTarget
	for _, batch := range []int{1, 8, 32} {
		net, err := nn.NewPaperNet(cfg)
		if err != nil {
			return nil, nil, err
		}
		e2e = append(e2e, inferTarget{
			name: "papernet", net: net, shape: []int{k, n, n}, batch: batch,
		})
	}
	return layersT, e2e, nil
}

// inferInputs builds a target's seeded random input batch.
func inferInputs(tg inferTarget, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]*tensor.Tensor, tg.batch)
	for i := range xs {
		x := tensor.New(tg.shape...)
		for j := range x.Data() {
			x.Data()[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

// checkInferParity fails unless the fused engine reproduces the layered
// forward bit for bit on every input of the batch.
func checkInferParity(tg inferTarget, eng *fused.Engine, xs []*tensor.Tensor) error {
	for i, x := range xs {
		want, err := tg.net.Forward(x, false)
		if err != nil {
			return fmt.Errorf("%s: layered forward: %w", tg.name, err)
		}
		wantCopy := append([]float64(nil), want.Data()...)
		got, err := eng.Forward(x)
		if err != nil {
			return fmt.Errorf("%s: fused forward: %w", tg.name, err)
		}
		for j := range wantCopy {
			if math.Float64bits(got[j]) != math.Float64bits(wantCopy[j]) {
				return fmt.Errorf("%s: PARITY FAILURE on input %d element %d: fused %v (bits %x) != layered %v (bits %x)",
					tg.name, i, j, got[j], math.Float64bits(got[j]), wantCopy[j], math.Float64bits(wantCopy[j]))
			}
		}
	}
	return nil
}

// timeInfer measures one path. run executes one forward pass over one
// input; reps full batch sweeps are timed with obs.Stopwatch, and heap
// traffic comes from the monotonic runtime.MemStats counters, so a GC
// mid-measurement cannot skew B/op.
func timeInfer(reps int, xs []*tensor.Tensor, run func(*tensor.Tensor) error) (nsOp, bOp, allocsOp float64, err error) {
	for _, x := range xs { // warm up layer caches and page in buffers
		if err := run(x); err != nil {
			return 0, 0, 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	watch := obs.NewStopwatch()
	for r := 0; r < reps; r++ {
		for _, x := range xs {
			if err := run(x); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	elapsed := watch.Elapsed()
	runtime.ReadMemStats(&after)
	ops := float64(reps) * float64(len(xs))
	nsOp = float64(elapsed.Nanoseconds()) / ops
	bOp = float64(after.TotalAlloc-before.TotalAlloc) / ops
	allocsOp = float64(after.Mallocs-before.Mallocs) / ops
	return nsOp, bOp, allocsOp, nil
}

// calibrateReps picks a rep count so each measurement runs ≥ minTime.
func calibrateReps(xs []*tensor.Tensor, run func(*tensor.Tensor) error, minTime time.Duration) (int, error) {
	watch := obs.NewStopwatch()
	for _, x := range xs {
		if err := run(x); err != nil {
			return 0, err
		}
	}
	per := watch.Elapsed()
	if per <= 0 {
		per = time.Nanosecond
	}
	reps := int(minTime/per) + 1
	const maxReps = 1 << 20
	if reps > maxReps {
		reps = maxReps
	}
	return reps, nil
}

// benchInferTarget measures one target on both paths and returns its row.
func benchInferTarget(tg inferTarget, fixedReps int) (inferEntry, error) {
	eng, err := fused.Compile(tg.net, tg.shape)
	if err != nil {
		return inferEntry{}, fmt.Errorf("%s: compile: %w", tg.name, err)
	}
	xs := inferInputs(tg, 1000+int64(tg.batch))
	if err := checkInferParity(tg, eng, xs); err != nil {
		return inferEntry{}, err
	}
	layered := func(x *tensor.Tensor) error {
		_, err := tg.net.Forward(x, false)
		return err
	}
	fusedRun := func(x *tensor.Tensor) error {
		_, err := eng.Forward(x)
		return err
	}
	reps := fixedReps
	if reps <= 0 {
		if reps, err = calibrateReps(xs, layered, 150*time.Millisecond); err != nil {
			return inferEntry{}, err
		}
	}
	e := inferEntry{Name: tg.name, Batch: tg.batch, Reps: reps}
	if e.LayeredNsOp, e.LayeredBOp, e.LayeredAllocsOp, err = timeInfer(reps, xs, layered); err != nil {
		return inferEntry{}, err
	}
	if e.FusedNsOp, e.FusedBOp, e.FusedAllocsOp, err = timeInfer(reps, xs, fusedRun); err != nil {
		return inferEntry{}, err
	}
	if e.FusedNsOp > 0 {
		e.Speedup = e.LayeredNsOp / e.FusedNsOp
	}
	return e, nil
}

// runInfer executes the suite and writes the JSON report to outPath.
func runInfer(outPath string, fixedReps int) error {
	layersT, e2e, err := inferTargets()
	if err != nil {
		return err
	}
	rep := inferReport{
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Kernel: fused.Vectorized(),
	}
	logSum := 0.0
	nE2E := 0
	for _, tg := range append(append([]inferTarget(nil), layersT...), e2e...) {
		e, err := benchInferTarget(tg, fixedReps)
		if err != nil {
			return err
		}
		rep.Entries = append(rep.Entries, e)
		kind := "layer"
		if tg.name == "papernet" {
			kind = "e2e"
			logSum += math.Log(e.Speedup)
			nE2E++
		}
		fmt.Printf("%-14s %-5s batch=%-3d layered %10.0f ns/op %8.0f B/op %6.1f allocs/op | fused %10.0f ns/op %6.0f B/op %5.1f allocs/op | %.2fx\n",
			e.Name, kind, e.Batch,
			e.LayeredNsOp, e.LayeredBOp, e.LayeredAllocsOp,
			e.FusedNsOp, e.FusedBOp, e.FusedAllocsOp, e.Speedup)
	}
	if nE2E > 0 {
		rep.GeomeanSpeedup = math.Exp(logSum / float64(nE2E))
	}
	fmt.Printf("geomean end-to-end speedup: %.2fx (%s kernel)\n", rep.GeomeanSpeedup, rep.Kernel)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(outPath, buf, 0o644)
}
