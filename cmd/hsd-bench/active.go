package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"hotspot/internal/active"
	"hotspot/internal/feature"
	"hotspot/internal/geom"
	"hotspot/internal/layout"
	"hotspot/internal/litho"
	"hotspot/internal/nn"
	"hotspot/internal/nn/fused"
	"hotspot/internal/obs"
	"hotspot/internal/parallel"
	"hotspot/internal/train"
)

// The -exp active suite benchmarks the batch active-learning loop. Before
// any timing it gates on the loop's determinism contract: a full run with
// -workers 1 and one with 8 must produce bit-identical selected-clip
// sequences and final weight checksums, or the run fails. It then times
// the selection stage (score + hybrid k-center pick over the pool) and
// runs the loop head-to-head against the random baseline, reporting the
// rounds each needs to first reach the target held-out accuracy. Results
// go to -active-out as JSON (BENCH_active.json is the checked-in record).

// activeArm times the selection stage at one worker count.
type activeArm struct {
	// NsSelect is the mean wall time of one score+select pass.
	NsSelect float64 `json:"ns_select"`
	// NsPerClip divides by the pool clips scored per pass.
	NsPerClip float64 `json:"ns_per_clip"`
	// ClipsPerSec is the selection-stage throughput.
	ClipsPerSec float64 `json:"clips_per_sec"`
	// Workers is the worker count of this arm.
	Workers int `json:"workers"`
	// Reps is the repetition count timed.
	Reps int `json:"reps"`
}

// activeReport is the -active-out JSON document.
type activeReport struct {
	GOOS    string `json:"goos"`
	GOARCH  string `json:"goarch"`
	NumCPU  int    `json:"num_cpu"`
	Kernel  string `json:"kernel"`
	Workers int    `json:"workers"`

	Pool   int `json:"pool"`
	Eval   int `json:"eval"`
	Batch  int `json:"batch"`
	Rounds int `json:"rounds"`
	Iters  int `json:"iters"`

	// ParityChecksum is the weight checksum both gated worker counts
	// reproduced bit for bit.
	ParityChecksum string `json:"parity_checksum"`

	Select1 activeArm `json:"select_workers1"`
	SelectN activeArm `json:"select_workersN"`

	// TargetAccuracy and the first 1-based round each strategy reached it
	// (0 = never within Rounds). Both strategies run the same pool, seed
	// and fine-tune schedule.
	TargetAccuracy float64 `json:"target_accuracy"`
	ActiveRounds   int     `json:"active_rounds_to_target"`
	RandomRounds   int     `json:"random_rounds_to_target"`
	ActiveFinalAcc float64 `json:"active_final_accuracy"`
	RandomFinalAcc float64 `json:"random_final_accuracy"`
}

// newClipRNG keys one clip's generation stream by its global index — the
// suite-generation construction, worker-count independent by design.
func newClipRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9))
}

// activeBenchPool generates and pre-labels the shared pool and eval set so
// every arm reuses one litho pass.
func activeBenchPool(seed int64, poolN, evalN, workers int, fcfg feature.TensorConfig) (*active.Pool, []bool, []train.Sample, error) {
	style, err := layout.StyleByName("ICCAD")
	if err != nil {
		return nil, nil, nil, err
	}
	clips := make([]geom.Clip, poolN+evalN)
	for i := range clips {
		rng := newClipRNG(seed, i)
		clips[i] = layout.Generate(style, rng)
	}
	labeler, err := layout.NewLabeler(style, litho.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	truth, err := parallel.Map(parallel.New(workers), len(clips), func(_, i int) (bool, error) {
		rep, err := labeler.Label(clips[i])
		if err != nil {
			return false, err
		}
		return rep.Hotspot, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	core := style.CoreRect()
	pool, err := active.NewPool(clips[:poolN], core, fcfg, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	evalT, err := feature.ExtractTensors(clips[poolN:], core, fcfg, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	evalSet := make([]train.Sample, evalN)
	for i := range evalSet {
		evalSet[i] = train.Sample{X: evalT[i], Hotspot: truth[poolN+i]}
	}
	return pool, truth, evalSet, nil
}

// runActiveLoop drives one full loop on a fresh net and returns the
// reports plus the final weight checksum.
func runActiveLoop(pool *active.Pool, truth []bool, evalSet []train.Sample, fcfg feature.TensorConfig, strategy string, rounds, batch, iters, workers int, seed int64) ([]active.RoundReport, uint64, error) {
	ncfg := nn.DefaultPaperNetConfig()
	ncfg.InChannels = fcfg.K
	ncfg.SpatialSize = fcfg.Blocks
	ncfg.Seed = seed + 32
	net, err := nn.NewPaperNet(ncfg)
	if err != nil {
		return nil, 0, err
	}
	tune := active.DefaultTune()
	tune.Initial.MaxIters = iters
	if iters >= 2 {
		tune.Initial.DecayStep = iters / 2
	}
	loop, err := active.NewLoop(active.Config{
		Rounds:   rounds,
		Batch:    batch,
		Strategy: strategy,
		Seed:     seed,
		Workers:  workers,
		Tune:     tune,
	}, net, pool, func(i int, _ geom.Clip) (bool, error) {
		return truth[i], nil
	}, evalSet)
	if err != nil {
		return nil, 0, err
	}
	reports, err := loop.Run()
	if err != nil {
		return nil, 0, err
	}
	return reports, active.WeightChecksum(net), nil
}

// timeActiveSelect times the score+select stage over the full pool.
func timeActiveSelect(pool *active.Pool, net *nn.Network, fcfg feature.TensorConfig, batch, workers, reps int, seed int64) (activeArm, error) {
	ev, err := train.NewEvaluator(net, workers)
	if err != nil {
		return activeArm{}, err
	}
	if err := ev.Prepare([]int{fcfg.K, fcfg.Blocks, fcfg.Blocks}); err != nil {
		return activeArm{}, err
	}
	unlabeled := make([]int, len(pool.Tensors))
	for i := range unlabeled {
		unlabeled[i] = i
	}
	watch := obs.NewStopwatch()
	for r := 0; r < reps; r++ {
		probs, err := ev.PredictProbs(pool.Tensors)
		if err != nil {
			return activeArm{}, err
		}
		if _, err := active.SelectHybrid(pool.Tensors, probs, unlabeled, batch, 0, uint64(seed)+uint64(r), workers); err != nil {
			return activeArm{}, err
		}
	}
	elapsed := watch.Elapsed()
	ops := float64(reps)
	clips := float64(len(pool.Tensors))
	ns := float64(elapsed.Nanoseconds())
	return activeArm{
		NsSelect:    ns / ops,
		NsPerClip:   ns / (ops * clips),
		ClipsPerSec: clips * ops / elapsed.Seconds(),
		Workers:     parallel.Workers(workers),
		Reps:        reps,
	}, nil
}

// firstRoundAtAccuracy returns the 1-based round first reaching target
// accuracy, or 0 if none does.
func firstRoundAtAccuracy(reports []active.RoundReport, target float64) int {
	for _, rep := range reports {
		if rep.Labeled > 0 && rep.Eval.Accuracy >= target {
			return rep.Round + 1
		}
	}
	return 0
}

// finalAccuracy returns the last evaluated accuracy of a run.
func finalAccuracy(reports []active.RoundReport) float64 {
	acc := 0.0
	for _, rep := range reports {
		if rep.Labeled > 0 {
			acc = rep.Eval.Accuracy
		}
	}
	return acc
}

// runActive executes the suite and writes the JSON report to outPath.
func runActive(outPath string, poolN, evalN, batch, rounds, iters, reps int, target float64, seed int64, workers int) error {
	if reps <= 0 {
		reps = 1
	}
	fcfg := feature.DefaultTensorConfig()
	total := obs.NewStopwatch()
	pool, truth, evalSet, err := activeBenchPool(seed, poolN, evalN, workers, fcfg)
	if err != nil {
		return err
	}

	// Parity gate before any timing: full loops at workers 1 and 8 must
	// agree on every selected clip and on the final weight bits.
	rep1, sum1, err := runActiveLoop(pool, truth, evalSet, fcfg, active.StrategyHybrid, rounds, batch, iters, 1, seed)
	if err != nil {
		return err
	}
	repN, sumN, err := runActiveLoop(pool, truth, evalSet, fcfg, active.StrategyHybrid, rounds, batch, iters, 8, seed)
	if err != nil {
		return err
	}
	if len(rep1) != len(repN) {
		return fmt.Errorf("active: PARITY FAILURE: %d rounds at workers=1 vs %d at workers=8", len(rep1), len(repN))
	}
	for r := range rep1 {
		a, b := rep1[r].Selected, repN[r].Selected
		if len(a) != len(b) {
			return fmt.Errorf("active: PARITY FAILURE round %d: %d selected vs %d", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				return fmt.Errorf("active: PARITY FAILURE round %d pick %d: clip %d vs %d", r, i, a[i], b[i])
			}
		}
	}
	if sum1 != sumN {
		return fmt.Errorf("active: PARITY FAILURE: weight checksum %016x at workers=1 vs %016x at workers=8", sum1, sumN)
	}
	fmt.Printf("parity: ok (%d rounds selected identically, weight checksum %016x)\n", len(rep1), sum1)

	out := activeReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Kernel: fused.Vectorized(), Workers: parallel.Workers(workers),
		Pool: poolN, Eval: evalN, Batch: batch, Rounds: rounds, Iters: iters,
		ParityChecksum: fmt.Sprintf("%016x", sum1),
		TargetAccuracy: target,
	}

	// Selection-stage throughput at 1 and N workers on a fresh net.
	ncfg := nn.DefaultPaperNetConfig()
	ncfg.InChannels = fcfg.K
	ncfg.SpatialSize = fcfg.Blocks
	ncfg.Seed = seed + 32
	net, err := nn.NewPaperNet(ncfg)
	if err != nil {
		return err
	}
	if out.Select1, err = timeActiveSelect(pool, net, fcfg, batch, 1, reps, seed); err != nil {
		return err
	}
	if out.SelectN, err = timeActiveSelect(pool, net, fcfg, batch, workers, reps, seed); err != nil {
		return err
	}

	// Rounds-to-target head-to-head: the parity run already produced the
	// active trajectory; the baseline reruns with random selection only.
	repRand, _, err := runActiveLoop(pool, truth, evalSet, fcfg, active.StrategyRandom, rounds, batch, iters, workers, seed)
	if err != nil {
		return err
	}
	out.ActiveRounds = firstRoundAtAccuracy(rep1, target)
	out.RandomRounds = firstRoundAtAccuracy(repRand, target)
	out.ActiveFinalAcc = finalAccuracy(rep1)
	out.RandomFinalAcc = finalAccuracy(repRand)

	fmt.Printf("pool %d clips, eval %d, batch %d, %d rounds, %d iters/round (timed in %v)\n",
		poolN, evalN, batch, rounds, iters, total.Elapsed().Round(time.Millisecond))
	fmt.Printf("select  workers=1  %12.0f ns/pass %8.0f ns/clip %10.0f clips/s\n",
		out.Select1.NsSelect, out.Select1.NsPerClip, out.Select1.ClipsPerSec)
	fmt.Printf("select  workers=%-2d %12.0f ns/pass %8.0f ns/clip %10.0f clips/s\n",
		out.SelectN.Workers, out.SelectN.NsSelect, out.SelectN.NsPerClip, out.SelectN.ClipsPerSec)
	fmt.Printf("rounds to %.0f%% accuracy: active %s, random %s (final %.1f%% vs %.1f%%)\n",
		100*target, fmtReached(out.ActiveRounds), fmtReached(out.RandomRounds),
		100*out.ActiveFinalAcc, 100*out.RandomFinalAcc)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(outPath, buf, 0o644)
}

// fmtReached renders a 1-based rounds-to-target count (0 = never).
func fmtReached(n int) string {
	if n == 0 {
		return "never"
	}
	return fmt.Sprintf("%d", n)
}
