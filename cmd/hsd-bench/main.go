// Command hsd-bench regenerates the paper's tables and figures on the
// synthetic benchmark suites.
//
// Examples:
//
//	hsd-bench -exp table1                 # network configuration table
//	hsd-bench -exp table2 -scale 0.01     # full detector comparison
//	hsd-bench -exp fig3                   # SGD vs MGD curves
//	hsd-bench -exp all -cache .benchcache # everything, caching suites
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hotspot/internal/experiments"
	"hotspot/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hsd-bench: ")
	var (
		exp     = flag.String("exp", "all", "experiment: table1, table2, fig1, fig2, fig3, fig4, infer, scan, active, activecurve, all")
		scale   = flag.Float64("scale", 0.008, "fraction of the paper's sample counts")
		seed    = flag.Int64("seed", 1, "generation/training seed")
		iters   = flag.Int("iters", 800, "initial-round MGD iterations")
		cache   = flag.String("cache", "", "suite cache directory (strongly recommended)")
		benchs  = flag.String("benchmarks", "", "comma-separated Table 2 benchmarks (default: all four)")
		workers = flag.Int("workers", 0, "worker goroutines for generation, training and evaluation (0 = GOMAXPROCS); results are identical for any value")

		inferOut  = flag.String("infer-out", "BENCH_infer.json", "JSON report path for -exp infer")
		inferReps = flag.Int("infer-reps", 0, "fixed repetitions per -exp infer measurement (0 = auto-calibrate; small fixed values make a fast CI smoke run)")

		scanOut   = flag.String("scan-out", "BENCH_scan.json", "JSON report path for -exp scan")
		scanCells = flag.Int("scan-cells", 6, "die side in clip-sized cells for -exp scan")
		scanReps  = flag.Int("scan-reps", 1, "timed repetitions per -exp scan arm (the incremental arm runs 5x this)")
		scanDirty = flag.Int("scan-dirty", 0, "edit region side in nm for the incremental arm (0 = die/10, i.e. a 1%-dirty die)")

		activeOut    = flag.String("active-out", "BENCH_active.json", "JSON report path for -exp active")
		activePool   = flag.Int("active-pool", 64, "unlabeled pool size for -exp active")
		activeEval   = flag.Int("active-eval", 32, "held-out eval size for -exp active")
		activeBatch  = flag.Int("active-batch", 8, "clips selected per round for -exp active")
		activeRounds = flag.Int("active-rounds", 4, "loop rounds for -exp active")
		activeIters  = flag.Int("active-iters", 150, "fine-tune MGD iterations per round for -exp active")
		activeReps   = flag.Int("active-reps", 3, "timed repetitions per -exp active selection arm")
		activeTarget = flag.Float64("active-target", 0.7, "target held-out accuracy for the rounds-to-target comparison")
	)
	flag.Parse()
	parallel.SetDefault(*workers)

	opts := experiments.Options{Scale: *scale, Seed: *seed, CacheDir: *cache, Iters: *iters, Workers: *workers}
	run := func(name string) {
		switch name {
		case "table1":
			s, err := experiments.Table1()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(s)
		case "table2":
			var names []string
			if *benchs != "" {
				names = strings.Split(*benchs, ",")
			}
			rows, err := experiments.Table2(names, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.FormatTable2(rows))
		case "fig1":
			_, s, err := experiments.Fig1(opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(s)
		case "fig2":
			s, err := experiments.Fig2()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(s)
		case "fig3":
			_, s, err := experiments.Fig3(opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(s)
		case "fig4":
			_, s, err := experiments.Fig4(opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(s)
		case "infer":
			if err := runInfer(*inferOut, *inferReps); err != nil {
				log.Fatal(err)
			}
		case "scan":
			if err := runScan(*scanOut, *scanCells, *scanReps, *scanDirty, *seed, *workers); err != nil {
				log.Fatal(err)
			}
		case "active":
			if err := runActive(*activeOut, *activePool, *activeEval, *activeBatch, *activeRounds,
				*activeIters, *activeReps, *activeTarget, *seed, *workers); err != nil {
				log.Fatal(err)
			}
		case "activecurve":
			_, table, err := experiments.ActiveCurve(experiments.ActiveCurveConfig{
				Seed:    *seed,
				Workers: *workers,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(table)
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig1", "fig2", "table2", "fig3", "fig4"} {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
